#!/usr/bin/env bash
# ci/check.sh — the pre-merge gate (ROADMAP.md, DESIGN.md §11).
#
#   ci/check.sh quick   # warnings-as-errors build, dlint, clang-tidy*, tier-1 ctest
#   ci/check.sh full    # quick + ASan+UBSan full suite + TSan threaded suites
#
# *clang-tidy and -Wthread-safety need clang; on gcc-only machines those legs
#  degrade to a logged skip rather than a failure, so the script runs
#  everywhere the toolchain does.
#
# Every leg builds into its own directory under build-ci/ so a plain dev
# build/ is never clobbered. Exit is non-zero on the first failing leg.
set -euo pipefail

mode="${1:-quick}"
case "$mode" in
  quick|full) ;;
  *) echo "usage: $0 [quick|full]" >&2; exit 2 ;;
esac

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
ci_root="${root}/build-ci"
mkdir -p "$ci_root"

step() { printf '\n=== %s ===\n' "$*"; }

configure_build() {
  # configure_build <dir> <cmake-args...>
  local dir="$1"; shift
  cmake -S "$root" -B "$dir" "$@" >"$dir.configure.log" 2>&1 \
    || { tail -40 "$dir.configure.log"; return 1; }
  cmake --build "$dir" -j "$jobs" >"$dir.build.log" 2>&1 \
    || { tail -60 "$dir.build.log"; return 1; }
}

# --- Leg 1: warnings-as-errors build (gcc or clang; clang adds
# -Wthread-safety through the dinfomap_warnings target). ------------------
step "werror build (-Wall -Wextra -Wpedantic -Wshadow as errors)"
werror_dir="$ci_root/werror"
mkdir -p "$werror_dir"
configure_build "$werror_dir" -DCMAKE_BUILD_TYPE=Release -DDINFOMAP_WERROR=ON

# --- Leg 2: dlint over everything we ship. -------------------------------
step "dlint (determinism & concurrency rules)"
"$werror_dir/tools/dlint/dlint" --root "$root" src tests bench examples

# --- Leg 3: clang-tidy when available (the CMake target self-skips). -----
step "clang-tidy (bugprone-*, concurrency-*, performance-*)"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build "$werror_dir" --target tidy
else
  echo "clang-tidy not installed here; leg skipped (runs on clang CI hosts)"
fi

# --- Leg 4: tier-1 tests on the werror build. ----------------------------
step "tier-1 ctest"
ctest --test-dir "$werror_dir" --output-on-failure -j "$jobs"

# --- Leg 4b: socket-transport cross-backend gate. ------------------------
# Redundant with leg 4's full run, but the transport label is the acceptance
# gate for backend bit-identity (DESIGN.md §14) — identical partitions, MDL,
# and round traces across inproc and socket, including under a fault plan at
# 4 ranks — so its verdict gets its own line in the CI log.
step "socket transport cross-backend suite (ctest -L transport)"
ctest --test-dir "$werror_dir" --output-on-failure -L transport

# --- Leg 4c: out-of-core backend gate. -----------------------------------
# The blockgraph label is the acceptance gate for the compressed-block
# substrate (DESIGN.md §15): codec round-trips, corrupt-block detection,
# cache bounds, and bit-identical dist/dist-louvain results between the
# resident and blocks backends across engines, thread counts, and fault
# plans — so its verdict gets its own line in the CI log too.
step "out-of-core backend suite (ctest -L blockgraph)"
ctest --test-dir "$werror_dir" --output-on-failure -L blockgraph

# --- Leg 5: bench drift vs checked-in baselines (informational). ---------
# Reruns the engine-comparison bench and diffs its artifact against
# bench_results/. Deterministic metrics (final_L, eval counters) must
# reproduce bit-for-bit; timing columns get a loose band. Never fails the
# gate — a slow or loaded machine is not a regression — but the delta table
# lands in the CI log for humans.
step "benchdiff vs bench_results/ baselines (informational)"
benchdiff_tmp="$(mktemp -d)"
# bench_blockgraph exits non-zero when the ISSUE 9 acceptance bounds fail
# (memory ≤50% of resident at a 25% cache budget, gather ≤2×) — that part is
# a real gate, not informational.
if (cd "$benchdiff_tmp" && "$werror_dir/bench/bench_async_convergence" \
      >bench.log 2>&1 \
    && "$werror_dir/bench/bench_blockgraph" >>bench.log 2>&1); then
  "$werror_dir/tools/benchdiff/benchdiff" "$root/bench_results" \
    "$benchdiff_tmp/bench_results" || true
else
  echo "bench run failed (or blockgraph acceptance bounds violated)"
  tail -15 "$benchdiff_tmp/bench.log" || true
  rm -rf "$benchdiff_tmp"
  exit 1
fi
rm -rf "$benchdiff_tmp"

if [ "$mode" = "quick" ]; then
  step "quick gate passed"
  exit 0
fi

# --- Leg 5 (full): ASan+UBSan over the whole suite. ----------------------
# -fno-sanitize-recover is wired in CMake, so any UBSan hit is a hard fail.
# The suite includes the transport label, so the socket backend's reader
# threads, frame codecs, and forked CLI workers all run instrumented here.
step "ASan+UBSan full suite"
asan_dir="$ci_root/asan-ubsan"
mkdir -p "$asan_dir"
configure_build "$asan_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDINFOMAP_SANITIZE=address,undefined
ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs"

# --- Leg 6 (full): TSan on the concurrency suites. -----------------------
# Scope: the comm substrate, thread-pool, async-engine, and blockgraph tests
# (the async worklist drain is single-threaded per rank, but its
# reconciliation sweeps share the pooled hot loops; the decode cache hands
# slots across threads through its lease mutex). RelaxMap is excluded by
# repo convention — its module reads are racy by design (published
# consistency model; see the SharedLevel comment in src/core/relaxmap.cpp).
step "TSan (comm-faults + threads + async + transport + blockgraph, RelaxMap excluded)"
tsan_dir="$ci_root/tsan"
mkdir -p "$tsan_dir"
configure_build "$tsan_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDINFOMAP_SANITIZE=thread
ctest --test-dir "$tsan_dir" --output-on-failure -j "$jobs" \
  -L 'comm-faults|threads|async|transport|blockgraph' -E RelaxMap

step "full gate passed"
