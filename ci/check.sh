#!/usr/bin/env bash
# ci/check.sh — the pre-merge gate (ROADMAP.md, DESIGN.md §11, §16).
#
#   ci/check.sh quick   # warnings-as-errors build, dlint, clang-tidy*,
#                       # tier-1 ctest, bounded dcheck model checking
#   ci/check.sh full    # quick + ASan+UBSan full suite + TSan threaded
#                       # suites + unbounded-depth dcheck exploration
#
# *clang-tidy and -Wthread-safety need clang; on gcc-only machines those legs
#  degrade to a logged skip rather than a failure, so the script runs
#  everywhere the toolchain does.
#
# Every leg builds into its own directory under build-ci/ so a plain dev
# build/ is never clobbered. Exit is non-zero on the first failing leg.
# Alongside the console output the script always writes
# build-ci/check_summary.json — per-leg status and duration, plus the number
# of dcheck schedules explored — even when a leg fails, so CI dashboards can
# parse the verdict without scraping the log.
set -euo pipefail

mode="${1:-quick}"
case "$mode" in
  quick|full) ;;
  *) echo "usage: $0 [quick|full]" >&2; exit 2 ;;
esac

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
ci_root="${root}/build-ci"
mkdir -p "$ci_root"

step() { printf '\n=== %s ===\n' "$*"; }

# --- machine-readable summary --------------------------------------------
# Each completed leg appends "name|status|seconds"; the EXIT trap turns the
# list into build-ci/check_summary.json no matter how the script ends.
summary_file="$ci_root/check_summary.json"
legs=()
dcheck_schedules=0

write_summary() {
  local code=$1
  {
    printf '{\n'
    printf '  "mode": "%s",\n' "$mode"
    printf '  "ok": %s,\n' "$([ "$code" -eq 0 ] && echo true || echo false)"
    printf '  "dcheck_schedules": %s,\n' "$dcheck_schedules"
    printf '  "legs": [\n'
    local i n=${#legs[@]}
    for ((i = 0; i < n; ++i)); do
      IFS='|' read -r name status secs <<<"${legs[$i]}"
      printf '    {"name": "%s", "status": "%s", "seconds": %s}%s\n' \
        "$name" "$status" "$secs" "$([ $((i + 1)) -lt "$n" ] && echo ,)"
    done
    printf '  ]\n}\n'
  } >"$summary_file"
}
trap 'write_summary $?' EXIT

# run_leg <name> <fn> — time the leg, record pass/fail/skip, fail fast.
# The leg function may `return 77` to record a skip that does not gate.
run_leg() {
  local name="$1" fn="$2" status rc started
  step "$name"
  started=$SECONDS
  rc=0
  "$fn" || rc=$?
  case "$rc" in
    0) status=pass ;;
    77) status=skip; rc=0 ;;
    *) status=fail ;;
  esac
  legs+=("${name}|${status}|$((SECONDS - started))")
  [ "$rc" -eq 0 ] || exit "$rc"
}

configure_build() {
  # configure_build <dir> <cmake-args...>
  local dir="$1"; shift
  cmake -S "$root" -B "$dir" "$@" >"$dir.configure.log" 2>&1 \
    || { tail -40 "$dir.configure.log"; return 1; }
  cmake --build "$dir" -j "$jobs" >"$dir.build.log" 2>&1 \
    || { tail -60 "$dir.build.log"; return 1; }
}

# Sum the "schedules" counters out of a dcheck --json artifact.
count_schedules() {
  grep -o '"schedules": [0-9]*' "$1" 2>/dev/null \
    | awk '{s += $2} END {print s + 0}'
}

werror_dir="$ci_root/werror"
dcheck_dir="$ci_root/dcheck"

# --- Leg 1: warnings-as-errors build (gcc or clang; clang adds
# -Wthread-safety through the dinfomap_warnings target). ------------------
leg_werror() {
  mkdir -p "$werror_dir"
  configure_build "$werror_dir" -DCMAKE_BUILD_TYPE=Release -DDINFOMAP_WERROR=ON
}
run_leg "werror build (-Wall -Wextra -Wpedantic -Wshadow as errors)" leg_werror

# --- Leg 2: dlint over everything we ship. -------------------------------
leg_dlint() {
  "$werror_dir/tools/dlint/dlint" --root "$root" src tests bench examples
}
run_leg "dlint (determinism, concurrency & lock-order rules)" leg_dlint

# --- Leg 3: clang-tidy when available (the CMake target self-skips). -----
leg_tidy() {
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake --build "$werror_dir" --target tidy
  else
    echo "clang-tidy not installed here; leg skipped (runs on clang CI hosts)"
    return 77
  fi
}
run_leg "clang-tidy (bugprone-*, concurrency-*, performance-*)" leg_tidy

# --- Leg 4: tier-1 tests on the werror build. ----------------------------
leg_ctest() {
  ctest --test-dir "$werror_dir" --output-on-failure -j "$jobs"
}
run_leg "tier-1 ctest" leg_ctest

# --- Leg 4b: socket-transport cross-backend gate. ------------------------
# Redundant with leg 4's full run, but the transport label is the acceptance
# gate for backend bit-identity (DESIGN.md §14) — identical partitions, MDL,
# and round traces across inproc and socket, including under a fault plan at
# 4 ranks — so its verdict gets its own line in the CI log.
leg_transport() {
  ctest --test-dir "$werror_dir" --output-on-failure -L transport
}
run_leg "socket transport cross-backend suite (ctest -L transport)" \
  leg_transport

# --- Leg 4c: out-of-core backend gate. -----------------------------------
# The blockgraph label is the acceptance gate for the compressed-block
# substrate (DESIGN.md §15): codec round-trips, corrupt-block detection,
# cache bounds, and bit-identical dist/dist-louvain results between the
# resident and blocks backends across engines, thread counts, and fault
# plans — so its verdict gets its own line in the CI log too.
leg_blockgraph() {
  ctest --test-dir "$werror_dir" --output-on-failure -L blockgraph
}
run_leg "out-of-core backend suite (ctest -L blockgraph)" leg_blockgraph

# --- Leg 4d: dcheck model checking, bounded (DESIGN.md §16). -------------
# A separate tree because DINFOMAP_DCHECK=ON swaps the sync primitives for
# their instrumented twins repo-wide. --validate is the gate: every harness
# must pass clean AND catch its seeded mutation with a replayable schedule.
# The 60 s per-harness budget keeps the quick gate quick; typical runs
# finish in well under a second per harness.
leg_dcheck() {
  mkdir -p "$dcheck_dir"
  configure_build "$dcheck_dir" -DCMAKE_BUILD_TYPE=Release \
    -DDINFOMAP_DCHECK=ON || return 1
  ctest --test-dir "$dcheck_dir" --output-on-failure -L dcheck || return 1
  "$dcheck_dir/tools/dcheck/dcheck" --all --validate --max-seconds 60 \
    --json "$ci_root/dcheck_quick.json" || return 1
  dcheck_schedules=$(count_schedules "$ci_root/dcheck_quick.json")
  echo "dcheck explored $dcheck_schedules schedules (bounded, budget 60 s/harness)"
}
run_leg "dcheck model checking (bounded, ctest -L dcheck + --all --validate)" \
  leg_dcheck

# --- Leg 5: bench drift vs checked-in baselines (informational). ---------
# Reruns the engine-comparison bench and diffs its artifact against
# bench_results/. Deterministic metrics (final_L, eval counters) must
# reproduce bit-for-bit; timing columns get a loose band. Never fails the
# gate — a slow or loaded machine is not a regression — but the delta table
# lands in the CI log for humans.
leg_benchdiff() {
  local benchdiff_tmp
  benchdiff_tmp="$(mktemp -d)"
  # bench_blockgraph exits non-zero when the ISSUE 9 acceptance bounds fail
  # (memory ≤50% of resident at a 25% cache budget, gather ≤2×) — that part
  # is a real gate, not informational.
  if (cd "$benchdiff_tmp" && "$werror_dir/bench/bench_async_convergence" \
        >bench.log 2>&1 \
      && "$werror_dir/bench/bench_blockgraph" >>bench.log 2>&1); then
    "$werror_dir/tools/benchdiff/benchdiff" "$root/bench_results" \
      "$benchdiff_tmp/bench_results" || true
  else
    echo "bench run failed (or blockgraph acceptance bounds violated)"
    tail -15 "$benchdiff_tmp/bench.log" || true
    rm -rf "$benchdiff_tmp"
    return 1
  fi
  rm -rf "$benchdiff_tmp"
}
run_leg "benchdiff vs bench_results/ baselines (informational)" leg_benchdiff

if [ "$mode" = "quick" ]; then
  step "quick gate passed"
  exit 0
fi

# --- Leg 6 (full): ASan+UBSan over the whole suite. ----------------------
# -fno-sanitize-recover is wired in CMake, so any UBSan hit is a hard fail.
# The suite includes the transport label, so the socket backend's reader
# threads, frame codecs, and forked CLI workers all run instrumented here.
leg_asan() {
  local asan_dir="$ci_root/asan-ubsan"
  mkdir -p "$asan_dir"
  configure_build "$asan_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDINFOMAP_SANITIZE=address,undefined || return 1
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs"
}
run_leg "ASan+UBSan full suite" leg_asan

# --- Leg 7 (full): TSan on the concurrency suites. -----------------------
# Scope: the comm substrate, thread-pool, async-engine, and blockgraph tests
# (the async worklist drain is single-threaded per rank, but its
# reconciliation sweeps share the pooled hot loops; the decode cache hands
# slots across threads through its lease mutex). RelaxMap is excluded by
# repo convention — its module reads are racy by design (published
# consistency model; see the SharedLevel comment in src/core/relaxmap.cpp).
leg_tsan() {
  local tsan_dir="$ci_root/tsan"
  mkdir -p "$tsan_dir"
  configure_build "$tsan_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDINFOMAP_SANITIZE=thread || return 1
  ctest --test-dir "$tsan_dir" --output-on-failure -j "$jobs" \
    -L 'comm-faults|threads|async|transport|blockgraph' -E RelaxMap
}
run_leg "TSan (comm-faults + threads + async + transport + blockgraph, RelaxMap excluded)" \
  leg_tsan

# --- Leg 8 (full): dcheck, unbounded depth. ------------------------------
# --bound -1 removes the preemption bound entirely: full DFS over every
# interleaving of each harness, subject only to the wall-clock budget. The
# bounded quick leg already proves mutation coverage; this one chases bugs
# that need 4+ forced switches. Truncation by the budget is not a failure —
# it still reports how far it got.
leg_dcheck_full() {
  "$dcheck_dir/tools/dcheck/dcheck" --all --validate --bound -1 \
    --max-seconds 300 --json "$ci_root/dcheck_full.json" || return 1
  local full_schedules
  full_schedules=$(count_schedules "$ci_root/dcheck_full.json")
  dcheck_schedules=$((dcheck_schedules + full_schedules))
  echo "dcheck explored $full_schedules schedules (unbounded depth, budget 300 s/harness)"
}
run_leg "dcheck model checking (unbounded depth, --bound -1)" leg_dcheck_full

step "full gate passed"
