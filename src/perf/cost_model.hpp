// α-β machine model: modeled time = compute(work) + α·messages + β·bytes.
//
// Defaults approximate a ~2010s HPC node (the paper ran on Titan's 2.2 GHz
// Opterons with a Gemini interconnect): tens of ns per graph operation, µs
// message latency, multi-GB/s bandwidth. Absolute values are not the claim —
// the *relative* shapes (who wins, how the breakdown shifts with p) are.
#pragma once

#include <algorithm>
#include <vector>

#include "perf/work_counters.hpp"

namespace dinfomap::perf {

struct CostModel {
  double sec_per_arc = 2.0e-8;            ///< neighbor scan step
  double sec_per_delta = 4.0e-8;          ///< one ΔL evaluation
  double sec_per_module_update = 2.5e-8;  ///< module-table mutation
  double alpha = 2.0e-6;                  ///< per-message latency
  double beta = 2.5e-10;                  ///< per-byte (≈4 GB/s)

  // Out-of-core extension (blocks backend): a scanned arc that misses the
  // decode cache additionally pays the varint/zig-zag decode of its block,
  // amortized per arc. 0 (the default) models the resident backend.
  double sec_per_arc_decode = 0;  ///< amortized decode cost per arc on a miss
  double decode_hit_ratio = 1.0;  ///< measured/expected cache hit ratio

  /// Per-arc scan cost including the amortized decode bill: the coefficient
  /// the delegate rebalance and the modeled-time plots should use when the
  /// graph streams from the block file.
  [[nodiscard]] double effective_sec_per_arc() const {
    return sec_per_arc +
           (1.0 - decode_hit_ratio) * sec_per_arc_decode;
  }

  [[nodiscard]] double compute_seconds(const WorkCounters& w) const {
    return static_cast<double>(w.arcs_scanned) * effective_sec_per_arc() +
           static_cast<double>(w.delta_evals) * sec_per_delta +
           static_cast<double>(w.module_updates) * sec_per_module_update;
  }
  [[nodiscard]] double comm_seconds(const WorkCounters& w) const {
    return static_cast<double>(w.messages) * alpha +
           static_cast<double>(w.bytes) * beta;
  }
  [[nodiscard]] double seconds(const WorkCounters& w) const {
    return compute_seconds(w) + comm_seconds(w);
  }
};

/// Bulk-synchronous step time: the slowest rank gates everyone.
double bsp_seconds(const std::vector<WorkCounters>& per_rank,
                   const CostModel& model = {});

}  // namespace dinfomap::perf
