// Exact per-rank work counters.
//
// Ranks in this build are threads on one machine, so wall-clock time cannot
// show multi-node scaling. The algorithms therefore count the work they do —
// arcs scanned, ΔL evaluations, module-table updates, messages and bytes —
// and the cost model (cost_model.hpp) turns those counts into modeled
// parallel time. Counters are transport- and machine-independent, which is
// what makes the Figs. 8–10 shapes reproducible here.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/counters.hpp"

namespace dinfomap::perf {

struct WorkCounters {
  std::uint64_t arcs_scanned = 0;    ///< neighbor visits during move search
  std::uint64_t delta_evals = 0;     ///< candidate-module ΔL evaluations
  std::uint64_t module_updates = 0;  ///< module-table mutations
  std::uint64_t messages = 0;        ///< transport messages sent
  std::uint64_t bytes = 0;           ///< transport bytes sent
  /// Vertex evaluations skipped by the active-set fast path (each one a full
  /// candidate scan that provably reproduces its last no-move outcome).
  /// Last field: existing positional aggregate initializers stay valid.
  std::uint64_t pruned_evals = 0;

  void reset() { *this = WorkCounters{}; }

  WorkCounters& operator+=(const WorkCounters& o) {
    arcs_scanned += o.arcs_scanned;
    delta_evals += o.delta_evals;
    pruned_evals += o.pruned_evals;
    module_updates += o.module_updates;
    messages += o.messages;
    bytes += o.bytes;
    return *this;
  }
  friend WorkCounters operator+(WorkCounters a, const WorkCounters& b) {
    a += b;
    return a;
  }
};

/// Fold per-rank comm totals into per-rank work counters — the post-job step
/// every distributed driver performs after Runtime::run returns its report.
inline void add_comm_totals(std::vector<WorkCounters>& work,
                            const std::vector<comm::CommCounters>& comm) {
  const std::size_t n = work.size() < comm.size() ? work.size() : comm.size();
  for (std::size_t r = 0; r < n; ++r) {
    work[r].messages += comm[r].total_messages();
    work[r].bytes += comm[r].total_bytes();
  }
}

}  // namespace dinfomap::perf
