// Decode-cost calibration for the out-of-core blocks backend: measure the
// ns/arc varint-decode coefficient on the actual block file, feed it into
// the CostModel, and convert model + live cache counters into the
// partition::DelegateDecodeCost the delegate rebalance consumes.
//
// The loop closes as: measure_decode_cost (one-time, on open) →
// CostModel.sec_per_arc_decode → make_delegate(..., decode_cost) biases arc
// placement toward block locality → after a run, apply_decode_feedback folds
// the observed hit ratio back into the model so the next partitioning sees
// the cache behaviour the previous one produced.
#pragma once

#include <cstdint>

#include "graph/blockgraph/blockgraph.hpp"
#include "partition/arc_partition.hpp"
#include "perf/cost_model.hpp"

namespace dinfomap::perf {

/// Result of one calibration pass over a prefix of the block file.
struct DecodeCostMeasurement {
  double sec_per_arc_decode = 0;  ///< measured decode seconds per arc
  double arcs_per_block = 0;      ///< global mean decoded arcs per block
  std::uint64_t blocks_timed = 0; ///< cold blocks the pass actually decoded
  std::uint64_t arcs_scanned = 0; ///< arcs streamed during the pass

  [[nodiscard]] bool valid() const {
    return blocks_timed > 0 && sec_per_arc_decode > 0;
  }
};

/// Stream the first `max_blocks` blocks through a private cursor and derive
/// sec_per_arc_decode from the cache's decode_ns delta. Timing-based, so the
/// *number* is machine-dependent — but it only parameterizes the (opt-in)
/// cost-aware rebalance, never a result bit. Run it right after open(),
/// before other cursors exist: warm blocks decode for free and would dilute
/// the measurement.
DecodeCostMeasurement measure_decode_cost(
    const graph::blockgraph::BlockGraph& bg, std::uint64_t max_blocks = 64);

/// Fold a measurement into the model (decode coefficient only; the hit
/// ratio is fed back separately from run counters).
void apply_decode_cost(CostModel& model, const DecodeCostMeasurement& m);

/// Hit-ratio feedback: update model.decode_hit_ratio from a run's cache
/// counters. No-op when the run faulted no blocks.
void apply_decode_feedback(CostModel& model,
                           const graph::blockgraph::BlockGraphStats& stats);

/// Assemble the rebalance input from the calibrated model. Returns an inert
/// (disabled) cost when the model carries no decode coefficient — handing it
/// to make_delegate then reproduces the count-based rebalance exactly.
partition::DelegateDecodeCost delegate_decode_cost(
    const CostModel& model, const DecodeCostMeasurement& m);

}  // namespace dinfomap::perf
