#include "perf/decode_cost.hpp"

#include <algorithm>

namespace dinfomap::perf {

using graph::VertexId;
using graph::blockgraph::BlockGraph;
using graph::blockgraph::BlockGraphStats;

DecodeCostMeasurement measure_decode_cost(const BlockGraph& bg,
                                          std::uint64_t max_blocks) {
  DecodeCostMeasurement m;
  if (bg.num_blocks() == 0 || bg.num_arcs() == 0) return m;
  m.arcs_per_block = static_cast<double>(bg.num_arcs()) /
                     static_cast<double>(bg.num_blocks());

  const BlockGraphStats before = bg.stats();
  {
    auto cur = bg.cursor();
    std::uint64_t blocks_seen = 0;
    std::uint32_t prev_block = graph::blockgraph::kInvalidBlock;
    for (VertexId u = 0; u < bg.num_vertices(); ++u) {
      const std::uint32_t b = bg.block_of(u);
      if (b != prev_block) {
        if (++blocks_seen > max_blocks) break;
        prev_block = b;
      }
      m.arcs_scanned += bg.neighbors(u, cur).size();
    }
  }
  const BlockGraphStats after = bg.stats();

  const std::uint64_t cold = after.misses - before.misses;
  const std::uint64_t decode_ns = after.decode_ns - before.decode_ns;
  m.blocks_timed = cold;
  if (cold == 0 || decode_ns == 0) return m;
  // Arcs decoded = cold blocks × mean arcs/block (the cache decodes whole
  // blocks regardless of how many of their arcs the pass touched).
  const double arcs_decoded = static_cast<double>(cold) * m.arcs_per_block;
  m.sec_per_arc_decode =
      static_cast<double>(decode_ns) * 1e-9 / std::max(1.0, arcs_decoded);
  return m;
}

void apply_decode_cost(CostModel& model, const DecodeCostMeasurement& m) {
  if (m.valid()) model.sec_per_arc_decode = m.sec_per_arc_decode;
}

void apply_decode_feedback(CostModel& model, const BlockGraphStats& stats) {
  const std::uint64_t faults = stats.hits + stats.misses;
  if (faults == 0) return;
  model.decode_hit_ratio =
      static_cast<double>(stats.hits) / static_cast<double>(faults);
}

partition::DelegateDecodeCost delegate_decode_cost(
    const CostModel& model, const DecodeCostMeasurement& m) {
  partition::DelegateDecodeCost cost;
  if (model.sec_per_arc_decode <= 0 || !(m.arcs_per_block > 0)) return cost;
  cost.sec_per_arc = model.sec_per_arc;
  cost.sec_per_arc_decode = model.sec_per_arc_decode;
  cost.expected_hit_ratio = model.decode_hit_ratio;
  cost.arcs_per_block = m.arcs_per_block;
  return cost;
}

}  // namespace dinfomap::perf
