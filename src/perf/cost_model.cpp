#include "perf/cost_model.hpp"

namespace dinfomap::perf {

double bsp_seconds(const std::vector<WorkCounters>& per_rank,
                   const CostModel& model) {
  double worst = 0;
  for (const auto& w : per_rank) worst = std::max(worst, model.seconds(w));
  return worst;
}

}  // namespace dinfomap::perf
