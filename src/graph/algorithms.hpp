// Classic graph analysis routines: k-core decomposition, clustering
// coefficients, BFS distances — the structural measurements one runs on
// scale-free graphs before and after community detection.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::graph {

/// Core number of every vertex (Batagelj–Zaversnik peeling, O(E)).
/// core[v] = largest k such that v belongs to a subgraph of min degree k.
std::vector<VertexId> core_numbers(const Csr& graph);

/// Local clustering coefficient per vertex: triangles(v) / C(deg v, 2)
/// (0 for degree < 2). Unweighted; self-loops ignored.
std::vector<double> local_clustering(const Csr& graph);

/// Global clustering coefficient: 3·triangles / open-and-closed triples.
double global_clustering(const Csr& graph);

/// BFS hop distances from `source` (kInvalidVertex marks unreachable).
std::vector<VertexId> bfs_distances(const Csr& graph, VertexId source);

/// Double-sweep pseudo-diameter lower bound (exact on trees, excellent on
/// small-world graphs): BFS from `seed`, then BFS from the farthest vertex.
VertexId pseudo_diameter(const Csr& graph, VertexId seed = 0);

}  // namespace dinfomap::graph
