#include <unordered_set>

#include "graph/gen/generators.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dinfomap::graph::gen {

GeneratedGraph erdos_renyi(VertexId n, EdgeIndex m, std::uint64_t seed) {
  DINFOMAP_REQUIRE_MSG(n >= 2, "erdos_renyi: need at least 2 vertices");
  const auto max_edges =
      static_cast<EdgeIndex>(n) * (static_cast<EdgeIndex>(n) - 1) / 2;
  DINFOMAP_REQUIRE_MSG(m <= max_edges, "erdos_renyi: more edges than pairs");

  util::Xoshiro256 rng(seed);
  GeneratedGraph g;
  g.num_vertices = n;
  g.edges.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (g.edges.size() < m) {
    auto u = static_cast<VertexId>(rng.bounded(n));
    auto v = static_cast<VertexId>(rng.bounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    g.edges.push_back({u, v, 1.0});
  }
  return g;
}

}  // namespace dinfomap::graph::gen
