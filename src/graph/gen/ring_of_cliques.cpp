#include "graph/gen/generators.hpp"
#include "util/check.hpp"

namespace dinfomap::graph::gen {

GeneratedGraph ring_of_cliques(VertexId num_cliques, VertexId clique_size,
                               std::uint64_t seed) {
  (void)seed;  // deterministic by construction; parameter kept for API symmetry
  DINFOMAP_REQUIRE_MSG(num_cliques >= 2, "ring_of_cliques: need >= 2 cliques");
  DINFOMAP_REQUIRE_MSG(clique_size >= 2, "ring_of_cliques: clique size >= 2");

  GeneratedGraph g;
  g.num_vertices = num_cliques * clique_size;
  Partition truth(g.num_vertices);

  for (VertexId c = 0; c < num_cliques; ++c) {
    const VertexId base = c * clique_size;
    for (VertexId i = 0; i < clique_size; ++i) {
      truth[base + i] = c;
      for (VertexId j = i + 1; j < clique_size; ++j)
        g.edges.push_back({base + i, base + j, 1.0});
    }
    // One bridge edge to the next clique (vertex 0 of each).
    const VertexId next_base = ((c + 1) % num_cliques) * clique_size;
    g.edges.push_back({base, next_base, 1.0});
  }
  g.ground_truth = std::move(truth);
  return g;
}

}  // namespace dinfomap::graph::gen
