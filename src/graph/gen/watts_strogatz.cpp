#include <unordered_set>

#include "graph/gen/generators.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dinfomap::graph::gen {

GeneratedGraph watts_strogatz(VertexId n, VertexId k, double beta,
                              std::uint64_t seed) {
  DINFOMAP_REQUIRE_MSG(k >= 2 && k % 2 == 0, "watts_strogatz: k even and >= 2");
  DINFOMAP_REQUIRE_MSG(n > k, "watts_strogatz: n must exceed k");
  DINFOMAP_REQUIRE_MSG(beta >= 0 && beta <= 1, "watts_strogatz: beta in [0,1]");

  util::Xoshiro256 rng(seed);
  GeneratedGraph g;
  g.num_vertices = n;

  // Ring lattice: each vertex linked to its k/2 clockwise neighbors; rewire
  // each lattice edge's far endpoint with probability beta.
  std::unordered_set<std::uint64_t> present;
  auto key = [](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId j = 1; j <= k / 2; ++j) {
      VertexId v = (u + j) % n;
      if (rng.uniform() < beta) {
        // Rewire to a uniform non-self, non-duplicate target.
        for (int attempts = 0; attempts < 32; ++attempts) {
          const auto cand = static_cast<VertexId>(rng.bounded(n));
          if (cand == u || present.count(key(u, cand))) continue;
          v = cand;
          break;
        }
      }
      if (v == u || present.count(key(u, v))) continue;
      present.insert(key(u, v));
      g.edges.push_back({u, v, 1.0});
    }
  }
  return g;
}

}  // namespace dinfomap::graph::gen
