#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/gen/generators.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dinfomap::graph::gen {

namespace {
/// Sample an integer from a truncated power law p(k) ∝ k^(−exponent)
/// on [lo, hi] by inverse transform on the continuous approximation.
VertexId power_law_sample(double exponent, VertexId lo, VertexId hi,
                          util::Xoshiro256& rng) {
  const double e = 1.0 - exponent;
  const double a = std::pow(static_cast<double>(lo), e);
  const double b = std::pow(static_cast<double>(hi) + 1.0, e);
  const double x = std::pow(a + (b - a) * rng.uniform(), 1.0 / e);
  const auto k = static_cast<VertexId>(x);
  return std::clamp(k, lo, hi);
}

/// Configuration-model wiring of `stubs` (vertex ids, one per half-edge):
/// shuffle, pair consecutive entries, drop self-pairs. Duplicate edges are
/// tolerated (the CSR builder combines them).
void wire_stubs(std::vector<VertexId>& stubs, util::Xoshiro256& rng,
                EdgeList& out) {
  util::deterministic_shuffle(stubs, rng);
  if (stubs.size() % 2 == 1) stubs.pop_back();
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] == stubs[i + 1]) continue;
    out.push_back({stubs[i], stubs[i + 1], 1.0});
  }
}
}  // namespace

GeneratedGraph lfr_lite(const LfrLiteParams& p, std::uint64_t seed) {
  DINFOMAP_REQUIRE_MSG(p.n >= 10, "lfr_lite: n too small");
  DINFOMAP_REQUIRE_MSG(p.min_degree >= 1 && p.max_degree >= p.min_degree,
                       "lfr_lite: bad degree bounds");
  DINFOMAP_REQUIRE_MSG(p.min_community >= 2 && p.max_community >= p.min_community,
                       "lfr_lite: bad community bounds");
  DINFOMAP_REQUIRE_MSG(p.mixing >= 0 && p.mixing <= 1, "lfr_lite: μ in [0,1]");

  util::Xoshiro256 rng(seed);
  GeneratedGraph g;
  g.num_vertices = p.n;

  // 1. Power-law degree sequence.
  std::vector<VertexId> degree(p.n);
  for (auto& d : degree)
    d = power_law_sample(p.degree_exponent, p.min_degree,
                         std::min<VertexId>(p.max_degree, p.n - 1), rng);

  // 2. Power-law community sizes covering all n vertices.
  std::vector<VertexId> comm_size;
  VertexId assigned = 0;
  while (assigned < p.n) {
    VertexId s = power_law_sample(p.community_exponent, p.min_community,
                                  p.max_community, rng);
    s = std::min<VertexId>(s, p.n - assigned);
    if (p.n - assigned - s != 0 && p.n - assigned - s < p.min_community)
      s = p.n - assigned;  // absorb a too-small tail into the last community
    comm_size.push_back(s);
    assigned += s;
  }

  // 3. Assign vertices to communities contiguously, then shuffle labels so
  //    community membership is independent of vertex id.
  Partition truth(p.n);
  std::vector<VertexId> order(p.n);
  std::iota(order.begin(), order.end(), 0);
  util::deterministic_shuffle(order, rng);
  {
    std::size_t pos = 0;
    for (VertexId c = 0; c < comm_size.size(); ++c)
      for (VertexId i = 0; i < comm_size[c]; ++i) truth[order[pos++]] = c;
  }

  // 4. Split each vertex's stubs: (1−μ) intra, μ inter.
  std::vector<std::vector<VertexId>> intra(comm_size.size());
  std::vector<VertexId> inter;
  for (VertexId u = 0; u < p.n; ++u) {
    const auto d = degree[u];
    auto d_in = static_cast<VertexId>(std::lround((1.0 - p.mixing) * d));
    // A community of size s supports at most s-1 intra neighbors.
    d_in = std::min<VertexId>(d_in, comm_size[truth[u]] - 1);
    for (VertexId k = 0; k < d_in; ++k) intra[truth[u]].push_back(u);
    for (VertexId k = d_in; k < d; ++k) inter.push_back(u);
  }

  // 5. Wire intra stubs per community and inter stubs globally.
  for (auto& stubs : intra) wire_stubs(stubs, rng, g.edges);
  wire_stubs(inter, rng, g.edges);

  g.ground_truth = std::move(truth);
  return g;
}

}  // namespace dinfomap::graph::gen
