#include "graph/gen/generators.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dinfomap::graph::gen {

GeneratedGraph configuration_model(const std::vector<VertexId>& degrees,
                                   std::uint64_t seed) {
  DINFOMAP_REQUIRE_MSG(!degrees.empty(), "configuration_model: empty sequence");
  std::uint64_t total = 0;
  for (VertexId d : degrees) total += d;
  DINFOMAP_REQUIRE_MSG(total % 2 == 0,
                       "configuration_model: degree sum must be even");

  util::Xoshiro256 rng(seed);
  GeneratedGraph g;
  g.num_vertices = static_cast<VertexId>(degrees.size());

  std::vector<VertexId> stubs;
  stubs.reserve(total);
  for (VertexId v = 0; v < degrees.size(); ++v)
    for (VertexId k = 0; k < degrees[v]; ++k) stubs.push_back(v);
  util::deterministic_shuffle(stubs, rng);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] == stubs[i + 1]) continue;  // drop self-pairs
    g.edges.push_back({stubs[i], stubs[i + 1], 1.0});
  }
  return g;
}

}  // namespace dinfomap::graph::gen
