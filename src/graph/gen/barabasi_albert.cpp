#include <vector>

#include "graph/gen/generators.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dinfomap::graph::gen {

GeneratedGraph barabasi_albert(VertexId n, VertexId attach, std::uint64_t seed) {
  DINFOMAP_REQUIRE_MSG(attach >= 1, "barabasi_albert: attach >= 1");
  DINFOMAP_REQUIRE_MSG(n > attach, "barabasi_albert: n must exceed attach count");

  util::Xoshiro256 rng(seed);
  GeneratedGraph g;
  g.num_vertices = n;
  g.edges.reserve(static_cast<std::size_t>(n) * attach);

  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // is sampling ∝ degree (the standard repeated-nodes implementation).
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) * attach);

  // Seed clique over the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      g.edges.push_back({u, v, 1.0});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<VertexId> chosen;
  for (VertexId u = attach + 1; u < n; ++u) {
    chosen.clear();
    while (chosen.size() < attach) {
      const VertexId cand = endpoints[rng.bounded(endpoints.size())];
      bool dup = false;
      for (VertexId c : chosen) dup = dup || (c == cand);
      if (!dup) chosen.push_back(cand);
    }
    for (VertexId v : chosen) {
      g.edges.push_back({u, v, 1.0});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return g;
}

}  // namespace dinfomap::graph::gen
