// Synthetic graph generators.
//
// These stand in for the paper's real-world datasets (Table 1), which are
// multi-gigabyte crawls unavailable here. Each generator targets a property
// the distributed algorithm is sensitive to: power-law hubs (BA, R-MAT),
// planted community structure with ground truth (SBM, LFR-lite,
// ring-of-cliques), or neither (Erdős–Rényi control).
#pragma once

#include <cstdint>
#include <optional>

#include "graph/types.hpp"

namespace dinfomap::graph::gen {

/// Generator output: edges, vertex count, and the planted partition when the
/// model defines one.
struct GeneratedGraph {
  EdgeList edges;
  VertexId num_vertices = 0;
  std::optional<Partition> ground_truth;
};

/// G(n, m): m uniform random distinct non-self edges.
GeneratedGraph erdos_renyi(VertexId n, EdgeIndex m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches
/// `attach` edges to existing vertices with probability ∝ degree. Produces
/// the heavy hub tail that motivates delegate partitioning.
GeneratedGraph barabasi_albert(VertexId n, VertexId attach, std::uint64_t seed);

/// R-MAT (Graph500-style) recursive matrix sampling: 2^scale vertices,
/// edge_factor·2^scale edges, corner probabilities (a,b,c,d).
GeneratedGraph rmat(int scale, int edge_factor, double a, double b, double c,
                    std::uint64_t seed);

/// Stochastic block model with equal-size blocks: intra-block edge
/// probability p_in, inter-block p_out. Ground truth = block id.
GeneratedGraph sbm(VertexId n, VertexId num_blocks, double p_in, double p_out,
                   std::uint64_t seed);

struct LfrLiteParams {
  VertexId n = 1000;
  double degree_exponent = 2.5;   ///< power-law exponent of degrees
  VertexId min_degree = 4;
  VertexId max_degree = 100;      ///< hub cap (hubs emerge below this)
  double community_exponent = 2.0;
  VertexId min_community = 20;
  VertexId max_community = 200;
  double mixing = 0.2;            ///< μ: fraction of each vertex's edges leaving its community
};

/// Simplified LFR benchmark: power-law degrees and community sizes, a
/// (1−μ) fraction of stubs wired inside the community by configuration
/// model, the μ fraction wired globally. Ground truth = community id.
GeneratedGraph lfr_lite(const LfrLiteParams& params, std::uint64_t seed);

/// `num_cliques` cliques of `clique_size` vertices, adjacent cliques joined
/// by a single bridge edge (ring). The classic crisp-community testbed.
GeneratedGraph ring_of_cliques(VertexId num_cliques, VertexId clique_size,
                               std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice of even degree `k`, each lattice
/// edge rewired with probability `beta`. High clustering without strong
/// community structure — a useful negative control.
GeneratedGraph watts_strogatz(VertexId n, VertexId k, double beta,
                              std::uint64_t seed);

/// Configuration model: random wiring with a prescribed degree sequence
/// (self-pairs dropped, parallel stubs tolerated — the builder combines
/// them). The null model behind modularity; useful to test that detectors
/// find nothing where only a degree sequence exists.
GeneratedGraph configuration_model(const std::vector<VertexId>& degrees,
                                   std::uint64_t seed);

}  // namespace dinfomap::graph::gen
