#include "graph/gen/generators.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dinfomap::graph::gen {

GeneratedGraph rmat(int scale, int edge_factor, double a, double b, double c,
                    std::uint64_t seed) {
  DINFOMAP_REQUIRE_MSG(scale >= 1 && scale <= 30, "rmat: scale in [1,30]");
  DINFOMAP_REQUIRE_MSG(edge_factor >= 1, "rmat: edge_factor >= 1");
  const double d = 1.0 - a - b - c;
  DINFOMAP_REQUIRE_MSG(a > 0 && b > 0 && c > 0 && d > 0,
                       "rmat: corner probabilities must be positive and sum < 1");

  util::Xoshiro256 rng(seed);
  const VertexId n = VertexId{1} << scale;
  const auto m = static_cast<EdgeIndex>(edge_factor) * n;

  GeneratedGraph g;
  g.num_vertices = n;
  g.edges.reserve(m);
  for (EdgeIndex i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double r = rng.uniform();
      if (r < a) {
        // top-left: neither bit set
      } else if (r < a + b) {
        v |= VertexId{1} << bit;
      } else if (r < a + b + c) {
        u |= VertexId{1} << bit;
      } else {
        u |= VertexId{1} << bit;
        v |= VertexId{1} << bit;
      }
    }
    if (u == v) continue;  // drop self-loops; builder would stash them anyway
    g.edges.push_back({u, v, 1.0});
  }
  return g;
}

}  // namespace dinfomap::graph::gen
