#include <cmath>

#include "graph/gen/generators.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace dinfomap::graph::gen {

namespace {
/// Sample edges of a G(n, p)-style block efficiently by skipping geometric
/// gaps between successes (works for small p without n^2 coin flips).
template <typename Emit>
void sample_pairs(std::uint64_t num_pairs, double p, util::Xoshiro256& rng,
                  Emit&& emit) {
  if (p <= 0 || num_pairs == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < num_pairs; ++i) emit(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  double i = -1;
  for (;;) {
    const double r = rng.uniform();
    i += 1 + std::floor(std::log1p(-r) / log1mp);
    if (i >= static_cast<double>(num_pairs)) return;
    emit(static_cast<std::uint64_t>(i));
  }
}
}  // namespace

GeneratedGraph sbm(VertexId n, VertexId num_blocks, double p_in, double p_out,
                   std::uint64_t seed) {
  DINFOMAP_REQUIRE_MSG(num_blocks >= 1 && n >= num_blocks, "sbm: bad block count");
  DINFOMAP_REQUIRE_MSG(p_in >= 0 && p_in <= 1 && p_out >= 0 && p_out <= 1,
                       "sbm: probabilities in [0,1]");

  util::Xoshiro256 rng(seed);
  GeneratedGraph g;
  g.num_vertices = n;
  Partition truth(n);
  // Block b covers [start_b, start_{b+1}); sizes differ by at most one.
  std::vector<VertexId> start(num_blocks + 1);
  for (VertexId b = 0; b <= num_blocks; ++b)
    start[b] = static_cast<VertexId>((static_cast<std::uint64_t>(n) * b) / num_blocks);
  for (VertexId b = 0; b < num_blocks; ++b)
    for (VertexId u = start[b]; u < start[b + 1]; ++u) truth[u] = b;

  // Intra-block edges.
  for (VertexId b = 0; b < num_blocks; ++b) {
    const std::uint64_t size = start[b + 1] - start[b];
    const std::uint64_t pairs = size * (size - 1) / 2;
    sample_pairs(pairs, p_in, rng, [&](std::uint64_t k) {
      // Invert the triangular index: k = row*(row-1)/2 + col, col < row.
      const auto row = static_cast<std::uint64_t>(
          (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(k))) / 2.0);
      std::uint64_t r = row;
      while (r * (r - 1) / 2 > k) --r;
      while ((r + 1) * r / 2 <= k) ++r;
      const std::uint64_t col = k - r * (r - 1) / 2;
      g.edges.push_back({start[b] + static_cast<VertexId>(col),
                         start[b] + static_cast<VertexId>(r), 1.0});
    });
  }
  // Inter-block edges.
  for (VertexId b1 = 0; b1 < num_blocks; ++b1) {
    for (VertexId b2 = b1 + 1; b2 < num_blocks; ++b2) {
      const std::uint64_t rows = start[b1 + 1] - start[b1];
      const std::uint64_t cols = start[b2 + 1] - start[b2];
      sample_pairs(rows * cols, p_out, rng, [&](std::uint64_t k) {
        g.edges.push_back({start[b1] + static_cast<VertexId>(k / cols),
                           start[b2] + static_cast<VertexId>(k % cols), 1.0});
      });
    }
  }
  g.ground_truth = std::move(truth);
  return g;
}

}  // namespace dinfomap::graph::gen
