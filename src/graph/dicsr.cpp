#include "graph/dicsr.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dinfomap::graph {

DiCsr DiCsr::from_edges(const EdgeList& edges, VertexId num_vertices) {
  VertexId n = num_vertices;
  for (const Edge& e : edges) n = std::max({n, e.u + 1, e.v + 1});
  DINFOMAP_REQUIRE_MSG(n > 0, "empty directed graph");
  for (const Edge& e : edges)
    DINFOMAP_REQUIRE_MSG(e.w > 0, "edge weights must be positive");

  // Combine parallel arcs.
  std::vector<Edge> sorted = edges;
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::size_t out = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (out > 0 && sorted[out - 1].u == sorted[i].u &&
        sorted[out - 1].v == sorted[i].v) {
      sorted[out - 1].w += sorted[i].w;
    } else {
      sorted[out++] = sorted[i];
    }
  }
  sorted.resize(out);

  DiCsr g;
  g.out_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.in_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : sorted) {
    ++g.out_offsets_[e.u + 1];
    ++g.in_offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.out_adj_.resize(sorted.size());
  g.in_adj_.resize(sorted.size());
  std::vector<EdgeIndex> oc(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  std::vector<EdgeIndex> ic(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const Edge& e : sorted) {
    g.out_adj_[oc[e.u]++] = {e.v, e.w};
    g.in_adj_[ic[e.v]++] = {e.u, e.w};
  }
  g.out_weight_.assign(n, 0.0);
  for (VertexId u = 0; u < n; ++u)
    for (const auto& nb : g.out_neighbors(u)) g.out_weight_[u] += nb.weight;
  return g;
}

bool DiCsr::validate() const {
  const VertexId n = num_vertices();
  std::vector<std::pair<std::pair<VertexId, VertexId>, Weight>> fwd, rev;
  for (VertexId u = 0; u < n; ++u) {
    for (const auto& nb : out_neighbors(u)) {
      if (nb.target >= n || !(nb.weight > 0)) return false;
      fwd.push_back({{u, nb.target}, nb.weight});
    }
    for (const auto& nb : in_neighbors(u)) {
      if (nb.target >= n || !(nb.weight > 0)) return false;
      rev.push_back({{nb.target, u}, nb.weight});
    }
  }
  std::sort(fwd.begin(), fwd.end());
  std::sort(rev.begin(), rev.end());
  return fwd == rev;
}

}  // namespace dinfomap::graph
