// Structural transforms: connected components, induced subgraphs, and
// partition label utilities.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::graph {

/// Component id per vertex (dense ids in discovery order of the smallest
/// vertex in each component).
std::vector<VertexId> connected_components(const Csr& graph);

struct Subgraph {
  Csr graph;
  /// new vertex id → original vertex id.
  std::vector<VertexId> old_ids;
};

/// Induced subgraph on `keep` (need not be sorted; duplicates rejected).
Subgraph induced_subgraph(const Csr& graph, std::span<const VertexId> keep);

/// The largest connected component (ties → the one with the smallest
/// leading vertex id).
Subgraph largest_component(const Csr& graph);

/// Compact arbitrary community labels to dense 0..k-1 (ascending label
/// order). Returns the number of distinct labels via `num_labels` if given.
Partition relabel_dense(const Partition& labels, VertexId* num_labels = nullptr);

/// Community sizes indexed by dense label (input labels need not be dense).
std::vector<VertexId> community_sizes(const Partition& labels);

}  // namespace dinfomap::graph
