#include "graph/stats.hpp"

#include <algorithm>

namespace dinfomap::graph {

DegreeStats degree_stats(const Csr& graph, EdgeIndex hub_threshold) {
  DegreeStats s;
  s.threshold = hub_threshold;
  const VertexId n = graph.num_vertices();
  if (n == 0) return s;
  EdgeIndex total = 0;
  EdgeIndex hub_arcs = 0;
  for (VertexId u = 0; u < n; ++u) {
    const EdgeIndex d = graph.degree(u);
    total += d;
    s.max_degree = std::max(s.max_degree, d);
    if (d > hub_threshold) {
      ++s.hubs_above;
      hub_arcs += d;
    }
  }
  s.mean_degree = static_cast<double>(total) / static_cast<double>(n);
  s.hub_arc_fraction = total > 0 ? static_cast<double>(hub_arcs) / static_cast<double>(total) : 0.0;
  return s;
}

std::vector<VertexId> degree_histogram(const Csr& graph, EdgeIndex max_bucket) {
  std::vector<VertexId> hist(max_bucket + 1, 0);
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    const EdgeIndex d = std::min<EdgeIndex>(graph.degree(u), max_bucket);
    ++hist[d];
  }
  return hist;
}

}  // namespace dinfomap::graph
