// Directed CSR: out- and in-adjacency for directed weighted graphs.
// Substrate of the directed-Infomap extension (§2.2 of the paper notes the
// method applies to directed graphs; flows then come from PageRank).
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace dinfomap::graph {

struct DiNeighbor {
  VertexId target = 0;
  Weight weight = 1.0;
};

class DiCsr {
 public:
  DiCsr() = default;

  /// Build from directed edges (u→v). Parallel edges combine; self-loops are
  /// kept as ordinary arcs (they simply never contribute to exits).
  static DiCsr from_edges(const EdgeList& edges, VertexId num_vertices = 0);

  [[nodiscard]] VertexId num_vertices() const {
    return out_offsets_.empty() ? 0
                                : static_cast<VertexId>(out_offsets_.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_arcs() const { return out_adj_.size(); }

  [[nodiscard]] std::span<const DiNeighbor> out_neighbors(VertexId u) const {
    return {out_adj_.data() + out_offsets_[u],
            static_cast<std::size_t>(out_offsets_[u + 1] - out_offsets_[u])};
  }
  [[nodiscard]] std::span<const DiNeighbor> in_neighbors(VertexId u) const {
    return {in_adj_.data() + in_offsets_[u],
            static_cast<std::size_t>(in_offsets_[u + 1] - in_offsets_[u])};
  }

  [[nodiscard]] EdgeIndex out_degree(VertexId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  [[nodiscard]] EdgeIndex in_degree(VertexId u) const {
    return in_offsets_[u + 1] - in_offsets_[u];
  }
  [[nodiscard]] Weight out_weight(VertexId u) const { return out_weight_[u]; }

  /// in_adj mirrors out_adj exactly (same arcs, reversed).
  [[nodiscard]] bool validate() const;

 private:
  std::vector<EdgeIndex> out_offsets_, in_offsets_;
  std::vector<DiNeighbor> out_adj_, in_adj_;
  std::vector<Weight> out_weight_;
};

}  // namespace dinfomap::graph
