// Fundamental graph value types shared across the library.
#pragma once

#include <cstdint>
#include <vector>

namespace dinfomap::graph {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint64_t;
using Weight = double;

inline constexpr VertexId kInvalidVertex = ~VertexId{0};

/// One undirected edge (endpoints unordered; builders canonicalize).
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

/// A vertex→community assignment (dense, indexed by vertex id).
using Partition = std::vector<VertexId>;

}  // namespace dinfomap::graph
