#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/check.hpp"

namespace dinfomap::graph {

std::vector<VertexId> core_numbers(const Csr& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> degree(n), core(n);
  VertexId max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<VertexId>(graph.degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort by degree (Batagelj–Zaversnik).
  std::vector<VertexId> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v]];
  VertexId start = 0;
  for (VertexId d = 0; d <= max_degree; ++d) {
    const VertexId count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(n), pos(n);
  for (VertexId v = 0; v < n; ++v) {
    pos[v] = bin[degree[v]];
    order[pos[v]] = v;
    ++bin[degree[v]];
  }
  for (VertexId d = max_degree + 1; d-- > 1;) bin[d] = bin[d - 1];
  bin[0] = 0;

  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = order[i];
    core[v] = degree[v];
    for (const auto& nb : graph.neighbors(v)) {
      const VertexId u = nb.target;
      if (degree[u] <= degree[v]) continue;
      // Move u one bucket down: swap with the first vertex of its bucket.
      const VertexId du = degree[u];
      const VertexId pu = pos[u];
      const VertexId pw = bin[du];
      const VertexId w = order[pw];
      if (u != w) {
        std::swap(order[pu], order[pw]);
        pos[u] = pw;
        pos[w] = pu;
      }
      ++bin[du];
      --degree[u];
    }
  }
  return core;
}

std::vector<double> local_clustering(const Csr& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<double> cc(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbs = graph.neighbors(v);
    if (nbs.size() < 2) continue;
    // Neighbors are sorted; count pairs (a,b) with edge a–b via sorted merge.
    std::uint64_t triangles = 0;
    for (const auto& a : nbs) {
      const auto a_nbs = graph.neighbors(a.target);
      // Intersect nbs and a_nbs, counting only b > a.target to count each
      // triangle corner once.
      auto it1 = nbs.begin();
      auto it2 = a_nbs.begin();
      while (it1 != nbs.end() && it2 != a_nbs.end()) {
        if (it1->target < it2->target) ++it1;
        else if (it2->target < it1->target) ++it2;
        else {
          if (it1->target > a.target) ++triangles;
          ++it1;
          ++it2;
        }
      }
    }
    const double pairs =
        static_cast<double>(nbs.size()) * (static_cast<double>(nbs.size()) - 1) / 2;
    cc[v] = static_cast<double>(triangles) / pairs;
  }
  return cc;
}

double global_clustering(const Csr& graph) {
  // 3·triangles / triples; count each triangle once via ordered corners.
  std::uint64_t triangles = 0, triples = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto nbs = graph.neighbors(v);
    if (nbs.size() >= 2)
      triples += nbs.size() * (nbs.size() - 1) / 2;
    for (const auto& a : nbs) {
      if (a.target <= v) continue;
      const auto a_nbs = graph.neighbors(a.target);
      auto it1 = nbs.begin();
      auto it2 = a_nbs.begin();
      while (it1 != nbs.end() && it2 != a_nbs.end()) {
        if (it1->target < it2->target) ++it1;
        else if (it2->target < it1->target) ++it2;
        else {
          if (it1->target > a.target) ++triangles;
          ++it1;
          ++it2;
        }
      }
    }
  }
  return triples == 0 ? 0.0
                      : 3.0 * static_cast<double>(triangles) /
                            static_cast<double>(triples);
}

std::vector<VertexId> bfs_distances(const Csr& graph, VertexId source) {
  DINFOMAP_REQUIRE_MSG(source < graph.num_vertices(), "bfs: source out of range");
  std::vector<VertexId> dist(graph.num_vertices(), kInvalidVertex);
  std::deque<VertexId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    for (const auto& nb : graph.neighbors(u)) {
      if (dist[nb.target] != kInvalidVertex) continue;
      dist[nb.target] = dist[u] + 1;
      frontier.push_back(nb.target);
    }
  }
  return dist;
}

VertexId pseudo_diameter(const Csr& graph, VertexId seed) {
  auto farthest = [&](VertexId from, VertexId& distance) {
    const auto dist = bfs_distances(graph, from);
    VertexId best = from;
    distance = 0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (dist[v] == kInvalidVertex) continue;
      if (dist[v] > distance) {
        distance = dist[v];
        best = v;
      }
    }
    return best;
  };
  VertexId d1 = 0, d2 = 0;
  const VertexId far1 = farthest(seed, d1);
  (void)farthest(far1, d2);
  return std::max(d1, d2);
}

}  // namespace dinfomap::graph
