#include "graph/transform.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace dinfomap::graph {

std::vector<VertexId> connected_components(const Csr& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> component(n, kInvalidVertex);
  VertexId next_id = 0;
  std::deque<VertexId> frontier;
  for (VertexId start = 0; start < n; ++start) {
    if (component[start] != kInvalidVertex) continue;
    component[start] = next_id;
    frontier.push_back(start);
    while (!frontier.empty()) {
      const VertexId u = frontier.front();
      frontier.pop_front();
      for (const auto& nb : graph.neighbors(u)) {
        if (component[nb.target] != kInvalidVertex) continue;
        component[nb.target] = next_id;
        frontier.push_back(nb.target);
      }
    }
    ++next_id;
  }
  return component;
}

Subgraph induced_subgraph(const Csr& graph, std::span<const VertexId> keep) {
  std::unordered_map<VertexId, VertexId> new_id;
  new_id.reserve(keep.size());
  for (VertexId v : keep) {
    DINFOMAP_REQUIRE_MSG(v < graph.num_vertices(), "induced_subgraph: id range");
    const bool inserted =
        new_id.emplace(v, static_cast<VertexId>(new_id.size())).second;
    DINFOMAP_REQUIRE_MSG(inserted, "induced_subgraph: duplicate vertex in keep");
  }

  EdgeList edges;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const VertexId u = keep[i];
    // Self-loops travel as explicit edges; build_csr re-separates them.
    if (graph.self_weight(u) > 0)
      edges.push_back({static_cast<VertexId>(i), static_cast<VertexId>(i),
                       graph.self_weight(u)});
    for (const auto& nb : graph.neighbors(u)) {
      if (u > nb.target) continue;  // each undirected edge emitted once
      auto it = new_id.find(nb.target);
      if (it == new_id.end()) continue;
      edges.push_back({static_cast<VertexId>(i), it->second, nb.weight});
    }
  }
  Subgraph out;
  out.old_ids.assign(keep.begin(), keep.end());
  out.graph = build_csr(edges, static_cast<VertexId>(keep.size()));
  return out;
}

Subgraph largest_component(const Csr& graph) {
  const auto component = connected_components(graph);
  std::unordered_map<VertexId, VertexId> sizes;
  for (VertexId c : component) ++sizes[c];
  VertexId best = 0;
  VertexId best_size = 0;
  for (const auto& [c, s] : sizes) {
    if (s > best_size || (s == best_size && c < best)) {
      best = c;
      best_size = s;
    }
  }
  std::vector<VertexId> keep;
  keep.reserve(best_size);
  for (VertexId v = 0; v < graph.num_vertices(); ++v)
    if (component[v] == best) keep.push_back(v);
  return induced_subgraph(graph, keep);
}

Partition relabel_dense(const Partition& labels, VertexId* num_labels) {
  std::vector<VertexId> sorted(labels);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::unordered_map<VertexId, VertexId> remap;
  remap.reserve(sorted.size());
  for (VertexId i = 0; i < sorted.size(); ++i) remap.emplace(sorted[i], i);
  Partition out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) out[i] = remap.at(labels[i]);
  if (num_labels) *num_labels = static_cast<VertexId>(sorted.size());
  return out;
}

std::vector<VertexId> community_sizes(const Partition& labels) {
  VertexId k = 0;
  const Partition dense = relabel_dense(labels, &k);
  std::vector<VertexId> sizes(k, 0);
  for (VertexId c : dense) ++sizes[c];
  return sizes;
}

}  // namespace dinfomap::graph
