// GraphView: one non-owning handle over either graph backend — the resident
// Csr or the out-of-core BlockGraph — with the Csr's accessor vocabulary.
//
// Deliberately NOT a virtual interface: the backend is a single pointer
// test, accessors are inline, and neighbor spans come straight from the
// backend, so the resident path compiles down to exactly the direct-Csr
// code it replaces. Consumers that scan adjacency carry a GraphView::Cursor
// (a leased BlockCursor in blocks mode, empty in resident mode); one cursor
// per thread, created outside the scan loop.
//
// Both backends expose bit-identical values for every accessor — the block
// file stores the Csr's weighted degrees, self weights, and totals verbatim
// and decodes adjacency bit-exactly in stored order — which is what makes
// partitions and MDL independent of the backend choice (DESIGN.md §15).
#pragma once

#include <span>

#include "graph/blockgraph/blockgraph.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::graph {

class GraphView {
 public:
  /*implicit*/ GraphView(const Csr& csr) : csr_(&csr) {}  // NOLINT(google-explicit-constructor)
  /*implicit*/ GraphView(const blockgraph::BlockGraph& bg)  // NOLINT(google-explicit-constructor)
      : blocks_(&bg) {}

  /// True when adjacency streams through the decode cache.
  [[nodiscard]] bool out_of_core() const { return blocks_ != nullptr; }
  [[nodiscard]] const Csr* resident() const { return csr_; }
  [[nodiscard]] const blockgraph::BlockGraph* blocks() const { return blocks_; }

  [[nodiscard]] VertexId num_vertices() const {
    return csr_ != nullptr ? csr_->num_vertices() : blocks_->num_vertices();
  }
  [[nodiscard]] EdgeIndex num_arcs() const {
    return csr_ != nullptr ? csr_->num_arcs() : blocks_->num_arcs();
  }
  [[nodiscard]] EdgeIndex num_edges() const {
    return csr_ != nullptr ? csr_->num_edges() : blocks_->num_edges();
  }
  [[nodiscard]] EdgeIndex degree(VertexId u) const {
    return csr_ != nullptr ? csr_->degree(u) : blocks_->degree(u);
  }
  [[nodiscard]] Weight weighted_degree(VertexId u) const {
    return csr_ != nullptr ? csr_->weighted_degree(u)
                           : blocks_->weighted_degree(u);
  }
  [[nodiscard]] Weight self_weight(VertexId u) const {
    return csr_ != nullptr ? csr_->self_weight(u) : blocks_->self_weight(u);
  }
  [[nodiscard]] Weight total_weight() const {
    return csr_ != nullptr ? csr_->total_weight() : blocks_->total_weight();
  }
  [[nodiscard]] Weight total_link_weight() const {
    return csr_ != nullptr ? csr_->total_link_weight()
                           : blocks_->total_link_weight();
  }

  /// Per-thread iteration state; empty (and free) for the resident backend.
  class Cursor {
   public:
    Cursor() = default;

   private:
    friend class GraphView;
    blockgraph::BlockCursor cur_;
  };

  [[nodiscard]] Cursor cursor() const {
    Cursor c;
    if (blocks_ != nullptr) c.cur_ = blocks_->cursor();
    return c;
  }

  /// Neighbors of `u` in stored order. Resident spans stay valid for the
  /// graph's lifetime; blocks spans until the cursor's next call.
  [[nodiscard]] std::span<const Neighbor> neighbors(VertexId u,
                                                    Cursor& c) const {
    return csr_ != nullptr ? csr_->neighbors(u)
                           : blocks_->neighbors(u, c.cur_);
  }

 private:
  const Csr* csr_ = nullptr;
  const blockgraph::BlockGraph* blocks_ = nullptr;
};

}  // namespace dinfomap::graph
