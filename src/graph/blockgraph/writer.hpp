// Serializer for `dinfomap.blockgraph/1`: converts a resident Csr into the
// mmap-able block file (format.hpp). The conversion is the one step that
// needs the graph resident; everything downstream streams blocks through the
// decode cache. `tools/graphpack` is the CLI front-end.
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace dinfomap::graph::blockgraph {

struct WriteOptions {
  /// Target encoded payload size per block. Blocks close at the first vertex
  /// boundary where the (deterministic) size estimate reaches this, so a
  /// single hub vertex can exceed it — a block never splits a vertex's run.
  std::size_t block_payload_bytes = 64 * 1024;
};

struct WriteSummary {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_arcs = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t payload_bytes = 0;  ///< encoded adjacency bytes (unpadded)
  std::uint64_t file_bytes = 0;
};

/// Write `csr` to `path` in blockgraph format. Totals and weighted degrees
/// are copied bit-exactly from the Csr, which is what makes resident and
/// blocks backends produce identical partitions and MDL. Throws
/// std::runtime_error on I/O failure.
WriteSummary write_block_file(const std::string& path, const Csr& csr,
                              const WriteOptions& opts = {});

}  // namespace dinfomap::graph::blockgraph
