#include "graph/blockgraph/writer.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "graph/blockgraph/codec.hpp"
#include "graph/blockgraph/format.hpp"
#include "util/check.hpp"

namespace dinfomap::graph::blockgraph {

namespace {
std::size_t varint_len(std::uint64_t x) {
  std::size_t len = 1;
  while (x >= 0x80) {
    x >>= 7;
    ++len;
  }
  return len;
}

/// Deterministic per-vertex payload size estimate used ONLY to place block
/// boundaries: exact target-delta bytes plus weight runs split at vertex
/// boundaries (a slight overestimate — final runs may merge across
/// vertices). Both the planner and any re-run compute the same value, so
/// block boundaries are a pure function of the graph and the budget.
std::size_t vertex_payload_estimate(const Csr& csr, VertexId u) {
  std::size_t bytes = 0;
  std::int64_t prev = static_cast<std::int64_t>(u);
  double run_w = 0;
  bool in_run = false;
  for (const Neighbor& nb : csr.neighbors(u)) {
    const std::int64_t t = static_cast<std::int64_t>(nb.target);
    bytes += varint_len(zigzag_encode(t - prev));
    prev = t;
    if (!in_run || std::memcmp(&run_w, &nb.weight, sizeof(double)) != 0) {
      bytes += 1 + 8;  // new run: varint length (≥1 byte) + raw weight
      run_w = nb.weight;
      in_run = true;
    }
  }
  return bytes;
}

void append_bytes(std::vector<std::uint8_t>& out, const void* p,
                  std::size_t len) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + len);
}
}  // namespace

WriteSummary write_block_file(const std::string& path, const Csr& csr,
                              const WriteOptions& opts) {
  DINFOMAP_REQUIRE_MSG(csr.num_vertices() > 0, "blockgraph: empty graph");
  const VertexId n = csr.num_vertices();
  const std::size_t budget = opts.block_payload_bytes > 0
                                 ? opts.block_payload_bytes
                                 : WriteOptions{}.block_payload_bytes;

  // Plan block boundaries: minimal vertex prefixes whose estimated payload
  // reaches the budget.
  std::vector<BlockIndexEntry> index;
  std::vector<std::uint32_t> block_of(n, 0);
  {
    VertexId first = 0;
    std::size_t est = 0;
    for (VertexId u = 0; u < n; ++u) {
      block_of[u] = static_cast<std::uint32_t>(index.size());
      est += vertex_payload_estimate(csr, u);
      if (est >= budget || u + 1 == n) {
        BlockIndexEntry e{};
        e.first_vertex = first;
        e.vertex_count = u - first + 1;
        index.push_back(e);
        first = u + 1;
        est = 0;
      }
    }
  }
  const std::uint64_t num_blocks = index.size();
  DINFOMAP_REQUIRE_MSG(num_blocks < kInvalidBlock,
                       "blockgraph: too many blocks");

  // Resident sections, contiguous in memory so the section CRC is one pass.
  std::vector<std::uint8_t> meta;
  const std::uint64_t off_arc_offsets = sizeof(FileHeader);
  append_bytes(meta, csr.offsets().data(),
               (static_cast<std::size_t>(n) + 1) * sizeof(EdgeIndex));
  const std::uint64_t off_block_of = off_arc_offsets + meta.size();
  append_bytes(meta, block_of.data(), block_of.size() * sizeof(std::uint32_t));
  while ((sizeof(FileHeader) + meta.size()) % 8 != 0) meta.push_back(0);
  const std::uint64_t off_wdeg = sizeof(FileHeader) + meta.size();
  {
    std::vector<double> wdeg(n), self(n);
    for (VertexId u = 0; u < n; ++u) {
      wdeg[u] = csr.weighted_degree(u);
      self[u] = csr.self_weight(u);
    }
    append_bytes(meta, wdeg.data(), wdeg.size() * sizeof(double));
    append_bytes(meta, self.data(), self.size() * sizeof(double));
  }
  const std::uint64_t off_self = off_wdeg + static_cast<std::uint64_t>(n) * 8;
  const std::uint64_t off_index = off_self + static_cast<std::uint64_t>(n) * 8;
  const std::uint64_t off_payload =
      off_index + num_blocks * sizeof(BlockIndexEntry);

  // Encode payloads, filling in the index entries as offsets become known.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("blockgraph: cannot write " + path);
  out.seekp(static_cast<std::streamoff>(off_payload));

  WriteSummary summary;
  summary.num_vertices = n;
  summary.num_arcs = csr.num_arcs();
  summary.num_blocks = num_blocks;

  std::vector<std::uint8_t> payload;
  std::uint64_t cursor = 0;  // relative to off_payload, kept 8-aligned
  const auto& offsets = csr.offsets();
  const auto& adjacency = csr.adjacency();
  for (BlockIndexEntry& e : index) {
    payload.clear();
    const std::span<const EdgeIndex> off_slice{
        offsets.data() + e.first_vertex,
        static_cast<std::size_t>(e.vertex_count) + 1};
    const std::span<const Neighbor> arc_slice{
        adjacency.data() + offsets[e.first_vertex],
        static_cast<std::size_t>(offsets[e.first_vertex + e.vertex_count] -
                                 offsets[e.first_vertex])};
    encode_block(e.first_vertex, off_slice, arc_slice, payload);
    e.payload_offset = cursor;
    e.payload_bytes = payload.size();
    e.payload_crc = crc32(payload.data(), payload.size());
    while (payload.size() % 8 != 0) payload.push_back(0);
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    cursor += payload.size();
    summary.payload_bytes += e.payload_bytes;
  }
  summary.file_bytes = off_payload + cursor;

  append_bytes(meta, index.data(), index.size() * sizeof(BlockIndexEntry));

  FileHeader hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof(hdr.magic));
  hdr.version = kFormatVersion;
  hdr.num_vertices = n;
  hdr.num_arcs = csr.num_arcs();
  hdr.num_blocks = num_blocks;
  hdr.block_budget_bytes = budget;
  hdr.total_weight = csr.total_weight();
  hdr.total_link_weight = csr.total_link_weight();
  hdr.off_arc_offsets = off_arc_offsets;
  hdr.off_block_of = off_block_of;
  hdr.off_wdeg = off_wdeg;
  hdr.off_self = off_self;
  hdr.off_index = off_index;
  hdr.off_payload = off_payload;
  hdr.file_bytes = summary.file_bytes;
  hdr.section_crc = crc32(meta.data(), meta.size());

  out.seekp(0);
  out.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out.write(reinterpret_cast<const char*>(meta.data()),
            static_cast<std::streamsize>(meta.size()));
  if (!out) throw std::runtime_error("blockgraph: write failed: " + path);
  out.close();
  if (!out) throw std::runtime_error("blockgraph: close failed: " + path);
  return summary;
}

}  // namespace dinfomap::graph::blockgraph
