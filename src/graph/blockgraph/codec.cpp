#include "graph/blockgraph/codec.hpp"

#include <array>
#include <cstring>

namespace dinfomap::graph::blockgraph {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t x) {
  while (x >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(x) | 0x80);
    x >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(x));
}

const std::uint8_t* get_varint(const std::uint8_t* p, const std::uint8_t* end,
                               std::uint64_t& x) {
  x = 0;
  int shift = 0;
  while (true) {
    if (p == end) throw BlockFormatError("varint truncated");
    const std::uint8_t byte = *p++;
    if (shift == 63 && (byte & 0xFE) != 0)
      throw BlockFormatError("varint overflows 64 bits");
    x |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return p;
    shift += 7;
  }
}

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

namespace {
/// Bitwise weight identity — the run-splitting predicate. memcmp (not ==)
/// so that -0.0 vs 0.0 and NaN payload bits round-trip exactly.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void put_weight_bits(std::vector<std::uint8_t>& out, double w) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &w, sizeof(bits));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

double get_weight_bits(const std::uint8_t* p) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  double w = 0;
  std::memcpy(&w, &bits, sizeof(w));
  return w;
}
}  // namespace

void encode_block(VertexId first_vertex, std::span<const EdgeIndex> arc_off,
                  std::span<const Neighbor> arcs,
                  std::vector<std::uint8_t>& out) {
  const std::size_t count = arc_off.size() - 1;
  const EdgeIndex base = arc_off[0];

  // Target stream into a scratch so its byte length can prefix it (the
  // decoder needs the boundary between the two streams).
  std::vector<std::uint8_t> targets;
  targets.reserve(arcs.size() * 2);
  for (std::size_t i = 0; i < count; ++i) {
    std::int64_t prev =
        static_cast<std::int64_t>(first_vertex) + static_cast<std::int64_t>(i);
    for (EdgeIndex a = arc_off[i] - base; a < arc_off[i + 1] - base; ++a) {
      const std::int64_t t = static_cast<std::int64_t>(arcs[a].target);
      put_varint(targets, zigzag_encode(t - prev));
      prev = t;
    }
  }
  put_varint(out, targets.size());
  out.insert(out.end(), targets.begin(), targets.end());

  // Weight stream: maximal runs of bitwise-equal weights.
  std::size_t i = 0;
  while (i < arcs.size()) {
    std::size_t j = i + 1;
    while (j < arcs.size() && same_bits(arcs[j].weight, arcs[i].weight)) ++j;
    put_varint(out, j - i);
    put_weight_bits(out, arcs[i].weight);
    i = j;
  }
}

void decode_block(VertexId first_vertex, std::span<const EdgeIndex> arc_off,
                  std::span<const std::uint8_t> payload,
                  std::vector<Neighbor>& arcs) {
  const std::size_t count = arc_off.size() - 1;
  const EdgeIndex base = arc_off[0];
  const std::size_t num_arcs = static_cast<std::size_t>(arc_off[count] - base);
  arcs.resize(num_arcs);

  const std::uint8_t* p = payload.data();
  const std::uint8_t* end = payload.data() + payload.size();

  std::uint64_t target_bytes = 0;
  p = get_varint(p, end, target_bytes);
  if (target_bytes > static_cast<std::uint64_t>(end - p))
    throw BlockFormatError("target stream truncated");
  const std::uint8_t* tend = p + target_bytes;

  std::size_t a = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::int64_t prev =
        static_cast<std::int64_t>(first_vertex) + static_cast<std::int64_t>(i);
    for (EdgeIndex k = arc_off[i] - base; k < arc_off[i + 1] - base; ++k) {
      std::uint64_t zz = 0;
      p = get_varint(p, tend, zz);
      const std::int64_t t = prev + zigzag_decode(zz);
      if (t < 0 || t > static_cast<std::int64_t>(0xFFFFFFFFll))
        throw BlockFormatError("decoded target out of VertexId range");
      arcs[a].target = static_cast<VertexId>(t);
      prev = t;
      ++a;
    }
  }
  if (p != tend) throw BlockFormatError("target stream has trailing bytes");

  a = 0;
  while (a < num_arcs) {
    std::uint64_t run = 0;
    p = get_varint(p, end, run);
    if (run == 0 || run > num_arcs - a)
      throw BlockFormatError("weight run length out of range");
    if (end - p < 8) throw BlockFormatError("weight stream truncated");
    const double w = get_weight_bits(p);
    p += 8;
    for (std::uint64_t k = 0; k < run; ++k) arcs[a++].weight = w;
  }
  if (p != end) throw BlockFormatError("payload has trailing bytes");
}

}  // namespace dinfomap::graph::blockgraph
