// On-disk layout of `dinfomap.blockgraph/1` (DESIGN.md §15).
//
// The file is designed to be mapped read-only and consumed in place:
//
//   [FileHeader]                      144 bytes, magic = "dinfomap.blockgraph/1"
//   [arc_offsets]  u64 × (n+1)        global CSR offsets — O(1) degree and the
//                                     decoder's per-vertex run boundaries
//   [block_of]     u32 × n            vertex → block id
//   [wdeg]         f64 × n            weighted degrees, the exact bits the
//                                     resident Csr constructor produced
//   [self_weight]  f64 × n            accumulated self-loop weight
//   [block index]  BlockIndexEntry × num_blocks
//   [payloads]     checksummed codec blocks, each 8-byte aligned
//
// Every multi-byte field is little-endian and every section offset is a
// multiple of 8, so the mapped sections can be read through typed pointers
// on any LE host without copying. The resident sections are vertex-
// proportional (~28 bytes/vertex); only the payload region — the O(|E|)
// part — stays on disk and streams through the decode cache.
//
// `section_crc` covers everything between the header and the payload region
// (the resident sections plus the index), so header/index corruption is
// caught at open() time; each payload block carries its own CRC-32, checked
// on decode.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dinfomap::graph::blockgraph {

/// Identifies format and version in one string; files with a different
/// magic (including a future "/2") are rejected at open().
inline constexpr char kMagic[24] = "dinfomap.blockgraph/1";

inline constexpr std::uint64_t kFormatVersion = 1;

/// Sentinel for "no block" (vertex with the invalid id, cursor memo reset).
inline constexpr std::uint32_t kInvalidBlock = 0xFFFFFFFFu;

struct FileHeader {
  char magic[24];                   ///< kMagic, NUL-padded
  std::uint64_t version;            ///< kFormatVersion
  std::uint64_t num_vertices;
  std::uint64_t num_arcs;           ///< directed arcs (2 × non-self edges)
  std::uint64_t num_blocks;
  std::uint64_t block_budget_bytes; ///< writer's target payload size per block
  double total_weight;              ///< Csr::total_weight(), exact bits
  double total_link_weight;         ///< Csr::total_link_weight(), exact bits
  std::uint64_t off_arc_offsets;    ///< file offset of u64[n+1]
  std::uint64_t off_block_of;       ///< file offset of u32[n]
  std::uint64_t off_wdeg;           ///< file offset of f64[n]
  std::uint64_t off_self;           ///< file offset of f64[n]
  std::uint64_t off_index;          ///< file offset of BlockIndexEntry[num_blocks]
  std::uint64_t off_payload;        ///< file offset of the payload region
  std::uint64_t file_bytes;         ///< total file size, validated vs stat()
  std::uint64_t section_crc;        ///< CRC-32 of [end of header, off_payload)
};
static_assert(sizeof(FileHeader) == 24 + 15 * 8,
              "FileHeader must be packed and 8-byte multiple");

struct BlockIndexEntry {
  std::uint64_t payload_offset;  ///< relative to off_payload, 8-byte aligned
  std::uint64_t payload_bytes;   ///< encoded size (unpadded)
  std::uint32_t first_vertex;
  std::uint32_t vertex_count;
  std::uint32_t payload_crc;     ///< CRC-32 of the payload bytes
  std::uint32_t reserved;
};
static_assert(sizeof(BlockIndexEntry) == 32);

}  // namespace dinfomap::graph::blockgraph
