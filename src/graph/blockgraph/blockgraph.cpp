#include "graph/blockgraph/blockgraph.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "graph/blockgraph/codec.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace dinfomap::graph::blockgraph {

namespace detail {

/// One shard of the decode cache. Leased exclusively to a single cursor, so
/// every member is thread-private while leased; the lease hand-off through
/// DecodeCache's mutex is what publishes a slot's state (including its
/// counters) between successive holders and to stats().
struct CacheSlot {
  struct Entry {
    std::uint32_t block = kInvalidBlock;
    std::uint8_t referenced = 0;
    EdgeIndex first_arc = 0;
    std::size_t charged = 0;      ///< bytes attributed to the budget
    std::vector<Neighbor> arcs;   ///< decoded adjacency; capacity reused
  };

  std::vector<Entry> ring;  ///< clock order; entry buffers live on the heap
  std::unordered_map<std::uint32_t, std::uint32_t> where;  ///< block → ring idx
  std::vector<std::uint32_t> free_entries;
  std::size_t hand = 0;
  std::size_t bytes = 0;
  std::size_t budget = 0;
  bool verify = true;

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t decode_ns = 0;
  std::uint64_t decoded_bytes = 0;

  /// Clock / second-chance: clear referenced bits until an unreferenced
  /// occupied entry comes under the hand, then drop it. Callers guarantee
  /// at least one occupied entry exists (`!where.empty()`).
  void evict_one() {
    while (true) {
      Entry& e = ring[hand];
      hand = (hand + 1) % ring.size();
      if (e.block == kInvalidBlock) continue;
      if (e.referenced != 0) {
        e.referenced = 0;
        continue;
      }
      where.erase(e.block);
      bytes -= e.charged;
      e.block = kInvalidBlock;
      e.charged = 0;
      free_entries.push_back(
          static_cast<std::uint32_t>(&e - ring.data()));
      ++evictions;
      return;
    }
  }
};

/// Slot pool. A std::deque keeps slot addresses stable across growth, so a
/// leased CacheSlot* stays valid while new slots are created for additional
/// concurrent cursors.
class DecodeCache {
 public:
  DecodeCache(std::size_t per_slot_budget, bool verify)
      : per_slot_budget_(per_slot_budget), verify_(verify) {}

  CacheSlot* lease() {
    util::MutexLock lock(mu_);
    if (!free_.empty()) {
      CacheSlot* s = free_.back();
      free_.pop_back();
      return s;
    }
    slots_.emplace_back();
    CacheSlot& s = slots_.back();
    s.budget = per_slot_budget_;
    s.verify = verify_;
    return &s;
  }

  void release(CacheSlot* slot) {
    util::MutexLock lock(mu_);
    free_.push_back(slot);
  }

  [[nodiscard]] BlockGraphStats aggregate() const {
    util::MutexLock lock(mu_);
    BlockGraphStats out;
    for (const CacheSlot& s : slots_) {
      out.hits += s.hits;
      out.misses += s.misses;
      out.evictions += s.evictions;
      out.decode_ns += s.decode_ns;
      out.decoded_bytes += s.decoded_bytes;
      out.resident_blocks += s.where.size();
      out.resident_bytes += s.bytes;
    }
    return out;
  }

 private:
  mutable util::Mutex mu_;
  std::deque<CacheSlot> slots_ DI_GUARDED_BY(mu_);
  std::vector<CacheSlot*> free_ DI_GUARDED_BY(mu_);
  std::size_t per_slot_budget_;
  bool verify_;
};

}  // namespace detail

void BlockCursor::release() {
  if (owner_ != nullptr && slot_ != nullptr) {
    // Reach the cache through the owner; the graph outlives every cursor.
    owner_->cache_->release(slot_);
  }
  owner_ = nullptr;
  slot_ = nullptr;
  last_block_ = kInvalidBlock;
  last_data_ = nullptr;
}

BlockGraph::BlockGraph(BlockGraph&& other) noexcept { *this = std::move(other); }

BlockGraph& BlockGraph::operator=(BlockGraph&& other) noexcept {
  if (this == &other) return *this;
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
  path_ = std::move(other.path_);
  map_ = std::exchange(other.map_, nullptr);
  map_bytes_ = std::exchange(other.map_bytes_, 0);
  n_ = other.n_;
  num_arcs_ = other.num_arcs_;
  num_blocks_ = other.num_blocks_;
  total_weight_ = other.total_weight_;
  total_link_weight_ = other.total_link_weight_;
  arc_offsets_ = std::exchange(other.arc_offsets_, nullptr);
  block_of_ = std::exchange(other.block_of_, nullptr);
  wdeg_ = std::exchange(other.wdeg_, nullptr);
  self_ = std::exchange(other.self_, nullptr);
  index_ = std::exchange(other.index_, nullptr);
  payload_ = std::exchange(other.payload_, nullptr);
  cache_ = std::move(other.cache_);
  return *this;
}

BlockGraph::~BlockGraph() {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
  }
}

namespace {
[[noreturn]] void bad(const std::string& path, const std::string& what) {
  throw BlockFormatError(path + ": " + what);
}
}  // namespace

BlockGraph BlockGraph::open(const std::string& path) {
  return open(path, Options{});
}

BlockGraph BlockGraph::open(const std::string& path, const Options& opts) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0)
    throw std::runtime_error("blockgraph: cannot open " + path + ": " +
                             std::strerror(errno));
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("blockgraph: fstat failed: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(FileHeader)) {
    ::close(fd);
    bad(path, "file smaller than header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED)
    throw std::runtime_error("blockgraph: mmap failed: " + path);

  BlockGraph g;
  g.path_ = path;
  g.map_ = map;
  g.map_bytes_ = size;

  const auto* base = static_cast<const std::uint8_t*>(map);
  FileHeader hdr;
  std::memcpy(&hdr, base, sizeof(hdr));
  if (std::memcmp(hdr.magic, kMagic, sizeof(hdr.magic)) != 0)
    bad(path, "not a dinfomap.blockgraph file");
  if (hdr.version != kFormatVersion) bad(path, "unsupported format version");
  if (hdr.file_bytes != size) bad(path, "file size mismatch (truncated?)");
  if (hdr.num_vertices == 0 || hdr.num_vertices > 0xFFFFFFFFull)
    bad(path, "vertex count out of range");

  const std::uint64_t n = hdr.num_vertices;
  const std::uint64_t nb = hdr.num_blocks;
  auto section = [&](std::uint64_t off, std::uint64_t bytes,
                     const char* name) -> const std::uint8_t* {
    if (off % 8 != 0 || off < sizeof(FileHeader) || off + bytes > size)
      bad(path, std::string(name) + " section out of bounds");
    return base + off;
  };
  const auto* arc_offsets = reinterpret_cast<const EdgeIndex*>(
      section(hdr.off_arc_offsets, (n + 1) * 8, "arc_offsets"));
  // block_of is u32 so only 4-byte alignment is inherent; the writer still
  // places it on an 8-byte boundary.
  const auto* block_of = reinterpret_cast<const std::uint32_t*>(
      section(hdr.off_block_of, n * 4, "block_of"));
  const auto* wdeg = reinterpret_cast<const double*>(
      section(hdr.off_wdeg, n * 8, "wdeg"));
  const auto* self = reinterpret_cast<const double*>(
      section(hdr.off_self, n * 8, "self_weight"));
  const auto* index = reinterpret_cast<const BlockIndexEntry*>(
      section(hdr.off_index, nb * sizeof(BlockIndexEntry), "block index"));
  if (hdr.off_payload % 8 != 0 || hdr.off_payload > size)
    bad(path, "payload section out of bounds");

  // Integrity of everything resident: one CRC over the metadata region.
  const std::uint64_t meta_bytes = hdr.off_payload - sizeof(FileHeader);
  if (crc32(base + sizeof(FileHeader), meta_bytes) != hdr.section_crc)
    bad(path, "metadata checksum mismatch");

  // Geometry checks on the now-trusted metadata.
  if (arc_offsets[0] != 0 || arc_offsets[n] != hdr.num_arcs)
    bad(path, "arc offset array inconsistent with header");
  const std::uint64_t payload_region = size - hdr.off_payload;
  for (std::uint64_t b = 0; b < nb; ++b) {
    const BlockIndexEntry& e = index[b];
    if (e.payload_offset % 8 != 0 ||
        e.payload_offset + e.payload_bytes > payload_region)
      bad(path, "block payload out of bounds");
    if (e.first_vertex + static_cast<std::uint64_t>(e.vertex_count) > n ||
        e.vertex_count == 0)
      bad(path, "block vertex range out of bounds");
  }
  // Every vertex must map into the block that covers it: the neighbor-span
  // arithmetic (arc_offsets_[u] - first_arc of the block) indexes the
  // decoded buffer with no further bounds check.
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint32_t b = block_of[v];
    if (b >= nb || v < index[b].first_vertex ||
        v >= index[b].first_vertex + static_cast<std::uint64_t>(index[b].vertex_count))
      bad(path, "block_of entry inconsistent with block index");
  }

  g.n_ = static_cast<VertexId>(n);
  g.num_arcs_ = hdr.num_arcs;
  g.num_blocks_ = nb;
  g.total_weight_ = hdr.total_weight;
  g.total_link_weight_ = hdr.total_link_weight;
  g.arc_offsets_ = arc_offsets;
  g.block_of_ = block_of;
  g.wdeg_ = wdeg;
  g.self_ = self;
  g.index_ = index;
  g.payload_ = base + hdr.off_payload;

  const int nominal_slots = opts.cache_slots > 0 ? opts.cache_slots : 16;
  const std::size_t per_slot =
      std::max<std::size_t>(opts.cache_bytes / static_cast<std::size_t>(nominal_slots),
                            64 * 1024);
  g.cache_ = std::make_unique<detail::DecodeCache>(
      per_slot, opts.verify_block_checksums);
  return g;
}

BlockCursor BlockGraph::cursor() const {
  BlockCursor cur;
  cur.owner_ = this;
  cur.slot_ = cache_->lease();
  return cur;
}

void BlockGraph::fault_block(std::uint32_t block, BlockCursor& cur) const {
  detail::CacheSlot& slot = *cur.slot_;
  const BlockIndexEntry& ie = index_[block];
  const EdgeIndex first_arc = arc_offsets_[ie.first_vertex];

  auto it = slot.where.find(block);
  if (it != slot.where.end()) {
    ++slot.hits;
    detail::CacheSlot::Entry& e = slot.ring[it->second];
    e.referenced = 1;
    cur.last_block_ = block;
    cur.last_data_ = e.arcs.data();
    cur.last_first_arc_ = first_arc;
    return;
  }

  // Miss: the memo may point at a block the eviction loop is about to drop,
  // so detach it before any buffer can be recycled.
  cur.last_block_ = kInvalidBlock;
  cur.last_data_ = nullptr;
  ++slot.misses;

  const std::size_t need =
      static_cast<std::size_t>(
          arc_offsets_[ie.first_vertex + ie.vertex_count] - first_arc) *
      sizeof(Neighbor);
  // A block larger than the whole slot budget is still admitted (after
  // draining the slot) — progress beats the bound for pathological hubs.
  while (!slot.where.empty() && slot.bytes + need > slot.budget)
    slot.evict_one();

  std::uint32_t idx;
  if (!slot.free_entries.empty()) {
    idx = slot.free_entries.back();
    slot.free_entries.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slot.ring.size());
    slot.ring.emplace_back();
  }
  detail::CacheSlot::Entry& e = slot.ring[idx];

  // Right-size the recycled scratch before decode_block's resize touches it.
  // The budget is charged by capacity, and vector growth is geometric, so an
  // unbounded recycled buffer creeps toward 2× the largest block ever
  // decoded — silently halving how many blocks the budget actually holds
  // (observed as a working set that fits the budget yet thrashes forever).
  const std::size_t arc_count = need / sizeof(Neighbor);
  if (e.arcs.capacity() < arc_count ||
      e.arcs.capacity() > arc_count + arc_count / 8) {
    e.arcs = std::vector<Neighbor>();
    e.arcs.reserve(arc_count);
  }

  const std::uint8_t* bytes = payload_ + ie.payload_offset;
  try {
    if (slot.verify &&
        crc32(bytes, static_cast<std::size_t>(ie.payload_bytes)) !=
            ie.payload_crc)
      throw BlockFormatError(path_ + ": block " + std::to_string(block) +
                             " checksum mismatch");
    const util::Timer timer;
    decode_block(ie.first_vertex,
                 {arc_offsets_ + ie.first_vertex,
                  static_cast<std::size_t>(ie.vertex_count) + 1},
                 {bytes, static_cast<std::size_t>(ie.payload_bytes)}, e.arcs);
    slot.decode_ns += static_cast<std::uint64_t>(timer.seconds() * 1e9);
  } catch (...) {
    slot.free_entries.push_back(idx);  // keep the slot reusable after a bad block
    throw;
  }
  slot.decoded_bytes += ie.payload_bytes;

  e.block = block;
  e.referenced = 1;
  e.first_arc = first_arc;
  e.charged = e.arcs.capacity() * sizeof(Neighbor);
  slot.bytes += e.charged;
  slot.where.emplace(block, idx);

  cur.last_block_ = block;
  cur.last_data_ = e.arcs.data();
  cur.last_first_arc_ = first_arc;
}

BlockGraphStats BlockGraph::stats() const {
  BlockGraphStats out = cache_->aggregate();
  out.bytes_mapped = map_bytes_;
  return out;
}

}  // namespace dinfomap::graph::blockgraph
