// Out-of-core graph backend: an mmap-ed `dinfomap.blockgraph/1` file plus a
// bounded, sharded decode cache (DESIGN.md §15).
//
// The vertex-proportional sections (arc offsets, block ids, weighted
// degrees, self weights, totals) are read in place from the mapping, so
// degree/weighted_degree/self_weight cost the same as the resident Csr. The
// O(|E|) adjacency stays encoded on disk; neighbor scans decode whole blocks
// into a cache slot and hand out spans into the decoded buffer.
//
// Concurrency model: the cache is split into *slots*, and a slot is leased
// to exactly one BlockCursor at a time (the lease free-list is the only
// mutex in the design, touched at cursor construction/destruction — never
// per neighbor scan). Everything a decode touches — the slot's entry ring,
// its block→entry map, its scratch buffers, its counters — is slot-private,
// so ThreadPool workers each holding their own cursor decode without locks
// or atomics on the hot path. The mapping itself is immutable shared state.
//
// Determinism: decoding is bit-exact (codec.hpp) and neighbor spans present
// the adjacency in exactly the order the resident Csr stores it, so any
// consumer's floating-point accumulation is bit-identical across backends
// regardless of thread count, cache budget, or eviction history — the cache
// only decides *when* bytes are decoded, never *what* they decode to.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/blockgraph/format.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::graph::blockgraph {

class BlockGraph;
namespace detail {
class DecodeCache;
struct CacheSlot;
}  // namespace detail

/// Aggregated cache/IO statistics (surfaced as `blockgraph.*` metrics).
/// `hits`/`misses` count block lookups in a slot (a cursor's consecutive
/// scans inside one block short-circuit before the cache and are not
/// counted); `decode_ns` is wall time spent in decode_block.
struct BlockGraphStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t decode_ns = 0;
  std::uint64_t decoded_bytes = 0;   ///< compressed bytes run through decode
  std::uint64_t resident_blocks = 0; ///< decoded blocks currently cached
  std::uint64_t resident_bytes = 0;  ///< decoded bytes currently cached
  std::uint64_t bytes_mapped = 0;    ///< file size backing the mapping
};

/// A leased handle for neighbor iteration. One cursor per thread; cheap to
/// create but intended to live for a whole scan phase. Default-constructed
/// cursors are detached (used by GraphView for the resident backend).
class BlockCursor {
 public:
  BlockCursor() = default;
  BlockCursor(BlockCursor&& other) noexcept { move_from(other); }
  BlockCursor& operator=(BlockCursor&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  BlockCursor(const BlockCursor&) = delete;
  BlockCursor& operator=(const BlockCursor&) = delete;
  ~BlockCursor() { release(); }

 private:
  friend class BlockGraph;
  void release();
  void move_from(BlockCursor& other) {
    owner_ = other.owner_;
    slot_ = other.slot_;
    last_block_ = other.last_block_;
    last_data_ = other.last_data_;
    last_first_arc_ = other.last_first_arc_;
    other.owner_ = nullptr;
    other.last_block_ = kInvalidBlock;
    other.last_data_ = nullptr;
  }

  const BlockGraph* owner_ = nullptr;
  detail::CacheSlot* slot_ = nullptr;
  // Memo of the last block touched: consecutive scans within one block (the
  // overwhelmingly common pattern — vertices are laid out in id order)
  // bypass the slot map entirely. Refreshed on every cache lookup, so it can
  // never outlive an eviction of the block it points into.
  std::uint32_t last_block_ = kInvalidBlock;
  const Neighbor* last_data_ = nullptr;
  EdgeIndex last_first_arc_ = 0;
};

class BlockGraph {
 public:
  struct Options {
    /// Total decoded-bytes budget, split evenly across `cache_slots`. The
    /// bound is per-slot: total resident ≤ (live cursors) × (budget/slots).
    std::size_t cache_bytes = 64ull << 20;
    /// Number of concurrently leasable slots the budget is divided by.
    /// 0 = auto (16, matching the ThreadPool ceiling). More cursors than
    /// slots is allowed — extra slots are created with the same per-slot
    /// budget.
    int cache_slots = 0;
    /// Verify a block's CRC-32 every time it is decoded from the mapping.
    bool verify_block_checksums = true;
  };

  BlockGraph() = default;
  BlockGraph(BlockGraph&&) noexcept;
  BlockGraph& operator=(BlockGraph&&) noexcept;
  BlockGraph(const BlockGraph&) = delete;
  BlockGraph& operator=(const BlockGraph&) = delete;
  ~BlockGraph();

  /// Map `path` and validate header, section CRC, and geometry. Throws
  /// BlockFormatError on malformed files, std::runtime_error on I/O errors.
  static BlockGraph open(const std::string& path, const Options& opts);
  static BlockGraph open(const std::string& path);

  // --- Csr-mirroring interface (same semantics, same bits) ---------------
  [[nodiscard]] VertexId num_vertices() const { return n_; }
  [[nodiscard]] EdgeIndex num_arcs() const { return num_arcs_; }
  [[nodiscard]] EdgeIndex num_edges() const { return num_arcs_ / 2; }
  [[nodiscard]] EdgeIndex degree(VertexId u) const {
    return arc_offsets_[u + 1] - arc_offsets_[u];
  }
  [[nodiscard]] Weight weighted_degree(VertexId u) const { return wdeg_[u]; }
  [[nodiscard]] Weight self_weight(VertexId u) const { return self_[u]; }
  [[nodiscard]] Weight total_weight() const { return total_weight_; }
  [[nodiscard]] Weight total_link_weight() const { return total_link_weight_; }

  /// Lease a cursor (thread-private; see class comment).
  [[nodiscard]] BlockCursor cursor() const;

  /// Neighbors of `u` in stored (Csr) order, valid until the cursor's next
  /// neighbors() call or destruction. Throws BlockFormatError if the backing
  /// block fails its checksum or decode.
  std::span<const Neighbor> neighbors(VertexId u, BlockCursor& cur) const {
    const std::uint32_t b = block_of_[u];
    if (cur.last_block_ != b) fault_block(b, cur);
    return {cur.last_data_ +
                static_cast<std::size_t>(arc_offsets_[u] - cur.last_first_arc_),
            static_cast<std::size_t>(arc_offsets_[u + 1] - arc_offsets_[u])};
  }

  /// Aggregate statistics over all slots. Synchronizes on the lease mutex;
  /// call it between phases (no cursor actively scanning), not inside one.
  [[nodiscard]] BlockGraphStats stats() const;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t num_blocks() const { return num_blocks_; }
  /// Block holding u's adjacency run (decode-locality queries; the
  /// decode-aware rebalance groups arcs by this).
  [[nodiscard]] std::uint32_t block_of(VertexId u) const { return block_of_[u]; }
  [[nodiscard]] std::size_t bytes_mapped() const { return map_bytes_; }

 private:
  friend class BlockCursor;
  void fault_block(std::uint32_t block, BlockCursor& cur) const;

  std::string path_;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;

  VertexId n_ = 0;
  EdgeIndex num_arcs_ = 0;
  std::uint64_t num_blocks_ = 0;
  Weight total_weight_ = 0;
  Weight total_link_weight_ = 0;

  // Typed views into the mapping (all 8-byte aligned by construction).
  const EdgeIndex* arc_offsets_ = nullptr;   // n+1
  const std::uint32_t* block_of_ = nullptr;  // n
  const double* wdeg_ = nullptr;             // n
  const double* self_ = nullptr;             // n
  const BlockIndexEntry* index_ = nullptr;   // num_blocks
  const std::uint8_t* payload_ = nullptr;

  std::unique_ptr<detail::DecodeCache> cache_;
};

}  // namespace dinfomap::graph::blockgraph
