// Edge-block codec for the out-of-core graph substrate (DESIGN.md §15).
//
// A block covers a contiguous vertex range and stores two streams:
//
//   targets: per vertex, per neighbor, a zig-zag varint *delta* — the first
//            neighbor relative to the vertex's own id, each subsequent one
//            relative to its predecessor. Signed deltas mean the codec
//            preserves the adjacency *exactly as given*, in order; it never
//            assumes sortedness. That matters because every consumer's
//            floating-point accumulation order follows adjacency order, and
//            the backend-equivalence guarantee (resident CSR vs blocks) is
//            bit-level.
//   weights: run-length encoded — varint run length followed by the raw
//            8-byte little-endian IEEE-754 image of the weight. Runs split
//            on bitwise inequality, so decoding reproduces the exact bits
//            (1.0-weighted unweighted graphs collapse to a single run per
//            block).
//
// Degrees are *not* stored in the payload: the container file keeps the
// global arc-offset array resident (see format.hpp), and the decoder takes
// the offset slice as input. A CRC-32 over the payload guards against
// truncation and bit rot; `decode_block` additionally validates that varints
// terminate, targets fit VertexId, and the payload is consumed exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::graph::blockgraph {

/// Thrown on malformed, truncated, or corrupt block-graph bytes.
class BlockFormatError : public std::runtime_error {
 public:
  explicit BlockFormatError(const std::string& what)
      : std::runtime_error(what) {}
};

/// LEB128 append of `x` to `out` (1–10 bytes).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t x);

/// Decode one varint at `p` (strictly before `end`). Returns the byte after
/// the varint and stores the value in `x`; throws BlockFormatError when the
/// varint runs off `end` or exceeds 10 bytes.
const std::uint8_t* get_varint(const std::uint8_t* p, const std::uint8_t* end,
                               std::uint64_t& x);

[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected). `seed` chains partial
/// computations: crc32(b, crc32(a)) == crc32(a ⧺ b).
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                                  std::uint32_t seed = 0);

/// Encode the adjacency of vertices [first_vertex, first_vertex + count).
///
/// `arc_off` holds count+1 entries of the *global* offset array (so
/// arc_off[i+1] - arc_off[i] is the degree of first_vertex + i) and `arcs`
/// the concatenated adjacency, arc_off[count] - arc_off[0] entries. The
/// encoded payload is appended to `out`.
void encode_block(VertexId first_vertex,
                  std::span<const EdgeIndex> arc_off,
                  std::span<const Neighbor> arcs, std::vector<std::uint8_t>& out);

/// Inverse of encode_block: decode `payload` into `arcs` (resized to the
/// exact arc count; capacity is reused across calls, which is what makes a
/// cache slot's entry buffer a lock-free decode scratch). Throws
/// BlockFormatError on any structural violation.
void decode_block(VertexId first_vertex,
                  std::span<const EdgeIndex> arc_off,
                  std::span<const std::uint8_t> payload,
                  std::vector<Neighbor>& arcs);

}  // namespace dinfomap::graph::blockgraph
