#include "graph/edgelist_io.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dinfomap::graph {

namespace {
[[noreturn]] void parse_error(const std::string& path, std::size_t lineno,
                              const char* what) {
  throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " + what);
}
}  // namespace

std::size_t for_each_edge(const std::string& path,
                          const std::function<void(const Edge&)>& fn) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  std::size_t count = 0;
  std::string line;  // reused across lines; getline keeps its capacity
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const char* s = line.c_str();
    while (*s == ' ' || *s == '\t' || *s == '\r') ++s;
    if (*s == '\0' || *s == '#' || *s == '%') continue;
    // Manual strtoull/strtod parse: no per-line stringstream construction.
    char* end = nullptr;
    if (*s == '-') parse_error(path, lineno, "expected 'u v [w]'");
    const std::uint64_t u = std::strtoull(s, &end, 10);
    if (end == s) parse_error(path, lineno, "expected 'u v [w]'");
    s = end;
    while (*s == ' ' || *s == '\t') ++s;
    if (*s == '-') parse_error(path, lineno, "expected 'u v [w]'");
    const std::uint64_t v = std::strtoull(s, &end, 10);
    if (end == s) parse_error(path, lineno, "expected 'u v [w]'");
    s = end;
    double w = 1.0;  // optional weight
    const double parsed_w = std::strtod(s, &end);
    if (end != s) w = parsed_w;
    if (w <= 0) parse_error(path, lineno, "non-positive weight");
    fn({static_cast<VertexId>(u), static_cast<VertexId>(v), w});
    ++count;
  }
  return count;
}

EdgeList read_edge_list(const std::string& path) {
  EdgeList edges;
  for_each_edge(path, [&](const Edge& e) { edges.push_back(e); });
  return edges;
}

std::size_t write_edge_list(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "# dinfomap edge list: u v w\n";
  for (const Edge& e : edges) out << e.u << ' ' << e.v << ' ' << e.w << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
  return edges.size();
}

namespace {
constexpr char kBinaryMagic[4] = {'D', 'N', 'F', 'M'};
struct PackedEdge {
  std::uint32_t u;
  std::uint32_t v;
  double w;
};
static_assert(sizeof(PackedEdge) == 16);
}  // namespace

void write_edge_list_binary(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out.write(kBinaryMagic, 4);
  const std::uint64_t count = edges.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Edge& e : edges) {
    const PackedEdge packed{e.u, e.v, e.w};
    out.write(reinterpret_cast<const char*>(&packed), sizeof(packed));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

EdgeList read_edge_list_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  char magic[4] = {};
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kBinaryMagic, 4) != 0)
    throw std::runtime_error(path + ": not a dinfomap binary edge list");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error(path + ": truncated header");
  EdgeList edges;
  edges.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedEdge packed;
    in.read(reinterpret_cast<char*>(&packed), sizeof(packed));
    if (!in) throw std::runtime_error(path + ": truncated edge records");
    if (packed.w <= 0)
      throw std::runtime_error(path + ": non-positive weight in record " +
                               std::to_string(i));
    edges.push_back({packed.u, packed.v, packed.w});
  }
  return edges;
}

}  // namespace dinfomap::graph
