#include "graph/edgelist_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dinfomap::graph {

EdgeList read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  EdgeList edges;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#' || line[first] == '%')
      continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": expected 'u v [w]'");
    }
    ls >> w;  // optional weight
    if (w <= 0) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": non-positive weight");
    }
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v), w});
  }
  return edges;
}

std::size_t write_edge_list(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "# dinfomap edge list: u v w\n";
  for (const Edge& e : edges) out << e.u << ' ' << e.v << ' ' << e.w << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
  return edges.size();
}

namespace {
constexpr char kBinaryMagic[4] = {'D', 'N', 'F', 'M'};
struct PackedEdge {
  std::uint32_t u;
  std::uint32_t v;
  double w;
};
static_assert(sizeof(PackedEdge) == 16);
}  // namespace

void write_edge_list_binary(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out.write(kBinaryMagic, 4);
  const std::uint64_t count = edges.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Edge& e : edges) {
    const PackedEdge packed{e.u, e.v, e.w};
    out.write(reinterpret_cast<const char*>(&packed), sizeof(packed));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

EdgeList read_edge_list_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  char magic[4] = {};
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kBinaryMagic, 4) != 0)
    throw std::runtime_error(path + ": not a dinfomap binary edge list");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error(path + ": truncated header");
  EdgeList edges;
  edges.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedEdge packed;
    in.read(reinterpret_cast<char*>(&packed), sizeof(packed));
    if (!in) throw std::runtime_error(path + ": truncated edge records");
    if (packed.w <= 0)
      throw std::runtime_error(path + ": non-positive weight in record " +
                               std::to_string(i));
    edges.push_back({packed.u, packed.v, packed.w});
  }
  return edges;
}

}  // namespace dinfomap::graph
