#include "graph/formats.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/check.hpp"

namespace dinfomap::graph {

namespace {
[[noreturn]] void fail(const std::string& path, std::size_t line,
                       const std::string& what) {
  throw std::runtime_error(path + ":" + std::to_string(line) + ": " + what);
}

bool next_content_line(std::ifstream& in, std::string& line, std::size_t& lineno,
                       char comment) {
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == comment) continue;
    return true;
  }
  return false;
}
}  // namespace

Csr read_metis(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open METIS file: " + path);
  std::string line;
  std::size_t lineno = 0;
  if (!next_content_line(in, line, lineno, '%'))
    throw std::runtime_error(path + ": missing METIS header");

  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  std::string fmt = "0";
  if (!(header >> n >> m)) fail(path, lineno, "bad METIS header");
  header >> fmt;
  const bool edge_weights = fmt == "1" || fmt == "01" || fmt == "011";
  if (fmt != "0" && fmt != "00" && !edge_weights)
    fail(path, lineno, "unsupported METIS fmt '" + fmt + "' (vertex weights)");

  EdgeList edges;
  edges.reserve(m);
  for (std::uint64_t u = 0; u < n; ++u) {
    if (!next_content_line(in, line, lineno, '%'))
      fail(path, lineno, "fewer adjacency lines than vertices");
    std::istringstream ls(line);
    std::uint64_t v = 0;
    while (ls >> v) {
      if (v < 1 || v > n) fail(path, lineno, "neighbor id out of range");
      double w = 1.0;
      if (edge_weights && !(ls >> w)) fail(path, lineno, "missing edge weight");
      if (v - 1 >= u) continue;  // each undirected edge appears twice; keep one
      edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v - 1), w});
    }
  }
  const auto g = build_csr(edges, static_cast<VertexId>(n));
  if (g.num_edges() != m) {
    throw std::runtime_error(path + ": header claims " + std::to_string(m) +
                             " edges, file contains " +
                             std::to_string(g.num_edges()));
  }
  return g;
}

void write_metis(const std::string& path, const Csr& graph) {
  for (VertexId u = 0; u < graph.num_vertices(); ++u)
    DINFOMAP_REQUIRE_MSG(graph.self_weight(u) == 0,
                         "METIS cannot represent self-loops");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  // Detect whether any weight differs from 1 to pick the fmt flag.
  bool weighted = false;
  for (const auto& nb : graph.adjacency()) weighted = weighted || nb.weight != 1.0;
  out << graph.num_vertices() << ' ' << graph.num_edges();
  if (weighted) out << " 1";
  out << '\n';
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    bool first = true;
    for (const auto& nb : graph.neighbors(u)) {
      if (!first) out << ' ';
      first = false;
      out << (nb.target + 1);
      if (weighted) out << ' ' << nb.weight;
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

Csr read_pajek(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open Pajek file: " + path);
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t n = 0;
  if (!next_content_line(in, line, lineno, '%') ||
      line.rfind("*Vertices", 0) != 0)
    throw std::runtime_error(path + ": expected '*Vertices n'");
  {
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw >> n) || n == 0) fail(path, lineno, "bad *Vertices header");
  }
  // Skip vertex label lines until an *Edges / *Arcs section.
  bool edges_section = false;
  EdgeList edges;
  while (next_content_line(in, line, lineno, '%')) {
    if (line[0] == '*') {
      if (line.rfind("*Edges", 0) == 0 || line.rfind("*Arcs", 0) == 0) {
        edges_section = true;
        continue;
      }
      fail(path, lineno, "unsupported Pajek section: " + line);
    }
    if (!edges_section) continue;  // vertex label line
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) fail(path, lineno, "expected 'u v [w]'");
    ls >> w;
    if (u < 1 || u > n || v < 1 || v > n) fail(path, lineno, "vertex id out of range");
    edges.push_back({static_cast<VertexId>(u - 1), static_cast<VertexId>(v - 1), w});
  }
  if (!edges_section)
    throw std::runtime_error(path + ": no *Edges section found");
  return build_csr(edges, static_cast<VertexId>(n));
}

void write_pajek(const std::string& path, const Csr& graph) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "*Vertices " << graph.num_vertices() << '\n';
  for (VertexId v = 0; v < graph.num_vertices(); ++v)
    out << (v + 1) << " \"" << v << "\"\n";
  out << "*Edges\n";
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    if (graph.self_weight(u) > 0)
      out << (u + 1) << ' ' << (u + 1) << ' ' << graph.self_weight(u) << '\n';
    for (const auto& nb : graph.neighbors(u))
      if (u <= nb.target)
        out << (u + 1) << ' ' << (nb.target + 1) << ' ' << nb.weight << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace dinfomap::graph
