#include "graph/csr.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dinfomap::graph {

Csr::Csr(std::vector<EdgeIndex> offsets, std::vector<Neighbor> adjacency,
         std::vector<Weight> self_weight)
    : offsets_(std::move(offsets)),
      adjacency_(std::move(adjacency)),
      self_weight_(std::move(self_weight)) {
  DINFOMAP_REQUIRE_MSG(!offsets_.empty(), "CSR offsets must have n+1 entries");
  DINFOMAP_REQUIRE(offsets_.front() == 0);
  DINFOMAP_REQUIRE(offsets_.back() == adjacency_.size());
  DINFOMAP_REQUIRE(self_weight_.size() + 1 == offsets_.size());

  const VertexId n = num_vertices();
  wdeg_.assign(n, 0.0);
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : neighbors(u)) wdeg_[u] += nb.weight;
  }
  total_link_weight_ = 0;
  for (VertexId u = 0; u < n; ++u) total_link_weight_ += wdeg_[u];
  total_link_weight_ /= 2;
  total_weight_ = total_link_weight_;
  for (Weight sw : self_weight_) total_weight_ += sw;
}

bool Csr::validate() const {
  const VertexId n = num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    if (offsets_[u] > offsets_[u + 1]) return false;
    if (self_weight_[u] < 0) return false;
  }
  // Symmetry check via canonical multiset of arcs.
  std::vector<std::pair<std::pair<VertexId, VertexId>, Weight>> fwd, rev;
  fwd.reserve(adjacency_.size());
  rev.reserve(adjacency_.size());
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : neighbors(u)) {
      if (nb.target >= n) return false;
      if (nb.target == u) return false;  // self-loops live in self_weight_
      if (!(nb.weight > 0)) return false;
      fwd.push_back({{u, nb.target}, nb.weight});
      rev.push_back({{nb.target, u}, nb.weight});
    }
  }
  std::sort(fwd.begin(), fwd.end());
  std::sort(rev.begin(), rev.end());
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    if (fwd[i].first != rev[i].first) return false;
    if (std::abs(fwd[i].second - rev[i].second) > 1e-12) return false;
  }
  return true;
}

}  // namespace dinfomap::graph
