// Degree statistics used by Table 1 and the delegate threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace dinfomap::graph {

struct DegreeStats {
  EdgeIndex max_degree = 0;
  double mean_degree = 0;
  /// Number of vertices with degree > threshold (the paper's hubs).
  VertexId hubs_above = 0;
  EdgeIndex threshold = 0;
  /// Fraction of all arcs incident to those hubs.
  double hub_arc_fraction = 0;
};

DegreeStats degree_stats(const Csr& graph, EdgeIndex hub_threshold);

/// Degree histogram: result[d] = number of vertices of degree d (capped at
/// `max_bucket`, larger degrees accumulate in the last bucket).
std::vector<VertexId> degree_histogram(const Csr& graph, EdgeIndex max_bucket);

}  // namespace dinfomap::graph
