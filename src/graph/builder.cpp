#include "graph/builder.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dinfomap::graph {

Csr build_csr(const EdgeList& edges, VertexId num_vertices,
              const BuildOptions& options) {
  VertexId n = num_vertices;
  if (n == 0) {
    for (const Edge& e : edges) n = std::max({n, e.u + 1, e.v + 1});
  }
  for (const Edge& e : edges) {
    DINFOMAP_REQUIRE_MSG(e.u < n && e.v < n, "edge endpoint out of range");
    DINFOMAP_REQUIRE_MSG(e.w > 0, "edge weights must be positive");
  }

  // Canonicalize to u <= v and sort, so duplicates (either orientation) are
  // adjacent and output adjacency ends up sorted.
  std::vector<Edge> canon;
  canon.reserve(edges.size());
  std::vector<Weight> self_weight(n, 0.0);
  for (const Edge& e : edges) {
    if (e.u == e.v) {
      if (!options.drop_self_loops) self_weight[e.u] += e.w;
      continue;
    }
    canon.push_back(e.u <= e.v ? e : Edge{e.v, e.u, e.w});
  }
  std::sort(canon.begin(), canon.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  // Combine duplicates in place.
  std::size_t out = 0;
  for (std::size_t i = 0; i < canon.size(); ++i) {
    if (out > 0 && canon[out - 1].u == canon[i].u && canon[out - 1].v == canon[i].v) {
      if (options.combine_duplicates) canon[out - 1].w += canon[i].w;
    } else {
      canon[out++] = canon[i];
    }
  }
  canon.resize(out);

  // Counting pass for symmetric adjacency.
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : canon) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<Neighbor> adjacency(offsets.back());
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : canon) {
    adjacency[cursor[e.u]++] = Neighbor{e.v, e.w};
    adjacency[cursor[e.v]++] = Neighbor{e.u, e.w};
  }
  // Per-vertex lists: entries were appended in canonical edge order, which is
  // sorted by the *other* endpoint only for the u-side. Sort each list.
  for (VertexId u = 0; u < n; ++u) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[u]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]),
              [](const Neighbor& a, const Neighbor& b) { return a.target < b.target; });
  }
  return Csr(std::move(offsets), std::move(adjacency), std::move(self_weight));
}

}  // namespace dinfomap::graph
