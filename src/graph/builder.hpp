// Build CSR graphs from edge lists.
#pragma once

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::graph {

struct BuildOptions {
  /// Sum weights of parallel (duplicate) edges into one (default) — otherwise
  /// keep only the first occurrence.
  bool combine_duplicates = true;
  /// Drop self-loops entirely instead of storing them in self_weight.
  bool drop_self_loops = false;
};

/// Build an undirected CSR from an arbitrary edge list. `num_vertices` of 0
/// means "infer as max endpoint + 1". Duplicate {u,v} pairs (in either
/// orientation) are combined; adjacency lists come out sorted by target.
Csr build_csr(const EdgeList& edges, VertexId num_vertices = 0,
              const BuildOptions& options = {});

}  // namespace dinfomap::graph
