// Interchange formats beyond plain edge lists: METIS and Pajek, the two
// formats graph-partitioning and network-science tools expect.
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::graph {

/// METIS graph format: header "n m [fmt]"; line i+1 lists the (1-based)
/// neighbors of vertex i, with "fmt" 1 adding an edge weight after each
/// neighbor. Comment lines start with '%'. Self-loops are not representable
/// and are rejected on write.
Csr read_metis(const std::string& path);
void write_metis(const std::string& path, const Csr& graph);

/// Pajek .net format: "*Vertices n" (ids with optional quoted labels),
/// then "*Edges" with "u v [w]" lines (1-based).
Csr read_pajek(const std::string& path);
void write_pajek(const std::string& path, const Csr& graph);

}  // namespace dinfomap::graph
