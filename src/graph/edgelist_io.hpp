// Plain-text edge-list I/O ("u v [w]" per line, '#' comments), the common
// interchange format of the SNAP datasets the paper uses.
#pragma once

#include <functional>
#include <string>

#include "graph/types.hpp"

namespace dinfomap::graph {

/// Stream a text edge list line by line, invoking `fn` per parsed edge —
/// the whole file is never resident, and one line buffer is reused across
/// the scan (tools/graphpack converts multi-GB lists through this with flat
/// memory). Throws std::runtime_error on I/O or parse errors (with line
/// number). Returns the number of edges visited.
std::size_t for_each_edge(const std::string& path,
                          const std::function<void(const Edge&)>& fn);

/// Parse an edge list from a file (materialized; built on for_each_edge).
/// Throws std::runtime_error on I/O or parse errors (with line number).
EdgeList read_edge_list(const std::string& path);

/// Write "u v w" lines; returns the number of edges written.
std::size_t write_edge_list(const std::string& path, const EdgeList& edges);

/// Binary edge list: magic "DNFM", u64 edge count, then packed
/// (u32 u, u32 v, f64 w) records — ~4× smaller and ~20× faster to parse
/// than the text form for large graphs.
void write_edge_list_binary(const std::string& path, const EdgeList& edges);
EdgeList read_edge_list_binary(const std::string& path);

}  // namespace dinfomap::graph
