// Compressed-sparse-row representation of an undirected weighted graph.
//
// Each undirected edge {u,v} is stored twice (u→v and v→u) so neighbor scans
// are contiguous. Self-loops are kept *out* of the adjacency and accumulated
// in a per-vertex `self_weight` instead: coarsened graphs use them to carry
// intra-community weight, and the map equation treats them separately
// ("self-connected edges excluded" — paper §2.2).
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace dinfomap::graph {

/// Adjacency entry: neighbor id plus edge weight.
struct Neighbor {
  VertexId target = 0;
  Weight weight = 1.0;
};

class Csr {
 public:
  Csr() = default;
  Csr(std::vector<EdgeIndex> offsets, std::vector<Neighbor> adjacency,
      std::vector<Weight> self_weight);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of stored directed arcs (= 2 × undirected non-self edges).
  [[nodiscard]] EdgeIndex num_arcs() const { return adjacency_.size(); }

  /// Number of undirected non-self edges.
  [[nodiscard]] EdgeIndex num_edges() const { return adjacency_.size() / 2; }

  [[nodiscard]] EdgeIndex degree(VertexId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  [[nodiscard]] std::span<const Neighbor> neighbors(VertexId u) const {
    return {adjacency_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Sum of incident non-self edge weights of u.
  [[nodiscard]] Weight weighted_degree(VertexId u) const { return wdeg_[u]; }

  /// Accumulated self-loop weight at u (each undirected self-loop counted once).
  [[nodiscard]] Weight self_weight(VertexId u) const { return self_weight_[u]; }

  /// Σ_u weighted_degree(u) / 2 + Σ_u self_weight(u): total undirected weight.
  [[nodiscard]] Weight total_weight() const { return total_weight_; }

  /// Total weight excluding self-loops (2W denominator of visit probabilities).
  [[nodiscard]] Weight total_link_weight() const { return total_link_weight_; }

  [[nodiscard]] const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  [[nodiscard]] const std::vector<Neighbor>& adjacency() const { return adjacency_; }

  /// Structural sanity: offsets monotone, targets in range, weights positive,
  /// adjacency symmetric (every arc has a reverse arc of equal weight).
  /// O(E log E); intended for tests and debug use.
  [[nodiscard]] bool validate() const;

 private:
  std::vector<EdgeIndex> offsets_;     // size n+1
  std::vector<Neighbor> adjacency_;   // size 2*E_non_self
  std::vector<Weight> self_weight_;   // size n
  std::vector<Weight> wdeg_;          // size n, cached weighted degrees
  Weight total_weight_ = 0;
  Weight total_link_weight_ = 0;
};

}  // namespace dinfomap::graph
