#include "quality/contingency.hpp"

#include "util/check.hpp"

namespace dinfomap::quality {

namespace {
/// Map arbitrary labels to dense [0, k) ids.
std::vector<std::uint32_t> compact_labels(const Partition& labels,
                                          std::size_t& num_out) {
  std::unordered_map<VertexId, std::uint32_t> remap;
  std::vector<std::uint32_t> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] =
        remap.try_emplace(labels[i], static_cast<std::uint32_t>(remap.size()));
    out[i] = it->second;
  }
  num_out = remap.size();
  return out;
}
}  // namespace

Contingency::Contingency(const Partition& a, const Partition& b) {
  DINFOMAP_REQUIRE_MSG(a.size() == b.size(),
                       "contingency: partitions must cover the same vertices");
  DINFOMAP_REQUIRE_MSG(!a.empty(), "contingency: empty partitions");
  n_ = a.size();
  std::size_t ka = 0, kb = 0;
  const auto ca = compact_labels(a, ka);
  const auto cb = compact_labels(b, kb);
  row_.assign(ka, 0);
  col_.assign(kb, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    ++row_[ca[i]];
    ++col_[cb[i]];
    ++cells_[cell_key(ca[i], cb[i])];
  }
}

}  // namespace dinfomap::quality
