// Clustering-agreement metrics (Table 2) and modularity.
//
// Conventions follow Xie et al. 2013 (the survey the paper cites):
//  - NMI with arithmetic normalization: 2·I(X;Y) / (H(X)+H(Y)); defined as 1
//    when both partitions are the same single cluster.
//  - F-measure and Jaccard are pair-counting: over all vertex pairs, let
//    a11 = together in both, a10 = together in A only, a01 = together in B
//    only. Precision = a11/(a11+a10), recall = a11/(a11+a01),
//    F = 2PR/(P+R), JI = a11/(a11+a10+a01).
#pragma once

#include "graph/csr.hpp"
#include "graph/graph_view.hpp"
#include "quality/contingency.hpp"

namespace dinfomap::quality {

double nmi(const Partition& a, const Partition& b);
double f_measure(const Partition& a, const Partition& b);
double jaccard_index(const Partition& a, const Partition& b);

struct PairCounts {
  double a11 = 0;  ///< pairs co-clustered in both
  double a10 = 0;  ///< co-clustered in A only
  double a01 = 0;  ///< co-clustered in B only
};
PairCounts pair_counts(const Contingency& table);

/// Newman–Girvan modularity of `partition` on `graph` (self-loops included
/// in community-internal weight). The GraphView overload is the
/// implementation; both backends run the identical accumulation sequence,
/// so the result is bit-identical across them.
double modularity(const graph::GraphView& graph, const Partition& partition);
double modularity(const graph::Csr& graph, const Partition& partition);

}  // namespace dinfomap::quality
