// Contingency table between two partitions of the same vertex set — the
// shared substrate of NMI / F-measure / Jaccard (Table 2 metrics).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"

namespace dinfomap::quality {

using graph::Partition;
using graph::VertexId;

/// Sparse n_ij table plus marginals. Labels are compacted internally, so
/// partitions may use arbitrary (non-contiguous) community ids.
class Contingency {
 public:
  Contingency(const Partition& a, const Partition& b);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] const std::vector<std::uint64_t>& row_sizes() const { return row_; }
  [[nodiscard]] const std::vector<std::uint64_t>& col_sizes() const { return col_; }
  /// Nonzero cells as ((row, col) → count).
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint64_t>& cells() const {
    return cells_;
  }

  static std::uint64_t cell_key(std::uint32_t row, std::uint32_t col) {
    return (static_cast<std::uint64_t>(row) << 32) | col;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> row_;
  std::vector<std::uint64_t> col_;
  std::unordered_map<std::uint64_t, std::uint64_t> cells_;
};

}  // namespace dinfomap::quality
