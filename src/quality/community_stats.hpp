// Per-community structural statistics: sizes, internal/external weight,
// conductance, coverage — the descriptive companion to the agreement metrics.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "quality/contingency.hpp"

namespace dinfomap::quality {

struct CommunityStats {
  graph::VertexId size = 0;
  double internal_weight = 0;  ///< Σ weight of edges inside (self-loops incl.)
  double cut_weight = 0;       ///< Σ weight of edges leaving
  /// cut / min(vol, 2W − vol); 0 for whole-graph communities.
  double conductance = 0;
};

struct PartitionSummary {
  std::vector<CommunityStats> communities;  ///< indexed by dense label
  graph::VertexId num_communities = 0;
  graph::VertexId largest = 0;
  graph::VertexId smallest = 0;
  /// Fraction of total edge weight that is intra-community.
  double coverage = 0;
  double max_conductance = 0;
  double mean_conductance = 0;
};

/// Compute the summary (labels need not be dense).
PartitionSummary summarize_partition(const graph::Csr& graph,
                                     const Partition& partition);

}  // namespace dinfomap::quality
