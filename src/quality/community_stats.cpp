#include "quality/community_stats.hpp"

#include <algorithm>

#include "graph/transform.hpp"
#include "util/check.hpp"

namespace dinfomap::quality {

PartitionSummary summarize_partition(const graph::Csr& graph,
                                     const Partition& partition) {
  DINFOMAP_REQUIRE_MSG(partition.size() == graph.num_vertices(),
                       "summarize_partition: size mismatch");
  graph::VertexId k = 0;
  const Partition dense = graph::relabel_dense(partition, &k);

  PartitionSummary s;
  s.num_communities = k;
  s.communities.assign(k, {});
  std::vector<double> volume(k, 0.0);

  for (graph::VertexId u = 0; u < graph.num_vertices(); ++u) {
    const graph::VertexId c = dense[u];
    CommunityStats& cs = s.communities[c];
    ++cs.size;
    cs.internal_weight += graph.self_weight(u);
    volume[c] += graph.weighted_degree(u) + 2.0 * graph.self_weight(u);
    for (const auto& nb : graph.neighbors(u)) {
      if (dense[nb.target] == c) {
        if (nb.target > u) cs.internal_weight += nb.weight;  // count once
      } else {
        cs.cut_weight += nb.weight;
      }
    }
  }

  const double two_w = 2.0 * graph.total_weight();
  double total_internal = 0;
  s.smallest = graph.num_vertices();
  for (graph::VertexId c = 0; c < k; ++c) {
    CommunityStats& cs = s.communities[c];
    const double denom = std::min(volume[c], two_w - volume[c]);
    cs.conductance = denom > 0 ? cs.cut_weight / denom : 0.0;
    total_internal += cs.internal_weight;
    s.largest = std::max(s.largest, cs.size);
    s.smallest = std::min(s.smallest, cs.size);
    s.max_conductance = std::max(s.max_conductance, cs.conductance);
    s.mean_conductance += cs.conductance;
  }
  if (k > 0) s.mean_conductance /= static_cast<double>(k);
  s.coverage = graph.total_weight() > 0 ? total_internal / graph.total_weight() : 0.0;
  return s;
}

}  // namespace dinfomap::quality
