#include "quality/metrics.hpp"

#include <cmath>
#include <unordered_map>

#include "util/check.hpp"

namespace dinfomap::quality {

namespace {
double entropy(const std::vector<std::uint64_t>& sizes, double n) {
  double h = 0;
  for (std::uint64_t s : sizes) {
    if (s == 0) continue;
    const double p = static_cast<double>(s) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double choose2(double x) { return x * (x - 1.0) / 2.0; }
}  // namespace

PairCounts pair_counts(const Contingency& table) {
  double cells2 = 0;
  for (const auto& [key, count] : table.cells())
    cells2 += choose2(static_cast<double>(count));
  double rows2 = 0;
  for (auto s : table.row_sizes()) rows2 += choose2(static_cast<double>(s));
  double cols2 = 0;
  for (auto s : table.col_sizes()) cols2 += choose2(static_cast<double>(s));
  PairCounts pc;
  pc.a11 = cells2;
  pc.a10 = rows2 - cells2;
  pc.a01 = cols2 - cells2;
  return pc;
}

double nmi(const Partition& a, const Partition& b) {
  const Contingency table(a, b);
  const double n = static_cast<double>(table.n());
  const double ha = entropy(table.row_sizes(), n);
  const double hb = entropy(table.col_sizes(), n);
  if (ha == 0 && hb == 0) return 1.0;  // both trivial and identical
  double mi = 0;
  for (const auto& [key, count] : table.cells()) {
    const auto row = static_cast<std::uint32_t>(key >> 32);
    const auto col = static_cast<std::uint32_t>(key & 0xffffffffu);
    const double pij = static_cast<double>(count) / n;
    const double pi = static_cast<double>(table.row_sizes()[row]) / n;
    const double pj = static_cast<double>(table.col_sizes()[col]) / n;
    mi += pij * std::log2(pij / (pi * pj));
  }
  return 2.0 * mi / (ha + hb);
}

double f_measure(const Partition& a, const Partition& b) {
  const auto pc = pair_counts(Contingency(a, b));
  const double denom_p = pc.a11 + pc.a10;
  const double denom_r = pc.a11 + pc.a01;
  if (denom_p == 0 && denom_r == 0) return 1.0;  // no co-clustered pairs anywhere
  if (denom_p == 0 || denom_r == 0) return 0.0;
  const double precision = pc.a11 / denom_p;
  const double recall = pc.a11 / denom_r;
  if (precision + recall == 0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

double jaccard_index(const Partition& a, const Partition& b) {
  const auto pc = pair_counts(Contingency(a, b));
  const double denom = pc.a11 + pc.a10 + pc.a01;
  if (denom == 0) return 1.0;  // both partitions are all-singletons
  return pc.a11 / denom;
}

double modularity(const graph::GraphView& graph, const Partition& partition) {
  DINFOMAP_REQUIRE_MSG(partition.size() == graph.num_vertices(),
                       "modularity: partition size mismatch");
  // Community totals: internal weight and total incident weight.
  std::unordered_map<VertexId, double> internal, total;
  auto cursor = graph.cursor();
  for (graph::VertexId u = 0; u < graph.num_vertices(); ++u) {
    const VertexId cu = partition[u];
    total[cu] += graph.weighted_degree(u) + 2.0 * graph.self_weight(u);
    internal[cu] += 2.0 * graph.self_weight(u);
    for (const auto& nb : graph.neighbors(u, cursor)) {
      if (partition[nb.target] == cu) internal[cu] += nb.weight;
    }
  }
  const double two_w = 2.0 * graph.total_weight();
  if (two_w == 0) return 0.0;
  double q = 0;
  for (const auto& [c, tot] : total) {
    const auto in_it = internal.find(c);
    const double in_c = in_it != internal.end() ? in_it->second : 0.0;
    q += in_c / two_w - (tot / two_w) * (tot / two_w);
  }
  return q;
}

double modularity(const graph::Csr& graph, const Partition& partition) {
  return modularity(graph::GraphView(graph), partition);
}

}  // namespace dinfomap::quality
