#include "io/tree_io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>

#include "util/check.hpp"

namespace dinfomap::io {

using graph::Partition;
using graph::VertexId;

std::vector<std::vector<VertexId>> tree_paths(const std::vector<Partition>& levels) {
  DINFOMAP_REQUIRE_MSG(!levels.empty(), "tree_paths: need at least one level");
  const std::size_t n = levels.front().size();
  for (const auto& level : levels)
    DINFOMAP_REQUIRE_MSG(level.size() == n, "tree_paths: level size mismatch");

  // Work from coarsest (last) down to finest. At each step, number each
  // distinct child (group at the finer level) within its parent context,
  // 1-based, larger groups first (ties → smaller module id).
  std::vector<std::vector<VertexId>> paths(n);

  // parent_key[v] identifies the path prefix assigned so far; start with a
  // single root context.
  std::vector<std::size_t> parent_key(n, 0);
  std::size_t num_contexts = 1;

  for (std::size_t li = levels.size(); li-- > 0;) {
    const Partition& level = levels[li];
    // Group vertices by (parent context, module at this level).
    struct Group {
      std::size_t parent;
      VertexId module;
      std::size_t size = 0;
      VertexId assigned = 0;
    };
    std::map<std::pair<std::size_t, VertexId>, Group> groups;
    for (std::size_t v = 0; v < n; ++v) {
      auto& g = groups[{parent_key[v], level[v]}];
      g.parent = parent_key[v];
      g.module = level[v];
      ++g.size;
    }
    // Number children within each parent: larger first.
    std::map<std::size_t, std::vector<Group*>> by_parent;
    for (auto& [key, g] : groups) by_parent[g.parent].push_back(&g);
    for (auto& [parent, children] : by_parent) {
      std::sort(children.begin(), children.end(), [](const Group* a, const Group* b) {
        return a->size != b->size ? a->size > b->size : a->module < b->module;
      });
      for (std::size_t i = 0; i < children.size(); ++i)
        children[i]->assigned = static_cast<VertexId>(i + 1);
    }
    // Extend paths and derive the next (finer) parent contexts.
    std::map<std::pair<std::size_t, VertexId>, std::size_t> next_context;
    for (std::size_t v = 0; v < n; ++v) {
      const auto key = std::make_pair(parent_key[v], level[v]);
      paths[v].push_back(groups.at(key).assigned);
      auto [it, inserted] = next_context.emplace(key, next_context.size());
      parent_key[v] = it->second;
    }
    num_contexts = next_context.size();
  }
  (void)num_contexts;

  // Leaf position: number vertices within their finest group, larger flow
  // handling is left to the writer — here order by vertex id.
  std::map<std::size_t, VertexId> leaf_counter;
  for (std::size_t v = 0; v < n; ++v)
    paths[v].push_back(++leaf_counter[parent_key[v]]);
  return paths;
}

void write_tree(const std::string& path, const std::vector<Partition>& levels,
                const std::vector<double>& flow) {
  const auto paths = tree_paths(levels);
  const std::size_t n = paths.size();
  DINFOMAP_REQUIRE_MSG(flow.empty() || flow.size() == n,
                       "write_tree: flow size mismatch");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "# path flow name (dinfomap .tree output)\n";
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < paths[v].size(); ++i) {
      if (i) out << ':';
      out << paths[v][i];
    }
    const double f = flow.empty() ? 1.0 / static_cast<double>(n) : flow[v];
    out << ' ' << f << " \"" << v << "\"\n";
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace dinfomap::io
