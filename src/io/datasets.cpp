#include "io/datasets.hpp"

#include <stdexcept>

namespace dinfomap::io {

using graph::gen::GeneratedGraph;
using graph::gen::LfrLiteParams;

namespace {
LfrLiteParams lfr_params(graph::VertexId n, double mixing,
                         graph::VertexId max_degree,
                         graph::VertexId max_community) {
  LfrLiteParams p;
  p.n = n;
  p.mixing = mixing;
  p.min_degree = 4;
  p.max_degree = max_degree;
  p.min_community = 16;
  p.max_community = max_community;
  return p;
}
}  // namespace

const std::vector<DatasetSpec>& dataset_registry() {
  using Size = DatasetSpec::Size;
  static const std::vector<DatasetSpec> registry = {
      {"friendster", "Friendster", "An on-line gaming network (LFR-lite stand-in)",
       "65.61M", "1.81B", Size::kLarge, true, 1101},
      {"uk2007", "UK-2007", "Web crawl of the .uk domain in 2007 (R-MAT stand-in)",
       "105.9M", "3.78B", Size::kLarge, false, 1102},
      {"uk2005", "UK-2005", "Web crawl of the .uk domain in 2005 (R-MAT stand-in)",
       "39.46M", "936.4M", Size::kLarge, false, 1103},
      {"webbase2001", "WebBase-2001", "A crawl graph by WebBase (R-MAT stand-in)",
       "118.14M", "1.01B", Size::kLarge, false, 1104},
      {"ndweb", "ND-Web", "A web network of University of Notre Dame (BA stand-in)",
       "0.33M", "1.50M", Size::kSmall, false, 1105},
      {"livejournal", "LiveJournal", "A virtual-community social site (LFR-lite stand-in)",
       "5.20M", "76.94M", Size::kMedium, true, 1106},
      {"youtube", "YouTube", "YouTube friendship network (LFR-lite stand-in)",
       "11.34M", "29.87M", Size::kMedium, true, 1107},
      {"dblp", "DBLP", "A co-authorship network from DBLP (LFR-lite stand-in)",
       "0.31M", "1.04M", Size::kSmall, true, 1108},
      {"amazon", "Amazon", "Frequently co-purchased products from Amazon (LFR-lite stand-in)",
       "0.33M", "0.92M", Size::kSmall, true, 1109},
  };
  return registry;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const auto& spec : dataset_registry())
    if (spec.name == name) return spec;
  throw std::out_of_range("unknown dataset: " + name);
}

GeneratedGraph load_dataset(const std::string& name) {
  const DatasetSpec& spec = dataset_spec(name);
  // Scales are chosen so the whole experiment suite runs in minutes on one
  // core; the web-crawl stand-ins use skewed R-MAT corners (heavier hub
  // tail) and the social ones planted LFR-lite communities.
  if (name == "amazon") return graph::gen::lfr_lite(lfr_params(6000, 0.15, 80, 120), spec.seed);
  if (name == "dblp") return graph::gen::lfr_lite(lfr_params(6000, 0.20, 90, 150), spec.seed);
  if (name == "ndweb") return graph::gen::barabasi_albert(8000, 2, spec.seed);
  if (name == "youtube") return graph::gen::lfr_lite(lfr_params(20000, 0.30, 400, 400), spec.seed);
  if (name == "livejournal") return graph::gen::lfr_lite(lfr_params(24000, 0.25, 500, 400), spec.seed);
  if (name == "uk2005") return graph::gen::rmat(15, 12, 0.57, 0.19, 0.19, spec.seed);
  if (name == "webbase2001") return graph::gen::rmat(16, 6, 0.55, 0.20, 0.20, spec.seed);
  if (name == "friendster") return graph::gen::lfr_lite(lfr_params(40000, 0.35, 800, 600), spec.seed);
  if (name == "uk2007") return graph::gen::rmat(16, 12, 0.57, 0.19, 0.19, spec.seed);
  throw std::out_of_range("unknown dataset: " + name);
}

}  // namespace dinfomap::io
