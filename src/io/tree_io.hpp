// Hierarchical clustering output in Infomap's ".tree" interchange format:
// one line per vertex, "path flow name", where path is the colon-separated
// module path from the coarsest level down to the vertex's position, e.g.
//
//   1:2:3 0.00421 "17"
//
// Paths are 1-based, children ordered by size (larger first) for stable,
// human-scannable output.
#pragma once

#include <string>
#include <vector>

#include "graph/types.hpp"

namespace dinfomap::io {

/// Nested assignment levels from finest to coarsest, each mapping level-0
/// vertex → module at that level (e.g. InfomapResult::level_assignments).
/// `flow[v]` is the visit probability printed per vertex (pass empty for
/// uniform 1/n).
void write_tree(const std::string& path,
                const std::vector<graph::Partition>& levels,
                const std::vector<double>& flow = {});

/// Compute the colon paths without writing: result[v] = {top, ..., leaf},
/// all 1-based. Exposed for tests and custom sinks.
std::vector<std::vector<graph::VertexId>> tree_paths(
    const std::vector<graph::Partition>& levels);

}  // namespace dinfomap::io
