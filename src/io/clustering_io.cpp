#include "io/clustering_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dinfomap::io {

void write_clustering(const std::string& path, const graph::Partition& partition) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "# vertex community\n";
  for (graph::VertexId v = 0; v < partition.size(); ++v)
    out << v << ' ' << partition[v] << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

graph::Partition read_clustering(const std::string& path,
                                 graph::VertexId num_vertices) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open clustering: " + path);
  std::vector<std::pair<graph::VertexId, graph::VertexId>> entries;
  std::string line;
  std::size_t lineno = 0;
  graph::VertexId max_v = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t v = 0, c = 0;
    if (!(ls >> v >> c)) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": expected 'vertex community'");
    }
    entries.emplace_back(static_cast<graph::VertexId>(v),
                         static_cast<graph::VertexId>(c));
    max_v = std::max(max_v, static_cast<graph::VertexId>(v));
  }
  if (num_vertices == 0) num_vertices = entries.empty() ? 0 : max_v + 1;
  graph::Partition partition(num_vertices, graph::kInvalidVertex);
  for (const auto& [v, c] : entries) {
    if (v >= num_vertices)
      throw std::runtime_error(path + ": vertex id out of range");
    partition[v] = c;
  }
  for (graph::VertexId v = 0; v < num_vertices; ++v) {
    if (partition[v] == graph::kInvalidVertex)
      throw std::runtime_error(path + ": missing assignment for vertex " +
                               std::to_string(v));
  }
  return partition;
}

}  // namespace dinfomap::io
