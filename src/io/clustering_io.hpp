// Read/write vertex→community assignments ("v community" per line).
#pragma once

#include <string>

#include "graph/types.hpp"

namespace dinfomap::io {

void write_clustering(const std::string& path, const graph::Partition& partition);

/// Reads a clustering for `num_vertices` vertices (0 = infer from max id).
/// Throws std::runtime_error on malformed input or missing vertices.
graph::Partition read_clustering(const std::string& path,
                                 graph::VertexId num_vertices = 0);

}  // namespace dinfomap::io
