// Registry of seeded synthetic stand-ins for the paper's Table 1 datasets.
//
// The real datasets are multi-gigabyte crawls (UK-2007 alone has 3.78B
// edges); none are available here, and the 1-core environment could not hold
// them. Each stand-in reproduces the property the algorithm is sensitive to:
//  - web crawls (ND-Web, UK-2005, WebBase-2001, UK-2007) → R-MAT / BA with
//    heavy-tailed hubs, which is what stresses delegate partitioning;
//  - social/co-purchase networks with ground-truth communities (Amazon,
//    DBLP, LiveJournal, YouTube, Friendster) → LFR-lite with planted
//    communities and power-law degrees.
// Scale factors versus the paper are recorded per entry and surfaced by the
// Table 1 bench.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/gen/generators.hpp"

namespace dinfomap::io {

struct DatasetSpec {
  std::string name;         ///< registry key, e.g. "amazon"
  std::string paper_name;   ///< Table 1 name, e.g. "Amazon"
  std::string description;  ///< Table 1 description
  std::string paper_vertices;  ///< as printed in Table 1 ("0.33M")
  std::string paper_edges;     ///< as printed in Table 1 ("0.92M")
  enum class Size { kSmall, kMedium, kLarge } size = Size::kSmall;
  bool has_ground_truth = false;
  std::uint64_t seed = 0;
};

/// All stand-ins, in Table 1 order.
const std::vector<DatasetSpec>& dataset_registry();

/// Generate the stand-in graph for `name` (throws std::out_of_range for an
/// unknown name). Deterministic per name.
graph::gen::GeneratedGraph load_dataset(const std::string& name);

/// Spec lookup by registry key.
const DatasetSpec& dataset_spec(const std::string& name);

}  // namespace dinfomap::io
