// FlowGraph: a CSR whose arc weights are *flows* (normalized by 2W at level
// 0) plus per-vertex node flows (visit probabilities). Because everything is
// pre-normalized, coarsening is pure summation and the map-equation formulas
// are level-independent.
#pragma once

#include <vector>

#include "core/mapequation.hpp"
#include "graph/csr.hpp"
#include "graph/graph_view.hpp"

namespace dinfomap::core {

using graph::Csr;
using graph::VertexId;

struct FlowGraph {
  Csr csr;                        ///< arc weights are flows (w/2W at level 0)
  std::vector<double> node_flow;  ///< p_α per vertex; sums to 1
  double node_term = 0;           ///< Σ plogp(p_α) over LEVEL-0 vertices

  [[nodiscard]] VertexId num_vertices() const { return csr.num_vertices(); }

  /// Total flow on u's non-self arcs (its exit probability when alone).
  [[nodiscard]] double out_flow(VertexId u) const { return csr.weighted_degree(u); }

  /// Flow retained by u's self-loops (intra weight carried by coarsening).
  [[nodiscard]] double self_flow(VertexId u) const { return csr.self_weight(u); }
};

/// Lift a plain undirected graph to flows: arc flow = w/(2W_links),
/// node flow = weighted_degree/(2W_links) + self-loop flow, where W_links
/// excludes self-loops (paper §2.2: "self-connected edges excluded").
///
/// Note on the paper's Line 3 (p_u = degree(u)/|E|): that normalization sums
/// to 2 over all vertices; we use the standard w_u/2W so Σ p_α = 1. This
/// rescales L(M) uniformly and changes no decision the algorithm makes.
FlowGraph make_flow_graph(const Csr& graph);

/// Consistency audit for tests: node flows sum to 1, every vertex's node
/// flow ≥ its out flow (self flow non-negative), node_term matches when
/// `level0` is true.
bool validate_flow_graph(const FlowGraph& fg, bool level0);

/// Level-0 flow quantities without materializing a flow-weighted CSR — the
/// out-of-core path of make_flow_graph. `node_flow[u]` is computed as
/// Σ(w_i / 2W) over u's adjacency in stored order plus self/2W, the exact
/// floating-point sequence the resident Csr constructor performs on the
/// flow-scaled adjacency, so both paths produce identical bits.
struct NodeFlows {
  std::vector<double> node_flow;  ///< p_α per vertex; sums to 1
  double node_term = 0;           ///< Σ plogp(p_α)
  double two_w = 0;               ///< 2 × total_link_weight
};
NodeFlows compute_node_flows(const graph::GraphView& graph);

}  // namespace dinfomap::core
