// Sequential Louvain (Blondel et al. 2008) — the modularity-based comparator
// the paper's related-work section contrasts Infomap against.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::core {

struct LouvainConfig {
  double min_modularity_gain = 1e-9;
  int max_levels = 20;
  int max_inner_passes = 64;
  std::uint64_t seed = 42;
  /// Worker threads for the move-pass hot loop. 1 = the exact serial path;
  /// any value yields bit-identical results (parallel propose over frozen
  /// state, serial commit in the shuffled order — see DESIGN.md §10).
  int num_threads = 1;
};

struct LouvainResult {
  graph::Partition assignment;  ///< level-0 vertex → community (dense ids)
  double modularity = 0;
  int levels = 0;
};

LouvainResult louvain(const graph::Csr& graph, const LouvainConfig& config = {});

}  // namespace dinfomap::core
