// Label-flow baseline: a GossipMap-style distributed community detector.
//
// GossipMap (Bae & Howe, SC'15) — the paper's "previous state of the art" for
// Table 3 — is built on GraphLab and unavailable here. This baseline captures
// its operating point: synchronous flow-weighted label propagation over a
// plain 1D partition (no delegates), multi-level with centralized merging.
// It is run over the same comm substrate so runtimes and communication
// volumes compare apples-to-apples with the distributed Infomap.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/counters.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "perf/work_counters.hpp"

namespace dinfomap::core {

struct LabelFlowConfig {
  int max_rounds_per_level = 64;
  int max_levels = 8;
  std::uint64_t seed = 42;
};

struct LabelFlowResult {
  graph::Partition assignment;  ///< level-0 vertex → community (dense ids)
  double codelength = 0;        ///< map-equation score of the result
  int total_rounds = 0;
  double wall_seconds = 0;
  std::vector<perf::WorkCounters> work_per_rank;  ///< compute + comm volume
};

LabelFlowResult distributed_labelflow(const graph::Csr& graph, int num_ranks,
                                      const LabelFlowConfig& config = {});

}  // namespace dinfomap::core
