// Distributed Infomap rounds (Alg. 2), information swapping (Alg. 3),
// distributed merging (§3.5), and the job driver.
#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>

#include "comm/runtime.hpp"
#include "core/dist_internal.hpp"
#include "partition/metrics.hpp"
#include "util/check.hpp"
#include "util/sorted.hpp"

namespace dinfomap::core::detail {

namespace {

/// Absolute slack added to the active-set margin bound: the analytic q-drift
/// bound holds over the reals, while the ΔL sums are evaluated in floating
/// point. Every intermediate is O(1), so a few hundred ulps of 1.0 dominates
/// the accumulated rounding; margins below this never prune (conservative).
constexpr double kFpSlack = 1e-13;

}  // namespace

// ---------------------------------------------------------------------------
// Move search
// ---------------------------------------------------------------------------

bool DistRank::min_label_yields(ModuleId cur, ModuleId target) {
  // §3.4 anti-bouncing, per-pair deterministic variant. The original
  // minimum-label strategy gated larger-label boundary moves on the parity
  // of a shared round counter — a hidden global input that stops being
  // meaningful when vertices are evaluated at different effective times
  // (active-set pruning, async drains). Replace the counter with a
  // *consistent orientation* over the module pair: a boundary move yields
  // iff it goes into the smaller module (by flow mass, ties broken by the
  // label order). Of any conflicting pair of swaps exactly one
  // direction is admissible at a time — the order is total, so oscillation
  // cannot sustain and there are no preference cycles — and the decision is
  // a pure function of state every rank holds identically (module stats are
  // exact after each sync, and inside a round/epoch every rank applies the
  // same deterministic updates). Unlike a fixed random orientation, sizing
  // the order by mass keeps consolidation alive: when a move into a smaller
  // module is blocked, the reverse merge — the small module's members
  // absorbing into the large one — is the admissible direction, and that is
  // the direction greedy map-equation search favors anyway.
  const auto it_c = modules_.find(cur);
  const auto it_t = modules_.find(target);
  DINFOMAP_REQUIRE_MSG(it_c != modules_.end() && it_t != modules_.end(),
                       "min-label guard consulted for an unsynced module");
  // Singleton endpoints never yield: during the consolidation phase every
  // greedy merge should be admissible (this is where the old free rounds did
  // their work), and a conflicting same-round pair of singleton moves is a
  // relabeling, not a codelength oscillation.
  if (it_c->second.num_members <= 1 || it_t->second.num_members <= 1)
    return false;
  const double sc = it_c->second.sum_pr;
  const double st = it_t->second.sum_pr;
  if (st != sc) return st < sc;  // yield on moves into the smaller module
  return target > cur;           // mass tie: yield away from the smaller label
}

void DistRank::ensure_activity_state() {
  if (assign_stamp_.size() != verts_.size()) {
    clock_ = 1;
    assign_stamp_.assign(verts_.size(), 1);
    last_eval_.assign(verts_.size(), 0);
    last_margin_.assign(verts_.size(), 0.0);
    last_q_.assign(verts_.size(), 0.0);
  }
  if (stat_stamp_.size() != level_n_) stat_stamp_.assign(level_n_, 1);
}

bool DistRank::can_prune(std::uint32_t li) const {
  const std::uint64_t le = last_eval_[li];
  if (le == 0) return false;                 // never evaluated at this level
  if (assign_stamp_[li] > le) return false;  // we moved (or were moved)
  // The min-label guard needs no dedicated staleness state: its verdict is a
  // pure function of the (cur, candidate) module pair and the candidate's
  // boundary flag, and both are functions of vertex assignments already
  // covered by the stamp checks below.
  const LocalVertex& lv = verts_[li];
  const ModuleId cur = lv.module;
  if (cur >= stat_stamp_.size() || stat_stamp_[cur] > le) return false;
  for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
    const std::uint32_t t = arcs_[a].target;
    if (assign_stamp_[t] > le) return false;  // candidate set changed
    const ModuleId m = verts_[t].module;
    if (m >= stat_stamp_.size() || stat_stamp_[m] > le) return false;
  }
  // The candidate set, every candidate's statistics, and our own module are
  // bitwise what the last evaluation saw; only the global q_total may have
  // drifted. Identical q reproduces the evaluation bit-for-bit; otherwise
  // the recorded rejection margin must dominate the worst-case ΔL shift:
  // q enters ΔL only through plogp(q+δq) − plogp(q) with |δq| ≤ 2·f_u, so by
  // the mean-value theorem |Δ(q1) − Δ(q0)| ≤ |q1−q0|·max|log2(1+δq/q*)|, and
  // for qlo ≥ 4·f_u (⇒ |δq/q*| ≤ ½, where |log2(1+x)| ≤ 2|x|/ln2 < 2.89|x|)
  // 6·f_u/qlo over-covers the derivative. Below that q regime the bound is
  // invalid and the vertex is simply re-evaluated.
  const double q0 = last_q_[li];
  const double q1 = q_total_;
  if (q1 == q0) return true;
  const double f_u = lv.out_flow;
  const double qlo = q0 < q1 ? q0 : q1;
  if (!(qlo >= 4.0 * f_u)) return false;
  const double shift = (q1 > q0 ? q1 - q0 : q0 - q1) * 6.0 * f_u / qlo;
  return last_margin_[li] > shift + kFpSlack;
}

bool DistRank::best_move_for(std::uint32_t li, BestMove& best) {
  const LocalVertex& lv = verts_[li];
  const ModuleId cur = lv.module;

  // Flow from li to each neighbor module, and whether that module was
  // reached through a non-owned vertex (⇒ boundary module, §3.4). The
  // accumulator is rank-level scratch: allocation-free per vertex, cleared
  // in O(#touched), iterated in deterministic first-touch (= arc) order.
  if (nbflow_.capacity() < level_n_) nbflow_.reset(level_n_);
  nbflow_.clear();
  for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
    const LocalVertex& nb = verts_[arcs_[a].target];
    NeighborFlow& e = nbflow_[nb.module];
    e.flow += arcs_[a].flow;
    if (nb.kind != Kind::kOwned) e.boundary = 1;
    ++wk(Phase::kFindBestModule).arcs_scanned;
  }
  if (nbflow_.empty()) return false;

  const double f_to_old = nbflow_.value_or(cur, {}).flow;
  auto cur_it = modules_.find(cur);
  DINFOMAP_REQUIRE_MSG(cur_it != modules_.end(),
                       "vertex's own module missing from local table");

  double best_delta = -cfg_.move_epsilon;
  ModuleId best_target = cur;
  MoveOutcome best_outcome;
  // Smallest rejection distance over the evaluated candidates; the activity
  // tracker records it so a later round can prove the rejection still holds
  // under bounded q-drift without re-evaluating (see can_prune).
  double reject_margin = std::numeric_limits<double>::infinity();

  for (const ModuleId mod : nbflow_.keys()) {
    if (mod == cur) continue;
    const NeighborFlow& e = *nbflow_.find(mod);
    auto it = modules_.find(mod);
    if (it == modules_.end()) {
      // Candidate module not yet synced into the local table; the vertex
      // cannot consider it this round. Counted (not silent) so the invariant
      // watchdog can flag pathological skip rates.
      ++skipped_unsynced_round_;
      continue;
    }
    // Anti-bouncing (§3.4, minimum-label strategy of Lu et al.): in a
    // synchronous round two vertices on different ranks can swap into each
    // other's modules and oscillate forever. For any (cur, target) pair of
    // *boundary* modules one fixed direction yields (min_label_yields) — of
    // any conflicting pair exactly one side moves; blocked merges remain
    // reachable from the yielding side or at the next level.
    if (cfg_.min_label && e.boundary && min_label_yields(cur, mod)) continue;
    MoveDelta d;
    d.p_u = lv.node_flow;
    d.f_u = lv.out_flow;
    d.f_to_old = f_to_old;
    d.f_to_new = e.flow;
    d.old_stats = cur_it->second;
    d.new_stats = it->second;
    d.q_total = q_total_;
    const MoveOutcome out = eval_move(d);
    ++wk(Phase::kFindBestModule).delta_evals;
    if (out.delta_codelength >= -cfg_.move_epsilon) {
      const double m = out.delta_codelength + cfg_.move_epsilon;
      if (m < reject_margin) reject_margin = m;
      continue;
    }
    reject_margin = 0.0;  // an accepting candidate exists; never prune on margin
    if (out.delta_codelength < best_delta - 1e-15 ||
        (out.delta_codelength < best_delta + 1e-15 && mod < best_target)) {
      best_delta = out.delta_codelength;
      best_target = mod;
      best_outcome = out;
    }
  }
  const bool found = best_target != cur;
  note_evaluated(li, found, reject_margin);
  if (!found) return false;
  best.target = best_target;
  best.delta_l = best_delta;
  best.outcome = best_outcome;
  return true;
}

void DistRank::apply_local_move(std::uint32_t li, const BestMove& mv) {
  LocalVertex& lv = verts_[li];
  modules_[lv.module] = mv.outcome.old_after;
  modules_[mv.target] = mv.outcome.new_after;
  q_total_ += mv.outcome.delta_q_total;
  if (track_activity_) {
    // One event: the vertex changed assignment and both module tables
    // changed statistics. All three share the tick so the relative order of
    // stamps vs evaluations is identical in serial and parallel commits.
    const std::uint64_t t = tick();
    stamp_assign(li, t);
    stamp_stats(lv.module, t);
    stamp_stats(mv.target, t);
  }
  lv.module = mv.target;
  wk(Phase::kOther).module_updates += 2;
}

std::uint64_t DistRank::find_best_modules(bool with_delegates,
                                          util::Xoshiro256& rng,
                                          std::vector<HubProposal>& proposals) {
  PhaseScope scope(*this, Phase::kFindBestModule);
  std::vector<std::uint32_t> order = movable_;
  util::deterministic_shuffle(order, rng);
  if (pool_ != nullptr)
    return find_best_modules_parallel(with_delegates, order, proposals);

  std::uint64_t moves = 0;
  std::vector<std::uint8_t> dirty_flag(verts_.size(), 0);
  for (std::uint32_t li : dirty_owned_) dirty_flag[li] = 1;

  const bool prune = track_activity_ && cfg_.active_set;
  for (std::uint32_t li : order) {
    const bool is_hub = verts_[li].kind == Kind::kDelegate;
    if (is_hub && !with_delegates) continue;
    if (is_hub && cfg_.exact_hub_moves) continue;  // handled by the exact phase
    if (prune && !is_hub && can_prune(li)) {
      ++pruned_round_;
      ++wk(Phase::kFindBestModule).pruned_evals;
      continue;
    }
    BestMove mv;
    if (!best_move_for(li, mv)) continue;
    if (is_hub) {
      proposals.push_back({verts_[li].global, comm_.rank(), mv.target,
                           mv.delta_l});
    } else {
      apply_local_move(li, mv);
      ++moves;
      if (!dirty_flag[li]) {
        dirty_flag[li] = 1;
        dirty_owned_.push_back(li);
      }
    }
  }
  return moves;
}

bool DistRank::select_best_cached(std::uint32_t li, const GatherSpan& span,
                                  const std::vector<CachedFlow>& entries,
                                  BestMove& best) {
  const LocalVertex& lv = verts_[li];
  const ModuleId cur = lv.module;
  auto cur_it = modules_.find(cur);
  DINFOMAP_REQUIRE_MSG(cur_it != modules_.end(),
                       "vertex's own module missing from local table");

  double best_delta = -cfg_.move_epsilon;
  ModuleId best_target = cur;
  MoveOutcome best_outcome;
  double reject_margin = std::numeric_limits<double>::infinity();

  // Exact replica of best_move_for's candidate loop over the cached gather:
  // entries are in the accumulator's first-touch (= arc) order, so every
  // floating-point operation, skip condition, margin update, and tie-break
  // happens in the same sequence a fresh serial scan would produce.
  for (std::uint32_t i = 0; i < span.count; ++i) {
    const CachedFlow& e = entries[span.begin + i];
    const ModuleId mod = e.mod;
    if (mod == cur) continue;
    auto it = modules_.find(mod);
    if (it == modules_.end()) {
      ++skipped_unsynced_round_;
      continue;
    }
    if (cfg_.min_label && e.boundary && min_label_yields(cur, mod)) continue;
    MoveDelta d;
    d.p_u = lv.node_flow;
    d.f_u = lv.out_flow;
    d.f_to_old = span.f_to_old;
    d.f_to_new = e.flow;
    d.old_stats = cur_it->second;
    d.new_stats = it->second;
    d.q_total = q_total_;
    const MoveOutcome out = eval_move(d);
    ++wk(Phase::kFindBestModule).delta_evals;
    if (out.delta_codelength >= -cfg_.move_epsilon) {
      const double m = out.delta_codelength + cfg_.move_epsilon;
      if (m < reject_margin) reject_margin = m;
      continue;
    }
    reject_margin = 0.0;
    if (out.delta_codelength < best_delta - 1e-15 ||
        (out.delta_codelength < best_delta + 1e-15 && mod < best_target)) {
      best_delta = out.delta_codelength;
      best_target = mod;
      best_outcome = out;
    }
  }
  const bool found = best_target != cur;
  note_evaluated(li, found, reject_margin);
  if (!found) return false;
  best.target = best_target;
  best.delta_l = best_delta;
  best.outcome = best_outcome;
  return true;
}

void DistRank::note_pool_dispatch(Phase ph) {
  std::uint64_t arcs = 0;
  for (auto& ts : scratch_) {
    arcs += ts.arcs_scanned;
    ts.arcs_scanned = 0;
  }
  wk(ph).arcs_scanned += arcs;
  if (metrics_ == nullptr) return;
  metrics_->counter("pool.tasks")
      .inc(static_cast<std::uint64_t>(pool_->num_threads()));
  metrics_->counter("pool.dispatches").inc();
  const auto& secs = pool_->last_slot_seconds();
  double max_s = 0;
  double sum_s = 0;
  for (double s : secs) {
    max_s = std::max(max_s, s);
    sum_s += s;
  }
  if (sum_s > 0) {
    const double mean = sum_s / static_cast<double>(secs.size());
    metrics_->histogram("pool.imbalance_pct")
        .observe(static_cast<std::uint64_t>(max_s / mean * 100.0));
  }
  std::size_t bytes = 0;
  for (const auto& ts : scratch_) bytes += ts.memory_bytes();
  metrics_->gauge("pool.scratch_bytes").set(static_cast<double>(bytes));
}

std::uint64_t DistRank::find_best_modules_parallel(
    bool with_delegates, const std::vector<std::uint32_t>& order,
    std::vector<HubProposal>& proposals) {
  // --- propose (parallel) -------------------------------------------------
  // Each slot gathers neighbor flows for its contiguous chunk of the
  // shuffled order against the frozen pass-start module assignment. Only
  // slot-local scratch is written; verts_/arcs_/modules_ are read-only here.
  // Clear every slot's output up front: slots whose chunk is empty are never
  // dispatched and must not leak a previous pass's spans into the commit.
  for (auto& ts : scratch_) {
    if (ts.nbflow.capacity() < level_n_) ts.nbflow.reset(level_n_);
    ts.entries.clear();
    ts.spans.clear();
  }
  const bool prune = track_activity_ && cfg_.active_set;
  {
    obs::SpanScope span(trace_buf_, "parallel_for");
    pool_->parallel_for(order.size(), [&](int slot, std::size_t b,
                                          std::size_t e) {
      ThreadScratch& ts = scratch_[static_cast<std::size_t>(slot)];
      for (std::size_t pos = b; pos < e; ++pos) {
        const std::uint32_t li = order[pos];
        const bool is_hub = verts_[li].kind == Kind::kDelegate;
        if (is_hub && !with_delegates) continue;
        if (is_hub && cfg_.exact_hub_moves) continue;
        if (prune && !is_hub && can_prune(li)) {
          // Pass-start stamps say the last evaluation still stands. Emit a
          // gather-free marker span; the commit re-checks against the live
          // stamps (activation is monotone within a round, so a vertex that
          // is prunable at pass start can only *lose* that status by commit
          // time — in which case the commit falls back to a fresh rescan).
          GatherSpan sp;
          sp.pos = pos;
          sp.li = li;
          sp.pruned = 1;
          ts.spans.push_back(sp);
          continue;
        }
        const ModuleId cur = verts_[li].module;
        ts.nbflow.clear();
        for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
          const LocalVertex& nb = verts_[arcs_[a].target];
          NeighborFlow& nf = ts.nbflow[nb.module];
          nf.flow += arcs_[a].flow;
          if (nb.kind != Kind::kOwned) nf.boundary = 1;
          ++ts.arcs_scanned;
        }
        if (ts.nbflow.empty()) continue;  // isolated vertex; never movable
        GatherSpan sp;
        sp.pos = pos;
        sp.li = li;
        sp.begin = static_cast<std::uint32_t>(ts.entries.size());
        sp.count = static_cast<std::uint32_t>(ts.nbflow.size());
        sp.f_to_old = ts.nbflow.value_or(cur, {}).flow;
        for (const ModuleId mod : ts.nbflow.keys()) {
          const NeighborFlow& nf = *ts.nbflow.find(mod);
          ts.entries.push_back({mod, nf.flow, nf.boundary});
        }
        ts.spans.push_back(sp);
      }
    });
  }
  note_pool_dispatch(Phase::kFindBestModule);

  // --- commit (serial, deterministic order) -------------------------------
  // Chunks are contiguous, so walking slots in index order replays the exact
  // shuffled vertex order. A cached gather stays valid until a neighbor of
  // the vertex commits a move; committed movers stamp their arc targets,
  // which covers every local reader because movers are owned vertices and
  // owned vertices carry their full local adjacency (graph symmetry).
  if (stale_stamp_.size() != verts_.size()) {
    stale_stamp_.assign(verts_.size(), 0);
    pass_epoch_ = 0;
  }
  ++pass_epoch_;

  std::uint64_t moves = 0;
  std::vector<std::uint8_t> dirty_flag(verts_.size(), 0);
  for (std::uint32_t li : dirty_owned_) dirty_flag[li] = 1;

  for (const ThreadScratch& ts : scratch_) {
    for (const GatherSpan& sp : ts.spans) {
      const std::uint32_t li = sp.li;
      BestMove mv;
      bool found;
      if (sp.pruned) {
        if (can_prune(li)) {  // live stamps: same verdict the serial sweep makes
          ++pruned_round_;
          ++wk(Phase::kFindBestModule).pruned_evals;
          continue;
        }
        ++stale_rescans_;
        found = best_move_for(li, mv);  // a commit this round re-activated it
      } else if (stale_stamp_[li] == pass_epoch_) {
        ++stale_rescans_;
        found = best_move_for(li, mv);  // fresh serial rescan
      } else {
        found = select_best_cached(li, sp, ts.entries, mv);
      }
      if (!found) continue;
      if (verts_[li].kind == Kind::kDelegate) {
        proposals.push_back(
            {verts_[li].global, comm_.rank(), mv.target, mv.delta_l});
      } else {
        apply_local_move(li, mv);
        ++moves;
        for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a)
          stale_stamp_[arcs_[a].target] = pass_epoch_;
        if (!dirty_flag[li]) {
          dirty_flag[li] = 1;
          dirty_owned_.push_back(li);
        }
      }
    }
  }
  if (metrics_ != nullptr)
    metrics_->counter("pool.stale_rescans").set(stale_rescans_);
  return moves;
}

// ---------------------------------------------------------------------------
// Phase 2: delegate consensus (Alg. 2 line 4)
// ---------------------------------------------------------------------------

std::uint64_t DistRank::apply_hub_winners(const std::vector<HubProposal>& winners) {
  std::uint64_t hub_moves = 0;
  for (const HubProposal& win : winners) {
    if (win.delta_l >= -cfg_.move_epsilon) continue;
    ++hub_moves;  // identical count on every rank
    auto it = index_.find(win.hub);
    if (it == index_.end()) continue;  // hub has no arcs here
    LocalVertex& lv = verts_[it->second];
    if (lv.module == win.target) continue;
    // Move the hub's mass between the local copies of the two modules; exit
    // probabilities are restored exactly by the swap phase of this round.
    auto& old_m = modules_[lv.module];
    old_m.sum_pr -= lv.node_flow;
    old_m.num_members = old_m.num_members > 0 ? old_m.num_members - 1 : 0;
    auto& new_m = modules_[win.target];
    new_m.sum_pr += lv.node_flow;
    new_m.num_members += 1;
    if (track_activity_) {
      const std::uint64_t t = tick();
      stamp_assign(it->second, t);
      stamp_stats(lv.module, t);
      stamp_stats(win.target, t);
    }
    lv.module = win.target;
    wk(Phase::kBroadcastDelegates).module_updates += 2;
  }
  return hub_moves;
}

std::uint64_t DistRank::broadcast_delegates(
    std::vector<HubProposal>& proposals) {
  PhaseScope scope(*this, Phase::kBroadcastDelegates);
  auto all = comm_.allgatherv(proposals);

  // Winner per hub: minimal ΔL, ties → smaller target module, smaller rank.
  std::map<VertexId, HubProposal> winners;  // ordered ⇒ deterministic apply
  for (const auto& batch : all) {
    for (const HubProposal& hp : batch) {
      auto [it, inserted] = winners.try_emplace(hp.hub, hp);
      if (inserted) continue;
      HubProposal& w = it->second;
      const bool better =
          hp.delta_l < w.delta_l - 1e-15 ||
          (hp.delta_l < w.delta_l + 1e-15 &&
           (hp.target < w.target || (hp.target == w.target && hp.rank < w.rank)));
      if (better) w = hp;
    }
  }
  std::vector<HubProposal> ordered;
  ordered.reserve(winners.size());
  for (const auto& [hub, win] : winners) ordered.push_back(win);
  return apply_hub_winners(ordered);
}

std::uint64_t DistRank::broadcast_delegates_exact() {
  PhaseScope scope(*this, Phase::kBroadcastDelegates);
  const int p = comm_.size();
  const int r = comm_.rank();

  // Ship each local hub's per-module flow partials (with the sender's
  // post-sync module stats attached) to the hub's owner. The per-hub gather
  // is embarrassingly parallel (each hub's accumulation is slot-local and
  // module tables are frozen); per-destination record order is preserved by
  // merging the contiguous hub chunks in slot order.
  std::vector<std::vector<HubFlowRecord>> out(p);
  const auto scan_hub = [&](std::uint32_t li,
                            util::SparseAccumulator<ModuleId, NeighborFlow>& acc,
                            std::uint64_t& arcs,
                            std::vector<std::vector<HubFlowRecord>>& sink) {
    const LocalVertex& hv = verts_[li];
    acc.clear();
    for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
      acc[verts_[arcs_[a].target].module].flow += arcs_[a].flow;
      ++arcs;
    }
    const int dest = owner_of(hv.global);
    for (const ModuleId mod : acc.keys()) {
      HubFlowRecord rec;
      rec.hub = hv.global;
      rec.module = mod;
      rec.flow = acc.find(mod)->flow;
      auto it = modules_.find(mod);
      if (it != modules_.end()) {
        rec.sum_pr = it->second.sum_pr;
        rec.exit_pr = it->second.exit_pr;
        rec.num_members = static_cast<std::int64_t>(it->second.num_members);
      } else {
        rec.num_members = -1;  // stats unknown to the sender
      }
      sink[static_cast<std::size_t>(dest)].push_back(rec);
    }
  };
  if (pool_ != nullptr) {
    for (auto& ts : scratch_) {  // pre-clear: empty chunks are not dispatched
      if (ts.nbflow.capacity() < level_n_) ts.nbflow.reset(level_n_);
      ts.hub_out.resize(static_cast<std::size_t>(p));
      for (auto& v : ts.hub_out) v.clear();
    }
    {
      obs::SpanScope span(trace_buf_, "parallel_for");
      pool_->parallel_for(hubs_.size(), [&](int slot, std::size_t b,
                                            std::size_t e) {
        ThreadScratch& ts = scratch_[static_cast<std::size_t>(slot)];
        for (std::size_t i = b; i < e; ++i)
          scan_hub(hubs_[i], ts.nbflow, ts.arcs_scanned, ts.hub_out);
      });
    }
    for (auto& ts : scratch_) {
      for (int dest = 0; dest < p; ++dest) {
        auto& src = ts.hub_out[static_cast<std::size_t>(dest)];
        out[dest].insert(out[dest].end(), src.begin(), src.end());
      }
    }
    note_pool_dispatch(Phase::kBroadcastDelegates);
  } else {
    if (nbflow_.capacity() < level_n_) nbflow_.reset(level_n_);
    std::uint64_t arcs = 0;
    for (std::uint32_t li : hubs_) scan_hub(li, nbflow_, arcs, out);
    wk(Phase::kBroadcastDelegates).arcs_scanned += arcs;
  }
  auto incoming = comm_.alltoallv(out);

  // Owners merge flows and evaluate the exact ΔL per owned hub.
  struct Candidate {
    double flow = 0;
    ModuleStats stats;
    bool have_stats = false;
  };
  std::unordered_map<VertexId, std::unordered_map<ModuleId, Candidate>> hub_flows;
  for (const auto& batch : incoming) {
    for (const HubFlowRecord& rec : batch) {
      Candidate& cand = hub_flows[rec.hub][rec.module];
      cand.flow += rec.flow;
      if (!cand.have_stats && rec.num_members >= 0) {
        cand.stats.sum_pr = rec.sum_pr;
        cand.stats.exit_pr = rec.exit_pr;
        cand.stats.num_members = static_cast<std::uint64_t>(rec.num_members);
        cand.have_stats = true;
      }
    }
  }

  std::vector<HubProposal> decisions;
  // Sorted hub order keeps the decision stream (and the allgathered payload
  // layout) independent of hash layout.
  for (const VertexId hub : util::sorted_keys(hub_flows)) {
    auto& flows = hub_flows.at(hub);
    DINFOMAP_REQUIRE_MSG(owner_of(hub) == r, "hub flows sent to wrong owner");
    auto it = index_.find(hub);
    DINFOMAP_REQUIRE_MSG(it != index_.end(), "owner does not hold its hub");
    const LocalVertex& hv = verts_[it->second];
    const ModuleId cur = hv.module;
    auto cur_it = flows.find(cur);
    const double f_to_old = cur_it != flows.end() ? cur_it->second.flow : 0.0;
    auto own_cur = modules_.find(cur);
    if (own_cur == modules_.end()) continue;

    double best_delta = -cfg_.move_epsilon;
    ModuleId best_target = cur;
    // dlint:allow(unordered-iter): candidate scan is order-insensitive — the
    // min-label tie-break inside the epsilon band picks the same winner for
    // any iteration order (ICPP'18 §3.4 anti-bouncing argument).
    for (const auto& [mod, cand] : flows) {
      if (mod == cur) continue;
      ModuleStats stats;
      if (auto own = modules_.find(mod); own != modules_.end())
        stats = own->second;
      else if (cand.have_stats)
        stats = cand.stats;
      else
        continue;
      MoveDelta d;
      d.p_u = hv.node_flow;
      d.f_u = hv.out_flow;  // exact global hub flow
      d.f_to_old = f_to_old;
      d.f_to_new = cand.flow;  // exact global flow to the candidate
      d.old_stats = own_cur->second;
      d.new_stats = stats;
      d.q_total = q_total_;
      const MoveOutcome outcome = eval_move(d);
      ++wk(Phase::kBroadcastDelegates).delta_evals;
      if (outcome.delta_codelength < best_delta - 1e-15 ||
          (outcome.delta_codelength < best_delta + 1e-15 && mod < best_target)) {
        best_delta = outcome.delta_codelength;
        best_target = mod;
      }
    }
    if (best_target != cur)
      decisions.push_back({hub, r, best_target, best_delta});
  }

  // Every rank learns every owner's decisions (unique per hub by
  // construction) and applies them in deterministic hub order.
  auto all = comm_.allgatherv(decisions);
  std::vector<HubProposal> ordered;
  for (const auto& batch : all)
    ordered.insert(ordered.end(), batch.begin(), batch.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const HubProposal& a, const HubProposal& b) { return a.hub < b.hub; });
  return apply_hub_winners(ordered);
}

// ---------------------------------------------------------------------------
// Phase 3: information swapping (Alg. 3)
// ---------------------------------------------------------------------------

void DistRank::swap_boundary_info() {
  PhaseScope scope(*this, Phase::kSwapBoundaryInfo);
  const int p = comm_.size();

  // --- boundary-vertex records (Alg. 3 lines 2–20) -----------------------
  // For every owned vertex that changed module and is a ghost elsewhere,
  // ship its whole-module record; per-destination isSent flags stop the
  // same module's statistics from being shipped twice.
  std::vector<std::vector<BoundaryRecord>> out(p);
  std::vector<std::unordered_set<ModuleId>> sent(p);
  for (std::uint32_t li : dirty_owned_) {
    auto sub = subscribers_.find(li);
    if (sub == subscribers_.end()) continue;
    const LocalVertex& lv = verts_[li];
    auto mod_it = modules_.find(lv.module);
    for (int dest : sub->second) {
      BoundaryRecord rec;
      rec.vertex = lv.global;
      rec.info.mod_id = lv.module;
      if (mod_it != modules_.end()) {
        rec.info.sum_pr = mod_it->second.sum_pr;
        rec.info.exit_pr = mod_it->second.exit_pr;
        rec.info.num_members =
            static_cast<std::int32_t>(mod_it->second.num_members);
      }
      rec.info.is_sent = sent[dest].insert(lv.module).second ? 0 : 1;
      out[dest].push_back(rec);
    }
  }
  dirty_owned_.clear();
  auto incoming = comm_.alltoallv(out);

  // Receive side (Alg. 3 lines 22–32): update ghost→module mapping; build
  // new modules from unseen records, skip duplicate statistics.
  // Watchdog: the sender's isSent flags guarantee at most one stats-bearing
  // record per (batch, module); a second one means the dedup protocol broke.
  const bool watch = recorder_ != nullptr && recorder_->enabled() &&
                     recorder_->options().watchdog;
  std::unordered_set<ModuleId> stats_seen;
  for (const auto& batch : incoming) {
    if (watch) stats_seen.clear();
    for (const BoundaryRecord& rec : batch) {
      if (watch && rec.info.is_sent == 0 &&
          !stats_seen.insert(rec.info.mod_id).second) {
        obs::Anomaly a;
        a.rank = comm_.rank();
        a.level = current_level_;
        a.round = round_index_;
        a.kind = "issent_dedup_violation";
        a.detail = "module " + std::to_string(rec.info.mod_id) +
                   " statistics shipped twice in one boundary batch";
        recorder_->report_anomaly(comm_.rank(), std::move(a));
      }
      auto it = index_.find(rec.vertex);
      if (it == index_.end()) continue;
      if (track_activity_ && verts_[it->second].module != rec.info.mod_id)
        stamp_assign(it->second, tick());
      verts_[it->second].module = rec.info.mod_id;
      if (modules_.count(rec.info.mod_id)) continue;  // existing module
      if (rec.info.is_sent) continue;                 // stats already shipped
      ModuleStats stats;
      stats.sum_pr = rec.info.sum_pr;
      stats.exit_pr = rec.info.exit_pr;
      stats.num_members = static_cast<std::uint64_t>(
          std::max<std::int32_t>(rec.info.num_members, 0));
      modules_.emplace(rec.info.mod_id, stats);
      if (track_activity_) stamp_stats(rec.info.mod_id, tick());
      ++wk(Phase::kSwapBoundaryInfo).module_updates;
    }
  }

  // --- exact aggregation at module homes ----------------------------------
  // Every vertex is controlled by exactly one rank and every arc is held by
  // exactly one rank, so per-module partial sums reduce to exact statistics.
  // Accumulated in the reusable dense scratch (module ids < level_n_).
  if (partial_acc_.capacity() < level_n_) partial_acc_.reset(level_n_);
  partial_acc_.clear();
  const int r = comm_.rank();
  if (pool_ != nullptr) {
    // Parallel scan, serial reduce: each slot emits its chunk's individual
    // (module, contribution) records; the rank thread replays them in slot
    // order. Chunks are contiguous, so the replay performs the exact adds of
    // the serial loops in the exact order — per-slot *subtotals* would
    // re-associate the floating-point sums and break bit-identity across
    // thread counts. The parallel phase absorbs the traversal, module loads,
    // and boundary filtering; only the (far fewer) surviving adds serialize.
    for (auto& ts : scratch_) {  // pre-clear: empty chunks are not dispatched
      ts.vertex_stream.clear();
      ts.arc_stream.clear();
      ts.interest_stream.clear();
    }
    {
      obs::SpanScope span(trace_buf_, "parallel_for");
      pool_->parallel_for(verts_.size(), [&](int slot, std::size_t b,
                                             std::size_t e) {
        ThreadScratch& ts = scratch_[static_cast<std::size_t>(slot)];
        for (std::size_t li = b; li < e; ++li) {
          const LocalVertex& lv = verts_[li];
          const bool controlled =
              lv.kind == Kind::kOwned ||
              (lv.kind == Kind::kDelegate && owner_of(lv.global) == r);
          if (controlled) {
            ModulePartial mp;
            mp.mod_id = lv.module;
            mp.sum_pr = lv.node_flow;
            mp.num_members = 1;
            ts.vertex_stream.push_back(mp);
          }
          const ModuleId mu = lv.module;
          for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
            const ModuleId mv = verts_[arcs_[a].target].module;
            if (mu == mv) continue;
            ModulePartial mp;
            mp.mod_id = mu;
            mp.exit_pr = arcs_[a].flow;
            ts.arc_stream.push_back(mp);
          }
          ts.interest_stream.push_back(lv.module);
        }
      });
    }
    note_pool_dispatch(Phase::kSwapBoundaryInfo);
    const auto replay = [&](const ModulePartial& rec) {
      ModulePartial& mp = partial_acc_[rec.mod_id];
      mp.mod_id = rec.mod_id;
      mp.sum_pr += rec.sum_pr;
      mp.exit_pr += rec.exit_pr;
      mp.num_members += rec.num_members;
    };
    for (const auto& ts : scratch_)
      for (const ModulePartial& rec : ts.vertex_stream) replay(rec);
    for (const auto& ts : scratch_)
      for (const ModulePartial& rec : ts.arc_stream) replay(rec);
    // Zero partials double as interest declarations for every module any
    // local vertex currently references.
    for (const auto& ts : scratch_)
      for (const ModuleId m : ts.interest_stream) {
        ModulePartial& mp = partial_acc_[m];
        mp.mod_id = m;  // no-op unless this touch created the entry
      }
  } else {
    for (const auto& lv : verts_) {
      const bool controlled =
          lv.kind == Kind::kOwned ||
          (lv.kind == Kind::kDelegate && owner_of(lv.global) == r);
      if (controlled) {
        ModulePartial& mp = partial_acc_[lv.module];
        mp.mod_id = lv.module;
        mp.sum_pr += lv.node_flow;
        mp.num_members += 1;
      }
    }
    for (std::uint32_t li = 0; li < verts_.size(); ++li) {
      const ModuleId mu = verts_[li].module;
      for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
        const ModuleId mv = verts_[arcs_[a].target].module;
        if (mu == mv) continue;
        ModulePartial& mp = partial_acc_[mu];
        mp.mod_id = mu;
        mp.exit_pr += arcs_[a].flow;
      }
    }
    // Zero partials double as interest declarations for every module any
    // local vertex currently references.
    for (const auto& lv : verts_) {
      ModulePartial& mp = partial_acc_[lv.module];
      mp.mod_id = lv.module;  // no-op unless this touch created the entry
    }
  }

  std::vector<std::vector<ModulePartial>> to_home(p);
  for (const ModuleId m : partial_acc_.keys())
    to_home[home_of(m)].push_back(*partial_acc_.find(m));
  auto partials_in = comm_.alltoallv(to_home);

  homed_.clear();
  homed_interest_.clear();
  for (int src = 0; src < p; ++src) {
    for (const ModulePartial& mp : partials_in[src]) {
      ModuleStats& stats = homed_[mp.mod_id];
      stats.sum_pr += mp.sum_pr;
      stats.exit_pr += mp.exit_pr;
      stats.num_members += static_cast<std::uint64_t>(mp.num_members);
      homed_interest_[mp.mod_id].push_back(src);
    }
  }

  // Authoritative statistics back to every interested rank.
  std::vector<std::vector<ModuleInfo>> reply(p);
  for (const auto& [m, stats] : homed_) {
    ModuleInfo info;
    info.mod_id = m;
    info.sum_pr = stats.sum_pr;
    info.exit_pr = stats.exit_pr;
    info.num_members = static_cast<std::int32_t>(stats.num_members);
    for (int dest : homed_interest_.at(m)) reply[dest].push_back(info);
  }
  auto replies_in = comm_.alltoallv(reply);

  // A3 ablation switch: with whole-module swapping on (the paper's design),
  // local tables are replaced by the authoritative statistics; with the
  // naive boundary-only swap they keep whatever each rank pieced together,
  // and drift — §3.4's predicted failure. (The home aggregation above still
  // runs either way; merging and the reported L need it.)
  if (cfg_.whole_module_swap) {
    if (track_activity_) std::swap(modules_, prev_modules_);
    modules_.clear();
    // One tick for the whole table refresh; a module only gets the stamp if
    // the authoritative statistics differ bitwise from what the table held
    // before (vanished modules need no stamp: a module vanishes only when
    // its last local member moved away, and that assignment was stamped).
    const std::uint64_t t = track_activity_ ? tick() : 0;
    for (const auto& batch : replies_in) {
      for (const ModuleInfo& info : batch) {
        if (info.num_members <= 0) continue;  // module died this round
        ModuleStats stats;
        stats.sum_pr = info.sum_pr;
        stats.exit_pr = info.exit_pr;
        stats.num_members = static_cast<std::uint64_t>(info.num_members);
        modules_.emplace(info.mod_id, stats);
        if (track_activity_) {
          auto prev = prev_modules_.find(info.mod_id);
          const bool changed = prev == prev_modules_.end() ||
                               prev->second.sum_pr != stats.sum_pr ||
                               prev->second.exit_pr != stats.exit_pr ||
                               prev->second.num_members != stats.num_members;
          if (changed) stamp_stats(info.mod_id, t);
        }
        ++wk(Phase::kSwapBoundaryInfo).module_updates;
      }
    }
  }
  // Drop dead homed modules so merging sees only live ones.
  std::erase_if(homed_, [](const auto& kv) { return kv.second.num_members == 0; });
}

// ---------------------------------------------------------------------------
// Phase 4: global codelength + movement consensus
// ---------------------------------------------------------------------------

std::uint64_t DistRank::other_update(std::uint64_t local_moves,
                                     std::uint64_t hub_moves) {
  PhaseScope scope(*this, Phase::kOther);
  CodelengthTerms terms;
  double alive = 0;
  for (const auto& [m, stats] : homed_) {
    terms.q_total += stats.exit_pr;
    terms.sum_plogp_q += plogp(stats.exit_pr);
    terms.sum_plogp_q_plus_p += plogp(stats.exit_pr + stats.sum_pr);
    alive += 1;
  }
  const std::vector<double> partial = {terms.q_total, terms.sum_plogp_q,
                                       terms.sum_plogp_q_plus_p, alive,
                                       static_cast<double>(local_moves)};
  const auto total = comm_.allreduce(partial, comm::ReduceOp::kSum);

  q_total_ = total[0];
  CodelengthTerms global;
  global.q_total = total[0];
  global.sum_plogp_q = total[1];
  global.sum_plogp_q_plus_p = total[2];
  global.node_term = node_term_;
  codelength_ = global.codelength();
  alive_modules_ = static_cast<std::uint64_t>(total[3]);
  return static_cast<std::uint64_t>(total[4]) + hub_moves;
}

void DistRank::sample_table_metrics() {
  if (metrics_ == nullptr) return;
  auto& probes = metrics_->histogram("module_table.probe_len");
  for (const auto& slot : modules_) probes.observe(modules_.probe_length(slot.first));
  metrics_->gauge("module_table.size").set(static_cast<double>(modules_.size()));
  metrics_->gauge("module_table.capacity")
      .set(static_cast<double>(modules_.capacity()));
  metrics_->counter("flatmap.rehashes").set(modules_.rehashes());
}

DistRank::RoundResult DistRank::round(bool with_delegates,
                                      util::Xoshiro256& rng) {
  if (track_activity_) ensure_activity_state();
  const std::uint64_t arcs0 = wk(Phase::kFindBestModule).arcs_scanned;
  RoundResult rr;
  std::vector<HubProposal> proposals;
  rr.local_moves = find_best_modules(with_delegates, rng, proposals);
  if (with_delegates) {
    rr.hub_moves = cfg_.exact_hub_moves ? broadcast_delegates_exact()
                                        : broadcast_delegates(proposals);
  }
  swap_boundary_info();
  rr.global_moves = other_update(rr.local_moves, rr.hub_moves);
  if (recorder_ != nullptr && recorder_->enabled()) {
    obs::RoundSample sample;
    sample.level = current_level_;
    sample.round = round_index_;
    sample.codelength = codelength_;
    sample.moves = rr.global_moves;
    sample.rank_work = wk(Phase::kFindBestModule).arcs_scanned - arcs0;
    sample.skipped_unsynced = skipped_unsynced_round_;
    sample.pruned = pruned_round_;
    recorder_->record_round(comm_.rank(), sample);
    if (trace_buf_ != nullptr) {
      trace_buf_->counter("codelength", codelength_);
      trace_buf_->counter("global_moves",
                          static_cast<double>(rr.global_moves));
    }
    if (metrics_ != nullptr) {
      metrics_->histogram("round.moves").observe(rr.global_moves);
      metrics_->counter("moves.skipped_unsynced").inc(skipped_unsynced_round_);
      metrics_->counter("moves.pruned").inc(pruned_round_);
      sample_table_metrics();
    }
  }
  skipped_unsynced_total_ += skipped_unsynced_round_;
  skipped_unsynced_round_ = 0;
  pruned_round_ = 0;
  ++round_index_;
  return rr;
}

// ---------------------------------------------------------------------------
// Async priority-worklist engine (DESIGN.md §12)
// ---------------------------------------------------------------------------

std::uint64_t DistRank::async_reconcile(bool with_delegates,
                                        std::uint64_t local_moves_since) {
  // Hub consensus first (stage 1 only): hubs are deliberately kept off the
  // worklist — their move decisions need globally merged flows, so they only
  // move at reconciliation points, through the synchronous consensus path.
  std::uint64_t hub_moves = 0;
  if (with_delegates) {
    if (cfg_.exact_hub_moves) {
      hub_moves = broadcast_delegates_exact();
    } else {
      std::vector<HubProposal> proposals;
      {
        PhaseScope scope(*this, Phase::kFindBestModule);
        for (std::uint32_t li : hubs_) {
          BestMove mv;
          if (best_move_for(li, mv))
            proposals.push_back(
                {verts_[li].global, comm_.rank(), mv.target, mv.delta_l});
        }
      }
      hub_moves = broadcast_delegates(proposals);
    }
  }
  swap_boundary_info();
  const std::uint64_t global_moves = other_update(local_moves_since, hub_moves);

  // Stamp-driven reactivation: the swap stamped every module whose
  // authoritative statistics differ from the local estimates and every ghost
  // whose assignment moved, and other_update replaced q_total_ with the
  // exact global value. Re-seed exactly the vertices whose last evaluation
  // can no longer be proven current.
  for (std::uint32_t li : movable_) {
    if (verts_[li].kind == Kind::kDelegate) continue;
    if (!can_prune(li)) worklist_.activate(li, verts_[li].out_flow);
  }
  return global_moves;
}

std::uint64_t DistRank::async_level(bool with_delegates, int& recons_out) {
  ensure_activity_state();
  const int p = comm_.size();
  recons_out = 0;

  // Reverse adjacency, once per level: owned readers of every non-owned
  // local vertex, so an incoming delta reactivates exactly the local move
  // candidates whose neighborhoods it touched.
  ghost_readers_.assign(verts_.size(), {});
  for (std::uint32_t li : movable_) {
    if (verts_[li].kind == Kind::kDelegate) continue;
    for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
      const std::uint32_t t = arcs_[a].target;
      if (verts_[t].kind != Kind::kOwned) ghost_readers_[t].push_back(li);
    }
  }

  // Seed every movable non-hub; boundary vertices get a flat bonus on top of
  // their out-flow so the first drains work the rank frontier, where cross-
  // rank conflicts are resolved earliest.
  worklist_.reset(verts_.size());
  std::uint64_t n_movable = 0;
  for (std::uint32_t li : movable_) {
    if (verts_[li].kind == Kind::kDelegate) continue;
    ++n_movable;
    bool boundary = false;
    for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
      if (verts_[arcs_[a].target].kind != Kind::kOwned) {
        boundary = true;
        break;
      }
    }
    worklist_.activate(li, verts_[li].out_flow + (boundary ? 1.0 : 0.0));
  }

  // Per-epoch drain budget: enough to retire the whole seed in a handful of
  // epochs, but small enough that priority order (not seed order) dominates
  // which vertices move between exchanges.
  const std::uint64_t budget = std::max<std::uint64_t>(256, n_movable);
  const int lag = std::max(1, cfg_.async_max_lag);
  const int max_epochs = cfg_.max_rounds * lag;

  std::uint64_t level_moves = 0;
  std::uint64_t local_since_recon = 0;
  double recon_l_prev = codelength_;
  bool last_was_recon = false;

  // Best reconciled state seen, for the end-of-level rollback: asynchronous
  // drains can regress the exact L (stale-statistics decisions), and a level
  // must never *end* in a regressed state — merges are irreversible, so
  // damage here would be locked in for every later level.
  double best_l = codelength_;
  std::vector<ModuleId> best_assign(verts_.size());
  for (std::uint32_t li = 0; li < verts_.size(); ++li)
    best_assign[li] = verts_[li].module;

  for (int epoch = 0; epoch < max_epochs; ++epoch) {
    obs::SpanScope epoch_span(trace_buf_, "AsyncEpoch");
    last_was_recon = false;
    const std::uint64_t arcs0 = wk(Phase::kFindBestModule).arcs_scanned;

    // --- drain: pop by priority, move, activate local readers -------------
    std::vector<std::vector<ModuleDeltaRecord>> delta_out(p);
    if (dirty_flag_.size() != verts_.size())
      dirty_flag_.assign(verts_.size(), 0);
    for (std::uint32_t li : dirty_owned_) dirty_flag_[li] = 1;
    std::uint64_t epoch_local_moves = 0;
    {
      PhaseScope scope(*this, Phase::kFindBestModule);
      std::uint64_t drained = 0;
      std::uint32_t li = 0;
      while (drained < budget && worklist_.try_pop(li)) {
        ++drained;
        BestMove mv;
        if (!best_move_for(li, mv)) continue;
        const ModuleId old_mod = verts_[li].module;
        apply_local_move(li, mv);
        ++epoch_local_moves;
        if (!dirty_flag_[li]) {
          dirty_flag_[li] = 1;
          dirty_owned_.push_back(li);
        }
        const double gain = -mv.delta_l;
        for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
          const std::uint32_t t = arcs_[a].target;
          if (verts_[t].kind == Kind::kOwned) worklist_.activate(t, gain);
        }
        ModuleDeltaRecord rec;
        rec.vertex = verts_[li].global;
        rec.old_module = old_mod;
        rec.new_module = mv.target;
        rec.node_flow = verts_[li].node_flow;
        rec.gain = gain;
        if (auto sub = subscribers_.find(li); sub != subscribers_.end())
          for (int dest : sub->second)
            delta_out[static_cast<std::size_t>(dest)].push_back(rec);
      }
    }

    // --- epoch exchange: one packed collective, no barrier-per-sweep ------
    // Deltas go to the movers' subscribers; a tiny status record goes to
    // every rank and doubles as the termination consensus (no moves anywhere
    // ⇒ no deltas anywhere ⇒ no new activations ⇒ queues can only shrink).
    std::uint64_t epoch_global_moves = 0;
    std::uint64_t global_queued = 0;
    local_since_recon += epoch_local_moves;
    {
      PhaseScope scope(*this, Phase::kSwapBoundaryInfo);
      EpochStatus st;
      st.moves = epoch_local_moves;
      st.queued = worklist_.live();
      std::vector<std::vector<EpochStatus>> status_out(p);
      for (int d = 0; d < p; ++d) status_out[static_cast<std::size_t>(d)].push_back(st);
      auto [deltas_in, status_in] = comm_.alltoallv_packed(delta_out, status_out);
      if (metrics_ != nullptr) metrics_->counter("comm.packed_exchanges").inc();
      for (const auto& batch : status_in) {
        for (const EpochStatus& s : batch) {
          epoch_global_moves += s.moves;
          global_queued += s.queued;
        }
      }
      // Apply received deltas: exact ghost assignments, *estimated* module
      // masses. Exit probabilities cannot be corrected locally (the flows
      // crossing a remote module's boundary are not visible here), so the
      // table intentionally runs on stale statistics until the next
      // reconciliation rebuilds it from the authoritative homes — that is
      // the staleness the async_max_lag budget bounds.
      for (int src = 0; src < p; ++src) {
        for (const ModuleDeltaRecord& rec : deltas_in[src]) {
          auto it = index_.find(rec.vertex);
          if (it == index_.end()) continue;
          const std::uint32_t g = it->second;
          if (verts_[g].module == rec.new_module) continue;
          verts_[g].module = rec.new_module;
          const std::uint64_t t = tick();
          stamp_assign(g, t);
          if (auto om = modules_.find(rec.old_module); om != modules_.end()) {
            om->second.sum_pr -= rec.node_flow;
            if (om->second.num_members > 0) --om->second.num_members;
            stamp_stats(rec.old_module, t);
          }
          if (auto nm = modules_.find(rec.new_module); nm != modules_.end()) {
            nm->second.sum_pr += rec.node_flow;
            ++nm->second.num_members;
          } else {
            ModuleStats stats;
            stats.sum_pr = rec.node_flow;
            // True exit flow is unknown here (reconciliation restores it);
            // estimate it as the mover's out-flow rather than zero — a
            // zero-exit module prices as a perfect sink in the map equation
            // and the drains over-merge into it.
            stats.exit_pr = rec.node_flow;
            stats.num_members = 1;
            modules_.emplace(rec.new_module, stats);
          }
          stamp_stats(rec.new_module, t);
          ++wk(Phase::kSwapBoundaryInfo).module_updates;
          for (std::uint32_t reader : ghost_readers_[g])
            worklist_.activate(reader, rec.gain);
        }
      }
    }

    const bool quiet = epoch_global_moves == 0 && global_queued == 0;
    const bool lag_due = (epoch + 1) % lag == 0;

    // --- reconciliation / termination -------------------------------------
    std::uint64_t recon_moves = 0;
    bool reconciled = false;
    if (lag_due || quiet) {
      recon_moves = async_reconcile(with_delegates, local_since_recon);
      level_moves += recon_moves;
      local_since_recon = 0;
      ++recons_out;
      reconciled = true;
      last_was_recon = true;
      if (current_level_ == 0) {
        ++stage1_rounds_;
        round_mdl_.push_back(codelength_);
      }
    }

    // --- flight-recorder epoch sample -------------------------------------
    if (recorder_ != nullptr && recorder_->enabled()) {
      obs::RoundSample sample;
      sample.level = current_level_;
      sample.round = round_index_;
      sample.codelength = codelength_;  // last reconciled L unless reconciled
      sample.exact_mdl = reconciled;
      sample.is_epoch = true;
      sample.moves = reconciled ? recon_moves : epoch_global_moves;
      sample.rank_work = wk(Phase::kFindBestModule).arcs_scanned - arcs0;
      sample.skipped_unsynced = skipped_unsynced_round_;
      const auto& wl = worklist_.counters();
      sample.worklist_pushed = wl.pushed;
      sample.worklist_popped = wl.popped;
      sample.worklist_requeued = wl.requeued;
      sample.worklist_stale = wl.stale;
      recorder_->record_round(comm_.rank(), sample);
      if (trace_buf_ != nullptr) {
        trace_buf_->counter("codelength", codelength_);
        trace_buf_->counter("worklist_live",
                            static_cast<double>(worklist_.live()));
      }
      if (metrics_ != nullptr) {
        metrics_->counter("worklist.pushed").inc(wl.pushed);
        metrics_->counter("worklist.popped").inc(wl.popped);
        metrics_->counter("worklist.requeued").inc(wl.requeued);
        metrics_->counter("worklist.stale").inc(wl.stale);
        metrics_->counter("moves.skipped_unsynced").inc(skipped_unsynced_round_);
      }
    }
    skipped_unsynced_total_ += skipped_unsynced_round_;
    skipped_unsynced_round_ = 0;
    worklist_.reset_counters();
    ++round_index_;

    if (reconciled) {
      if (codelength_ < best_l) {
        best_l = codelength_;
        for (std::uint32_t li = 0; li < verts_.size(); ++li)
          best_assign[li] = verts_[li].module;
      }
      // Same stopping rules as the synchronous round loop, evaluated on the
      // exact per-reconciliation codelengths. A quiet epoch plus a move-free
      // reconciliation is only terminal if the post-reconciliation
      // reactivation sweeps queued nothing anywhere: reconciliation replaces
      // stale estimates with exact statistics, and vertices it reactivates
      // must get one drain on that exact state before the level may close.
      if (quiet && recon_moves == 0 &&
          comm_.allreduce<std::uint64_t>(worklist_.live(),
                                         comm::ReduceOp::kSum) == 0)
        break;
      // Break on the first regressing reconciliation, like the synchronous
      // loop breaks on a regressing round — running further mostly deepens
      // level-local merging at the expense of the later levels' granularity.
      // Ending *in* the damaged state is impossible: the rollback below
      // restores the best reconciled state of the level.
      if (codelength_ > recon_l_prev + cfg_.round_theta) break;
      if (recons_out >= cfg_.min_rounds &&
          recon_l_prev - codelength_ < cfg_.round_theta)
        break;
      if (recons_out >= cfg_.max_rounds) break;
      recon_l_prev = codelength_;
    }
  }

  // The level must end on exact state (merge_level consumes homed_); if the
  // epoch cap fired between reconciliations, settle once more.
  if (!last_was_recon) {
    level_moves += async_reconcile(with_delegates, local_since_recon);
    ++recons_out;
    if (current_level_ == 0) {
      ++stage1_rounds_;
      round_mdl_.push_back(codelength_);
    }
    ++round_index_;
  }

  // Rollback: if the level is about to close worse than its best reconciled
  // state, restore that state. Every rank restores from its own snapshot
  // (taken at the same reconciliation, so globally consistent), re-ships the
  // restored boundary assignments, and rebuilds exact statistics with one
  // more exchange. best_l is reproduced bitwise: the same assignment yields
  // the same home aggregation and the same reduction.
  if (codelength_ > best_l) {
    const std::uint64_t t = tick();
    if (dirty_flag_.size() != verts_.size())
      dirty_flag_.assign(verts_.size(), 0);
    for (std::uint32_t li : dirty_owned_) dirty_flag_[li] = 1;
    for (std::uint32_t li = 0; li < verts_.size(); ++li) {
      if (verts_[li].module == best_assign[li]) continue;
      verts_[li].module = best_assign[li];
      stamp_assign(li, t);
      if (verts_[li].kind == Kind::kOwned && !dirty_flag_[li]) {
        dirty_flag_[li] = 1;
        dirty_owned_.push_back(li);
      }
    }
    swap_boundary_info();
    other_update(0, 0);
    ++recons_out;
    if (current_level_ == 0) {
      ++stage1_rounds_;
      round_mdl_.push_back(codelength_);
    }
    ++round_index_;
  }
  return level_moves;
}

// ---------------------------------------------------------------------------
// Distributed merging (§3.5)
// ---------------------------------------------------------------------------

VertexId DistRank::merge_level() {
  obs::SpanScope merge_span(trace_buf_, "MergeLevel");
  const int p = comm_.size();

  // 1. Dense relabeling of live modules: homes announce theirs; ids are
  //    disjoint across homes, so the sorted concatenation is global.
  std::vector<ModuleId> mine;
  mine.reserve(homed_.size());
  for (const auto& [m, stats] : homed_) mine.push_back(m);
  std::sort(mine.begin(), mine.end());
  auto announced = comm_.allgatherv(mine);
  std::vector<ModuleId> all_ids;
  for (const auto& batch : announced)
    all_ids.insert(all_ids.end(), batch.begin(), batch.end());
  std::sort(all_ids.begin(), all_ids.end());
  std::unordered_map<ModuleId, VertexId> dense;
  dense.reserve(all_ids.size());
  for (VertexId i = 0; i < all_ids.size(); ++i) dense.emplace(all_ids[i], i);
  const auto k = static_cast<VertexId>(all_ids.size());

  // 2. Coarse arcs to their new 1D owners (source-owner rule); intra-module
  //    flow becomes self flow, halved because both directions survive the
  //    global arc multiset.
  std::vector<std::vector<CoarseArc>> coarse_out(p);
  for (std::uint32_t li = 0; li < verts_.size(); ++li) {
    const VertexId cu = dense.at(verts_[li].module);
    const int dest = static_cast<int>(cu % static_cast<VertexId>(p));
    for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a) {
      const VertexId cv = dense.at(verts_[arcs_[a].target].module);
      if (cu == cv)
        coarse_out[dest].push_back({cu, cu, arcs_[a].flow / 2.0});
      else
        coarse_out[dest].push_back({cu, cv, arcs_[a].flow});
    }
    // Carried self flow follows its vertex's module.
    if (verts_[li].self_flow > 0 && verts_[li].kind != Kind::kGhost)
      coarse_out[dest].push_back({cu, cu, verts_[li].self_flow});
  }

  // 3. Coarse node flows from module homes to new owners.
  std::vector<std::vector<CoarseVertexInfo>> info_out(p);
  for (const auto& [m, stats] : homed_) {
    const VertexId cu = dense.at(m);
    info_out[cu % static_cast<VertexId>(p)].push_back({cu, 0, stats.sum_pr});
  }

  // 4. Projection queries (each level-0 vertex's coarse id advances by
  //    asking the owner of its current vertex for that vertex's module) ride
  //    the same packed exchange as the coarse arcs and node flows — one
  //    collective where three back-to-back alltoallv rounds used to run.
  std::vector<std::vector<ProjectionQuery>> queries(p);
  std::vector<std::vector<std::size_t>> query_slot(p);  // index into proj_
  for (std::size_t i = 0; i < proj_.size(); ++i) {
    const int dest = owner_of(proj_[i]);
    queries[dest].push_back({proj_[i]});
    query_slot[dest].push_back(i);
  }
  obs::SpanScope redist_span(trace_buf_, "Redistribute");
  auto [queries_in, coarse_in, info_in] =
      comm_.alltoallv_packed(queries, coarse_out, info_out);

  // Answer against the *pre-rebuild* state, and register each querier's
  // interest with the answered vertex's new 1D owner (dense % p, computable
  // here) so the final projection becomes a single unsolicited push.
  std::vector<std::vector<ProjectionAnswer>> answers(p);
  std::vector<std::vector<ProjectionInterest>> interest_out(p);
  for (int src = 0; src < p; ++src) {
    answers[src].reserve(queries_in[src].size());
    for (const ProjectionQuery& q : queries_in[src]) {
      auto it = index_.find(q.current);
      DINFOMAP_REQUIRE_MSG(it != index_.end(),
                           "projection query for non-owned vertex");
      const VertexId next = dense.at(verts_[it->second].module);
      answers[src].push_back({next});
      interest_out[next % static_cast<VertexId>(p)].push_back({next, src});
    }
  }
  // Many level-0 vertices project onto the same coarse vertex; one
  // registration per (vertex, rank) pair suffices for the final push.
  for (auto& box : interest_out) {
    std::sort(box.begin(), box.end(),
              [](const ProjectionInterest& a, const ProjectionInterest& b) {
                return a.vertex != b.vertex ? a.vertex < b.vertex
                                            : a.rank < b.rank;
              });
    box.erase(std::unique(box.begin(), box.end(),
                          [](const ProjectionInterest& a,
                             const ProjectionInterest& b) {
                            return a.vertex == b.vertex && a.rank == b.rank;
                          }),
              box.end());
  }
  auto [answers_in, interest_in] = comm_.alltoallv_packed(answers, interest_out);
  for (int src = 0; src < p; ++src) {
    DINFOMAP_REQUIRE(answers_in[src].size() == query_slot[src].size());
    for (std::size_t j = 0; j < answers_in[src].size(); ++j)
      proj_[query_slot[src][j]] = answers_in[src][j].next;
  }
  proj_subscribers_.clear();
  for (const auto& batch : interest_in)
    proj_subscribers_.insert(proj_subscribers_.end(), batch.begin(),
                             batch.end());
  if (metrics_ != nullptr) metrics_->counter("comm.packed_exchanges").inc(2);

  // 5. Rebuild from the shipped streams.

  std::vector<CoarseArc> triples;
  for (auto& batch : coarse_in)
    triples.insert(triples.end(), batch.begin(), batch.end());
  build_local_graph(triples, p, k);

  const int r = comm_.rank();
  for (auto& lv : verts_)
    lv.kind = owner_of(lv.global) == r ? Kind::kOwned : Kind::kGhost;
  for (const auto& batch : info_in) {
    for (const CoarseVertexInfo& ci : batch) {
      auto it = index_.find(ci.vertex);
      DINFOMAP_REQUIRE_MSG(it != index_.end(), "coarse info for unknown vertex");
      verts_[it->second].node_flow = ci.node_flow;
    }
  }
  movable_.clear();
  hubs_.clear();
  for (std::uint32_t li = 0; li < verts_.size(); ++li)
    if (verts_[li].kind == Kind::kOwned) movable_.push_back(li);

  setup_subscriptions();
  init_singleton_modules();
  level_n_ = k;
  return k;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

void DistRank::execute() {
  util::Xoshiro256 rng(util::derive_seed(cfg_.seed, comm_.rank()));

  setup_subscriptions();
  init_singleton_modules();
  // Initial sync: exact singleton statistics + L everywhere.
  swap_boundary_info();
  (void)other_update(0, 0);
  singleton_codelength_ = codelength_;

  // ---- stage 1: clustering with delegates --------------------------------
  util::Timer stage1;
  double prev_codelength = 0;
  {
    obs::SpanScope stage1_span(trace_buf_, "Stage1");
    current_level_ = 0;
    OuterIterationInfo info;
    info.level = 0;
    info.level_vertices = level_n_;
    info.codelength_before = codelength_;
    if (cfg_.async) {
      int recons = 0;
      info.moves += async_level(/*with_delegates=*/true, recons);
      info.inner_passes = recons;  // stage1_rounds_/round_mdl_ updated inside
    } else {
      for (int i = 0; i < cfg_.max_rounds; ++i) {
        const double before = codelength_;
        const RoundResult rr = round(/*with_delegates=*/true, rng);
        info.moves += rr.global_moves;
        ++info.inner_passes;
        ++stage1_rounds_;
        round_mdl_.push_back(codelength_);
        if (rr.global_moves == 0) break;
        // Conflicting synchronous moves can overshoot; stop the level rather
        // than keep trading regressions.
        if (codelength_ > before + cfg_.round_theta) break;
        if (i + 1 >= cfg_.min_rounds &&
            before - codelength_ < cfg_.round_theta)
          break;
      }
    }
    info.codelength_after = codelength_;
    info.num_modules = static_cast<VertexId>(alive_modules_);
    trace_.push_back(info);
    prev_codelength = codelength_;
    merge_level();
    swap_boundary_info();
    (void)other_update(0, 0);
  }
  stage1_seconds_ = stage1.seconds();
  for (int ph = 0; ph < kNumPhases; ++ph)
    stage1_work_snapshot_[ph] = work_[ph];

  // ---- stage 2: clustering without delegates -----------------------------
  util::Timer stage2;
  {
    obs::SpanScope stage2_span(trace_buf_, "Stage2");
    for (int level = 1; level <= cfg_.max_levels; ++level) {
      current_level_ = level;
      OuterIterationInfo info;
      info.level = level;
      info.level_vertices = level_n_;
      info.codelength_before = codelength_;
      if (cfg_.async) {
        int recons = 0;
        info.moves += async_level(/*with_delegates=*/false, recons);
        info.inner_passes = recons;
      } else {
        for (int i = 0; i < cfg_.max_rounds; ++i) {
          const double before = codelength_;
          const RoundResult rr = round(/*with_delegates=*/false, rng);
          info.moves += rr.global_moves;
          ++info.inner_passes;
          if (rr.global_moves == 0) break;
          if (codelength_ > before + cfg_.round_theta) break;
          if (i + 1 >= cfg_.min_rounds &&
              before - codelength_ < cfg_.round_theta)
            break;
        }
      }
      info.codelength_after = codelength_;
      info.num_modules = static_cast<VertexId>(alive_modules_);
      trace_.push_back(info);
      ++stage2_levels_;

      const bool merged_smaller = alive_modules_ < info.level_vertices;
      const double improvement = prev_codelength - codelength_;
      prev_codelength = codelength_;
      if (!merged_smaller) break;
      merge_level();
      swap_boundary_info();
      (void)other_update(0, 0);
      if (improvement < cfg_.theta) break;
    }
  }
  stage2_seconds_ = stage2.seconds();

  // ---- final projection: level-0 owned vertex → final module -------------
  {
    obs::SpanScope proj_span(trace_buf_, "FinalProjection");
    const int p = comm_.size();
    // Interest was registered with each coarse vertex's owner during the last
    // merge (stage 1 always merges once), so owners push final modules
    // unsolicited — one exchange where the query/answer pair used to take two.
    std::vector<std::vector<FinalModuleRecord>> push(p);
    for (const ProjectionInterest& sub : proj_subscribers_) {
      auto it = index_.find(sub.vertex);
      DINFOMAP_REQUIRE_MSG(it != index_.end(),
                           "final-projection interest for non-owned vertex");
      push[sub.rank].push_back(
          {sub.vertex, 0, verts_[it->second].module});
    }
    auto pushed_in = comm_.alltoallv(push);
    std::unordered_map<VertexId, ModuleId> module_of;
    module_of.reserve(proj_.size());
    for (const auto& batch : pushed_in)
      for (const FinalModuleRecord& rec : batch)
        module_of.emplace(rec.vertex, rec.module);
    final_assignment_.clear();
    final_assignment_.reserve(owned0_.size());
    for (std::size_t i = 0; i < proj_.size(); ++i) {
      auto it = module_of.find(proj_[i]);
      DINFOMAP_REQUIRE_MSG(it != module_of.end(),
                           "no pushed module for projected vertex");
      final_assignment_.emplace_back(owned0_[i],
                                     static_cast<VertexId>(it->second));
    }
  }
}

perf::WorkCounters DistRank::stage_work(int stage) const {
  perf::WorkCounters stage1;
  for (const auto& w : stage1_work_snapshot_) stage1 += w;
  if (stage == 0) return stage1;
  perf::WorkCounters total;
  for (const auto& w : work_) total += w;
  perf::WorkCounters stage2;
  stage2.arcs_scanned = total.arcs_scanned - stage1.arcs_scanned;
  stage2.delta_evals = total.delta_evals - stage1.delta_evals;
  stage2.pruned_evals = total.pruned_evals - stage1.pruned_evals;
  stage2.module_updates = total.module_updates - stage1.module_updates;
  stage2.messages = total.messages - stage1.messages;
  stage2.bytes = total.bytes - stage1.bytes;
  return stage2;
}

}  // namespace dinfomap::core::detail

// ---------------------------------------------------------------------------
// Public drivers
// ---------------------------------------------------------------------------

namespace dinfomap::core {

namespace {

/// Fold the result arrays, the recorder's metrics dumps, and the watchdog
/// findings into one structured run report.
obs::RunReport build_run_report(const graph::GraphView& graph,
                                const DistInfomapConfig& config,
                                const DistInfomapResult& result,
                                const obs::Recorder& recorder) {
  obs::RunReport rep;
  rep.add_config("num_ranks", config.num_ranks);
  rep.add_config("threads_per_rank", config.threads_per_rank);
  rep.add_config("degree_threshold",
                 static_cast<std::uint64_t>(config.degree_threshold));
  rep.add_config("theta", config.theta);
  rep.add_config("max_levels", config.max_levels);
  rep.add_config("max_rounds", config.max_rounds);
  rep.add_config("round_theta", config.round_theta);
  rep.add_config("min_rounds", config.min_rounds);
  rep.add_config("move_epsilon", config.move_epsilon);
  rep.add_config("seed", static_cast<std::uint64_t>(config.seed));
  rep.add_config("min_label", config.min_label);
  rep.add_config("whole_module_swap", config.whole_module_swap);
  rep.add_config("exact_hub_moves", config.exact_hub_moves);
  rep.add_config("active_set", config.active_set);
  rep.add_config("async", config.async);
  if (config.async)
    rep.add_config("async_max_lag",
                   static_cast<std::uint64_t>(config.async_max_lag));
  rep.add_config("plogp_memo", config.plogp_memo);
  if (config.module_table_max_load_pct > 0)
    rep.add_config("module_table_max_load_pct",
                   config.module_table_max_load_pct);
  rep.add_config("chaos_delay_us",
                 static_cast<std::uint64_t>(config.chaos_delay_us));
  if (config.faults.any()) {
    rep.add_config("fault_drop", config.faults.drop);
    rep.add_config("fault_duplicate", config.faults.duplicate);
    rep.add_config("fault_reorder", config.faults.reorder);
    rep.add_config("fault_corrupt", config.faults.corrupt);
    rep.add_config("fault_stall_rank", config.faults.stall_rank);
    rep.add_config("fault_seed", static_cast<std::uint64_t>(config.faults.seed));
  }
  if (config.comm_watchdog_ms > 0)
    rep.add_config("comm_watchdog_ms",
                   static_cast<std::uint64_t>(config.comm_watchdog_ms));
  rep.graph_vertices = graph.num_vertices();
  rep.graph_edges = graph.num_edges();
  rep.num_ranks = config.num_ranks;
  rep.codelength = result.codelength;
  rep.singleton_codelength = result.singleton_codelength;
  rep.num_modules = result.num_modules();
  for (const auto& row : result.trace) {
    obs::RunReport::LevelRow lr;
    lr.level = static_cast<int>(row.level);
    lr.vertices = row.level_vertices;
    lr.rounds = static_cast<int>(row.inner_passes);
    lr.moves = row.moves;
    lr.codelength_before = row.codelength_before;
    lr.codelength_after = row.codelength_after;
    lr.num_modules = row.num_modules;
    rep.levels.push_back(lr);
  }
  rep.round_codelengths = result.stage1_round_codelengths;
  rep.stage1_rounds = result.stage1_rounds;
  rep.stage2_levels = result.stage2_levels;
  rep.stage1_wall_seconds = result.stage1_wall_seconds;
  rep.stage2_wall_seconds = result.stage2_wall_seconds;
  for (int ph = 0; ph < kNumPhases; ++ph) {
    obs::RunReport::PhaseRow pr;
    pr.name = kPhaseNames[static_cast<std::size_t>(ph)];
    pr.work = result.work[static_cast<std::size_t>(ph)];
    pr.seconds = result.phase_seconds[static_cast<std::size_t>(ph)];
    rep.phases.push_back(std::move(pr));
  }
  rep.stage_work = result.stage_work;
  rep.comm = result.comm_counters;
  if (recorder.enabled()) {
    for (const auto& m : recorder.all_metrics())
      rep.metrics_json.push_back(m.to_json());
    rep.anomalies = recorder.anomalies();
    if (const obs::ProfileDigest* d = recorder.profile()) {
      rep.profile = *d;
      rep.has_profile = true;
    }
  }
  return rep;
}

/// Dense-relabel a raw per-vertex module array (final module ids are
/// arbitrary VertexIds) into contiguous [0, k) — shared by the in-process
/// driver and the multi-process rank-0 assembly, so both backends produce
/// the same labels bit-for-bit.
graph::Partition densify_assignment(const std::vector<graph::VertexId>& raw) {
  std::unordered_map<graph::VertexId, graph::VertexId> remap;
  std::vector<graph::VertexId> sorted = raw;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (graph::VertexId i = 0; i < sorted.size(); ++i) remap[sorted[i]] = i;
  graph::Partition dense(raw.size(), 0);
  for (std::size_t v = 0; v < raw.size(); ++v) dense[v] = remap.at(raw[v]);
  return dense;
}

/// Blocks-backend epilogue: publish the decode-cache counters as
/// `blockgraph.*` metrics on rank 0's registry and feed them to the
/// cache_thrash watchdog rule. A no-op on the resident backend. Purely
/// observational (the stats read synchronizes on the lease mutex, after
/// every rank's cursors are released).
void publish_blockgraph_stats(const graph::GraphView& graph,
                              const DistInfomapConfig& config,
                              obs::Recorder& recorder) {
  if (!graph.out_of_core() || !recorder.enabled()) return;
  const graph::blockgraph::BlockGraphStats bs = graph.blocks()->stats();
  auto* m = recorder.metrics(0);
  m->counter("blockgraph.hits").set(bs.hits);
  m->counter("blockgraph.misses").set(bs.misses);
  m->counter("blockgraph.evictions").set(bs.evictions);
  m->counter("blockgraph.decode_ns").set(bs.decode_ns);
  m->counter("blockgraph.resident_blocks").set(bs.resident_blocks);
  m->counter("blockgraph.bytes_mapped").set(bs.bytes_mapped);
  if (config.obs.watchdog) {
    for (obs::Anomaly& a : obs::analyze_block_cache(
             {bs.hits, bs.misses, bs.evictions}, config.obs.watchdog_options))
      recorder.report_anomaly(0, std::move(a));
  }
}

}  // namespace

DistInfomapResult distributed_infomap(const graph::GraphView& graph,
                                      const partition::ArcPartition& part,
                                      const DistInfomapConfig& config) {
  DINFOMAP_REQUIRE_MSG(config.num_ranks == part.num_ranks,
                       "config/partition rank mismatch");
  DINFOMAP_REQUIRE_MSG(part.round_robin_ownership(),
                       "distributed infomap addresses vertices as v mod p; "
                       "use a round-robin-owned partition (1D or delegate)");
  if (config.validate_inputs) {
    DINFOMAP_REQUIRE_MSG(partition::validate_partition(part, graph),
                         "arc partition does not cover the graph exactly "
                         "(arcs missing, duplicated, or misplaced)");
  }
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v)
    DINFOMAP_REQUIRE_MSG(graph.self_weight(v) == 0,
                         "distributed path expects a self-loop-free input "
                         "(the builder separates them)");

  const int p = config.num_ranks;
  std::vector<std::unique_ptr<detail::DistRank>> ranks(p);
  obs::Recorder recorder(p, config.obs);

  comm::Runtime::Options rt_options;
  rt_options.chaos_max_delay_us = config.chaos_delay_us;
  rt_options.faults = config.faults;
  rt_options.watchdog_timeout_ms = config.comm_watchdog_ms;
  auto report = comm::Runtime::run(
      p,
      [&](comm::Comm& comm) {
        comm.set_metrics(recorder.metrics(comm.rank()));
        comm.set_trace(recorder.track(comm.rank()));
        auto rank =
            std::make_unique<detail::DistRank>(comm, part, config, &recorder);
        rank->execute();
        ranks[comm.rank()] = std::move(rank);  // distinct slot per rank
      },
      rt_options);

  DistInfomapResult result;
  std::vector<graph::VertexId> raw(graph.num_vertices(), 0);
  for (const auto& rank : ranks)
    for (const auto& [v, m] : rank->final_assignment()) raw[v] = m;
  result.assignment = densify_assignment(raw);

  const detail::DistRank& r0 = *ranks[0];
  result.codelength = r0.codelength();
  result.singleton_codelength = r0.singleton_codelength();
  result.trace = r0.trace();
  result.stage1_round_codelengths = r0.stage1_round_codelengths();
  result.stage1_rounds = r0.stage1_rounds();
  result.stage2_levels = r0.stage2_levels();
  result.stage1_wall_seconds = r0.stage1_seconds();
  result.stage2_wall_seconds = r0.stage2_seconds();
  for (int ph = 0; ph < kNumPhases; ++ph) {
    result.work[ph].resize(p);
    result.phase_seconds[ph].resize(p);
    for (int r = 0; r < p; ++r) {
      result.work[ph][r] = ranks[r]->work(static_cast<Phase>(ph));
      result.phase_seconds[ph][r] = ranks[r]->phase_seconds(static_cast<Phase>(ph));
    }
  }
  for (int stage = 0; stage < 2; ++stage) {
    result.stage_work[stage].resize(p);
    for (int r = 0; r < p; ++r)
      result.stage_work[stage][r] = ranks[r]->stage_work(stage);
  }
  result.comm_counters = report.counters;

  // ---- flight-recorder epilogue ----------------------------------------
  if (recorder.enabled()) {
    for (int r = 0; r < p; ++r) {
      auto* m = recorder.metrics(r);
      m->absorb(report.counters[r], "comm");
      if (config.faults.any())
        m->absorb(report.faults_injected[static_cast<std::size_t>(r)],
                  "comm.faults");
      m->counter("mailbox.depth_high_water")
          .set(report.mailbox_depth_high_water[static_cast<std::size_t>(r)]);
      m->counter("mailbox.delivered")
          .set(report.mailbox_delivered[static_cast<std::size_t>(r)]);
    }
    // Profile first: the digest's wall-clock window must close before the
    // watchdog mirrors its findings into the trace as post-run instants.
    recorder.finish_profile();
    publish_blockgraph_stats(graph, config, recorder);
    recorder.finish_watchdog();
  }
  result.report = build_run_report(graph, config, result, recorder);
  if (config.faults.any()) result.report.faults_injected = report.faults_injected;
  if (recorder.enabled()) {
    if (!config.obs.trace_path.empty())
      (void)recorder.trace().write(config.obs.trace_path);
    if (!config.obs.report_path.empty())
      (void)result.report.write(config.obs.report_path);
    if (!config.obs.profile_path.empty() && recorder.profile() != nullptr)
      (void)recorder.profile()->write(config.obs.profile_path);
  }
  return result;
}

graph::EdgeIndex resolve_degree_threshold(const graph::GraphView& graph,
                                          const DistInfomapConfig& config) {
  if (config.degree_threshold != 0) return config.degree_threshold;
  // The paper sets d_high = p, which on Titan-scale runs (p ≥ 256, mean
  // degree 20–30) selects only the true hubs and — key to Fig. 8's shape —
  // shrinks the delegate set as p grows. On scaled-down graphs with small p
  // that literal rule would delegate nearly every vertex, so the resolved
  // default keeps the proportionality to p but re-anchors it at a multiple
  // of the mean degree: d_high = mean_degree · max(p, 4) / 2, floored at p.
  const double mean_degree =
      2.0 * static_cast<double>(graph.num_edges()) /
      std::max<double>(1.0, static_cast<double>(graph.num_vertices()));
  const double anchored =
      mean_degree * static_cast<double>(std::max(config.num_ranks, 4)) / 2.0;
  return std::max<graph::EdgeIndex>(
      static_cast<graph::EdgeIndex>(config.num_ranks),
      static_cast<graph::EdgeIndex>(anchored));
}

DistInfomapResult distributed_infomap(const graph::GraphView& graph,
                                      const DistInfomapConfig& config) {
  const auto part = partition::make_delegate(
      graph, config.num_ranks, resolve_degree_threshold(graph, config));
  return distributed_infomap(graph, part, config);
}

DistInfomapResult distributed_infomap_rank(const graph::GraphView& graph,
                                           const DistInfomapConfig& config,
                                           comm::Transport& transport) {
  DINFOMAP_REQUIRE_MSG(config.num_ranks == transport.size(),
                       "worker bootstrap: config.num_ranks ("
                           << config.num_ranks << ") != transport size ("
                           << transport.size() << ")");
  // Rebuilt deterministically on every rank from the same (graph, config) —
  // identical to the partition the single-process overload builds. Only this
  // rank's slice survives: the transient full partition is the peak-memory
  // point of a blocks-mode worker, and the other ranks' arcs are never read.
  auto part = partition::make_delegate(
      graph, config.num_ranks, resolve_degree_threshold(graph, config));
  part.keep_only_rank(transport.rank());
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v)
    DINFOMAP_REQUIRE_MSG(graph.self_weight(v) == 0,
                         "distributed path expects a self-loop-free input "
                         "(the builder separates them)");

  const int p = config.num_ranks;
  const int self = transport.rank();
  obs::Recorder recorder(p, config.obs);
  comm::Comm comm(transport);
  comm.set_metrics(recorder.metrics(self));
  comm.set_trace(recorder.track(self));
  detail::DistRank rank(comm, part, config, &recorder);
  rank.execute();

  // Algorithm traffic ends here: snapshot the counters before the result
  // gathers below so the reported values match the in-process driver (which
  // collects results through shared memory) bit-for-bit.
  const comm::CommCounters algo_counters = comm.counters();
  const comm::Transport::Stats my_stats = transport.stats();

  // ---- gather per-rank products to rank 0 over the transport itself ------
  std::vector<graph::VertexId> flat;
  flat.reserve(rank.final_assignment().size() * 2);
  for (const auto& [v, m] : rank.final_assignment()) {
    flat.push_back(v);
    flat.push_back(m);
  }
  const auto pair_batches = comm.gatherv(0, flat);

  std::vector<perf::WorkCounters> wc;
  for (int ph = 0; ph < kNumPhases; ++ph)
    wc.push_back(rank.work(static_cast<Phase>(ph)));
  for (int stage = 0; stage < 2; ++stage) wc.push_back(rank.stage_work(stage));
  const auto wc_batches = comm.gatherv(0, wc);

  std::vector<double> secs;
  for (int ph = 0; ph < kNumPhases; ++ph)
    secs.push_back(rank.phase_seconds(static_cast<Phase>(ph)));
  const auto secs_batches = comm.gatherv(0, secs);

  const auto counter_batches =
      comm.gatherv(0, std::vector<comm::CommCounters>{algo_counters});
  const auto stats_batches =
      comm.gatherv(0, std::vector<comm::Transport::Stats>{my_stats});

  DistInfomapResult result;
  // Locally visible fields are valid on every rank (the codelengths and
  // round series are global values every rank holds identically).
  result.codelength = rank.codelength();
  result.singleton_codelength = rank.singleton_codelength();
  result.trace = rank.trace();
  result.stage1_round_codelengths = rank.stage1_round_codelengths();
  result.stage1_rounds = rank.stage1_rounds();
  result.stage2_levels = rank.stage2_levels();
  result.stage1_wall_seconds = rank.stage1_seconds();
  result.stage2_wall_seconds = rank.stage2_seconds();

  if (recorder.enabled()) {
    auto* m = recorder.metrics(self);
    m->absorb(algo_counters, "comm");
    if (config.faults.any()) m->absorb(my_stats.injected, "comm.faults");
    m->counter("mailbox.depth_high_water").set(my_stats.inbox_depth_high_water);
    m->counter("mailbox.delivered").set(my_stats.inbox_delivered);
  }

  if (self == 0) {
    std::vector<graph::VertexId> raw(graph.num_vertices(), 0);
    for (const auto& batch : pair_batches)
      for (std::size_t i = 0; i + 1 < batch.size(); i += 2)
        raw[batch[i]] = batch[i + 1];
    result.assignment = densify_assignment(raw);

    std::vector<comm::FaultCounters> injected(static_cast<std::size_t>(p));
    for (int ph = 0; ph < kNumPhases; ++ph) {
      result.work[static_cast<std::size_t>(ph)].resize(p);
      result.phase_seconds[static_cast<std::size_t>(ph)].resize(p);
    }
    for (int stage = 0; stage < 2; ++stage)
      result.stage_work[static_cast<std::size_t>(stage)].resize(p);
    result.comm_counters.resize(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      for (int ph = 0; ph < kNumPhases; ++ph) {
        result.work[static_cast<std::size_t>(ph)][rr] =
            wc_batches[rr][static_cast<std::size_t>(ph)];
        result.phase_seconds[static_cast<std::size_t>(ph)][rr] =
            secs_batches[rr][static_cast<std::size_t>(ph)];
      }
      for (int stage = 0; stage < 2; ++stage)
        result.stage_work[static_cast<std::size_t>(stage)][rr] =
            wc_batches[rr][static_cast<std::size_t>(kNumPhases + stage)];
      result.comm_counters[rr] = counter_batches[rr].at(0);
      injected[rr] = stats_batches[rr].at(0).injected;
    }

    // The cross-rank profile digest needs one trace holding every rank's
    // track (in-process mode); here the watchdog checks the one round
    // stream this process recorded — the global MDL series, identical on
    // all ranks.
    if (recorder.enabled() && config.obs.watchdog) {
      for (obs::Anomaly& a :
           obs::analyze_rounds({recorder.round_streams()[0]},
                               config.obs.watchdog_options))
        recorder.report_anomaly(0, std::move(a));
    }
    // Blocks mode: each worker process has its own mapping and cache; the
    // counters reported here are rank 0's own (representative — every rank
    // streams a similarly sized slice).
    publish_blockgraph_stats(graph, config, recorder);
    result.report = build_run_report(graph, config, result, recorder);
    if (config.faults.any()) result.report.faults_injected = injected;
    if (recorder.enabled() && !config.obs.report_path.empty())
      (void)result.report.write(config.obs.report_path);
  }
  // Every worker writes its own per-process trace; the launcher merges them
  // (obs/trace_merge.hpp).
  if (recorder.enabled() && !config.obs.trace_path.empty())
    (void)recorder.trace().write(config.obs.trace_path);
  return result;
}

// ---- resident-backend wrappers -------------------------------------------

DistInfomapResult distributed_infomap(const graph::Csr& graph,
                                      const DistInfomapConfig& config) {
  return distributed_infomap(graph::GraphView(graph), config);
}

DistInfomapResult distributed_infomap(const graph::Csr& graph,
                                      const partition::ArcPartition& part,
                                      const DistInfomapConfig& config) {
  return distributed_infomap(graph::GraphView(graph), part, config);
}

DistInfomapResult distributed_infomap_rank(const graph::Csr& graph,
                                           const DistInfomapConfig& config,
                                           comm::Transport& transport) {
  return distributed_infomap_rank(graph::GraphView(graph), config, transport);
}

graph::EdgeIndex resolve_degree_threshold(const graph::Csr& graph,
                                          const DistInfomapConfig& config) {
  return resolve_degree_threshold(graph::GraphView(graph), config);
}

}  // namespace dinfomap::core
