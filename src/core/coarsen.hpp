// Community merging (Phase 3 of Algorithm 1 / §3.5): contract each module of
// a FlowGraph into one vertex of a new FlowGraph.
#pragma once

#include "core/flowgraph.hpp"
#include "graph/types.hpp"

namespace dinfomap::core {

struct CoarsenResult {
  FlowGraph graph;
  /// fine vertex → coarse vertex (dense ids of the new graph).
  std::vector<VertexId> fine_to_coarse;
};

/// `module_of[u]` may use arbitrary ids; they are compacted (order of first
/// appearance by ascending module id) into dense coarse ids. Arc flows
/// between modules are summed; intra-module flows become self flows; node
/// flows are summed per module; node_term is carried unchanged.
CoarsenResult coarsen(const FlowGraph& fine, const std::vector<VertexId>& module_of);

/// Level-0 contraction straight off a graph backend: semantically
/// coarsen(make_flow_graph(g), module_of) but scaling arc weights by
/// 1/two_w on the fly, so the out-of-core backend never materializes a
/// flow-weighted CSR. `flows` must come from compute_node_flows(graph);
/// every floating-point operation mirrors the resident pipeline, keeping
/// the coarse graph bit-identical across backends.
CoarsenResult coarsen_level0(const graph::GraphView& graph,
                             const NodeFlows& flows,
                             const std::vector<VertexId>& module_of);

}  // namespace dinfomap::core
