// Community merging (Phase 3 of Algorithm 1 / §3.5): contract each module of
// a FlowGraph into one vertex of a new FlowGraph.
#pragma once

#include "core/flowgraph.hpp"
#include "graph/types.hpp"

namespace dinfomap::core {

struct CoarsenResult {
  FlowGraph graph;
  /// fine vertex → coarse vertex (dense ids of the new graph).
  std::vector<VertexId> fine_to_coarse;
};

/// `module_of[u]` may use arbitrary ids; they are compacted (order of first
/// appearance by ascending module id) into dense coarse ids. Arc flows
/// between modules are summed; intra-module flows become self flows; node
/// flows are summed per module; node_term is carried unchanged.
CoarsenResult coarsen(const FlowGraph& fine, const std::vector<VertexId>& module_of);

}  // namespace dinfomap::core
