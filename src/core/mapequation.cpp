#include "core/mapequation.hpp"

namespace dinfomap::core {

namespace {

/// Shared ΔL algebra; `pl` is either the plain plogp or a PlogpMemo. Both
/// instantiations perform the same floating-point operations in the same
/// order, so their results are bit-identical.
template <typename Plogp>
MoveOutcome evaluate_move_impl(const MoveDelta& d, Plogp&& pl) {
  MoveOutcome out;

  out.old_after.sum_pr = d.old_stats.sum_pr - d.p_u;
  out.old_after.exit_pr = d.old_stats.exit_pr - d.f_u + 2.0 * d.f_to_old;
  out.old_after.num_members = d.old_stats.num_members - 1;

  out.new_after.sum_pr = d.new_stats.sum_pr + d.p_u;
  out.new_after.exit_pr = d.new_stats.exit_pr + d.f_u - 2.0 * d.f_to_new;
  out.new_after.num_members = d.new_stats.num_members + 1;

  // Clamp tiny negative drift from floating-point cancellation.
  if (out.old_after.exit_pr < 0 && out.old_after.exit_pr > -1e-12)
    out.old_after.exit_pr = 0;
  if (out.new_after.exit_pr < 0 && out.new_after.exit_pr > -1e-12)
    out.new_after.exit_pr = 0;

  out.delta_q_total = (out.old_after.exit_pr - d.old_stats.exit_pr) +
                      (out.new_after.exit_pr - d.new_stats.exit_pr);

  const double q_before = d.q_total;
  const double q_after = d.q_total + out.delta_q_total;

  double delta = pl(q_after) - pl(q_before);
  delta -= 2.0 * (pl(out.old_after.exit_pr) - pl(d.old_stats.exit_pr) +
                  pl(out.new_after.exit_pr) - pl(d.new_stats.exit_pr));
  delta += pl(out.old_after.exit_pr + out.old_after.sum_pr) -
           pl(d.old_stats.exit_pr + d.old_stats.sum_pr);
  delta += pl(out.new_after.exit_pr + out.new_after.sum_pr) -
           pl(d.new_stats.exit_pr + d.new_stats.sum_pr);

  out.delta_codelength = delta;
  return out;
}

}  // namespace

MoveOutcome evaluate_move(const MoveDelta& d) {
  return evaluate_move_impl(d, [](double x) { return plogp(x); });
}

MoveOutcome evaluate_move(const MoveDelta& d, PlogpMemo& memo) {
  return evaluate_move_impl(d, memo);
}

}  // namespace dinfomap::core
