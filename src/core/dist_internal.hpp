// Internal per-rank state of the distributed Infomap. Not part of the public
// API; included by dist_setup.cpp / dist_infomap.cpp and by whitebox tests.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"
#include "core/dist_infomap.hpp"
#include "core/mapequation.hpp"
#include "core/module_info.hpp"
#include "obs/recorder.hpp"
#include "partition/arc_partition.hpp"
#include "perf/work_counters.hpp"
#include "util/flat_map.hpp"
#include "util/random.hpp"
#include "util/sparse_accumulator.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/worklist.hpp"

#include <memory>

namespace dinfomap::core::detail {

using graph::VertexId;

/// Role of a vertex in this rank's local view.
enum class Kind : std::uint8_t {
  kOwned,     ///< low-degree vertex owned here (full adjacency local)
  kDelegate,  ///< hub duplicated on all ranks (partial adjacency local)
  kGhost,     ///< remote low-degree vertex seen as an arc target
};

/// One rank of the distributed algorithm. The driver runs `execute()` on
/// every rank inside a comm::Runtime job; shared read-only inputs are the
/// partition (stage 1's "file on the parallel filesystem"); everything
/// mutable is rank-local and exchanged via messages.
class DistRank {
 public:
  DistRank(comm::Comm& comm, const partition::ArcPartition& part,
           const DistInfomapConfig& cfg, obs::Recorder* recorder = nullptr);

  /// Runs preprocessing, stage 1, merging, and stage 2. After return, the
  /// sinks below carry this rank's outputs.
  void execute();

  // ---- outputs (read by the driver after the job joins) -----------------
  double codelength() const { return codelength_; }
  double singleton_codelength() const { return singleton_codelength_; }
  const std::vector<OuterIterationInfo>& trace() const { return trace_; }
  int stage1_rounds() const { return stage1_rounds_; }
  const std::vector<double>& stage1_round_codelengths() const {
    return round_mdl_;
  }
  int stage2_levels() const { return stage2_levels_; }
  double stage1_seconds() const { return stage1_seconds_; }
  double stage2_seconds() const { return stage2_seconds_; }
  const perf::WorkCounters& work(Phase ph) const {
    return work_[static_cast<int>(ph)];
  }
  /// Total work during stage 1 (all phases) and during stage 2.
  perf::WorkCounters stage_work(int stage) const;
  double phase_seconds(Phase ph) const {
    return phase_sec_[static_cast<int>(ph)];
  }
  /// (level-0 vertex, final module) pairs for vertices owned by this rank.
  const std::vector<std::pair<VertexId, VertexId>>& final_assignment() const {
    return final_assignment_;
  }
  /// Move-search candidates skipped because their module was not yet in the
  /// local table (whole run; see moves.skipped_unsynced metric).
  std::uint64_t skipped_unsynced() const { return skipped_unsynced_total_; }

 private:
  struct LocalVertex {
    VertexId global = 0;
    Kind kind = Kind::kGhost;
    double node_flow = 0;  ///< exact for owned/delegate; unused for ghosts
    double out_flow = 0;   ///< total flow on non-self arcs (exact when known)
    double self_flow = 0;  ///< coarse-level intra flow
    ModuleId module = 0;
  };
  struct LocalArc {
    std::uint32_t target = 0;  ///< local index
    double flow = 0;
  };

  // ---- setup -------------------------------------------------------------
  void setup_stage1(const partition::ArcPartition& part);
  /// Build verts_/arcs_ from (source,target,flow) triples; callers must then
  /// fill kinds/flows. Sources must all be local-movable.
  void build_local_graph(std::vector<CoarseArc>& triples, int num_ranks_mod,
                         VertexId level_n);
  void setup_subscriptions();
  void init_singleton_modules();

  // ---- one synchronous round (either stage) ------------------------------
  struct RoundResult {
    std::uint64_t local_moves = 0;
    std::uint64_t hub_moves = 0;
    std::uint64_t global_moves = 0;
  };
  RoundResult round(bool with_delegates, util::Xoshiro256& rng);

  /// Phase 1: greedy pass; immediate moves for owned, proposals for hubs.
  std::uint64_t find_best_modules(bool with_delegates, util::Xoshiro256& rng,
                                  std::vector<HubProposal>& proposals);
  /// Phase 2: allgather hub proposals, apply global argmin moves everywhere.
  std::uint64_t broadcast_delegates(std::vector<HubProposal>& proposals);
  /// Phase 2 variant (exact_hub_moves): reduce per-hub flow maps at hub
  /// owners, who compute the move from exact global flows; decisions are
  /// then allgathered and applied like broadcast_delegates.
  std::uint64_t broadcast_delegates_exact();
  /// Apply globally-agreed hub decisions to the local tables.
  std::uint64_t apply_hub_winners(const std::vector<HubProposal>& winners);
  /// Phase 3: Alg. 3 boundary swap + exact home-based stat aggregation.
  void swap_boundary_info();
  /// Phase 4: adopt authoritative stats, allreduce L and movement counts.
  std::uint64_t other_update(std::uint64_t local_moves, std::uint64_t hub_moves);

  // ---- merging ------------------------------------------------------------
  /// Contract modules into the next-level graph, redistribute 1D, advance
  /// the level-0 projection. Returns the new global vertex count.
  VertexId merge_level();

  /// Evaluate the best move for local vertex `li`; returns true if a strictly
  /// improving candidate exists.
  struct BestMove {
    ModuleId target = 0;
    double delta_l = 0;
    MoveOutcome outcome;
  };
  bool best_move_for(std::uint32_t li, BestMove& best);

  void apply_local_move(std::uint32_t li, const BestMove& mv);

  // ---- event clock & active-set pruning (DESIGN.md §12) -------------------
  /// §3.4 anti-bouncing, per-pair deterministic tiebreak: (mass, label)
  /// defines a total order over modules and a non-singleton boundary move
  /// yields iff it goes downhill in that order. A pure function of module
  /// state — no shared round counter — so the decision is identical on every
  /// rank at any time: sound under full sweeps, active-set pruning, and
  /// async epochs alike.
  [[nodiscard]] bool min_label_yields(ModuleId cur, ModuleId target);

  /// (Re)size the stamp arrays for the current level; called lazily at the
  /// top of every round/epoch so merge_level never has to know about them.
  void ensure_activity_state();
  std::uint64_t tick() { return ++clock_; }
  void stamp_assign(std::uint32_t li, std::uint64_t t) {
    // Bounds check covers the window between init_singleton_modules (which
    // clears the arrays on a level change) and the next ensure_activity_state;
    // a missed stamp there is harmless because the arrays are rebuilt with
    // "everything active" anyway.
    if (track_activity_ && li < assign_stamp_.size()) assign_stamp_[li] = t;
  }
  void stamp_stats(ModuleId m, std::uint64_t t) {
    if (track_activity_ && m < stat_stamp_.size()) stat_stamp_[m] = t;
  }
  /// True when re-evaluating `li` provably reproduces its last (no-move)
  /// outcome: no neighbor assignment, candidate-module statistic, or own
  /// statistic changed since the last evaluation, and the recorded rejection
  /// margin survives the global q_total drift (the margin-bound argument of
  /// DESIGN.md §12 — this is what makes the skip *exact*, not heuristic).
  [[nodiscard]] bool can_prune(std::uint32_t li) const;
  /// Record the outcome of a completed evaluation of `li` for future
  /// can_prune decisions. `margin` is the smallest rejection slack observed
  /// across evaluated candidates (+inf when every candidate was skipped).
  /// The min-label guard needs no extra state here: its verdict is a pure
  /// function of the module pair, itself covered by the assignment stamps.
  void note_evaluated(std::uint32_t li, bool found, double margin) {
    if (!track_activity_) return;
    last_eval_[li] = clock_;
    last_q_[li] = q_total_;
    last_margin_[li] = found ? 0.0 : margin;
  }

  // ---- async priority-worklist engine (DESIGN.md §12) ---------------------
  /// Run one level's move scheduling with the async engine: epochs of
  /// priority-ordered local drains + one packed delta exchange each, with a
  /// full reconciliation every `async_max_lag` epochs. Returns the global
  /// move count of the level and reports the number of reconciliations in
  /// `recons_out`; on return the usual post-level state (exact homed_ stats,
  /// exact L) is in place, as after a synchronous round loop.
  std::uint64_t async_level(bool with_delegates, int& recons_out);
  /// Push/raise `li` on the worklist with priority `prio` (lazy deletion:
  /// stale entries are discarded at pop time).
  /// Reconciliation: hub consensus (stage 1), whole-module swap, exact L;
  /// then a stamp-driven sweep reactivates every vertex can_prune cannot
  /// clear. Returns the epoch's global move count (allreduced).
  std::uint64_t async_reconcile(bool with_delegates,
                                std::uint64_t local_moves_since);

  // ---- intra-rank thread parallelism (threads_per_rank > 1) --------------
  /// One cached neighbor-flow entry from the parallel propose phase: the
  /// per-module flow gather of best_move_for, frozen against the pass-start
  /// snapshot of the module assignment.
  struct CachedFlow {
    ModuleId mod = 0;
    double flow = 0;
    std::uint8_t boundary = 0;
  };
  /// One proposed vertex: its position in the shuffled order plus the slice
  /// of the slot's `entries` cache holding its gathered neighbor flows.
  struct GatherSpan {
    std::size_t pos = 0;      ///< index into the shuffled order
    std::uint32_t li = 0;
    std::uint32_t begin = 0;  ///< first entry in the slot's cache
    std::uint32_t count = 0;
    double f_to_old = 0;      ///< flow into the vertex's own module
    /// Active-set: can_prune held against the pass-start stamps, so no
    /// gather was taken. The serial commit re-checks against live stamps
    /// (activation is monotone within a round) and either skips — exactly as
    /// the serial sweep would — or falls back to a fresh full evaluation.
    std::uint8_t pruned = 0;
  };
  /// Parallel propose / serial commit move pass — bit-identical to the
  /// serial find_best_modules loop for any thread count (DESIGN.md §10).
  std::uint64_t find_best_modules_parallel(bool with_delegates,
                                           const std::vector<std::uint32_t>& order,
                                           std::vector<HubProposal>& proposals);
  /// Candidate argmin over a cached gather; exact replica of the serial
  /// candidate loop in best_move_for (same FP ops, same tie-breaking).
  bool select_best_cached(std::uint32_t li, const GatherSpan& span,
                          const std::vector<CachedFlow>& entries, BestMove& best);
  /// Flight-recorder epilogue for one pool dispatch (tasks, imbalance,
  /// scratch bytes); folds per-slot arc counts into the phase counters.
  void note_pool_dispatch(Phase ph);

  /// ΔL evaluation routed through the plogp memo when enabled (exact either
  /// way; the flag keeps a memo-free reference path selectable).
  MoveOutcome eval_move(const MoveDelta& d) {
    return cfg_.plogp_memo ? evaluate_move(d, plogp_memo_) : evaluate_move(d);
  }

  [[nodiscard]] int home_of(ModuleId m) const {
    return static_cast<int>(m % static_cast<ModuleId>(comm_.size()));
  }
  [[nodiscard]] int owner_of(VertexId v) const {
    return static_cast<int>(v % static_cast<VertexId>(comm_.size()));
  }

  perf::WorkCounters& wk(Phase ph) { return work_[static_cast<int>(ph)]; }

  /// RAII phase attribution: wall time plus the comm traffic that happened
  /// while alive is charged to one Phase, and (when tracing is armed) the
  /// phase appears as a span on this rank's trace track.
  class PhaseScope {
   public:
    PhaseScope(DistRank& rank, Phase ph)
        : rank_(rank),
          ph_(static_cast<int>(ph)),
          messages0_(rank.comm_.counters().total_messages()),
          bytes0_(rank.comm_.counters().total_bytes()),
          span_(rank.trace_buf_, kPhaseNames[static_cast<int>(ph)]) {}
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;
    ~PhaseScope() {
      rank_.work_[ph_].messages +=
          rank_.comm_.counters().total_messages() - messages0_;
      rank_.work_[ph_].bytes += rank_.comm_.counters().total_bytes() - bytes0_;
      rank_.phase_sec_[ph_] += timer_.seconds();
    }

   private:
    DistRank& rank_;
    int ph_;
    std::uint64_t messages0_;
    std::uint64_t bytes0_;
    util::Timer timer_;
    obs::SpanScope span_;
  };

  /// Sample flight-recorder gauges/histograms that describe the current
  /// tables (module-table probe lengths, sizes). No-op unless metrics are on.
  void sample_table_metrics();

  comm::Comm& comm_;
  const DistInfomapConfig& cfg_;
  /// Flight recorder (nullable). trace_buf_/metrics_ are this rank's resolved
  /// handles — null whenever the respective subsystem is off, so every
  /// instrumentation site is one pointer test.
  obs::Recorder* recorder_ = nullptr;
  obs::TraceBuffer* trace_buf_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  VertexId n0_ = 0;        ///< level-0 global vertex count
  VertexId level_n_ = 0;   ///< current-level global vertex count
  double node_term_ = 0;   ///< Σ plogp(p_α), level 0 (global)

  std::vector<LocalVertex> verts_;
  std::unordered_map<VertexId, std::uint32_t> index_;  // global -> local
  std::vector<std::uint32_t> arc_off_;                 // size verts_+1
  std::vector<LocalArc> arcs_;
  std::vector<std::uint32_t> movable_;   // local indices, owned first
  std::vector<std::uint32_t> hubs_;      // local indices of delegates

  /// Per-rank module table. Open addressing: evaluate_move probes it once
  /// per candidate module, which made unordered_map bucket chasing the
  /// FindBestModule bottleneck (see DESIGN.md "Hot-path data structures").
  util::FlatMap<ModuleId, ModuleStats> modules_;

  /// Reusable move-search scratch. Module ids at any level are that level's
  /// vertex ids, so a dense accumulator of capacity level_n_ covers all keys.
  struct NeighborFlow {
    double flow = 0;
    std::uint8_t boundary = 0;  ///< reached through a non-owned vertex
  };
  util::SparseAccumulator<ModuleId, NeighborFlow> nbflow_;
  /// Reusable per-module partial-stat scratch for swap_boundary_info.
  util::SparseAccumulator<ModuleId, ModulePartial> partial_acc_;
  PlogpMemo plogp_memo_;

  /// Intra-rank worker pool (threads_per_rank > 1; null selects the exact
  /// single-threaded code paths).
  std::unique_ptr<util::ThreadPool> pool_;
  /// Per-slot scratch arena, persistent across rounds and levels. A slot
  /// owns scratch_[slot] exclusively during a dispatch; the rank thread
  /// merges the outputs serially in slot order afterwards.
  struct ThreadScratch {
    util::SparseAccumulator<ModuleId, NeighborFlow> nbflow;
    std::vector<CachedFlow> entries;
    std::vector<GatherSpan> spans;
    std::uint64_t arcs_scanned = 0;
    /// swap_boundary_info: individual (module, contribution) records from
    /// the vertex / arc / interest scans, replayed serially in slot order so
    /// the floating-point accumulation order matches the serial scan
    /// bit-for-bit (per-slot subtotals would re-associate the sums).
    std::vector<ModulePartial> vertex_stream;
    std::vector<ModulePartial> arc_stream;
    std::vector<ModuleId> interest_stream;
    /// broadcast_delegates_exact: per-destination hub flow records.
    std::vector<std::vector<HubFlowRecord>> hub_out;
    [[nodiscard]] std::size_t memory_bytes() const {
      return nbflow.memory_bytes() + entries.capacity() * sizeof(CachedFlow) +
             spans.capacity() * sizeof(GatherSpan) +
             (vertex_stream.capacity() + arc_stream.capacity()) *
                 sizeof(ModulePartial) +
             interest_stream.capacity() * sizeof(ModuleId);
    }
  };
  std::vector<ThreadScratch> scratch_;
  /// Commit-phase staleness: stale_stamp_[li] == pass_epoch_ marks a vertex
  /// whose cached gather was invalidated by a neighbor's committed move.
  std::vector<std::uint32_t> stale_stamp_;
  std::uint32_t pass_epoch_ = 0;
  /// Gathers invalidated at commit time and recomputed serially (diagnostic).
  std::uint64_t stale_rescans_ = 0;

  /// modules_.find misses in the move search (candidate module not yet
  /// synced locally → vertex skipped this round). Previously silent; now
  /// counted so the invariant watchdog can flag pathological skip rates.
  std::uint64_t skipped_unsynced_round_ = 0;
  std::uint64_t skipped_unsynced_total_ = 0;

  // ---- event clock & active-set state (cfg_.active_set || cfg_.async) -----
  /// Master switch resolved once in the ctor; false keeps every stamp site a
  /// dead branch and the arrays empty.
  bool track_activity_ = false;
  std::uint64_t clock_ = 1;  ///< per-rank monotone event clock
  /// Per local vertex: clock at its last module-assignment change (own move,
  /// hub winner, ghost update).
  std::vector<std::uint64_t> assign_stamp_;
  /// Per module id (< level_n_ — module ids are current-level vertex ids):
  /// clock at the last statistics change visible in the local table.
  std::vector<std::uint64_t> stat_stamp_;
  /// Per local vertex: clock at its last completed evaluation (0 = never).
  std::vector<std::uint64_t> last_eval_;
  /// Rejection margin at the last no-move evaluation: min over evaluated
  /// candidates of (ΔL + move_epsilon) — how far the best candidate was from
  /// acceptance.
  std::vector<double> last_margin_;
  /// q_total_ at the last evaluation (the margin is only valid against
  /// bounded q drift; see can_prune).
  std::vector<double> last_q_;
  /// Pre-swap module table kept for the refresh diff: whole_module_swap
  /// replaces the table wholesale, and only entries that actually changed
  /// bitwise may stamp (otherwise every module would reactivate every round
  /// and the fast path would never prune).
  util::FlatMap<ModuleId, ModuleStats> prev_modules_;
  std::uint64_t pruned_round_ = 0;  ///< active-set skips this round

  // ---- async worklist state (cfg_.async) ----------------------------------
  /// Lazy-deletion priority queue over local vertex indices (extracted to
  /// util so the dcheck harness drives the same implementation).
  util::LazyPriorityWorklist worklist_;
  std::vector<std::uint8_t> dirty_flag_; ///< async dedup for dirty_owned_
  /// Per local *non-owned* vertex: owned local readers (reverse adjacency),
  /// built per level in async mode so an incoming delta for a ghost/hub can
  /// reactivate exactly the local vertices that read it.
  std::vector<std::vector<std::uint32_t>> ghost_readers_;

  double q_total_ = 0;
  double codelength_ = 0;
  double singleton_codelength_ = 0;
  std::uint64_t alive_modules_ = 0;  ///< global module count (post-sync)
  int round_index_ = 0;  ///< round counter (drives min-label alternation)
  int current_level_ = 0;  ///< outer level (0 = stage 1) for round samples

  /// Owned vertices that changed module since the last swap.
  std::vector<std::uint32_t> dirty_owned_;
  /// subscribers_[li] = ranks reading vertex li (owned vertices only).
  std::unordered_map<std::uint32_t, std::vector<int>> subscribers_;

  /// Exact stats of modules homed here (refreshed each swap) — the merge and
  /// codelength inputs.
  std::unordered_map<ModuleId, ModuleStats> homed_;
  /// Ranks interested in each homed module (senders of partials).
  std::unordered_map<ModuleId, std::vector<int>> homed_interest_;

  /// Level-0 vertices owned by this rank and their current coarse vertex.
  std::vector<VertexId> owned0_;
  std::vector<VertexId> proj_;
  /// (coarse vertex we own, rank projecting onto it) — registered during the
  /// latest merge's packed exchange so the final projection is a single
  /// unsolicited push instead of a query/answer round trip.
  std::vector<ProjectionInterest> proj_subscribers_;

  std::vector<OuterIterationInfo> trace_;
  std::vector<double> round_mdl_;
  std::vector<std::pair<VertexId, VertexId>> final_assignment_;
  int stage1_rounds_ = 0;
  int stage2_levels_ = 0;
  double stage1_seconds_ = 0;
  double stage2_seconds_ = 0;
  perf::WorkCounters work_[kNumPhases];
  perf::WorkCounters stage1_work_snapshot_[kNumPhases];
  double phase_sec_[kNumPhases] = {0, 0, 0, 0};
};

}  // namespace dinfomap::core::detail
