#include "core/flowgraph.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dinfomap::core {

FlowGraph make_flow_graph(const Csr& graph) {
  DINFOMAP_REQUIRE_MSG(graph.num_vertices() > 0, "empty graph");
  const double two_w = 2.0 * graph.total_link_weight();
  DINFOMAP_REQUIRE_MSG(two_w > 0, "graph has no non-self edges");

  const VertexId n = graph.num_vertices();

  // Rebuild the CSR with flow weights.
  std::vector<graph::EdgeIndex> offsets = graph.offsets();
  std::vector<graph::Neighbor> adjacency = graph.adjacency();
  for (auto& nb : adjacency) nb.weight /= two_w;
  std::vector<double> self(n);
  for (VertexId u = 0; u < n; ++u) self[u] = graph.self_weight(u) / two_w;

  FlowGraph fg;
  fg.csr = Csr(std::move(offsets), std::move(adjacency), std::move(self));
  fg.node_flow.resize(n);
  fg.node_term = 0;
  for (VertexId u = 0; u < n; ++u) {
    fg.node_flow[u] = fg.csr.weighted_degree(u) + fg.csr.self_weight(u);
    fg.node_term += plogp(fg.node_flow[u]);
  }
  return fg;
}

NodeFlows compute_node_flows(const graph::GraphView& graph) {
  DINFOMAP_REQUIRE_MSG(graph.num_vertices() > 0, "empty graph");
  NodeFlows nf;
  nf.two_w = 2.0 * graph.total_link_weight();
  DINFOMAP_REQUIRE_MSG(nf.two_w > 0, "graph has no non-self edges");
  const VertexId n = graph.num_vertices();
  nf.node_flow.resize(n);
  auto cursor = graph.cursor();
  for (VertexId u = 0; u < n; ++u) {
    // Mirror of make_flow_graph: the scaled Csr's weighted_degree(u) is the
    // in-order sum of w_i / 2W, and node flow adds self/2W on top.
    double wdeg = 0;
    for (const auto& nb : graph.neighbors(u, cursor)) wdeg += nb.weight / nf.two_w;
    nf.node_flow[u] = wdeg + graph.self_weight(u) / nf.two_w;
    nf.node_term += plogp(nf.node_flow[u]);
  }
  return nf;
}

bool validate_flow_graph(const FlowGraph& fg, bool level0) {
  const VertexId n = fg.num_vertices();
  if (fg.node_flow.size() != n) return false;
  double sum = 0;
  for (VertexId u = 0; u < n; ++u) {
    if (fg.node_flow[u] < 0) return false;
    // Node flow covers at least the vertex's own non-self arc flow; the
    // remainder is self flow carried from finer levels.
    if (fg.node_flow[u] + 1e-12 < fg.out_flow(u)) return false;
    sum += fg.node_flow[u];
  }
  if (std::abs(sum - 1.0) > 1e-9) return false;
  if (level0) {
    double term = 0;
    for (VertexId u = 0; u < n; ++u) term += plogp(fg.node_flow[u]);
    if (std::abs(term - fg.node_term) > 1e-9) return false;
  }
  return true;
}

}  // namespace dinfomap::core
