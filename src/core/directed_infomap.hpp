// Directed Infomap extension.
//
// The paper (§2.2) notes the method "can be easily extended to directed
// graphs": vertex visit rates then come from PageRank instead of degrees,
// and link flows are the stationary flows p_u·w_uv/w_out(u) (teleportation
// unrecorded — it contributes to visit rates but not to module exits, the
// convention of Infomap's default two-level directed codelength).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dicsr.hpp"
#include "graph/types.hpp"

namespace dinfomap::core {

struct PageRankConfig {
  double damping = 0.85;
  int max_iterations = 200;
  double tolerance = 1e-12;  ///< L1 change per iteration to stop at
};

/// Stationary visit probabilities of the teleporting random walk. Dangling
/// vertices spread their mass uniformly. Sums to 1.
std::vector<double> pagerank(const graph::DiCsr& graph,
                             const PageRankConfig& config = {});

struct DirectedInfomapConfig {
  double theta = 1e-10;
  int max_outer_iterations = 20;
  int max_inner_passes = 64;
  double move_epsilon = 1e-14;
  std::uint64_t seed = 42;
  PageRankConfig pagerank;
};

struct DirectedInfomapResult {
  graph::Partition assignment;  ///< vertex → module (dense ids)
  double codelength = 0;
  double singleton_codelength = 0;
  int levels = 0;

  [[nodiscard]] graph::VertexId num_modules() const {
    graph::VertexId k = 0;
    for (auto m : assignment) k = std::max(k, m + 1);
    return k;
  }
};

DirectedInfomapResult directed_infomap(const graph::DiCsr& graph,
                                       const DirectedInfomapConfig& config = {});

/// Exact directed two-level codelength of an arbitrary assignment (the
/// reference the optimizer is tested against).
double directed_codelength(const graph::DiCsr& graph,
                           const std::vector<double>& visit_rate,
                           const graph::Partition& module_of,
                           double damping = 0.85);

}  // namespace dinfomap::core
