#include "core/relaxmap.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "core/coarsen.hpp"
#include "core/flowgraph.hpp"
#include "core/mapequation.hpp"
#include "core/relaxmap_sync.hpp"
#include "core/seq_infomap.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/random.hpp"
#include "util/sparse_accumulator.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dinfomap::core {

using graph::VertexId;

namespace {

// SpinLock and ModulePairGuard live in core/relaxmap_sync.hpp so the dcheck
// pair-ordering harness exercises the same implementation.

// Module state (module_of, modules, q_total_snapshot) is deliberately *not*
// DI_GUARDED_BY the per-module spinlocks: RelaxMap's published consistency
// model evaluates moves against possibly-stale values read lock-free, and
// only move *application* is serialized. Annotating the members would force
// escape hatches onto every by-design racy read; instead the race stays
// confined to this file and TSan runs exclude RelaxMap (see DESIGN.md §10).
struct SharedLevel {
  std::vector<VertexId> module_of;
  std::vector<ModuleStats> modules;
  std::unique_ptr<SpinLock[]> locks;
  double q_total_snapshot = 0;  // refreshed between passes

  void init(const FlowGraph& fg) {
    const VertexId n = fg.num_vertices();
    module_of.resize(n);
    std::iota(module_of.begin(), module_of.end(), 0);
    modules.assign(n, ModuleStats{});
    locks = std::make_unique<SpinLock[]>(n);
    for (VertexId u = 0; u < n; ++u) {
      modules[u] = {fg.node_flow[u], fg.out_flow(u), 1};
    }
    refresh_q_total();
  }

  void refresh_q_total() {
    double q = 0;
    for (const auto& m : modules)
      if (m.num_members > 0) q += m.exit_pr;
    q_total_snapshot = q;
  }
};

/// One thread's pass over its vertex stripe; returns its move count.
std::uint64_t stripe_pass(const FlowGraph& fg, SharedLevel& shared,
                          int thread_id, int num_threads, double eps) {
  std::uint64_t moves = 0;
  // Thread-private scratch: one allocation per pass instead of hash-bucket
  // churn per vertex.
  util::SparseAccumulator<VertexId, double> flow_to(fg.num_vertices());
  PlogpMemo memo;
  const VertexId n = fg.num_vertices();
  for (VertexId u = static_cast<VertexId>(thread_id); u < n;
       u += static_cast<VertexId>(num_threads)) {
    const VertexId cur = shared.module_of[u];
    flow_to.clear();
    double f_u = 0;
    for (const auto& nb : fg.csr.neighbors(u)) {
      flow_to[shared.module_of[nb.target]] += nb.weight;  // relaxed read
      f_u += nb.weight;
    }
    if (flow_to.empty()) continue;
    const double f_to_old = flow_to.value_or(cur, 0.0);

    double best_delta = -eps;
    VertexId best = cur;
    for (const VertexId mod : flow_to.keys()) {
      if (mod == cur) continue;
      MoveDelta d;
      d.p_u = fg.node_flow[u];
      d.f_u = f_u;
      d.f_to_old = f_to_old;
      d.f_to_new = *flow_to.find(mod);
      d.old_stats = shared.modules[cur];  // relaxed read
      d.new_stats = shared.modules[mod];
      d.q_total = shared.q_total_snapshot;
      const auto out = evaluate_move(d, memo);
      if (out.delta_codelength < best_delta - 1e-15 ||
          (out.delta_codelength < best_delta + 1e-15 && mod < best)) {
        best_delta = out.delta_codelength;
        best = mod;
      }
    }
    if (best == cur) continue;

    // Serialize the application on the two modules (id order).
    {
      const VertexId lo = std::min(cur, best), hi = std::max(cur, best);
      ModulePairGuard guard(shared.locks[lo],
                            lo != hi ? &shared.locks[hi] : nullptr);
      // Re-derive the stat updates under the locks from current values.
      ModuleStats& old_m = shared.modules[cur];
      ModuleStats& new_m = shared.modules[best];
      old_m.sum_pr -= fg.node_flow[u];
      old_m.exit_pr += -f_u + 2.0 * f_to_old;
      old_m.num_members = old_m.num_members > 0 ? old_m.num_members - 1 : 0;
      new_m.sum_pr += fg.node_flow[u];
      new_m.exit_pr += f_u - 2.0 * *flow_to.find(best);
      new_m.num_members += 1;
      shared.module_of[u] = best;
    }
    ++moves;
  }
  return moves;
}

}  // namespace

RelaxMapResult relaxmap(const graph::Csr& graph, const RelaxMapConfig& config) {
  DINFOMAP_REQUIRE_MSG(graph.num_vertices() > 0, "empty graph");
  DINFOMAP_REQUIRE_MSG(config.num_threads >= 1, "need at least one thread");
  util::Timer wall;

  FlowGraph fg = make_flow_graph(graph);
  const FlowGraph level0 = fg;

  RelaxMapResult result;
  result.assignment.resize(graph.num_vertices());
  std::iota(result.assignment.begin(), result.assignment.end(), 0);
  result.singleton_codelength =
      codelength_of_partition(level0, result.assignment);

  double prev = result.singleton_codelength;
  // One persistent pool for the whole run: stripes were previously fresh
  // std::threads per pass, paying a spawn/join per inner pass. Slot s runs
  // stripe s; passes with fewer vertices than threads shrink the stripe
  // count and leave the extra slots idle.
  util::ThreadPool pool(config.num_threads);
  std::vector<std::uint64_t> slot_moves(
      static_cast<std::size_t>(pool.num_threads()), 0);
  for (int level = 0; level < config.max_outer_iterations; ++level) {
    SharedLevel shared;
    shared.init(fg);

    for (int pass = 0; pass < config.max_inner_passes; ++pass) {
      const int t_count =
          std::min<int>(config.num_threads, static_cast<int>(fg.num_vertices()));
      std::fill(slot_moves.begin(), slot_moves.end(), 0);
      pool.run_slots([&](int slot) {
        if (slot >= t_count) return;
        slot_moves[static_cast<std::size_t>(slot)] =
            stripe_pass(fg, shared, slot, t_count, config.move_epsilon);
      });
      std::uint64_t moves = 0;
      for (const auto m : slot_moves) moves += m;
      shared.refresh_q_total();
      if (moves == 0) break;
    }

    CoarsenResult coarse = coarsen(fg, shared.module_of);
    for (auto& a : result.assignment) a = coarse.fine_to_coarse[a];
    const bool merged = coarse.graph.num_vertices() < fg.num_vertices();
    fg = std::move(coarse.graph);
    ++result.levels;

    result.codelength = codelength_of_partition(level0, result.assignment);
    const double improvement = prev - result.codelength;
    prev = result.codelength;
    if (!merged) break;
    if (level > 0 && improvement < config.theta) break;
  }
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace dinfomap::core
