// RelaxMap-style shared-memory parallel Infomap (Bae et al. 2013) — the
// other prior-art comparator in the paper's related work. Threads optimize
// the map equation concurrently over a shared module table with relaxed
// consistency: move decisions may read slightly stale statistics (hence
// "relax"), applications are serialized per-module, and exactness is
// restored by rescoring between levels.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::core {

struct RelaxMapConfig {
  int num_threads = 4;
  double theta = 1e-10;
  int max_outer_iterations = 20;
  int max_inner_passes = 64;
  double move_epsilon = 1e-14;
  std::uint64_t seed = 42;
};

struct RelaxMapResult {
  graph::Partition assignment;  ///< level-0 vertex → module (dense ids)
  double codelength = 0;        ///< exact rescoring of `assignment`
  double singleton_codelength = 0;
  int levels = 0;
  double wall_seconds = 0;

  [[nodiscard]] graph::VertexId num_modules() const {
    graph::VertexId k = 0;
    for (auto m : assignment) k = std::max(k, m + 1);
    return k;
  }
};

RelaxMapResult relaxmap(const graph::Csr& graph, const RelaxMapConfig& config = {});

}  // namespace dinfomap::core
