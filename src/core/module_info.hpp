// Wire records of the distributed protocol. All types are trivially
// copyable PODs, sent through comm::Comm's typed channels.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace dinfomap::core {

/// Global module identifier: the (current-level) vertex id anchoring the
/// module, widened per the paper's interface (List 1: uint64_t modID).
using ModuleId = std::uint64_t;

/// List 1 of the paper, verbatim fields: the message interface for swapping
/// whole-module information of boundary vertices.
struct ModuleInfo {
  ModuleId mod_id = 0;           ///< module ID
  double sum_pr = 0;             ///< sum of visit probability of the module
  double exit_pr = 0;            ///< sum of exit probability of the module
  std::int32_t num_members = 0;  ///< vertex number in this module
  /// Whether this module's statistics were already shipped to the same
  /// destination in this round (Alg. 3: receiver skips stat merging when
  /// set, avoiding double counting when several boundary vertices share a
  /// module).
  std::uint8_t is_sent = 0;
  std::uint8_t pad_[3] = {0, 0, 0};
};
static_assert(sizeof(ModuleInfo) == 32);

/// Boundary-vertex swap record: "vertex v is now in the module described by
/// info" (Alg. 3 lines 2–19 prepare these; lines 22–32 consume them).
struct BoundaryRecord {
  graph::VertexId vertex = 0;
  std::uint32_t pad_ = 0;
  ModuleInfo info;
};

/// A rank's local best move for a delegate (hub), broadcast so all ranks
/// apply the move with the globally minimal ΔL (Alg. 2 line 4).
struct HubProposal {
  graph::VertexId hub = 0;
  std::int32_t rank = 0;
  ModuleId target = 0;
  double delta_l = 0;
};

/// One rank's partial flow from a hub to one neighbor module, shipped to the
/// hub's owner for the exact-hub-moves extension. Carries the sender's
/// (post-sync, hence globally consistent) statistics of that module so the
/// owner can evaluate ΔL for modules it does not track itself.
struct HubFlowRecord {
  graph::VertexId hub = 0;
  std::uint32_t pad_ = 0;
  ModuleId module = 0;
  double flow = 0;
  double sum_pr = 0;
  double exit_pr = 0;
  std::int64_t num_members = 0;
};

/// Partial module statistics flowing to the module's home rank for exact
/// aggregation; a zero partial doubles as an "I need this module's info"
/// subscription.
struct ModulePartial {
  ModuleId mod_id = 0;
  double sum_pr = 0;
  double exit_pr = 0;
  std::int32_t num_members = 0;
  std::uint32_t pad_ = 0;
};

/// Ghost-subscription request: "rank R reads vertex v; push its module
/// changes to R" (set up once per level).
struct SubscribeRequest {
  graph::VertexId vertex = 0;
};

/// Coarse arc shipped during distributed merging (§3.5).
struct CoarseArc {
  graph::VertexId source = 0;
  graph::VertexId target = 0;  ///< == source encodes self-flow (already halved)
  double flow = 0;
};

/// Coarse vertex metadata from a module's home to the new 1D owner.
struct CoarseVertexInfo {
  graph::VertexId vertex = 0;
  std::uint32_t pad_ = 0;
  double node_flow = 0;
};

/// Projection query/answer for tracking level-0 assignments through merges.
struct ProjectionQuery {
  graph::VertexId current = 0;  ///< current coarse vertex of some level-0 vertex
};
struct ProjectionAnswer {
  graph::VertexId next = 0;  ///< its coarse vertex at the next level
};

/// Interest registration piggybacked on the merge exchange: "rank `rank`
/// projects level-0 vertices onto coarse vertex `vertex`; push its final
/// module there". Lets the final projection run as one push instead of a
/// query/answer round trip.
struct ProjectionInterest {
  graph::VertexId vertex = 0;
  std::int32_t rank = 0;
};

/// The final-projection push: coarse `vertex` ended the run in `module`.
struct FinalModuleRecord {
  graph::VertexId vertex = 0;
  std::uint32_t pad_ = 0;
  ModuleId module = 0;
};

/// Async engine: one committed move, pushed unsolicited to every subscriber
/// of the moved vertex at the end of the epoch (same push shape as the
/// final-projection records — subscribers were registered up front, so no
/// query/answer round trip). Receivers update their ghost copy, adjust module
/// mass estimates by `node_flow`, and reactivate local readers with priority
/// `gain` (the mover's achieved |ΔL|).
struct ModuleDeltaRecord {
  graph::VertexId vertex = 0;
  std::uint32_t pad_ = 0;
  ModuleId old_module = 0;
  ModuleId new_module = 0;
  double node_flow = 0;
  double gain = 0;
};

/// Async engine: per-rank epoch summary, piggybacked on the same packed
/// exchange as the delta records (broadcast to all ranks). Global quiescence
/// — every rank reporting zero moves and an empty worklist — is then
/// detectable without an extra collective.
struct EpochStatus {
  std::uint64_t moves = 0;   ///< moves this rank committed this epoch
  std::uint64_t queued = 0;  ///< live worklist entries after the drain
};

}  // namespace dinfomap::core
