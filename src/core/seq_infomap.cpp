#include "core/seq_infomap.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "core/coarsen.hpp"
#include "graph/builder.hpp"
#include "util/check.hpp"
#include "util/random.hpp"
#include "util/sorted.hpp"
#include "util/sparse_accumulator.hpp"
#include "util/thread_pool.hpp"

namespace dinfomap::core {

using graph::VertexId;

namespace {

/// Dense clustering state for one level: module stats plus incrementally
/// maintained codelength terms.
struct LevelState {
  std::vector<VertexId> module_of;
  std::vector<ModuleStats> modules;  // indexed by module id (== initial vertex)
  CodelengthTerms terms;
  VertexId live_modules = 0;

  void init_singletons(const FlowGraph& fg) {
    std::vector<VertexId> identity(fg.num_vertices());
    std::iota(identity.begin(), identity.end(), 0);
    init_from(fg, identity);
  }

  /// Initialize from an arbitrary assignment (labels must be < n). Used for
  /// singleton starts and for the level-0 fine-tuning sweep.
  void init_from(const FlowGraph& fg, const std::vector<VertexId>& assignment) {
    const VertexId n = fg.num_vertices();
    DINFOMAP_REQUIRE(assignment.size() == n);
    module_of = assignment;
    modules.assign(n, ModuleStats{});
    terms = CodelengthTerms{};
    terms.node_term = fg.node_term;
    live_modules = 0;
    for (VertexId u = 0; u < n; ++u) {
      DINFOMAP_REQUIRE_MSG(module_of[u] < n, "module labels must be < n");
      ModuleStats& m = modules[module_of[u]];
      m.sum_pr += fg.node_flow[u];
      m.num_members += 1;
      for (const auto& nb : fg.csr.neighbors(u))
        if (module_of[nb.target] != module_of[u]) m.exit_pr += nb.weight;
    }
    for (const ModuleStats& m : modules) {
      if (m.num_members == 0) continue;
      ++live_modules;
      terms.q_total += m.exit_pr;
      terms.sum_plogp_q += plogp(m.exit_pr);
      terms.sum_plogp_q_plus_p += plogp(m.exit_pr + m.sum_pr);
    }
  }

  void apply(VertexId u, VertexId target, const MoveOutcome& out) {
    ModuleStats& old_m = modules[module_of[u]];
    ModuleStats& new_m = modules[target];
    terms.q_total += out.delta_q_total;
    terms.sum_plogp_q += plogp(out.old_after.exit_pr) - plogp(old_m.exit_pr) +
                         plogp(out.new_after.exit_pr) - plogp(new_m.exit_pr);
    terms.sum_plogp_q_plus_p +=
        plogp(out.old_after.exit_pr + out.old_after.sum_pr) -
        plogp(old_m.exit_pr + old_m.sum_pr) +
        plogp(out.new_after.exit_pr + out.new_after.sum_pr) -
        plogp(new_m.exit_pr + new_m.sum_pr);
    if (out.old_after.num_members == 0) --live_modules;
    old_m = out.old_after;
    new_m = out.new_after;
    module_of[u] = target;
  }
};

/// Reusable scratch for move passes: the flow accumulator (module ids are
/// always < the level's vertex count) and the plogp memo. One instance
/// serves every pass of a level — no per-vertex allocation. With
/// num_threads > 1 it also owns the worker pool, the per-slot gather caches,
/// and the commit-phase staleness stamps.
struct MoveScratch {
  util::SparseAccumulator<VertexId, double> flow_to;  // module -> flow from u
  PlogpMemo memo;
  bool use_memo = true;

  struct CachedFlow {
    VertexId mod = 0;
    double flow = 0;
  };
  struct GatherSpan {
    VertexId u = 0;
    std::uint32_t begin = 0;  ///< first entry in the slot's cache
    std::uint32_t count = 0;
    double f_u = 0;
    double f_to_old = 0;
  };
  struct SlotScratch {
    util::SparseAccumulator<VertexId, double> flow_to;
    std::vector<CachedFlow> entries;
    std::vector<GatherSpan> spans;
  };
  std::unique_ptr<util::ThreadPool> pool;  ///< null = serial move passes
  std::vector<SlotScratch> slots;
  std::vector<std::uint32_t> stale_stamp;
  std::uint32_t pass_epoch = 0;
};

/// Candidate argmin for one vertex over (module, flow) pairs delivered in the
/// accumulator's first-touch (= edge) order. Shared by the serial pass and
/// the threaded commit so both perform the identical FP ops and tie-breaks.
template <typename EntryRange>
bool select_best(const FlowGraph& fg, const LevelState& state, VertexId u,
                 double f_u, double f_to_old, double eps, MoveScratch& scratch,
                 const EntryRange& entries, VertexId& best_target,
                 MoveOutcome& best_outcome) {
  const VertexId cur = state.module_of[u];
  double best_delta = -eps;
  best_target = cur;
  for (const auto& [mod, flow] : entries) {
    if (mod == cur) continue;
    MoveDelta d;
    d.p_u = fg.node_flow[u];
    d.f_u = f_u;
    d.f_to_old = f_to_old;
    d.f_to_new = flow;
    d.old_stats = state.modules[cur];
    d.new_stats = state.modules[mod];
    d.q_total = state.terms.q_total;
    const MoveOutcome out = scratch.use_memo ? evaluate_move(d, scratch.memo)
                                             : evaluate_move(d);
    if (out.delta_codelength < best_delta - 1e-15 ||
        (out.delta_codelength < best_delta + 1e-15 && mod < best_target)) {
      best_delta = out.delta_codelength;
      best_target = mod;
      best_outcome = out;
    }
  }
  return best_target != cur;
}

/// Fresh gather + argmin for one vertex (the serial pass body; also the
/// threaded commit's fallback when a cached gather went stale).
bool best_move_fresh(const FlowGraph& fg, const LevelState& state, VertexId u,
                     double eps, MoveScratch& scratch, VertexId& best_target,
                     MoveOutcome& best_outcome) {
  auto& flow_to = scratch.flow_to;
  flow_to.clear();
  double f_u = 0;
  for (const auto& nb : fg.csr.neighbors(u)) {
    flow_to[state.module_of[nb.target]] += nb.weight;
    f_u += nb.weight;
  }
  if (flow_to.empty()) return false;  // isolated vertex
  const double f_to_old = flow_to.value_or(state.module_of[u], 0.0);

  struct AccRange {
    const util::SparseAccumulator<VertexId, double>& acc;
    struct It {
      const AccRange* r;
      std::size_t i;
      bool operator!=(const It& o) const { return i != o.i; }
      void operator++() { ++i; }
      std::pair<VertexId, double> operator*() const {
        const VertexId mod = r->acc.keys()[i];
        return {mod, *r->acc.find(mod)};
      }
    };
    It begin() const { return {this, 0}; }
    It end() const { return {this, acc.size()}; }
  };
  return select_best(fg, state, u, f_u, f_to_old, eps, scratch,
                     AccRange{flow_to}, best_target, best_outcome);
}

/// Threaded pass: slots gather neighbor flows for contiguous chunks of
/// `order` against the frozen pass-start assignment; the calling thread
/// commits serially in the exact shuffled order, falling back to a fresh
/// gather whenever a committed move touched one of the vertex's neighbors.
/// Bit-identical to the serial pass for any thread count (DESIGN.md §10).
std::uint64_t move_pass_parallel(const FlowGraph& fg, LevelState& state,
                                 const std::vector<VertexId>& order, double eps,
                                 MoveScratch& scratch) {
  const VertexId n = fg.num_vertices();
  for (auto& sl : scratch.slots) {  // pre-clear: empty chunks never dispatch
    if (sl.flow_to.capacity() < n) sl.flow_to.reset(n);
    sl.entries.clear();
    sl.spans.clear();
  }
  scratch.pool->parallel_for(
      order.size(), [&](int slot, std::size_t b, std::size_t e) {
        auto& sl = scratch.slots[static_cast<std::size_t>(slot)];
        for (std::size_t pos = b; pos < e; ++pos) {
          const VertexId u = order[pos];
          const VertexId cur = state.module_of[u];
          sl.flow_to.clear();
          double f_u = 0;
          for (const auto& nb : fg.csr.neighbors(u)) {
            sl.flow_to[state.module_of[nb.target]] += nb.weight;
            f_u += nb.weight;
          }
          if (sl.flow_to.empty()) continue;
          MoveScratch::GatherSpan sp;
          sp.u = u;
          sp.begin = static_cast<std::uint32_t>(sl.entries.size());
          sp.count = static_cast<std::uint32_t>(sl.flow_to.size());
          sp.f_u = f_u;
          sp.f_to_old = sl.flow_to.value_or(cur, 0.0);
          for (const VertexId mod : sl.flow_to.keys())
            sl.entries.push_back({mod, *sl.flow_to.find(mod)});
          sl.spans.push_back(sp);
        }
      });

  if (scratch.stale_stamp.size() != n) {
    scratch.stale_stamp.assign(n, 0);
    scratch.pass_epoch = 0;
  }
  ++scratch.pass_epoch;

  std::uint64_t moves = 0;
  for (const auto& sl : scratch.slots) {
    for (const MoveScratch::GatherSpan& sp : sl.spans) {
      const VertexId u = sp.u;
      VertexId best_target = 0;
      MoveOutcome best_outcome;
      bool found;
      if (scratch.stale_stamp[u] == scratch.pass_epoch) {
        found = best_move_fresh(fg, state, u, eps, scratch, best_target,
                                best_outcome);
      } else {
        struct CacheRange {
          const MoveScratch::CachedFlow* first;
          std::uint32_t n;
          const MoveScratch::CachedFlow* begin() const { return first; }
          const MoveScratch::CachedFlow* end() const { return first + n; }
        };
        found = select_best(fg, state, u, sp.f_u, sp.f_to_old, eps, scratch,
                            CacheRange{sl.entries.data() + sp.begin, sp.count},
                            best_target, best_outcome);
      }
      if (!found) continue;
      state.apply(u, best_target, best_outcome);
      // Any neighbor's next gather is now invalid; the CSR is symmetric, so
      // u's own adjacency names every reader of u.
      for (const auto& nb : fg.csr.neighbors(u))
        scratch.stale_stamp[nb.target] = scratch.pass_epoch;
      ++moves;
    }
  }
  return moves;
}

/// One pass over all vertices in `order`; returns the number of moves.
std::uint64_t move_pass(const FlowGraph& fg, LevelState& state,
                        const std::vector<VertexId>& order, double eps,
                        MoveScratch& scratch) {
  auto& flow_to = scratch.flow_to;
  if (flow_to.capacity() < fg.num_vertices()) flow_to.reset(fg.num_vertices());
  if (scratch.pool != nullptr)
    return move_pass_parallel(fg, state, order, eps, scratch);
  std::uint64_t moves = 0;
  for (VertexId u : order) {
    VertexId best_target = 0;
    MoveOutcome best_outcome;
    if (best_move_fresh(fg, state, u, eps, scratch, best_target, best_outcome)) {
      state.apply(u, best_target, best_outcome);
      ++moves;
    }
  }
  return moves;
}

}  // namespace

InfomapResult sequential_infomap(const graph::Csr& graph,
                                 const InfomapConfig& config) {
  DINFOMAP_REQUIRE_MSG(graph.num_vertices() > 0, "empty graph");
  FlowGraph fg = make_flow_graph(graph);
  const bool keep_level0 = config.fine_tune || config.coarse_tune;
  const FlowGraph level0 = keep_level0 ? fg : FlowGraph{};

  InfomapResult result;
  result.assignment.resize(graph.num_vertices());
  std::iota(result.assignment.begin(), result.assignment.end(), 0);

  double prev_codelength = 0;
  {
    LevelState probe;
    probe.init_singletons(fg);
    result.singleton_codelength = probe.terms.codelength();
    prev_codelength = result.singleton_codelength;
  }

  util::Xoshiro256 rng(config.seed);
  MoveScratch scratch;
  scratch.use_memo = config.plogp_memo;
  if (config.num_threads > 1) {
    scratch.pool = std::make_unique<util::ThreadPool>(config.num_threads);
    scratch.slots.resize(static_cast<std::size_t>(config.num_threads));
  }
  for (int level = 0; level < config.max_outer_iterations; ++level) {
    LevelState state;
    state.init_singletons(fg);

    OuterIterationInfo info;
    info.level = level;
    info.level_vertices = fg.num_vertices();
    info.codelength_before = state.terms.codelength();

    std::vector<VertexId> order(fg.num_vertices());
    std::iota(order.begin(), order.end(), 0);

    for (int pass = 0; pass < config.max_inner_passes; ++pass) {
      util::deterministic_shuffle(order, rng);
      const std::uint64_t moves =
          move_pass(fg, state, order, config.move_epsilon, scratch);
      info.moves += moves;
      ++info.inner_passes;
      if (moves == 0) break;
    }

    info.codelength_after = state.terms.codelength();
    info.num_modules = state.live_modules;
    result.trace.push_back(info);

    // Project the level-0 assignment through this level's merge:
    // each entry currently names a fine vertex; fine_to_coarse maps a fine
    // vertex to the coarse vertex of its module.
    CoarsenResult coarse = coarsen(fg, state.module_of);
    for (auto& a : result.assignment) a = coarse.fine_to_coarse[a];
    result.level_assignments.push_back(result.assignment);
    fg = std::move(coarse.graph);

    const double improvement = prev_codelength - info.codelength_after;
    prev_codelength = info.codelength_after;
    result.codelength = info.codelength_after;
    if (info.num_modules == info.level_vertices) break;  // nothing merged
    if (level > 0 && improvement < config.theta) break;
  }

  // Coarse-tuning (Rosvall's submodule refinement): split each module into
  // candidate submodules on its induced subnetwork, contract submodules to
  // single nodes, and let them move between modules as units. Only improving
  // moves are accepted.
  if (config.coarse_tune && !result.trace.empty()) {
    const VertexId n = level0.num_vertices();
    // 1. Submodules within each module (fresh labels, globally unique).
    std::vector<VertexId> sub(n, 0);
    {
      std::unordered_map<VertexId, std::vector<VertexId>> members;
      for (VertexId v = 0; v < n; ++v) members[result.assignment[v]].push_back(v);
      VertexId next_label = 0;
      InfomapConfig sub_cfg = config;
      sub_cfg.fine_tune = false;
      sub_cfg.coarse_tune = false;
      // Submodule problems are tiny; per-subcall pools would be all churn.
      sub_cfg.num_threads = 1;
      // Sorted module order: submodule labels (and the downstream contraction)
      // must not depend on hash layout.
      for (const VertexId mod : util::sorted_keys(members)) {
        const std::vector<VertexId>& verts = members.at(mod);
        if (verts.size() <= 2) {
          for (VertexId v : verts) sub[v] = next_label;
          ++next_label;
          continue;
        }
        std::unordered_map<VertexId, VertexId> local;
        for (VertexId i = 0; i < verts.size(); ++i) local.emplace(verts[i], i);
        graph::EdgeList internal;
        for (VertexId i = 0; i < verts.size(); ++i) {
          for (const auto& nb : level0.csr.neighbors(verts[i])) {
            if (verts[i] > nb.target) continue;
            auto it = local.find(nb.target);
            if (it != local.end()) internal.push_back({i, it->second, nb.weight});
          }
        }
        if (internal.empty()) {
          for (VertexId v : verts) sub[v] = next_label;
          ++next_label;
          continue;
        }
        const auto sub_result = sequential_infomap(
            graph::build_csr(internal, static_cast<VertexId>(verts.size())),
            sub_cfg);
        VertexId max_sub = 0;
        for (VertexId i = 0; i < verts.size(); ++i) {
          sub[verts[i]] = next_label + sub_result.assignment[i];
          max_sub = std::max(max_sub, sub_result.assignment[i]);
        }
        next_label += max_sub + 1;
      }
    }
    // 2. Contract submodules; seed the contracted state with the *module*
    //    assignment (submodule → its parent module, densified).
    CoarsenResult contracted = coarsen(level0, sub);
    const VertexId n_sub = contracted.graph.num_vertices();
    std::vector<VertexId> parent(n_sub, 0);
    for (VertexId v = 0; v < n; ++v)
      parent[contracted.fine_to_coarse[v]] = result.assignment[v];
    // init_from needs labels < n_sub: densify parents into [0, n_sub).
    {
      std::unordered_map<VertexId, VertexId> dense;
      for (auto& x : parent) {
        auto [it, inserted] = dense.try_emplace(x, static_cast<VertexId>(dense.size()));
        x = it->second;
      }
    }
    LevelState state;
    state.init_from(contracted.graph, parent);
    std::vector<VertexId> order(n_sub);
    std::iota(order.begin(), order.end(), 0);
    util::Xoshiro256 tune_rng(util::derive_seed(config.seed, 0xC0A53));
    for (int pass = 0; pass < config.max_inner_passes; ++pass) {
      util::deterministic_shuffle(order, tune_rng);
      const auto moves = move_pass(contracted.graph, state, order,
                                   config.move_epsilon, scratch);
      result.coarse_tune_moves += moves;
      if (moves == 0) break;
    }
    if (result.coarse_tune_moves > 0) {
      std::vector<VertexId> sorted(state.module_of);
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      std::unordered_map<VertexId, VertexId> dense;
      for (VertexId i = 0; i < sorted.size(); ++i) dense.emplace(sorted[i], i);
      for (VertexId v = 0; v < n; ++v)
        result.assignment[v] =
            dense.at(state.module_of[contracted.fine_to_coarse[v]]);
      result.codelength = state.terms.codelength();
      if (!result.level_assignments.empty())
        result.level_assignments.back() = result.assignment;
    }
  }

  // Fine-tuning (Rosvall's single-node refinement): sweep level-0 vertices
  // between the final modules; accepts only improving moves, so L can only
  // decrease.
  if (config.fine_tune && !result.trace.empty()) {
    LevelState state;
    state.init_from(level0, result.assignment);
    std::vector<VertexId> order(level0.num_vertices());
    std::iota(order.begin(), order.end(), 0);
    util::Xoshiro256 tune_rng(util::derive_seed(config.seed, 0xF17E));
    for (int pass = 0; pass < config.max_inner_passes; ++pass) {
      util::deterministic_shuffle(order, tune_rng);
      const auto moves =
          move_pass(level0, state, order, config.move_epsilon, scratch);
      result.fine_tune_moves += moves;
      if (moves == 0) break;
    }
    if (result.fine_tune_moves > 0) {
      // Re-densify labels and adopt the refined assignment.
      std::vector<VertexId> sorted(state.module_of);
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      std::unordered_map<VertexId, VertexId> dense;
      for (VertexId i = 0; i < sorted.size(); ++i) dense.emplace(sorted[i], i);
      for (VertexId v = 0; v < level0.num_vertices(); ++v)
        result.assignment[v] = dense.at(state.module_of[v]);
      result.codelength = state.terms.codelength();
      if (!result.level_assignments.empty())
        result.level_assignments.back() = result.assignment;
    }
  }
  return result;
}

graph::Partition cluster_flow_graph(const FlowGraph& fg,
                                    const InfomapConfig& config) {
  DINFOMAP_REQUIRE_MSG(fg.num_vertices() > 0, "empty flow graph");
  LevelState state;
  state.init_singletons(fg);
  std::vector<VertexId> order(fg.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro256 rng(config.seed);
  MoveScratch scratch;
  scratch.use_memo = config.plogp_memo;
  if (config.num_threads > 1) {
    scratch.pool = std::make_unique<util::ThreadPool>(config.num_threads);
    scratch.slots.resize(static_cast<std::size_t>(config.num_threads));
  }
  for (int pass = 0; pass < config.max_inner_passes; ++pass) {
    util::deterministic_shuffle(order, rng);
    if (move_pass(fg, state, order, config.move_epsilon, scratch) == 0) break;
  }
  return state.module_of;
}

double codelength_of_partition(const FlowGraph& fg,
                               const std::vector<VertexId>& module_of) {
  DINFOMAP_REQUIRE(module_of.size() == fg.num_vertices());
  std::unordered_map<VertexId, ModuleStats> mods;
  for (VertexId u = 0; u < fg.num_vertices(); ++u) {
    ModuleStats& m = mods[module_of[u]];
    m.sum_pr += fg.node_flow[u];
    m.num_members += 1;
    for (const auto& nb : fg.csr.neighbors(u))
      if (module_of[nb.target] != module_of[u]) m.exit_pr += nb.weight;
  }
  CodelengthTerms terms;
  terms.node_term = fg.node_term;
  // Sorted module order: this FP reduction must not depend on hash layout.
  for (const VertexId id : util::sorted_keys(mods)) {
    const ModuleStats& m = mods.at(id);
    terms.q_total += m.exit_pr;
    terms.sum_plogp_q += plogp(m.exit_pr);
    terms.sum_plogp_q_plus_p += plogp(m.exit_pr + m.sum_pr);
  }
  return terms.codelength();
}

}  // namespace dinfomap::core
