#include "core/louvain.hpp"

#include <numeric>
#include <unordered_map>

#include "core/coarsen.hpp"
#include "core/flowgraph.hpp"
#include "util/check.hpp"
#include "util/random.hpp"
#include "util/sparse_accumulator.hpp"

namespace dinfomap::core {

using graph::VertexId;

namespace {
/// Modularity move pass on a FlowGraph (flows make 2W = 1, simplifying the
/// gain formula to ΔQ = f(u,c) − p_u·Σtot(c) versus leaving the old module).
struct LouvainState {
  std::vector<VertexId> module_of;
  std::vector<double> sigma_tot;   ///< Σ of node flows per module
  std::vector<double> internal;    ///< internal flow per module (for Q)

  void init(const FlowGraph& fg) {
    const VertexId n = fg.num_vertices();
    module_of.resize(n);
    std::iota(module_of.begin(), module_of.end(), 0);
    sigma_tot.resize(n);
    internal.resize(n);
    for (VertexId u = 0; u < n; ++u) {
      sigma_tot[u] = fg.node_flow[u];
      internal[u] = 2.0 * fg.self_flow(u);
    }
  }

  [[nodiscard]] double modularity() const {
    double q = 0;
    for (std::size_t c = 0; c < sigma_tot.size(); ++c)
      q += internal[c] - sigma_tot[c] * sigma_tot[c];
    return q;
  }
};

std::uint64_t louvain_pass(const FlowGraph& fg, LouvainState& st,
                           const std::vector<VertexId>& order, double min_gain,
                           util::SparseAccumulator<VertexId, double>& flow_to) {
  std::uint64_t moves = 0;
  if (flow_to.capacity() < fg.num_vertices()) flow_to.reset(fg.num_vertices());
  for (VertexId u : order) {
    const VertexId cur = st.module_of[u];
    flow_to.clear();
    for (const auto& nb : fg.csr.neighbors(u))
      flow_to[st.module_of[nb.target]] += nb.weight;
    const double p_u = fg.node_flow[u];
    const double f_old = flow_to.value_or(cur, 0.0);

    // Gain of moving u from cur to c (2W = 1 in flow units):
    //   ΔQ = 2[f(u,c) − f(u,cur\u)] − 2 p_u [Σtot(c) − (Σtot(cur) − p_u)]
    const double base = f_old - p_u * (st.sigma_tot[cur] - p_u);
    double best_gain = min_gain;
    VertexId best = cur;
    for (const VertexId c : flow_to.keys()) {
      if (c == cur) continue;
      const double f = *flow_to.find(c);
      const double gain = 2.0 * ((f - p_u * st.sigma_tot[c]) - base);
      if (gain > best_gain + 1e-15 ||
          (gain > best_gain - 1e-15 && best != cur && c < best)) {
        best_gain = gain;
        best = c;
      }
    }
    if (best != cur) {
      st.sigma_tot[cur] -= p_u;
      st.internal[cur] -= 2.0 * (f_old + fg.self_flow(u));
      st.sigma_tot[best] += p_u;
      const double f_new = *flow_to.find(best);
      st.internal[best] += 2.0 * (f_new + fg.self_flow(u));
      st.module_of[u] = best;
      ++moves;
    }
  }
  return moves;
}
}  // namespace

LouvainResult louvain(const graph::Csr& graph, const LouvainConfig& config) {
  DINFOMAP_REQUIRE_MSG(graph.num_vertices() > 0, "empty graph");
  FlowGraph fg = make_flow_graph(graph);

  LouvainResult result;
  result.assignment.resize(graph.num_vertices());
  std::iota(result.assignment.begin(), result.assignment.end(), 0);

  util::Xoshiro256 rng(config.seed);
  util::SparseAccumulator<VertexId, double> flow_to;
  for (int level = 0; level < config.max_levels; ++level) {
    LouvainState st;
    st.init(fg);
    std::vector<VertexId> order(fg.num_vertices());
    std::iota(order.begin(), order.end(), 0);

    std::uint64_t total_moves = 0;
    for (int pass = 0; pass < config.max_inner_passes; ++pass) {
      util::deterministic_shuffle(order, rng);
      const auto moves =
          louvain_pass(fg, st, order, config.min_modularity_gain, flow_to);
      total_moves += moves;
      if (moves == 0) break;
    }
    result.modularity = st.modularity();
    ++result.levels;

    CoarsenResult coarse = coarsen(fg, st.module_of);
    for (auto& a : result.assignment) a = coarse.fine_to_coarse[a];
    const bool merged = coarse.graph.num_vertices() < fg.num_vertices();
    fg = std::move(coarse.graph);
    if (total_moves == 0 || !merged) break;
  }
  return result;
}

}  // namespace dinfomap::core
