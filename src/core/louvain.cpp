#include "core/louvain.hpp"

#include <memory>
#include <numeric>
#include <unordered_map>

#include "core/coarsen.hpp"
#include "core/flowgraph.hpp"
#include "util/check.hpp"
#include "util/random.hpp"
#include "util/sparse_accumulator.hpp"
#include "util/thread_pool.hpp"

namespace dinfomap::core {

using graph::VertexId;

namespace {
/// Modularity move pass on a FlowGraph (flows make 2W = 1, simplifying the
/// gain formula to ΔQ = f(u,c) − p_u·Σtot(c) versus leaving the old module).
struct LouvainState {
  std::vector<VertexId> module_of;
  std::vector<double> sigma_tot;   ///< Σ of node flows per module
  std::vector<double> internal;    ///< internal flow per module (for Q)

  void init(const FlowGraph& fg) {
    const VertexId n = fg.num_vertices();
    module_of.resize(n);
    std::iota(module_of.begin(), module_of.end(), 0);
    sigma_tot.resize(n);
    internal.resize(n);
    for (VertexId u = 0; u < n; ++u) {
      sigma_tot[u] = fg.node_flow[u];
      internal[u] = 2.0 * fg.self_flow(u);
    }
  }

  [[nodiscard]] double modularity() const {
    double q = 0;
    for (std::size_t c = 0; c < sigma_tot.size(); ++c)
      q += internal[c] - sigma_tot[c] * sigma_tot[c];
    return q;
  }
};

/// Candidate argmax + move application for one vertex, over (community,
/// flow) pairs in the accumulator's first-touch (= edge) order. Shared by
/// the serial pass and the threaded commit so both perform the identical FP
/// ops and tie-breaks. Returns true when the vertex moved.
template <typename EntryRange>
bool louvain_move(const FlowGraph& fg, LouvainState& st, VertexId u,
                  double f_old, double min_gain, const EntryRange& entries) {
  const VertexId cur = st.module_of[u];
  const double p_u = fg.node_flow[u];
  // Gain of moving u from cur to c (2W = 1 in flow units):
  //   ΔQ = 2[f(u,c) − f(u,cur\u)] − 2 p_u [Σtot(c) − (Σtot(cur) − p_u)]
  const double base = f_old - p_u * (st.sigma_tot[cur] - p_u);
  double best_gain = min_gain;
  VertexId best = cur;
  double best_f = 0;
  for (const auto& [c, f] : entries) {
    if (c == cur) continue;
    const double gain = 2.0 * ((f - p_u * st.sigma_tot[c]) - base);
    if (gain > best_gain + 1e-15 ||
        (gain > best_gain - 1e-15 && best != cur && c < best)) {
      best_gain = gain;
      best = c;
      best_f = f;
    }
  }
  if (best == cur) return false;
  st.sigma_tot[cur] -= p_u;
  st.internal[cur] -= 2.0 * (f_old + fg.self_flow(u));
  st.sigma_tot[best] += p_u;
  st.internal[best] += 2.0 * (best_f + fg.self_flow(u));
  st.module_of[u] = best;
  return true;
}

/// Adapter iterating a SparseAccumulator's touched keys as (key, value)
/// pairs in first-touch order.
struct AccRange {
  const util::SparseAccumulator<VertexId, double>& acc;
  struct It {
    const AccRange* r;
    std::size_t i;
    bool operator!=(const It& o) const { return i != o.i; }
    void operator++() { ++i; }
    std::pair<VertexId, double> operator*() const {
      const VertexId c = r->acc.keys()[i];
      return {c, *r->acc.find(c)};
    }
  };
  It begin() const { return {this, 0}; }
  It end() const { return {this, acc.size()}; }
};

/// Threaded-pass scratch: pool, per-slot gather caches, staleness stamps.
struct LouvainScratch {
  struct CachedFlow {
    VertexId mod = 0;
    double flow = 0;
  };
  struct GatherSpan {
    VertexId u = 0;
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
    double f_old = 0;
  };
  struct SlotScratch {
    util::SparseAccumulator<VertexId, double> flow_to;
    std::vector<CachedFlow> entries;
    std::vector<GatherSpan> spans;
  };
  std::unique_ptr<util::ThreadPool> pool;  ///< null = serial passes
  std::vector<SlotScratch> slots;
  std::vector<std::uint32_t> stale_stamp;
  std::uint32_t pass_epoch = 0;
};

/// Threaded pass: parallel gather over contiguous chunks of the frozen
/// pass-start assignment, serial commit in the exact shuffled order with a
/// fresh re-gather for vertices whose neighborhood changed under them.
/// Bit-identical to the serial pass for any thread count (DESIGN.md §10).
std::uint64_t louvain_pass_parallel(
    const FlowGraph& fg, LouvainState& st, const std::vector<VertexId>& order,
    double min_gain, util::SparseAccumulator<VertexId, double>& flow_to,
    LouvainScratch& scratch) {
  const VertexId n = fg.num_vertices();
  for (auto& sl : scratch.slots) {  // pre-clear: empty chunks never dispatch
    if (sl.flow_to.capacity() < n) sl.flow_to.reset(n);
    sl.entries.clear();
    sl.spans.clear();
  }
  scratch.pool->parallel_for(
      order.size(), [&](int slot, std::size_t b, std::size_t e) {
        auto& sl = scratch.slots[static_cast<std::size_t>(slot)];
        for (std::size_t pos = b; pos < e; ++pos) {
          const VertexId u = order[pos];
          sl.flow_to.clear();
          for (const auto& nb : fg.csr.neighbors(u))
            sl.flow_to[st.module_of[nb.target]] += nb.weight;
          if (sl.flow_to.empty()) continue;  // isolated vertex never moves
          LouvainScratch::GatherSpan sp;
          sp.u = u;
          sp.begin = static_cast<std::uint32_t>(sl.entries.size());
          sp.count = static_cast<std::uint32_t>(sl.flow_to.size());
          sp.f_old = sl.flow_to.value_or(st.module_of[u], 0.0);
          for (const VertexId c : sl.flow_to.keys())
            sl.entries.push_back({c, *sl.flow_to.find(c)});
          sl.spans.push_back(sp);
        }
      });

  if (scratch.stale_stamp.size() != n) {
    scratch.stale_stamp.assign(n, 0);
    scratch.pass_epoch = 0;
  }
  ++scratch.pass_epoch;

  std::uint64_t moves = 0;
  for (const auto& sl : scratch.slots) {
    for (const LouvainScratch::GatherSpan& sp : sl.spans) {
      const VertexId u = sp.u;
      bool moved;
      if (scratch.stale_stamp[u] == scratch.pass_epoch) {
        flow_to.clear();  // fresh re-gather; a neighbor moved before our turn
        for (const auto& nb : fg.csr.neighbors(u))
          flow_to[st.module_of[nb.target]] += nb.weight;
        const double f_old = flow_to.value_or(st.module_of[u], 0.0);
        moved = louvain_move(fg, st, u, f_old, min_gain, AccRange{flow_to});
      } else {
        struct CacheRange {
          const LouvainScratch::CachedFlow* first;
          std::uint32_t n;
          const LouvainScratch::CachedFlow* begin() const { return first; }
          const LouvainScratch::CachedFlow* end() const { return first + n; }
        };
        moved = louvain_move(fg, st, u, sp.f_old, min_gain,
                             CacheRange{sl.entries.data() + sp.begin, sp.count});
      }
      if (moved) {
        // The CSR is symmetric: u's adjacency names every reader of u.
        for (const auto& nb : fg.csr.neighbors(u))
          scratch.stale_stamp[nb.target] = scratch.pass_epoch;
        ++moves;
      }
    }
  }
  return moves;
}

std::uint64_t louvain_pass(const FlowGraph& fg, LouvainState& st,
                           const std::vector<VertexId>& order, double min_gain,
                           util::SparseAccumulator<VertexId, double>& flow_to,
                           LouvainScratch& scratch) {
  if (flow_to.capacity() < fg.num_vertices()) flow_to.reset(fg.num_vertices());
  if (scratch.pool != nullptr)
    return louvain_pass_parallel(fg, st, order, min_gain, flow_to, scratch);
  std::uint64_t moves = 0;
  for (VertexId u : order) {
    flow_to.clear();
    for (const auto& nb : fg.csr.neighbors(u))
      flow_to[st.module_of[nb.target]] += nb.weight;
    const double f_old = flow_to.value_or(st.module_of[u], 0.0);
    if (louvain_move(fg, st, u, f_old, min_gain, AccRange{flow_to})) ++moves;
  }
  return moves;
}
}  // namespace

LouvainResult louvain(const graph::Csr& graph, const LouvainConfig& config) {
  DINFOMAP_REQUIRE_MSG(graph.num_vertices() > 0, "empty graph");
  FlowGraph fg = make_flow_graph(graph);

  LouvainResult result;
  result.assignment.resize(graph.num_vertices());
  std::iota(result.assignment.begin(), result.assignment.end(), 0);

  util::Xoshiro256 rng(config.seed);
  util::SparseAccumulator<VertexId, double> flow_to;
  LouvainScratch scratch;
  if (config.num_threads > 1) {
    scratch.pool = std::make_unique<util::ThreadPool>(config.num_threads);
    scratch.slots.resize(static_cast<std::size_t>(config.num_threads));
  }
  for (int level = 0; level < config.max_levels; ++level) {
    LouvainState st;
    st.init(fg);
    std::vector<VertexId> order(fg.num_vertices());
    std::iota(order.begin(), order.end(), 0);

    std::uint64_t total_moves = 0;
    for (int pass = 0; pass < config.max_inner_passes; ++pass) {
      util::deterministic_shuffle(order, rng);
      const auto moves = louvain_pass(fg, st, order,
                                      config.min_modularity_gain, flow_to,
                                      scratch);
      total_moves += moves;
      if (moves == 0) break;
    }
    result.modularity = st.modularity();
    ++result.levels;

    CoarsenResult coarse = coarsen(fg, st.module_of);
    for (auto& a : result.assignment) a = coarse.fine_to_coarse[a];
    const bool merged = coarse.graph.num_vertices() < fg.num_vertices();
    fg = std::move(coarse.graph);
    if (total_moves == 0 || !merged) break;
  }
  return result;
}

}  // namespace dinfomap::core
