// Hierarchical (multi-level) map equation and recursive Infomap.
//
// The paper's algorithm is two-level (Eq. 3). The original Infomap
// (Rosvall & Bergstrom 2011) generalizes the codelength to a tree of nested
// modules: every internal module carries a codebook over its children's
// enter rates plus its own exit rate, and leaf modules carry codebooks over
// member-vertex visit rates plus exit. For a one-deep tree the formula
// reduces exactly to Eq. 3 (asserted by tests).
//
// hierarchical_infomap() runs the paper's two-level search at the top, then
// recursively splits each module on its induced subnetwork, keeping a split
// only when it lowers the *hierarchical* codelength.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/flowgraph.hpp"
#include "core/seq_infomap.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::core {

/// A tree of nested modules over the vertices of a FlowGraph.
class Hierarchy {
 public:
  struct Node {
    int parent = -1;
    std::vector<int> children;            ///< internal child nodes
    std::vector<graph::VertexId> leaves;  ///< vertices attached directly
    double exit = 0;    ///< flow crossing this module's boundary (root: 0)
    double sum_pr = 0;  ///< Σ visit rates of all contained vertices
  };

  /// Build the trivial one-module-per-cluster tree from a flat partition.
  static Hierarchy two_level(const FlowGraph& fg, const graph::Partition& modules);

  /// Multi-level codelength of this tree (Eq. 3 generalized).
  [[nodiscard]] double codelength(const FlowGraph& fg) const;

  /// Split leaf-node `node` into sub-modules given by `sub_of` (one entry
  /// per leaf vertex of the node, arbitrary labels). The node's leaves move
  /// into new child nodes; exits are recomputed from `fg`.
  void split_node(const FlowGraph& fg, int node,
                  const std::vector<graph::VertexId>& sub_of);

  /// Insert a super-level above the current top modules: `super_of[i]` is
  /// the (arbitrary) super-module label of the root's i-th child. The root's
  /// children become the new super-nodes.
  void group_top(const FlowGraph& fg,
                 const std::vector<graph::VertexId>& super_of);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] int root() const { return 0; }

  /// Depth of the deepest leaf module (root = depth 0; the paper's two-level
  /// result has depth 1).
  [[nodiscard]] int depth() const;

  /// Number of leaf modules (nodes holding vertices).
  [[nodiscard]] int num_leaf_modules() const;

  /// vertex → leaf-module index (dense ids over leaf modules).
  [[nodiscard]] graph::Partition leaf_assignment(graph::VertexId n) const;

  /// Colon paths per vertex ("1:3:2:leaf"), 1-based, larger children first —
  /// feeds io::write_tree-style output for ragged hierarchies.
  [[nodiscard]] std::vector<std::string> vertex_paths(graph::VertexId n) const;

  /// Structural audit (tree shape, every vertex exactly once, flows
  /// conserved); used by tests.
  [[nodiscard]] bool validate(const FlowGraph& fg) const;

 private:
  /// Recompute exit/sum_pr of every node from the flow graph.
  void recompute_flows(const FlowGraph& fg);
  std::vector<Node> nodes_;  // nodes_[0] is the root
};

struct HierInfomapConfig {
  InfomapConfig two_level;        ///< search config reused at every level
  int max_depth = 4;              ///< recursion limit below the root
  graph::VertexId min_module_size = 8;  ///< do not try to split smaller modules
};

struct HierInfomapResult {
  Hierarchy hierarchy;
  double codelength = 0;           ///< hierarchical L of `hierarchy`
  double two_level_codelength = 0; ///< the flat Eq.-3 L it improves on
  graph::Partition leaf_assignment;
};

HierInfomapResult hierarchical_infomap(const graph::Csr& graph,
                                       const HierInfomapConfig& config = {});

}  // namespace dinfomap::core
