// Distributed Infomap (Algorithm 2 of the paper).
//
// Stage 1 — parallel clustering *with delegates* on the delegate-partitioned
// input graph: local greedy moves, a broadcast that applies each hub's
// globally-best move everywhere, and whole-module boundary information
// swapping (Algorithm 3). Stage 2 — the merged graph is redistributed with
// plain 1D partitioning and clustered the same way without delegates, level
// by level, until the MDL stops improving.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/counters.hpp"
#include "comm/fault.hpp"
#include "core/seq_infomap.hpp"
#include "graph/csr.hpp"
#include "graph/graph_view.hpp"
#include "graph/types.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "partition/arc_partition.hpp"
#include "perf/work_counters.hpp"

namespace dinfomap::comm {
class Transport;
}

namespace dinfomap::core {

/// The paper's four profiled components (Fig. 8).
enum class Phase : int {
  kFindBestModule = 0,
  kBroadcastDelegates = 1,
  kSwapBoundaryInfo = 2,
  kOther = 3,
};
inline constexpr int kNumPhases = 4;
inline constexpr std::array<const char*, kNumPhases> kPhaseNames = {
    "FindBestModule", "BroadcastDelegates", "SwapBoundaryInfo", "Other"};

struct DistInfomapConfig {
  int num_ranks = 4;
  /// Worker threads per rank for the O(V+E) hot loops (move search, hub flow
  /// scan, swap aggregation). 1 = the exact single-threaded code path; any
  /// value produces bit-identical partitions and codelengths (the threaded
  /// path proposes in parallel but commits serially in the deterministic
  /// vertex order — see DESIGN.md §10).
  int threads_per_rank = 1;
  /// Hub threshold d_high; 0 → the paper's default d_high = num_ranks.
  graph::EdgeIndex degree_threshold = 0;
  /// Outer improvement threshold θ.
  double theta = 1e-10;
  int max_levels = 16;           ///< stage-2 merge levels
  int max_rounds = 64;           ///< synchronous rounds per level
  /// A level's rounds also stop once a full round improves L by less than
  /// this (after min_rounds) — synchronous rounds can otherwise trade
  /// vanishing gains forever without reaching exactly zero moves.
  double round_theta = 1e-7;
  int min_rounds = 4;
  double move_epsilon = 1e-14;
  std::uint64_t seed = 42;
  /// Minimum-label anti-bouncing strategy for boundary moves (§3.4);
  /// switchable for the A2 ablation.
  bool min_label = true;
  /// Whole-module information swapping per Alg. 3; false degrades to the
  /// naive boundary-id-only swap the paper argues against (A3 ablation):
  /// each rank's module table then drifts from the true statistics and move
  /// decisions degrade, as §3.4 predicts.
  bool whole_module_swap = true;
  /// Validate the arc partition against the graph before running (every arc
  /// assigned exactly once, sources with their owners). O(E log E); enabled
  /// by default at the scales this build targets.
  bool validate_inputs = true;
  /// Extension beyond the paper: decide each hub's move from its *exact*
  /// global flow-to-module map, reduced at the hub's owner, instead of the
  /// paper's per-rank local proposals + global argmin. Costs one extra
  /// alltoallv of (hub, module, flow) records per round; improves quality on
  /// hub-dominated graphs (see bench_ablation_hubmoves).
  bool exact_hub_moves = false;
  /// Deterministic active-set fast path for the synchronous engine: rounds
  /// after the first skip vertices whose neighborhood (neighbor assignments,
  /// candidate-module statistics, own stats) is unchanged since their last
  /// evaluation *and* whose recorded rejection margin provably survives the
  /// global q_total drift since then (DESIGN.md §12). Same fixed point, same
  /// bits: the partition and MDL are bit-identical to full sweeps for any
  /// thread count (asserted by tests/test_async.cpp); skipped evaluations are
  /// counted in the `moves.pruned` metric.
  bool active_set = false;
  /// Asynchronous priority-driven engine: per-rank deterministic worklist
  /// (max-heap on (|ΔL| gain estimate, vertex id)) drained in epochs that
  /// exchange module deltas through one packed collective instead of the
  /// five-collective synchronous round. Bounded staleness: local module
  /// statistics drift between reconciliations. Deterministic for a fixed
  /// (graph, seed, num_ranks, async_max_lag); converges to an MDL within the
  /// quality band asserted by tests (±1% of the synchronous reference).
  bool async = false;
  /// Staleness budget of the async engine: a reconciliation exchange (hub
  /// consensus + whole-module swap + exact L) runs every `async_max_lag`
  /// epochs, bounding how far rank-local statistics may diverge.
  int async_max_lag = 4;
  /// Route the hot-path plogp calls through a per-rank memo (exact cache of
  /// x·log2(x) keyed on the bit pattern of x — results are bit-identical to
  /// the uncached path by construction; asserted under chaos by the
  /// determinism regression test). Off selects the memo-free reference path.
  bool plogp_memo = true;
  /// Maximum fill (percent) of the per-rank FlatMap module tables before
  /// they grow; 0 keeps the built-in 7/8 default. Lower values trade memory
  /// for shorter probe chains on hub-heavy graphs. Purely a performance
  /// knob: the tables are never iterated on a result-bearing path, so any
  /// value produces identical results (rehash work is surfaced through the
  /// `flatmap.rehashes` metric).
  int module_table_max_load_pct = 0;
  /// Chaos testing: random per-message delivery delay (µs). The synchronous
  /// protocol must produce identical results under any delivery timing —
  /// asserted by tests. 0 disables.
  unsigned chaos_delay_us = 0;
  /// Seeded transport fault plan (drop / duplicate / reorder / corrupt /
  /// stall — see comm/fault.hpp). Recovery must be transparent: the final
  /// partition and MDL stay bit-identical to the fault-free run (asserted by
  /// tests/test_comm_faults.cpp). Default: no faults.
  comm::FaultPlan faults;
  /// Comm-runtime watchdog timeout (ms): a rank making no transport progress
  /// for this long aborts the job with a CommFault naming it instead of
  /// hanging. 0 disables; use alongside `faults.stall_rank`.
  unsigned comm_watchdog_ms = 0;
  /// Flight recorder (src/obs): per-rank tracing, metrics, and the invariant
  /// watchdog. Off by default; purely observational — enabling it must not
  /// change any result bit (asserted by the obs determinism regression).
  obs::ObsOptions obs;
};

struct DistInfomapResult {
  /// Level-0 vertex → final module (dense ids).
  graph::Partition assignment;
  double codelength = 0;
  double singleton_codelength = 0;

  /// Per-level convergence rows (same shape as the sequential trace) — the
  /// distributed curves of Figs. 4 and 5.
  std::vector<OuterIterationInfo> trace;
  /// Exact global MDL after every stage-1 round (finer-grained than the
  /// per-level trace; the distributed series of Fig. 4).
  std::vector<double> stage1_round_codelengths;

  int stage1_rounds = 0;
  int stage2_levels = 0;
  double stage1_wall_seconds = 0;
  double stage2_wall_seconds = 0;

  /// work[phase][rank]: exact counters feeding the cost model (Figs. 8–10).
  std::array<std::vector<perf::WorkCounters>, kNumPhases> work;
  /// Per-rank totals split by stage (stage_work[0] = with delegates,
  /// stage_work[1] = merged-graph levels) — the two series of Fig. 9.
  std::array<std::vector<perf::WorkCounters>, 2> stage_work;
  /// Wall seconds per phase per rank (thread time; indicative only on one
  /// machine — the modeled time uses `work`).
  std::array<std::vector<double>, kNumPhases> phase_seconds;
  std::vector<comm::CommCounters> comm_counters;  ///< per rank

  /// Structured run report (always filled; its metrics/anomaly sections are
  /// only populated when `config.obs.enabled`). Benches embed this instead of
  /// re-accumulating the arrays above by hand.
  obs::RunReport report;

  [[nodiscard]] graph::VertexId num_modules() const {
    graph::VertexId k = 0;
    for (auto m : assignment) k = std::max(k, m + 1);
    return k;
  }
};

/// Run the full distributed pipeline on `graph` with `config.num_ranks`
/// ranks. Deterministic for a fixed (graph, config) pair. The GraphView
/// overloads are the implementation — they stream the input from either the
/// resident CSR or the out-of-core block file and produce bit-identical
/// partitions and codelengths on both backends (the ranks themselves only
/// ever see the ArcPartition, which the view-based builders construct
/// identically); the Csr overloads are thin wrappers.
DistInfomapResult distributed_infomap(const graph::GraphView& graph,
                                      const DistInfomapConfig& config);
DistInfomapResult distributed_infomap(const graph::Csr& graph,
                                      const DistInfomapConfig& config);

/// Same, but over an already-built stage-1 partition (lets benchmarks reuse
/// one partitioning across runs and ablate the partitioner).
DistInfomapResult distributed_infomap(const graph::GraphView& graph,
                                      const partition::ArcPartition& part,
                                      const DistInfomapConfig& config);
DistInfomapResult distributed_infomap(const graph::Csr& graph,
                                      const partition::ArcPartition& part,
                                      const DistInfomapConfig& config);

/// One rank's share of a multi-process distributed run: the SPMD entry the
/// socket-transport worker role calls with its own endpoint. Every rank of
/// the job must call this with the same (graph, config) — the delegate
/// partition is rebuilt deterministically on each rank, exactly as the
/// single-process overloads build it — and `config.num_ranks` must equal
/// `transport.size()`.
///
/// Per-rank results (assignment fragments, work counters, comm counters,
/// injected-fault tallies) are gathered to rank 0 over the transport itself;
/// rank 0 returns the fully assembled DistInfomapResult, other ranks return
/// a skeleton carrying only their locally visible fields. Bit-identical to
/// the in-process driver for a fixed (seed, ranks, threads): same partition,
/// codelengths, round traces, and comm counters.
///
/// Observability: the recorder only sees this rank's track, so per-process
/// trace files are written by the caller (one per worker) and merged by the
/// launcher (obs/trace_merge.hpp); the cross-rank profile digest is not
/// built here.
DistInfomapResult distributed_infomap_rank(const graph::GraphView& graph,
                                           const DistInfomapConfig& config,
                                           comm::Transport& transport);
DistInfomapResult distributed_infomap_rank(const graph::Csr& graph,
                                           const DistInfomapConfig& config,
                                           comm::Transport& transport);

/// The d_high actually used when `config.degree_threshold == 0`: the paper's
/// d_high = p, floored at several times the mean degree so scaled-down runs
/// do not delegate the whole graph (see DESIGN.md).
graph::EdgeIndex resolve_degree_threshold(const graph::GraphView& graph,
                                          const DistInfomapConfig& config);
graph::EdgeIndex resolve_degree_threshold(const graph::Csr& graph,
                                          const DistInfomapConfig& config);

}  // namespace dinfomap::core
