#include "core/coarsen.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/check.hpp"

namespace dinfomap::core {

CoarsenResult coarsen(const FlowGraph& fine, const std::vector<VertexId>& module_of) {
  const VertexId n = fine.num_vertices();
  DINFOMAP_REQUIRE_MSG(module_of.size() == n, "coarsen: assignment size mismatch");

  // Dense relabeling: ascending module id → 0..k-1 (deterministic).
  std::vector<VertexId> sorted_ids(module_of);
  std::sort(sorted_ids.begin(), sorted_ids.end());
  sorted_ids.erase(std::unique(sorted_ids.begin(), sorted_ids.end()),
                   sorted_ids.end());
  std::unordered_map<VertexId, VertexId> dense;
  dense.reserve(sorted_ids.size());
  for (VertexId i = 0; i < sorted_ids.size(); ++i) dense[sorted_ids[i]] = i;
  const auto k = static_cast<VertexId>(sorted_ids.size());

  CoarsenResult result;
  result.fine_to_coarse.resize(n);
  for (VertexId u = 0; u < n; ++u) result.fine_to_coarse[u] = dense.at(module_of[u]);

  // Aggregate arc flows between coarse vertices; ordered map per source keeps
  // adjacency sorted by construction.
  std::vector<double> self(k, 0.0);
  std::vector<double> node_flow(k, 0.0);
  std::vector<std::map<VertexId, double>> coarse_adj(k);
  for (VertexId u = 0; u < n; ++u) {
    const VertexId cu = result.fine_to_coarse[u];
    node_flow[cu] += fine.node_flow[u];
    self[cu] += fine.self_flow(u);
    for (const auto& nb : fine.csr.neighbors(u)) {
      const VertexId cv = result.fine_to_coarse[nb.target];
      if (cu == cv) {
        // Each undirected intra edge is visited from both endpoints; count
        // its self-loop contribution once (halve the double visit).
        self[cu] += nb.weight / 2.0;
      } else {
        coarse_adj[cu][cv] += nb.weight;
      }
    }
  }

  std::vector<graph::EdgeIndex> offsets(static_cast<std::size_t>(k) + 1, 0);
  for (VertexId c = 0; c < k; ++c)
    offsets[c + 1] = offsets[c] + coarse_adj[c].size();
  std::vector<graph::Neighbor> adjacency;
  adjacency.reserve(offsets.back());
  for (VertexId c = 0; c < k; ++c)
    for (const auto& [target, flow] : coarse_adj[c])
      adjacency.push_back({target, flow});

  result.graph.csr = Csr(std::move(offsets), std::move(adjacency), std::move(self));
  result.graph.node_flow = std::move(node_flow);
  result.graph.node_term = fine.node_term;  // level-0 term is invariant
  return result;
}

}  // namespace dinfomap::core
