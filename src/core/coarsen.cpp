#include "core/coarsen.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/check.hpp"

namespace dinfomap::core {

namespace {
/// Shared contraction core. `node_flow_of(u)`, `self_flow_of(u)`, and
/// `for_each_arc(u, fn)` abstract the fine-level source; both callers feed
/// the identical value sequence, so the two entry points below cannot drift.
template <typename NodeFlowFn, typename SelfFlowFn, typename ArcScanFn>
CoarsenResult contract(VertexId n, double node_term,
                       const std::vector<VertexId>& module_of,
                       NodeFlowFn&& node_flow_of, SelfFlowFn&& self_flow_of,
                       ArcScanFn&& for_each_arc) {
  DINFOMAP_REQUIRE_MSG(module_of.size() == n, "coarsen: assignment size mismatch");

  // Dense relabeling: ascending module id → 0..k-1 (deterministic).
  std::vector<VertexId> sorted_ids(module_of);
  std::sort(sorted_ids.begin(), sorted_ids.end());
  sorted_ids.erase(std::unique(sorted_ids.begin(), sorted_ids.end()),
                   sorted_ids.end());
  std::unordered_map<VertexId, VertexId> dense;
  dense.reserve(sorted_ids.size());
  for (VertexId i = 0; i < sorted_ids.size(); ++i) dense[sorted_ids[i]] = i;
  const auto k = static_cast<VertexId>(sorted_ids.size());

  CoarsenResult result;
  result.fine_to_coarse.resize(n);
  for (VertexId u = 0; u < n; ++u) result.fine_to_coarse[u] = dense.at(module_of[u]);

  // Aggregate arc flows between coarse vertices; ordered map per source keeps
  // adjacency sorted by construction.
  std::vector<double> self(k, 0.0);
  std::vector<double> node_flow(k, 0.0);
  std::vector<std::map<VertexId, double>> coarse_adj(k);
  for (VertexId u = 0; u < n; ++u) {
    const VertexId cu = result.fine_to_coarse[u];
    node_flow[cu] += node_flow_of(u);
    self[cu] += self_flow_of(u);
    for_each_arc(u, [&](VertexId target, double flow) {
      const VertexId cv = result.fine_to_coarse[target];
      if (cu == cv) {
        // Each undirected intra edge is visited from both endpoints; count
        // its self-loop contribution once (halve the double visit).
        self[cu] += flow / 2.0;
      } else {
        coarse_adj[cu][cv] += flow;
      }
    });
  }

  std::vector<graph::EdgeIndex> offsets(static_cast<std::size_t>(k) + 1, 0);
  for (VertexId c = 0; c < k; ++c)
    offsets[c + 1] = offsets[c] + coarse_adj[c].size();
  std::vector<graph::Neighbor> adjacency;
  adjacency.reserve(offsets.back());
  for (VertexId c = 0; c < k; ++c)
    for (const auto& [target, flow] : coarse_adj[c])
      adjacency.push_back({target, flow});

  result.graph.csr = Csr(std::move(offsets), std::move(adjacency), std::move(self));
  result.graph.node_flow = std::move(node_flow);
  result.graph.node_term = node_term;  // level-0 term is invariant
  return result;
}
}  // namespace

CoarsenResult coarsen(const FlowGraph& fine,
                      const std::vector<VertexId>& module_of) {
  return contract(
      fine.num_vertices(), fine.node_term, module_of,
      [&](VertexId u) { return fine.node_flow[u]; },
      [&](VertexId u) { return fine.self_flow(u); },
      [&](VertexId u, auto&& emit) {
        for (const auto& nb : fine.csr.neighbors(u)) emit(nb.target, nb.weight);
      });
}

CoarsenResult coarsen_level0(const graph::GraphView& graph,
                             const NodeFlows& flows,
                             const std::vector<VertexId>& module_of) {
  auto cursor = graph.cursor();
  return contract(
      graph.num_vertices(), flows.node_term, module_of,
      [&](VertexId u) { return flows.node_flow[u]; },
      [&](VertexId u) { return graph.self_weight(u) / flows.two_w; },
      [&](VertexId u, auto&& emit) {
        // w / 2W is the exact scaling make_flow_graph applies before the
        // resident coarsen sees the arc, so flows entering the accumulators
        // are bitwise the same.
        for (const auto& nb : graph.neighbors(u, cursor))
          emit(nb.target, nb.weight / flows.two_w);
      });
}

}  // namespace dinfomap::core
