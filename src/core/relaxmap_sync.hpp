// RelaxMap's move-application synchronization, extracted from relaxmap.cpp
// so the dcheck model checker can drive the real guard in its pair-ordering
// harness (DESIGN.md §16). Everything here is header-only and private to the
// RelaxMap engine; nothing else in the repo should take these locks.
#pragma once

#include <algorithm>
#include <atomic>

#include "util/annotations.hpp"
#include "util/sched_point.hpp"

namespace dinfomap::core {

/// Test-and-set spinlock; one per module. Move application locks the two
/// affected modules in id order (no deadlock) while decisions run lock-free
/// on possibly stale values — the RelaxMap consistency model.
///
/// Under DINFOMAP_DCHECK the acquire is routed through the scheduler hooks
/// instead of spinning: in a serialized exploration the holder is not
/// running, so a real spin would never terminate. The hooks also give the
/// checker the happens-before edges and the lock-order events it needs.
class DI_CAPABILITY("spinlock") SpinLock {
 public:
  void lock() DI_ACQUIRE() {
#if defined(DINFOMAP_DCHECK)
    if (util::dcheck::modeled()) {
      util::dcheck::hooks()->mutex_lock(this, "core::SpinLock");
      return;
    }
#endif
    // dlint:allow(raw-mutex-lock): the capability's own implementation
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (flag_.test(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() DI_RELEASE() {
#if defined(DINFOMAP_DCHECK)
    if (util::dcheck::modeled()) {
      util::dcheck::hooks()->mutex_unlock(this);
      return;
    }
#endif
    flag_.clear(std::memory_order_release);
  }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Scoped id-order lock over the one or two modules a move touches. The
/// specific locks are picked at runtime (min/max of two ids), which is past
/// what the static analysis can name, so the guard itself is the scoped
/// capability: construction acquires lo then hi, destruction releases in
/// reverse — exception-safe where the old manual lock()/unlock() pairs were
/// not.
///
/// dlint:ordered-pair(SpinLock): both acquisitions happen inside this guard
/// and callers must pass (min, max) by id, so the SpinLock→SpinLock
/// self-edge in the global lock-order graph is sanctioned here — it is the
/// one place a second same-rank lock may be taken while the first is held.
class DI_SCOPED_CAPABILITY ModulePairGuard {
 public:
  ModulePairGuard(SpinLock& lo, SpinLock* hi) DI_ACQUIRE() : lo_(lo), hi_(hi) {
    // dlint:allow(raw-mutex-lock): scoped-guard implementation
    lo_.lock();
    if (hi_ != nullptr) hi_->lock();  // dlint:allow(raw-mutex-lock): guard impl
  }
  ~ModulePairGuard() DI_RELEASE() {
    // dlint:allow(raw-mutex-lock): scoped-guard implementation
    if (hi_ != nullptr) hi_->unlock();
    lo_.unlock();  // dlint:allow(raw-mutex-lock): guard impl
  }
  ModulePairGuard(const ModulePairGuard&) = delete;
  ModulePairGuard& operator=(const ModulePairGuard&) = delete;

 private:
  SpinLock& lo_;
  SpinLock* hi_;
};

}  // namespace dinfomap::core
