// The map equation (Rosvall–Axelsson–Bergstrom 2009) — Eq. 3 of the paper:
//
//   L(M) = plogp(q_tot) − 2·Σ_m plogp(q_m) − Σ_α plogp(p_α)
//          + Σ_m plogp(q_m + p_m)
//
// with plogp(x) = x·log2(x), p_α the stationary visit probability of vertex
// α, q_m the exit probability of module m, q_tot = Σ_m q_m. All quantities
// here are *flows*: edge weights normalized by 2W at the finest level, so the
// same formulas hold unchanged at every coarsening level.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace dinfomap::core {

/// x·log2(x), continuously extended with plogp(0) = 0.
inline double plogp(double x) { return x > 1e-300 ? x * std::log2(x) : 0.0; }

/// Direct-mapped memo for plogp. A move-search round evaluates plogp on the
/// same handful of values over and over: all old-module terms and plogp(q)
/// are constant across a vertex's candidates, and popular target modules
/// repeat their (exit_pr, sum_pr) across vertices until they absorb a move.
/// The cache is keyed on the exact bit pattern of x and stores the exact
/// plogp(x), so a hit returns bit-identical results to the uncached path —
/// memoization never changes the numerics, only skips repeated log2 calls.
/// 4096 entries × 16 B = 64 KiB, one cache line per probe.
class PlogpMemo {
 public:
  double operator()(double x) {
    if (x <= 1e-300) return 0.0;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
    Entry& e = entries_[(bits * 0x9E3779B97F4A7C15ull) >> (64 - kLogSlots)];
    if (e.key_bits == bits) return e.value;
    const double v = x * std::log2(x);
    e.key_bits = bits;
    e.value = v;
    return v;
  }

 private:
  struct Entry {
    // Initial key is a NaN bit pattern, which no input x can equal (flows
    // are finite), so virgin slots never produce a false hit.
    std::uint64_t key_bits = ~std::uint64_t{0};
    double value = 0;
  };
  static constexpr int kLogSlots = 12;
  std::array<Entry, std::size_t{1} << kLogSlots> entries_{};
};

/// Aggregate statistics of one module.
struct ModuleStats {
  double sum_pr = 0;   ///< p_m: Σ visit probability of members
  double exit_pr = 0;  ///< q_m: flow crossing the module boundary
  std::uint64_t num_members = 0;
};

/// The four running sums from which L(M) is evaluated. `node_term`
/// (Σ plogp(p_α) over *level-0* vertices) never changes during clustering or
/// coarsening, so it is computed once and carried.
struct CodelengthTerms {
  double q_total = 0;
  double sum_plogp_q = 0;       ///< Σ_m plogp(q_m)
  double sum_plogp_q_plus_p = 0;///< Σ_m plogp(q_m + p_m)
  double node_term = 0;         ///< Σ_α plogp(p_α), level 0

  [[nodiscard]] double codelength() const {
    return plogp(q_total) - 2.0 * sum_plogp_q - node_term + sum_plogp_q_plus_p;
  }
};

/// Inputs for the ΔL of moving one vertex (or coarse block) u between
/// modules. `old_stats` describes u's current module *including* u;
/// `new_stats` the candidate module *excluding* u.
struct MoveDelta {
  double p_u = 0;          ///< node flow of u
  double f_u = 0;          ///< total flow on u's non-self arcs (u's solo exit)
  double f_to_old = 0;     ///< flow from u to old module's other members
  double f_to_new = 0;     ///< flow from u to the candidate module
  ModuleStats old_stats;
  ModuleStats new_stats;
  double q_total = 0;      ///< current Σ_m q_m
};

/// Updated module statistics after the move described by `d`.
struct MoveOutcome {
  ModuleStats old_after;
  ModuleStats new_after;
  double delta_q_total = 0;
  double delta_codelength = 0;
};

/// Evaluate the codelength change of a move (negative = improvement).
/// Undirected flow algebra: removing u from A changes q_A by −f_u + 2·f(u,A);
/// adding u to B changes q_B by +f_u − 2·f(u,B).
MoveOutcome evaluate_move(const MoveDelta& d);

/// Same evaluation with plogp calls routed through `memo`. Bit-identical to
/// the plain overload (the memo caches exact values); callers gate it on a
/// config flag anyway so a reference path stays one switch away.
MoveOutcome evaluate_move(const MoveDelta& d, PlogpMemo& memo);

}  // namespace dinfomap::core
