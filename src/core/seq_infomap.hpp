// Sequential Infomap (Algorithm 1 of the paper): greedy map-equation
// minimization with hierarchical agglomeration.
#pragma once

#include <cstdint>
#include <vector>

#include "core/flowgraph.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace dinfomap::core {

struct InfomapConfig {
  /// Outer-loop improvement threshold θ (Alg. 1 line 31).
  double theta = 1e-10;
  int max_outer_iterations = 20;
  /// Bound on inner move passes per level (Alg. 1 lines 15–23).
  int max_inner_passes = 64;
  /// Minimal |ΔL| for a move to count as an improvement.
  double move_epsilon = 1e-14;
  /// Seed for the per-level vertex-order shuffle (Alg. 1 line 13).
  std::uint64_t seed = 42;
  /// Single-node fine-tuning (Rosvall's refinement): after the agglomerative
  /// levels converge, sweep level-0 vertices between the final modules until
  /// no move improves L. Never worsens the result. Off by default to match
  /// the paper's Algorithm 1 exactly (the Figs. 4–5 reference).
  bool fine_tune = false;
  /// Submodule coarse-tuning (Rosvall's second refinement): split each final
  /// module into candidate submodules and let whole submodules move between
  /// modules. Never worsens the result; off by default (see fine_tune).
  bool coarse_tune = false;
  /// Route hot-path plogp calls through an exact bit-pattern memo (see
  /// core::PlogpMemo). Bit-identical to the uncached path; off selects the
  /// memo-free reference implementation.
  bool plogp_memo = true;
  /// Worker threads for the move-pass hot loop. 1 = the exact serial path;
  /// any value yields bit-identical results (parallel propose over frozen
  /// state, serial commit in the shuffled order — see DESIGN.md §10).
  int num_threads = 1;
};

/// One row of the convergence trace (drives Figs. 4 and 5).
struct OuterIterationInfo {
  int level = 0;
  graph::VertexId level_vertices = 0;  ///< |V^k|
  graph::VertexId num_modules = 0;     ///< modules after the move phase
  double codelength_before = 0;        ///< L at singleton init of this level
  double codelength_after = 0;         ///< L after the move phase
  int inner_passes = 0;
  std::uint64_t moves = 0;
};

struct InfomapResult {
  /// Level-0 vertex → final module (dense ids 0..k-1).
  graph::Partition assignment;
  double codelength = 0;
  /// L of the all-singletons partition at level 0 (upper bound).
  double singleton_codelength = 0;
  std::vector<OuterIterationInfo> trace;
  /// assignment after each outer level: level_assignments[k][v] = module of
  /// level-0 vertex v after level k (coarser as k grows; the last entry
  /// equals `assignment`, including fine-tuning). Feeds the hierarchical
  /// .tree writer.
  std::vector<graph::Partition> level_assignments;
  /// Vertices relocated by the fine-tuning sweep (0 when disabled).
  std::uint64_t fine_tune_moves = 0;
  /// Submodules relocated by the coarse-tuning sweep (0 when disabled).
  std::uint64_t coarse_tune_moves = 0;

  [[nodiscard]] graph::VertexId num_modules() const {
    graph::VertexId k = 0;
    for (auto m : assignment) k = std::max(k, m + 1);
    return k;
  }
};

InfomapResult sequential_infomap(const graph::Csr& graph,
                                 const InfomapConfig& config = {});

/// Evaluate L(M) of an arbitrary assignment on `fg` from scratch (no
/// incremental state) — the reference the incremental path is tested against,
/// and the tool for scoring distributed results.
double codelength_of_partition(const FlowGraph& fg,
                               const std::vector<graph::VertexId>& module_of);

/// One level of greedy map-equation clustering directly on an existing
/// FlowGraph (honoring its carried node flows and self flows, which
/// make_flow_graph would discard). Used by the hierarchical search to group
/// modules into super-modules. Returns the module per vertex (labels are
/// vertex ids).
graph::Partition cluster_flow_graph(const FlowGraph& fg,
                                    const InfomapConfig& config = {});

}  // namespace dinfomap::core
