#include "core/dist_louvain.hpp"

#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "comm/runtime.hpp"
#include "core/coarsen.hpp"
#include "core/flowgraph.hpp"
#include "quality/metrics.hpp"
#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/random.hpp"
#include "util/sorted.hpp"
#include "util/timer.hpp"

namespace dinfomap::core {

using graph::VertexId;

namespace {

struct LabelUpdate {
  VertexId vertex;
  VertexId community;
};
struct MassPartial {
  VertexId community;
  double sigma;  ///< Σ node flows of members controlled by the sender
};
struct MassTotal {
  VertexId community;
  double sigma;
};

/// Uniform flow-scaled adjacency for one Louvain level. Level 0 streams
/// straight from the GraphView (resident or out-of-core), scaling each arc
/// weight by 1/2W on the fly — the same division make_flow_graph bakes into
/// its rebuilt CSR, so both routes feed bit-identical flows to the rank.
/// Coarser levels wrap the vertex-proportional contracted FlowGraph. One
/// instance per rank: it owns that rank's block cursor.
class FlowAccess {
 public:
  explicit FlowAccess(const FlowGraph& fg) : fg_(&fg) {}
  FlowAccess(const graph::GraphView& view, const NodeFlows& nf)
      : view_(&view), nf_(&nf), cursor_(view.cursor()) {}

  [[nodiscard]] VertexId num_vertices() const {
    return fg_ != nullptr ? fg_->num_vertices() : view_->num_vertices();
  }
  [[nodiscard]] double node_flow(VertexId u) const {
    return fg_ != nullptr ? fg_->node_flow[u] : nf_->node_flow[u];
  }
  /// Visit u's arcs in stored order as fn(target, flow).
  template <typename Fn>
  void for_neighbors(VertexId u, Fn&& fn) {
    if (fg_ != nullptr) {
      for (const auto& nb : fg_->csr.neighbors(u)) fn(nb.target, nb.weight);
    } else {
      for (const auto& nb : view_->neighbors(u, cursor_))
        fn(nb.target, nb.weight / nf_->two_w);
    }
  }

 private:
  const FlowGraph* fg_ = nullptr;
  const graph::GraphView* view_ = nullptr;
  const NodeFlows* nf_ = nullptr;
  graph::GraphView::Cursor cursor_;
};

/// One rank of the distributed Louvain level. All flows are normalized
/// (2W = 1), so ΔQ = 2[f(u,c) − f(u,cur∖u)] − 2·p_u[Σtot(c) − (Σtot(cur)−p_u)].
class LouvainRank {
 public:
  LouvainRank(comm::Comm& comm, FlowAccess& fa, const DistLouvainConfig& cfg)
      : comm_(comm), fa_(fa), cfg_(cfg) {
    const auto p = static_cast<VertexId>(comm_.size());
    for (VertexId v = static_cast<VertexId>(comm_.rank());
         v < fa_.num_vertices(); v += p)
      owned_.push_back(v);
    for (VertexId v : owned_) community_[v] = v;
  }

  const std::vector<VertexId>& owned() const { return owned_; }
  VertexId community_of(VertexId v) const { return community_.at(v); }
  const perf::WorkCounters& work() const { return work_; }
  int rounds() const { return rounds_; }

  void setup() {
    const int p = comm_.size();
    std::vector<std::vector<VertexId>> wanted(p);
    std::unordered_set<VertexId> ghosts;
    for (VertexId u : owned_) {
      fa_.for_neighbors(u, [&](VertexId t, double) {
        const int owner = static_cast<int>(t % static_cast<VertexId>(p));
        if (owner == comm_.rank()) return;
        if (ghosts.insert(t).second) wanted[owner].push_back(t);
      });
    }
    for (VertexId g : util::sorted_elems(ghosts)) community_[g] = g;
    auto requests = comm_.alltoallv(wanted);
    for (int src = 0; src < p; ++src)
      for (VertexId v : requests[src]) subscribers_[v].push_back(src);
    sync_masses();
  }

  void run(util::Xoshiro256& rng) {
    std::vector<VertexId> order = owned_;
    for (rounds_ = 0; rounds_ < cfg_.max_rounds; ++rounds_) {
      util::deterministic_shuffle(order, rng);
      std::vector<LabelUpdate> changed;
      std::uint64_t moves = 0;
      std::unordered_map<VertexId, double> flow_to;
      for (VertexId u : order) {
        const VertexId cur = community_.at(u);
        flow_to.clear();
        fa_.for_neighbors(u, [&](VertexId t, double f) {
          flow_to[community_.at(t)] += f;
          ++work_.arcs_scanned;
        });
        if (flow_to.empty()) continue;
        const double p_u = fa_.node_flow(u);
        const auto f_old_it = flow_to.find(cur);
        const double f_old = f_old_it != flow_to.end() ? f_old_it->second : 0.0;
        const auto sigma_it = sigma_.find(cur);
        const double sigma_cur =
            sigma_it != sigma_.end() ? sigma_it->second : p_u;
        const double base = f_old - p_u * (sigma_cur - p_u);
        double best_gain = cfg_.min_gain;
        VertexId best = cur;
        // dlint:allow(unordered-iter): candidate scan is order-insensitive
        // — the min-label tie-break inside the epsilon band picks the same
        // winner for any iteration order (anti-bouncing argument, §3.4).
        for (const auto& [c, f] : flow_to) {
          if (c == cur) continue;
          // Anti-swap: on even rounds only label-decreasing remote moves
          // (same damping rule as the distributed Infomap).
          if (rounds_ % 2 == 0 && c > cur) continue;
          auto it = sigma_.find(c);
          if (it == sigma_.end()) continue;
          const double gain = 2.0 * ((f - p_u * it->second) - base);
          ++work_.delta_evals;
          if (gain > best_gain + 1e-15 ||
              (gain > best_gain - 1e-15 && best != cur && c < best)) {
            best_gain = gain;
            best = c;
          }
        }
        if (best != cur) {
          sigma_[cur] -= p_u;
          sigma_[best] += p_u;
          community_[u] = best;
          changed.push_back({u, best});
          ++moves;
          ++work_.module_updates;
        }
      }
      // Ghost label exchange.
      const int p = comm_.size();
      std::vector<std::vector<LabelUpdate>> out(p);
      for (const LabelUpdate& lu : changed) {
        auto sub = subscribers_.find(lu.vertex);
        if (sub == subscribers_.end()) continue;
        for (int dest : sub->second) out[dest].push_back(lu);
      }
      auto in = comm_.alltoallv(out);
      for (const auto& batch : in)
        for (const LabelUpdate& lu : batch) community_[lu.vertex] = lu.community;

      sync_masses();
      const auto total_moves =
          comm_.allreduce<std::uint64_t>(moves, comm::ReduceOp::kSum);
      if (total_moves == 0) break;
    }
  }

 private:
  /// Exact Σtot per referenced community via home-rank reduction — the
  /// modularity analogue of the Infomap module-info swap.
  void sync_masses() {
    const int p = comm_.size();
    std::unordered_map<VertexId, double> partial;
    for (VertexId u : owned_) partial[community_.at(u)] += fa_.node_flow(u);
    // Declarations for every referenced community.
    // dlint:allow(unordered-iter): keys-only pass feeding try_emplace into
    // another map — no FP reduction, no ordering escapes this statement.
    for (const auto& [v, c] : community_) partial.try_emplace(c, 0.0);

    // Sorted community order: the wire layout (and the home rank's FP
    // accumulation order over it) must not depend on hash layout.
    std::vector<std::vector<MassPartial>> to_home(p);
    for (const VertexId c : util::sorted_keys(partial))
      to_home[c % static_cast<VertexId>(p)].push_back({c, partial.at(c)});
    auto partials_in = comm_.alltoallv(to_home);

    std::unordered_map<VertexId, double> homed;
    std::unordered_map<VertexId, std::vector<int>> interest;
    for (int src = 0; src < p; ++src) {
      for (const MassPartial& mp : partials_in[src]) {
        homed[mp.community] += mp.sigma;
        interest[mp.community].push_back(src);
      }
    }
    std::vector<std::vector<MassTotal>> reply(p);
    for (const VertexId c : util::sorted_keys(homed))
      for (int dest : interest.at(c)) reply[dest].push_back({c, homed.at(c)});
    auto totals_in = comm_.alltoallv(reply);
    sigma_.clear();
    for (const auto& batch : totals_in)
      for (const MassTotal& mt : batch) sigma_[mt.community] = mt.sigma;
  }

  comm::Comm& comm_;
  FlowAccess& fa_;
  const DistLouvainConfig& cfg_;
  std::vector<VertexId> owned_;
  std::unordered_map<VertexId, VertexId> community_;  // owned + ghosts
  std::unordered_map<VertexId, double> sigma_;        // exact Σtot per community
  std::unordered_map<VertexId, std::vector<int>> subscribers_;
  perf::WorkCounters work_;
  int rounds_ = 0;
};

}  // namespace

DistLouvainResult distributed_louvain(const graph::GraphView& graph,
                                      const DistLouvainConfig& config) {
  DINFOMAP_REQUIRE_MSG(config.num_ranks >= 1, "need at least one rank");
  util::Timer wall;

  // Level 0 streams flows from the view (each rank scales arcs by 1/2W on
  // the fly), so the blocks backend never materializes a flow-weighted CSR
  // of the full edge set. The contraction after level 0 produces an
  // ordinary vertex-proportional FlowGraph for the coarser levels.
  const NodeFlows flows = compute_node_flows(graph);
  DistLouvainResult result;
  result.assignment.resize(graph.num_vertices());
  std::iota(result.assignment.begin(), result.assignment.end(), 0);
  result.work_per_rank.assign(config.num_ranks, {});

  FlowGraph level;  // levels ≥ 1 only
  for (int lv = 0; lv < config.max_levels; ++lv) {
    const bool level0 = lv == 0;
    const VertexId level_n =
        level0 ? graph.num_vertices() : level.num_vertices();
    std::vector<VertexId> labels(level_n);
    util::Mutex sink_mutex;
    int level_rounds = 0;

    auto report = comm::Runtime::run(config.num_ranks, [&](comm::Comm& comm) {
      FlowAccess fa = level0 ? FlowAccess(graph, flows) : FlowAccess(level);
      LouvainRank rank(comm, fa, config);
      rank.setup();
      util::Xoshiro256 rng(util::derive_seed(
          config.seed + static_cast<std::uint64_t>(lv) * 7919,
          static_cast<std::uint64_t>(comm.rank())));
      rank.run(rng);
      // Centralized contraction input, as in the cited MPI Louvains.
      std::vector<LabelUpdate> mine;
      for (VertexId v : rank.owned()) mine.push_back({v, rank.community_of(v)});
      auto gathered =
          comm.gatherv(0, mine);
      util::MutexLock lock(sink_mutex);
      result.work_per_rank[comm.rank()] += rank.work();
      level_rounds = std::max(level_rounds, rank.rounds());
      if (comm.rank() == 0) {
        for (const auto& batch : gathered)
          for (const LabelUpdate& lu : batch) labels[lu.vertex] = lu.community;
      }
    });
    perf::add_comm_totals(result.work_per_rank, report.counters);
    result.total_rounds += level_rounds;
    ++result.levels;

    CoarsenResult coarse = level0 ? coarsen_level0(graph, flows, labels)
                                  : coarsen(level, labels);
    for (auto& a : result.assignment) a = coarse.fine_to_coarse[a];
    const bool merged = coarse.graph.num_vertices() < level_n;
    level = std::move(coarse.graph);
    if (!merged || level.num_vertices() <= 1) break;
  }

  result.modularity = quality::modularity(graph, result.assignment);
  result.wall_seconds = wall.seconds();
  return result;
}

DistLouvainResult distributed_louvain(const graph::GraphView& graph,
                                      int num_ranks) {
  DistLouvainConfig config;
  config.num_ranks = num_ranks;
  return distributed_louvain(graph, config);
}

DistLouvainResult distributed_louvain(const graph::Csr& graph,
                                      const DistLouvainConfig& config) {
  return distributed_louvain(graph::GraphView(graph), config);
}

DistLouvainResult distributed_louvain(const graph::Csr& graph, int num_ranks) {
  return distributed_louvain(graph::GraphView(graph), num_ranks);
}

}  // namespace dinfomap::core
