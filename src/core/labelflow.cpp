#include "core/labelflow.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "comm/runtime.hpp"
#include "core/coarsen.hpp"
#include "core/flowgraph.hpp"
#include "core/seq_infomap.hpp"
#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/random.hpp"
#include "util/sorted.hpp"
#include "util/timer.hpp"

namespace dinfomap::core {

using graph::VertexId;

namespace {

/// (vertex, label) wire record for boundary exchange.
struct LabelUpdate {
  VertexId vertex;
  VertexId label;
};

/// Distributed synchronous LPA on one level. The level graph is shared
/// read-only (standing in for each rank re-reading its partition from disk);
/// all mutable state is rank-local and exchanged through comm.
class LpaRank {
 public:
  LpaRank(comm::Comm& comm, const Csr& graph, int max_rounds,
          std::uint64_t seed)
      : comm_(comm),
        graph_(graph),
        max_rounds_(max_rounds),
        rng_(util::derive_seed(seed, static_cast<std::uint64_t>(comm.rank()))) {
    const int p = comm_.size();
    const int r = comm_.rank();
    for (VertexId v = static_cast<VertexId>(r); v < graph_.num_vertices();
         v += static_cast<VertexId>(p))
      owned_.push_back(v);
    for (VertexId v : owned_) labels_[v] = v;
  }

  int rounds() const { return rounds_; }
  const std::vector<VertexId>& owned() const { return owned_; }
  VertexId label_of(VertexId v) const { return labels_.at(v); }
  const perf::WorkCounters& work() const { return work_; }

  void setup_subscriptions() {
    const int p = comm_.size();
    // Which remote vertices do we read? Their owners must push updates to us.
    std::vector<std::vector<VertexId>> wanted(p);
    std::unordered_set<VertexId> seen;
    for (VertexId u : owned_) {
      for (const auto& nb : graph_.neighbors(u)) {
        const int owner = static_cast<int>(nb.target % static_cast<VertexId>(p));
        if (owner == comm_.rank()) continue;
        if (seen.insert(nb.target).second) wanted[owner].push_back(nb.target);
      }
    }
    // Ghost labels start as singleton.
    for (VertexId v : util::sorted_elems(seen)) labels_[v] = v;
    auto requests = comm_.alltoallv(wanted);
    subscribers_.assign(p, {});
    for (int src = 0; src < p; ++src)
      for (VertexId v : requests[src]) subscribers_[src].push_back(v);
  }

  void run() {
    const int p = comm_.size();
    for (rounds_ = 0; rounds_ < max_rounds_; ++rounds_) {
      std::uint64_t changes = 0;
      std::unordered_map<VertexId, double> weight_to;
      std::vector<LabelUpdate> changed;
      for (VertexId u : owned_) {
        weight_to.clear();
        for (const auto& nb : graph_.neighbors(u)) {
          weight_to[labels_.at(nb.target)] += nb.weight;
          ++work_.arcs_scanned;
        }
        if (weight_to.empty()) continue;
        // Self-loops (intra flow of merged communities at coarse levels)
        // vote for the current label; without this, coarse rings of merged
        // communities keep cascading into one label.
        if (graph_.self_weight(u) > 0)
          weight_to[labels_.at(u)] += 2.0 * graph_.self_weight(u);
        // Flow-weighted vote. Ties keep the current label when it is among
        // the winners and break randomly otherwise — deterministic min-label
        // ties cascade one label across bridges and collapse the clustering.
        const VertexId current = labels_.at(u);
        double best_w = 0;
        // dlint:allow(unordered-iter): FP max is order-insensitive (no
        // accumulation), and every candidate is visited exactly once.
        for (const auto& [lbl, w] : weight_to) {
          ++work_.delta_evals;
          if (w > best_w) best_w = w;
        }
        VertexId best = current;
        const auto cur_it = weight_to.find(current);
        const double cur_w = cur_it != weight_to.end() ? cur_it->second : 0.0;
        if (cur_w < best_w - 1e-15) {
          std::vector<VertexId> winners;
          // dlint:allow(unordered-iter): winners are sorted below before the
          // seeded pick, so collection order cannot escape.
          for (const auto& [lbl, w] : weight_to)
            if (w > best_w - 1e-15) winners.push_back(lbl);
          std::sort(winners.begin(), winners.end());
          best = winners[rng_.bounded(winners.size())];
        }
        if (best != current) {
          labels_[u] = best;
          changed.push_back({u, best});
          ++changes;
          ++work_.module_updates;
        }
      }
      // Push changed labels to subscribers (they filter to what they track).
      std::vector<std::vector<LabelUpdate>> out(p);
      for (int dest = 0; dest < p; ++dest) {
        if (dest == comm_.rank()) continue;
        for (const LabelUpdate& lu : changed) out[dest].push_back(lu);
      }
      auto in = comm_.alltoallv(out);
      for (const auto& batch : in)
        for (const LabelUpdate& lu : batch)
          if (labels_.count(lu.vertex)) labels_[lu.vertex] = lu.label;

      const auto global_changes =
          comm_.allreduce<std::uint64_t>(changes, comm::ReduceOp::kSum);
      if (global_changes == 0) break;
    }
  }

 private:
  comm::Comm& comm_;
  const Csr& graph_;
  int max_rounds_;
  std::vector<VertexId> owned_;
  std::unordered_map<VertexId, VertexId> labels_;  // owned + ghosts
  std::vector<std::vector<VertexId>> subscribers_;
  perf::WorkCounters work_;
  util::Xoshiro256 rng_;
  int rounds_ = 0;
};

}  // namespace

LabelFlowResult distributed_labelflow(const graph::Csr& graph, int num_ranks,
                                      const LabelFlowConfig& config) {
  DINFOMAP_REQUIRE_MSG(num_ranks >= 1, "need at least one rank");
  util::Timer wall;

  FlowGraph level = make_flow_graph(graph);
  LabelFlowResult result;
  result.assignment.resize(graph.num_vertices());
  std::iota(result.assignment.begin(), result.assignment.end(), 0);
  result.work_per_rank.assign(num_ranks, {});

  const FlowGraph level0 = level;  // keep for final scoring

  for (int lv = 0; lv < config.max_levels; ++lv) {
    std::vector<VertexId> final_labels(level.num_vertices());
    util::Mutex sink_mutex;
    int level_rounds = 0;

    auto report = comm::Runtime::run(num_ranks, [&](comm::Comm& comm) {
      LpaRank rank(comm, level.csr, config.max_rounds_per_level,
                   config.seed + static_cast<std::uint64_t>(lv) * 1000003);
      rank.setup_subscriptions();
      rank.run();
      // Centralized merge input: gather owned labels to rank 0 — the
      // framework-style sequential reduce step of the baseline.
      std::vector<LabelUpdate> mine;
      mine.reserve(rank.owned().size());
      for (VertexId v : rank.owned()) mine.push_back({v, rank.label_of(v)});
      auto gathered = comm.gatherv_bytes(
          0, std::as_bytes(std::span<const LabelUpdate>(mine)));
      util::MutexLock lock(sink_mutex);
      result.work_per_rank[comm.rank()] += rank.work();
      level_rounds = std::max(level_rounds, rank.rounds());
      if (comm.rank() == 0) {
        for (const auto& buf : gathered) {
          const auto* updates = reinterpret_cast<const LabelUpdate*>(buf.data());
          for (std::size_t i = 0; i < buf.size() / sizeof(LabelUpdate); ++i)
            final_labels[updates[i].vertex] = updates[i].label;
        }
      }
    });
    perf::add_comm_totals(result.work_per_rank, report.counters);
    result.total_rounds += level_rounds;

    CoarsenResult coarse = coarsen(level, final_labels);
    for (auto& a : result.assignment) a = coarse.fine_to_coarse[a];
    const bool merged = coarse.graph.num_vertices() < level.num_vertices();
    level = std::move(coarse.graph);
    if (!merged || level.num_vertices() <= 1) break;
  }

  result.codelength = codelength_of_partition(level0, result.assignment);
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace dinfomap::core
