// Preprocessing of the distributed Infomap (§3.3): local graph construction
// from the arc partition, flow initialization, ghost subscriptions, and
// singleton module setup.
#include <algorithm>
#include <numeric>

#include "core/dist_internal.hpp"
#include "util/check.hpp"

namespace dinfomap::core::detail {

DistRank::DistRank(comm::Comm& comm, const partition::ArcPartition& part,
                   const DistInfomapConfig& cfg, obs::Recorder* recorder)
    : comm_(comm), cfg_(cfg), recorder_(recorder) {
  // Bootstrap guard: a multi-process worker handed a config whose rank
  // count disagrees with the live transport would address vertices
  // (v mod p) inconsistently with its peers — fail loudly before any
  // traffic, not with a hung collective.
  DINFOMAP_REQUIRE_MSG(cfg_.num_ranks == comm_.size(),
                       "DistRank bootstrap: cfg.num_ranks ("
                           << cfg_.num_ranks << ") != comm size ("
                           << comm_.size() << ")");
  if (recorder_ != nullptr) {
    trace_buf_ = recorder_->track(comm_.rank());
    metrics_ = recorder_->metrics(comm_.rank());
  }
  if (cfg_.threads_per_rank > 1) {
    pool_ = std::make_unique<util::ThreadPool>(cfg_.threads_per_rank);
    scratch_.resize(static_cast<std::size_t>(cfg_.threads_per_rank));
  }
  if (cfg_.module_table_max_load_pct > 0 &&
      cfg_.module_table_max_load_pct < 100) {
    const auto pct = static_cast<std::size_t>(cfg_.module_table_max_load_pct);
    modules_.set_max_load(pct, 100);
    prev_modules_.set_max_load(pct, 100);
  }
  // Event-clock activity tracking feeds both the active-set fast path and
  // the async worklist; off (the default) every stamp site is a dead branch.
  track_activity_ = cfg_.active_set || cfg_.async;
  obs::SpanScope span(trace_buf_, "Setup");
  setup_stage1(part);
}

void DistRank::setup_stage1(const partition::ArcPartition& part) {
  const int p = comm_.size();
  const int r = comm_.rank();
  n0_ = static_cast<VertexId>(part.is_delegate.size());

  // Total arc weight (= 2W) from everyone's held arcs.
  double local_w = 0;
  for (const auto& arc : part.rank_arcs[r]) local_w += arc.weight;
  const double two_w = comm_.allreduce(local_w, comm::ReduceOp::kSum);
  DINFOMAP_REQUIRE_MSG(two_w > 0, "distributed infomap: graph has no edges");

  std::vector<CoarseArc> triples;
  triples.reserve(part.rank_arcs[r].size());
  for (const auto& arc : part.rank_arcs[r])
    triples.push_back({arc.source, arc.target, arc.weight / two_w});
  build_local_graph(triples, p, n0_);

  // Kinds.
  for (auto& lv : verts_) {
    if (part.delegate(lv.global))
      lv.kind = Kind::kDelegate;
    else if (owner_of(lv.global) == r)
      lv.kind = Kind::kOwned;
    else
      lv.kind = Kind::kGhost;
  }

  // Hub flows are spread over ranks; reduce them to exact global values.
  std::vector<VertexId> hub_ids;
  for (VertexId v = 0; v < n0_; ++v)
    if (part.delegate(v)) hub_ids.push_back(v);
  std::vector<double> hub_flow(hub_ids.size(), 0.0);
  for (std::size_t i = 0; i < hub_ids.size(); ++i) {
    auto it = index_.find(hub_ids[i]);
    if (it != index_.end()) hub_flow[i] = verts_[it->second].out_flow;
  }
  hub_flow = comm_.allreduce(hub_flow, comm::ReduceOp::kSum);

  // Node flows: owned-low vertices hold their full adjacency, so the local
  // out-flow is already exact; hubs take the reduced value.
  movable_.clear();
  hubs_.clear();
  for (std::uint32_t li = 0; li < verts_.size(); ++li) {
    auto& lv = verts_[li];
    if (lv.kind == Kind::kOwned) {
      lv.node_flow = lv.out_flow;
      movable_.push_back(li);
    } else if (lv.kind == Kind::kGhost) {
      lv.node_flow = 0;  // never needed locally
    }
  }
  for (std::size_t i = 0; i < hub_ids.size(); ++i) {
    auto it = index_.find(hub_ids[i]);
    if (it == index_.end()) continue;
    auto& lv = verts_[it->second];
    lv.out_flow = hub_flow[i];
    lv.node_flow = hub_flow[i];
    movable_.push_back(it->second);
    hubs_.push_back(it->second);
  }

  // Level-0 node term: each vertex counted once, at its owner.
  double term = 0;
  for (const auto& lv : verts_)
    if (owner_of(lv.global) == r && lv.kind != Kind::kGhost)
      term += plogp(lv.node_flow);
  node_term_ = comm_.allreduce(term, comm::ReduceOp::kSum);

  // Level-0 projection starts as the identity on owned vertices.
  owned0_.clear();
  for (VertexId v = static_cast<VertexId>(r); v < n0_;
       v += static_cast<VertexId>(p))
    owned0_.push_back(v);
  proj_ = owned0_;
  level_n_ = n0_;
}

void DistRank::build_local_graph(std::vector<CoarseArc>& triples,
                                 int num_ranks_mod, VertexId level_n) {
  const auto r = static_cast<VertexId>(comm_.rank());

  // Combine duplicate (source, target) pairs — merging produces them when
  // several fine arcs collapse onto one coarse pair.
  std::sort(triples.begin(), triples.end(),
            [](const CoarseArc& a, const CoarseArc& b) {
              return a.source != b.source ? a.source < b.source
                                          : a.target < b.target;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < triples.size(); ++i) {
    if (out > 0 && triples[out - 1].source == triples[i].source &&
        triples[out - 1].target == triples[i].target) {
      triples[out - 1].flow += triples[i].flow;
    } else {
      triples[out++] = triples[i];
    }
  }
  triples.resize(out);

  // Vertex universe: arc endpoints plus every vertex owned here (so isolated
  // owned vertices stay addressable and countable).
  std::vector<VertexId> ids;
  ids.reserve(triples.size() * 2 + level_n / num_ranks_mod + 1);
  for (const auto& t : triples) {
    ids.push_back(t.source);
    ids.push_back(t.target);
  }
  for (VertexId v = r; v < level_n; v += static_cast<VertexId>(num_ranks_mod))
    ids.push_back(v);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  verts_.clear();
  verts_.resize(ids.size());
  index_.clear();
  index_.reserve(ids.size());
  for (std::uint32_t i = 0; i < ids.size(); ++i) {
    verts_[i].global = ids[i];
    verts_[i].module = ids[i];
    index_.emplace(ids[i], i);
  }

  // Group non-self arcs by source; accumulate self flows.
  arc_off_.assign(verts_.size() + 1, 0);
  for (const auto& t : triples) {
    if (t.source == t.target) continue;
    ++arc_off_[index_.at(t.source) + 1];
  }
  for (std::size_t i = 1; i < arc_off_.size(); ++i) arc_off_[i] += arc_off_[i - 1];
  arcs_.assign(arc_off_.back(), {});
  std::vector<std::uint32_t> cursor(arc_off_.begin(), arc_off_.end() - 1);
  for (const auto& t : triples) {
    const std::uint32_t si = index_.at(t.source);
    if (t.source == t.target) {
      verts_[si].self_flow += t.flow;
      continue;
    }
    arcs_[cursor[si]++] = {index_.at(t.target), t.flow};
  }
  for (std::uint32_t li = 0; li < verts_.size(); ++li) {
    double f = 0;
    for (std::uint32_t a = arc_off_[li]; a < arc_off_[li + 1]; ++a)
      f += arcs_[a].flow;
    verts_[li].out_flow = f;
  }
}

void DistRank::setup_subscriptions() {
  const int p = comm_.size();
  // Tell each ghost's owner that we read it.
  std::vector<std::vector<SubscribeRequest>> requests(p);
  for (const auto& lv : verts_)
    if (lv.kind == Kind::kGhost)
      requests[owner_of(lv.global)].push_back({lv.global});
  auto incoming = comm_.alltoallv(requests);

  subscribers_.clear();
  for (int src = 0; src < p; ++src) {
    for (const SubscribeRequest& req : incoming[src]) {
      auto it = index_.find(req.vertex);
      DINFOMAP_REQUIRE_MSG(it != index_.end(),
                           "subscription for a vertex the owner does not hold");
      subscribers_[it->second].push_back(src);
    }
  }
}

void DistRank::init_singleton_modules() {
  modules_.clear();
  dirty_owned_.clear();
  round_index_ = 0;
  if (track_activity_) {
    // Force a full activity reset at the next round/epoch: vertex and module
    // id spaces change across levels, so stamps must not carry over (the
    // stamp helpers bounds-check, making the window between here and the
    // next ensure_activity_state safe).
    assign_stamp_.clear();
    stat_stamp_.clear();
    last_eval_.clear();
    prev_modules_.clear();
    worklist_.reset(0);
    dirty_flag_.clear();
    ghost_readers_.clear();
  }
  for (auto& lv : verts_) {
    lv.module = lv.global;
    if (lv.kind == Kind::kGhost) continue;
    ModuleStats stats;
    stats.sum_pr = lv.node_flow;
    stats.exit_pr = lv.out_flow;
    stats.num_members = 1;
    modules_.emplace(static_cast<ModuleId>(lv.global), stats);
  }
}

}  // namespace dinfomap::core::detail
