#include "core/hierarchy.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "core/coarsen.hpp"
#include "graph/builder.hpp"
#include "util/check.hpp"

namespace dinfomap::core {

using graph::VertexId;

// ---------------------------------------------------------------------------
// Hierarchy
// ---------------------------------------------------------------------------

Hierarchy Hierarchy::two_level(const FlowGraph& fg, const graph::Partition& modules) {
  DINFOMAP_REQUIRE_MSG(modules.size() == fg.num_vertices(),
                       "two_level: assignment size mismatch");
  Hierarchy h;
  h.nodes_.push_back(Node{});  // root

  std::unordered_map<VertexId, int> node_of_label;
  for (VertexId v = 0; v < fg.num_vertices(); ++v) {
    auto [it, inserted] =
        node_of_label.try_emplace(modules[v], static_cast<int>(h.nodes_.size()));
    if (inserted) {
      Node module;
      module.parent = 0;
      h.nodes_.push_back(module);
      h.nodes_[0].children.push_back(it->second);
    }
    h.nodes_[it->second].leaves.push_back(v);
  }
  h.recompute_flows(fg);
  return h;
}

void Hierarchy::recompute_flows(const FlowGraph& fg) {
  for (Node& node : nodes_) {
    node.exit = 0;
    node.sum_pr = 0;
  }
  // Leaf node of each vertex, and each node's depth & ancestor chain need.
  std::vector<int> node_of(fg.num_vertices(), -1);
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i)
    for (VertexId v : nodes_[i].leaves) node_of[v] = i;

  // Node ids are not ordered by depth (group_top appends parents after
  // children), so walk each chain to the root.
  std::vector<int> depth(nodes_.size(), 0);
  for (int i = 1; i < static_cast<int>(nodes_.size()); ++i) {
    int d = 0;
    for (int n = i; n != 0; n = nodes_[n].parent) ++d;
    depth[i] = d;
  }

  // sum_pr: push each vertex's flow up its ancestor chain.
  for (VertexId v = 0; v < fg.num_vertices(); ++v) {
    DINFOMAP_REQUIRE_MSG(node_of[v] >= 0, "vertex missing from hierarchy");
    for (int n = node_of[v]; n != -1; n = nodes_[n].parent)
      nodes_[n].sum_pr += fg.node_flow[v];
  }

  // exit: an arc (u→v) crosses every ancestor of u strictly below the lowest
  // common ancestor of u's and v's leaf nodes.
  for (VertexId u = 0; u < fg.num_vertices(); ++u) {
    for (const auto& nb : fg.csr.neighbors(u)) {
      int a = node_of[u];
      int b = node_of[nb.target];
      // Lift the deeper side until depths match, then lift both.
      int ax = a, bx = b;
      while (depth[ax] > depth[bx]) ax = nodes_[ax].parent;
      while (depth[bx] > depth[ax]) bx = nodes_[bx].parent;
      while (ax != bx) {
        ax = nodes_[ax].parent;
        bx = nodes_[bx].parent;
      }
      const int lca = ax;
      for (int n = a; n != lca; n = nodes_[n].parent)
        nodes_[n].exit += nb.weight;
    }
  }
}

double Hierarchy::codelength(const FlowGraph& fg) const {
  // Each node with content owns a codebook: symbols are its children's
  // enter rates (undirected: exit), its leaves' visit rates, and its own
  // exit rate. Contribution = plogp(total) − Σ plogp(symbol rates).
  double total_l = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.children.empty() && node.leaves.empty()) continue;
    double total = node.exit;
    double symbol_terms = plogp(node.exit);
    for (int c : node.children) {
      total += nodes_[c].exit;
      symbol_terms += plogp(nodes_[c].exit);
    }
    for (VertexId v : node.leaves) {
      total += fg.node_flow[v];
      symbol_terms += plogp(fg.node_flow[v]);
    }
    total_l += plogp(total) - symbol_terms;
  }
  return total_l;
}

void Hierarchy::split_node(const FlowGraph& fg, int node,
                           const std::vector<VertexId>& sub_of) {
  DINFOMAP_REQUIRE_MSG(node > 0 && node < static_cast<int>(nodes_.size()),
                       "split_node: bad node id");
  Node& target = nodes_[node];
  DINFOMAP_REQUIRE_MSG(target.children.empty(),
                       "split_node: node already has submodules");
  DINFOMAP_REQUIRE_MSG(sub_of.size() == target.leaves.size(),
                       "split_node: one label per leaf required");

  std::unordered_map<VertexId, int> child_of_label;
  std::vector<VertexId> leaves = std::move(target.leaves);
  target.leaves.clear();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto [it, inserted] =
        child_of_label.try_emplace(sub_of[i], static_cast<int>(nodes_.size()));
    if (inserted) {
      Node child;
      child.parent = node;
      nodes_.push_back(child);
      nodes_[node].children.push_back(it->second);
    }
    nodes_[it->second].leaves.push_back(leaves[i]);
  }
  recompute_flows(fg);
}

void Hierarchy::group_top(const FlowGraph& fg,
                          const std::vector<VertexId>& super_of) {
  DINFOMAP_REQUIRE_MSG(super_of.size() == nodes_[0].children.size(),
                       "group_top: one label per top module required");
  const std::vector<int> old_top = std::move(nodes_[0].children);
  nodes_[0].children.clear();
  std::unordered_map<VertexId, int> super_node_of_label;
  for (std::size_t i = 0; i < old_top.size(); ++i) {
    auto [it, inserted] = super_node_of_label.try_emplace(
        super_of[i], static_cast<int>(nodes_.size()));
    if (inserted) {
      Node super;
      super.parent = 0;
      nodes_.push_back(super);
      nodes_[0].children.push_back(it->second);
    }
    nodes_[old_top[i]].parent = it->second;
    nodes_[it->second].children.push_back(old_top[i]);
  }
  recompute_flows(fg);
}

int Hierarchy::depth() const {
  int deepest = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].leaves.empty()) continue;
    int d = 0;
    for (int n = static_cast<int>(i); n != 0; n = nodes_[n].parent) ++d;
    deepest = std::max(deepest, d);
  }
  return deepest;
}

int Hierarchy::num_leaf_modules() const {
  int count = 0;
  for (const Node& node : nodes_) count += !node.leaves.empty();
  return count;
}

graph::Partition Hierarchy::leaf_assignment(VertexId n) const {
  graph::Partition out(n, graph::kInvalidVertex);
  VertexId next = 0;
  for (const Node& node : nodes_) {
    if (node.leaves.empty()) continue;
    for (VertexId v : node.leaves) {
      DINFOMAP_REQUIRE(v < n);
      out[v] = next;
    }
    ++next;
  }
  for (VertexId v = 0; v < n; ++v)
    DINFOMAP_REQUIRE_MSG(out[v] != graph::kInvalidVertex,
                         "hierarchy does not cover all vertices");
  return out;
}

std::vector<std::string> Hierarchy::vertex_paths(VertexId n) const {
  // Child ordering: larger sum_pr first (ties → node id), 1-based.
  std::vector<std::vector<int>> ordered_children(nodes_.size());
  std::vector<int> position(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    ordered_children[i] = nodes_[i].children;
    std::sort(ordered_children[i].begin(), ordered_children[i].end(),
              [&](int a, int b) {
                if (nodes_[a].sum_pr != nodes_[b].sum_pr)
                  return nodes_[a].sum_pr > nodes_[b].sum_pr;
                return a < b;
              });
    for (std::size_t j = 0; j < ordered_children[i].size(); ++j)
      position[ordered_children[i][j]] = static_cast<int>(j + 1);
  }

  std::vector<std::string> paths(n);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].leaves.empty()) continue;
    // Path prefix of this module.
    std::vector<int> rev;
    for (int node = static_cast<int>(i); node != 0; node = nodes_[node].parent)
      rev.push_back(position[node]);
    std::string prefix;
    for (auto it = rev.rbegin(); it != rev.rend(); ++it)
      prefix += std::to_string(*it) + ':';
    int leaf_pos = 0;
    for (VertexId v : nodes_[i].leaves) {
      DINFOMAP_REQUIRE(v < n);
      paths[v] = prefix + std::to_string(++leaf_pos);
    }
  }
  return paths;
}

bool Hierarchy::validate(const FlowGraph& fg) const {
  if (nodes_.empty() || nodes_[0].parent != -1) return false;
  // Tree shape: every non-root node's parent lists it as a child.
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const int p = nodes_[i].parent;
    if (p < 0 || p >= static_cast<int>(nodes_.size())) return false;
    const auto& siblings = nodes_[p].children;
    if (std::count(siblings.begin(), siblings.end(), static_cast<int>(i)) != 1)
      return false;
  }
  // Every vertex appears exactly once.
  std::vector<int> seen(fg.num_vertices(), 0);
  for (const Node& node : nodes_)
    for (VertexId v : node.leaves) {
      if (v >= fg.num_vertices()) return false;
      ++seen[v];
    }
  for (int s : seen)
    if (s != 1) return false;
  // Flow conservation at the root.
  if (std::abs(nodes_[0].sum_pr - 1.0) > 1e-9) return false;
  if (nodes_[0].exit != 0) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Recursive search
// ---------------------------------------------------------------------------

HierInfomapResult hierarchical_infomap(const graph::Csr& graph,
                                       const HierInfomapConfig& config) {
  const FlowGraph fg = make_flow_graph(graph);
  const auto flat = sequential_infomap(graph, config.two_level);

  HierInfomapResult result;
  result.two_level_codelength = flat.codelength;
  result.hierarchy = Hierarchy::two_level(fg, flat.assignment);
  double current_l = result.hierarchy.codelength(fg);

  // Work queue of (node id, depth) leaf modules to try splitting.
  std::deque<std::pair<int, int>> queue;
  for (int c : result.hierarchy.nodes()[0].children) queue.push_back({c, 1});

  while (!queue.empty()) {
    const auto [node, node_depth] = queue.front();
    queue.pop_front();
    if (node_depth >= config.max_depth) continue;
    const auto& leaves = result.hierarchy.nodes()[node].leaves;
    if (leaves.size() < config.min_module_size) continue;

    // Induced subnetwork over this module's vertices, weights = flows.
    std::unordered_map<VertexId, VertexId> local;
    local.reserve(leaves.size());
    for (VertexId i = 0; i < leaves.size(); ++i) local.emplace(leaves[i], i);
    graph::EdgeList internal;
    for (VertexId i = 0; i < leaves.size(); ++i) {
      for (const auto& nb : fg.csr.neighbors(leaves[i])) {
        if (leaves[i] > nb.target) continue;  // one direction suffices
        auto it = local.find(nb.target);
        if (it == local.end()) continue;
        internal.push_back({i, it->second, nb.weight});
      }
    }
    if (internal.empty()) continue;
    const auto sub_csr =
        graph::build_csr(internal, static_cast<VertexId>(leaves.size()));
    const auto sub = sequential_infomap(sub_csr, config.two_level);
    if (sub.num_modules() <= 1) continue;

    Hierarchy trial = result.hierarchy;
    trial.split_node(fg, node, sub.assignment);
    const double trial_l = trial.codelength(fg);
    if (trial_l < current_l - 1e-12) {
      const int first_new = static_cast<int>(result.hierarchy.nodes().size());
      result.hierarchy = std::move(trial);
      current_l = trial_l;
      for (int c = first_new; c < static_cast<int>(result.hierarchy.nodes().size());
           ++c)
        queue.push_back({c, node_depth + 1});
    }
  }

  // Upward pass: group the current top modules into super-modules while it
  // pays. The coarse module graph keeps its carried node/self flows, so the
  // grouping search runs on cluster_flow_graph, not on a re-normalized CSR.
  for (int iter = 0; iter < config.max_depth; ++iter) {
    const auto& top = result.hierarchy.nodes()[0].children;
    if (top.size() <= 2) break;
    // vertex → index of its depth-1 ancestor within root.children order.
    std::unordered_map<int, VertexId> top_index;
    for (VertexId i = 0; i < top.size(); ++i) top_index.emplace(top[i], i);
    graph::Partition top_of(graph.num_vertices());
    {
      std::vector<int> node_of(graph.num_vertices(), -1);
      const auto& nodes = result.hierarchy.nodes();
      for (int n = 0; n < static_cast<int>(nodes.size()); ++n)
        for (VertexId v : nodes[n].leaves) node_of[v] = n;
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        int n = node_of[v];
        while (nodes[n].parent != 0) n = nodes[n].parent;
        top_of[v] = top_index.at(n);
      }
    }
    const CoarsenResult coarse = coarsen(fg, top_of);
    const auto super_of = cluster_flow_graph(coarse.graph, config.two_level);
    // Count distinct supers.
    std::unordered_map<VertexId, int> distinct;
    for (VertexId c = 0; c < coarse.graph.num_vertices(); ++c)
      distinct.try_emplace(super_of[c], 0);
    if (distinct.size() <= 1 || distinct.size() >= top.size()) break;

    Hierarchy trial = result.hierarchy;
    // coarse vertex c corresponds to root child index c (labels 0..k-1 were
    // already dense, so coarsen's relabeling is the identity).
    std::vector<VertexId> labels(top.size());
    for (VertexId c = 0; c < top.size(); ++c) labels[c] = super_of[c];
    trial.group_top(fg, labels);
    const double trial_l = trial.codelength(fg);
    if (trial_l < current_l - 1e-12) {
      result.hierarchy = std::move(trial);
      current_l = trial_l;
    } else {
      break;
    }
  }

  result.codelength = current_l;
  result.leaf_assignment = result.hierarchy.leaf_assignment(graph.num_vertices());
  return result;
}

}  // namespace dinfomap::core
