// Distributed Louvain baseline — the modularity-based family the paper's
// related work contrasts with (Wickramaarachchi et al. 2014; Zeng & Yu
// 2015/2016). Runs on the same comm substrate as the distributed Infomap:
// 1D-partitioned synchronous rounds with ghost label exchange and exact
// community-mass reduction at community homes, centralized contraction
// between levels (as in the cited MPI implementations).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph_view.hpp"
#include "graph/types.hpp"
#include "perf/work_counters.hpp"

namespace dinfomap::core {

struct DistLouvainConfig {
  int num_ranks = 4;
  double min_gain = 1e-9;
  int max_levels = 16;
  int max_rounds = 64;
  std::uint64_t seed = 42;
};

struct DistLouvainResult {
  graph::Partition assignment;  ///< level-0 vertex → community (dense ids)
  double modularity = 0;
  int levels = 0;
  int total_rounds = 0;
  double wall_seconds = 0;
  std::vector<perf::WorkCounters> work_per_rank;
};

/// The GraphView overloads are the implementation: level 0 streams flows
/// straight from the view (resident CSR or out-of-core block file) without
/// materializing a flow-weighted CSR, and coarser levels run on the
/// vertex-proportional contracted FlowGraph. Results are bit-identical
/// across backends; the Csr overloads are thin wrappers.
DistLouvainResult distributed_louvain(const graph::GraphView& graph,
                                      int num_ranks);
DistLouvainResult distributed_louvain(const graph::GraphView& graph,
                                      const DistLouvainConfig& config);
DistLouvainResult distributed_louvain(const graph::Csr& graph, int num_ranks);
DistLouvainResult distributed_louvain(const graph::Csr& graph,
                                      const DistLouvainConfig& config);

}  // namespace dinfomap::core
