#include "core/directed_infomap.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

#include "core/mapequation.hpp"
#include "util/check.hpp"
#include "util/random.hpp"
#include "util/sorted.hpp"
#include "util/sparse_accumulator.hpp"

namespace dinfomap::core {

using graph::DiCsr;
using graph::EdgeIndex;
using graph::VertexId;

std::vector<double> pagerank(const DiCsr& graph, const PageRankConfig& config) {
  const VertexId n = graph.num_vertices();
  DINFOMAP_REQUIRE_MSG(n > 0, "pagerank: empty graph");
  const double d = config.damping;
  DINFOMAP_REQUIRE_MSG(d > 0 && d < 1, "pagerank: damping in (0,1)");

  std::vector<double> rank(n, 1.0 / n), next(n);
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    double dangling = 0;
    for (VertexId u = 0; u < n; ++u)
      if (graph.out_weight(u) == 0) dangling += rank[u];
    const double base = (1.0 - d) / n + d * dangling / n;
    std::fill(next.begin(), next.end(), base);
    for (VertexId u = 0; u < n; ++u) {
      if (graph.out_weight(u) == 0) continue;
      const double share = d * rank[u] / graph.out_weight(u);
      for (const auto& nb : graph.out_neighbors(u))
        next[nb.target] += share * nb.weight;
    }
    double delta = 0;
    for (VertexId u = 0; u < n; ++u) delta += std::abs(next[u] - rank[u]);
    rank.swap(next);
    if (delta < config.tolerance) break;
  }
  return rank;
}

namespace {

/// Per-level directed flow graph: stationary link flows in both directions,
/// node visit rates, and intra flows carried as self flow.
struct DiFlow {
  std::vector<EdgeIndex> out_off, in_off;
  std::vector<std::pair<VertexId, double>> out, in;  // (target, flow)
  std::vector<double> node_flow;  ///< visit rate per vertex
  std::vector<double> self_flow;  ///< flow staying on the vertex
  double node_term = 0;           ///< Σ plogp(p_α), level 0

  [[nodiscard]] VertexId size() const {
    return static_cast<VertexId>(node_flow.size());
  }
  [[nodiscard]] double out_flow(VertexId u) const {
    double f = 0;
    for (EdgeIndex a = out_off[u]; a < out_off[u + 1]; ++a) f += out[a].second;
    return f;
  }
};

DiFlow make_di_flow(const DiCsr& graph, const std::vector<double>& rank,
                    double damping) {
  const VertexId n = graph.num_vertices();
  DiFlow fg;
  fg.node_flow = rank;
  fg.self_flow.assign(n, 0.0);
  fg.out_off.assign(static_cast<std::size_t>(n) + 1, 0);
  fg.in_off.assign(static_cast<std::size_t>(n) + 1, 0);

  // Count non-self arcs both ways.
  for (VertexId u = 0; u < n; ++u) {
    for (const auto& nb : graph.out_neighbors(u)) {
      if (nb.target == u) continue;
      ++fg.out_off[u + 1];
      ++fg.in_off[nb.target + 1];
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    fg.out_off[v + 1] += fg.out_off[v];
    fg.in_off[v + 1] += fg.in_off[v];
  }
  fg.out.resize(fg.out_off.back());
  fg.in.resize(fg.in_off.back());
  std::vector<EdgeIndex> oc(fg.out_off.begin(), fg.out_off.end() - 1);
  std::vector<EdgeIndex> ic(fg.in_off.begin(), fg.in_off.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    if (graph.out_weight(u) == 0) continue;
    const double share = damping * rank[u] / graph.out_weight(u);
    for (const auto& nb : graph.out_neighbors(u)) {
      const double flow = share * nb.weight;
      if (nb.target == u) {
        fg.self_flow[u] += flow;
        continue;
      }
      fg.out[oc[u]++] = {nb.target, flow};
      fg.in[ic[nb.target]++] = {u, flow};
    }
  }
  fg.node_term = 0;
  for (double p : rank) fg.node_term += plogp(p);
  return fg;
}

/// Clustering state mirroring seq_infomap's LevelState, for directed flows.
struct DiState {
  std::vector<VertexId> module_of;
  std::vector<ModuleStats> modules;
  CodelengthTerms terms;
  VertexId live_modules = 0;

  void init_singletons(const DiFlow& fg) {
    const VertexId n = fg.size();
    module_of.resize(n);
    std::iota(module_of.begin(), module_of.end(), 0);
    modules.assign(n, ModuleStats{});
    terms = CodelengthTerms{};
    terms.node_term = fg.node_term;
    for (VertexId u = 0; u < n; ++u) {
      ModuleStats& m = modules[u];
      m.sum_pr = fg.node_flow[u];
      m.exit_pr = fg.out_flow(u);
      m.num_members = 1;
      terms.q_total += m.exit_pr;
      terms.sum_plogp_q += plogp(m.exit_pr);
      terms.sum_plogp_q_plus_p += plogp(m.exit_pr + m.sum_pr);
    }
    live_modules = n;
  }

  void apply(VertexId u, VertexId target, const MoveOutcome& out) {
    ModuleStats& old_m = modules[module_of[u]];
    ModuleStats& new_m = modules[target];
    terms.q_total += out.delta_q_total;
    terms.sum_plogp_q += plogp(out.old_after.exit_pr) - plogp(old_m.exit_pr) +
                         plogp(out.new_after.exit_pr) - plogp(new_m.exit_pr);
    terms.sum_plogp_q_plus_p +=
        plogp(out.old_after.exit_pr + out.old_after.sum_pr) -
        plogp(old_m.exit_pr + old_m.sum_pr) +
        plogp(out.new_after.exit_pr + out.new_after.sum_pr) -
        plogp(new_m.exit_pr + new_m.sum_pr);
    if (out.old_after.num_members == 0) --live_modules;
    old_m = out.old_after;
    new_m = out.new_after;
    module_of[u] = target;
  }
};

std::uint64_t di_move_pass(const DiFlow& fg, DiState& state,
                           const std::vector<VertexId>& order, double eps,
                           util::SparseAccumulator<VertexId, double>& flow_to,
                           PlogpMemo& memo) {
  std::uint64_t moves = 0;
  // Combined (out+in)/2 flow to each neighbor module — this halving makes
  // the shared undirected MoveDelta algebra exact for directed flows (it
  // multiplies by 2 internally).
  if (flow_to.capacity() < fg.size()) flow_to.reset(fg.size());
  for (VertexId u : order) {
    const VertexId cur = state.module_of[u];
    flow_to.clear();
    double f_u = 0;
    for (EdgeIndex a = fg.out_off[u]; a < fg.out_off[u + 1]; ++a) {
      flow_to[state.module_of[fg.out[a].first]] += fg.out[a].second / 2.0;
      f_u += fg.out[a].second;
    }
    for (EdgeIndex a = fg.in_off[u]; a < fg.in_off[u + 1]; ++a)
      flow_to[state.module_of[fg.in[a].first]] += fg.in[a].second / 2.0;
    if (flow_to.empty()) continue;
    const double f_to_old = flow_to.value_or(cur, 0.0);

    double best_delta = -eps;
    VertexId best_target = cur;
    MoveOutcome best_outcome;
    for (const VertexId mod : flow_to.keys()) {
      if (mod == cur) continue;
      MoveDelta d;
      d.p_u = fg.node_flow[u];
      d.f_u = f_u;
      d.f_to_old = f_to_old;
      d.f_to_new = *flow_to.find(mod);
      d.old_stats = state.modules[cur];
      d.new_stats = state.modules[mod];
      d.q_total = state.terms.q_total;
      const MoveOutcome out = evaluate_move(d, memo);
      if (out.delta_codelength < best_delta - 1e-15 ||
          (out.delta_codelength < best_delta + 1e-15 && mod < best_target)) {
        best_delta = out.delta_codelength;
        best_target = mod;
        best_outcome = out;
      }
    }
    if (best_target != cur) {
      state.apply(u, best_target, best_outcome);
      ++moves;
    }
  }
  return moves;
}

struct DiCoarsenResult {
  DiFlow graph;
  std::vector<VertexId> fine_to_coarse;
};

DiCoarsenResult di_coarsen(const DiFlow& fine, const std::vector<VertexId>& mods) {
  std::vector<VertexId> ids(mods);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::unordered_map<VertexId, VertexId> dense;
  for (VertexId i = 0; i < ids.size(); ++i) dense.emplace(ids[i], i);
  const auto k = static_cast<VertexId>(ids.size());

  DiCoarsenResult result;
  result.fine_to_coarse.resize(fine.size());
  for (VertexId u = 0; u < fine.size(); ++u)
    result.fine_to_coarse[u] = dense.at(mods[u]);

  std::vector<std::map<VertexId, double>> coarse_out(k);
  DiFlow& cg = result.graph;
  cg.node_flow.assign(k, 0.0);
  cg.self_flow.assign(k, 0.0);
  for (VertexId u = 0; u < fine.size(); ++u) {
    const VertexId cu = result.fine_to_coarse[u];
    cg.node_flow[cu] += fine.node_flow[u];
    cg.self_flow[cu] += fine.self_flow[u];
    for (EdgeIndex a = fine.out_off[u]; a < fine.out_off[u + 1]; ++a) {
      const VertexId cv = result.fine_to_coarse[fine.out[a].first];
      if (cu == cv)
        cg.self_flow[cu] += fine.out[a].second;
      else
        coarse_out[cu][cv] += fine.out[a].second;
    }
  }
  cg.out_off.assign(static_cast<std::size_t>(k) + 1, 0);
  cg.in_off.assign(static_cast<std::size_t>(k) + 1, 0);
  for (VertexId c = 0; c < k; ++c) {
    cg.out_off[c + 1] = cg.out_off[c] + coarse_out[c].size();
    for (const auto& [t, f] : coarse_out[c]) ++cg.in_off[t + 1];
  }
  for (VertexId c = 0; c < k; ++c) cg.in_off[c + 1] += cg.in_off[c];
  cg.out.resize(cg.out_off.back());
  cg.in.resize(cg.in_off.back());
  std::vector<EdgeIndex> oc(cg.out_off.begin(), cg.out_off.end() - 1);
  std::vector<EdgeIndex> ic(cg.in_off.begin(), cg.in_off.end() - 1);
  for (VertexId c = 0; c < k; ++c) {
    for (const auto& [t, f] : coarse_out[c]) {
      cg.out[oc[c]++] = {t, f};
      cg.in[ic[t]++] = {c, f};
    }
  }
  cg.node_term = fine.node_term;
  return result;
}

}  // namespace

DirectedInfomapResult directed_infomap(const DiCsr& graph,
                                       const DirectedInfomapConfig& config) {
  DINFOMAP_REQUIRE_MSG(graph.num_vertices() > 0, "empty graph");
  const auto rank = pagerank(graph, config.pagerank);
  DiFlow fg = make_di_flow(graph, rank, config.pagerank.damping);

  DirectedInfomapResult result;
  result.assignment.resize(graph.num_vertices());
  std::iota(result.assignment.begin(), result.assignment.end(), 0);
  {
    DiState probe;
    probe.init_singletons(fg);
    result.singleton_codelength = probe.terms.codelength();
  }
  double prev = result.singleton_codelength;

  util::Xoshiro256 rng(config.seed);
  util::SparseAccumulator<VertexId, double> flow_to;
  PlogpMemo memo;
  for (int level = 0; level < config.max_outer_iterations; ++level) {
    DiState state;
    state.init_singletons(fg);
    std::vector<VertexId> order(fg.size());
    std::iota(order.begin(), order.end(), 0);
    for (int pass = 0; pass < config.max_inner_passes; ++pass) {
      util::deterministic_shuffle(order, rng);
      if (di_move_pass(fg, state, order, config.move_epsilon, flow_to, memo) ==
          0)
        break;
    }
    result.codelength = state.terms.codelength();
    ++result.levels;

    DiCoarsenResult coarse = di_coarsen(fg, state.module_of);
    for (auto& a : result.assignment) a = coarse.fine_to_coarse[a];
    const bool merged = coarse.graph.size() < fg.size();
    fg = std::move(coarse.graph);
    const double improvement = prev - result.codelength;
    prev = result.codelength;
    if (!merged) break;
    if (level > 0 && improvement < config.theta) break;
  }
  return result;
}

double directed_codelength(const DiCsr& graph,
                           const std::vector<double>& visit_rate,
                           const graph::Partition& module_of, double damping) {
  DINFOMAP_REQUIRE(visit_rate.size() == graph.num_vertices());
  DINFOMAP_REQUIRE(module_of.size() == graph.num_vertices());
  std::unordered_map<VertexId, ModuleStats> mods;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    ModuleStats& m = mods[module_of[u]];
    m.sum_pr += visit_rate[u];
    m.num_members += 1;
    if (graph.out_weight(u) == 0) continue;
    const double share = damping * visit_rate[u] / graph.out_weight(u);
    for (const auto& nb : graph.out_neighbors(u))
      if (module_of[nb.target] != module_of[u]) m.exit_pr += share * nb.weight;
  }
  CodelengthTerms terms;
  for (double p : visit_rate) terms.node_term += plogp(p);
  // Sorted module order: this FP reduction must not depend on hash layout.
  for (const VertexId id : util::sorted_keys(mods)) {
    const ModuleStats& m = mods.at(id);
    terms.q_total += m.exit_pr;
    terms.sum_plogp_q += plogp(m.exit_pr);
    terms.sum_plogp_q_plus_p += plogp(m.exit_pr + m.sum_pr);
  }
  return terms.codelength();
}

}  // namespace dinfomap::core
