// MPI-like communicator.
//
// This is the paper's communication substrate: the original implementation is
// plain MPI on Titan; no MPI library exists in this environment, so we provide
// a communicator with the same two-sided + collective semantics over a
// pluggable comm::Transport — the in-process mailbox backend (one rank per
// thread, disjoint logical address spaces — all sharing happens through
// messages) or the multi-process socket backend. Porting back to real MPI is
// a mechanical swap of this class for MPI_Comm calls.
//
// Collectives are implemented *on top of* point-to-point with classic
// algorithms (dissemination barrier, binomial-tree broadcast, gather+bcast
// allgather), so CommCounters reflect realistic message/byte volumes.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <numeric>
#include <span>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "comm/counters.hpp"
#include "comm/message.hpp"
#include "comm/transport.hpp"
#include "util/check.hpp"

namespace dinfomap::obs {
class MetricsRegistry;
class Histogram;
class TraceBuffer;
}  // namespace dinfomap::obs

namespace dinfomap::comm {

/// Built-in reduction operators for allreduce.
enum class ReduceOp { kSum, kMin, kMax, kLogicalAnd, kLogicalOr };

class Comm {
 public:
  explicit Comm(Transport& transport)
      : transport_(&transport),
        rank_(transport.rank()),
        size_(transport.size()),
        consumed_(transport.size()) {}

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  // ---- point-to-point (byte level) -------------------------------------
  void send_bytes(int dest, int tag, std::span<const std::byte> data);
  [[nodiscard]] std::vector<std::byte> recv_bytes(int source, int tag);
  [[nodiscard]] bool probe(int source, int tag);

  /// Nonblocking receive handle (MPI_Irecv-style). Sends are already
  /// asynchronous (delivery never blocks), so only the receive side needs a
  /// request object.
  class PendingRecv {
   public:
    PendingRecv(Comm& comm, int source, int tag)
        : comm_(&comm), source_(source), tag_(tag) {}
    /// True once a matching message is queued (does not consume it).
    [[nodiscard]] bool ready() const { return comm_->probe(source_, tag_); }
    /// Block until the message arrives and return its payload.
    [[nodiscard]] std::vector<std::byte> wait() {
      DINFOMAP_REQUIRE_MSG(!consumed_, "PendingRecv::wait called twice");
      consumed_ = true;
      return comm_->recv_bytes(source_, tag_);
    }
    template <typename T>
    [[nodiscard]] std::vector<T> wait_as() {
      return from_bytes<T>(wait());
    }

   private:
    Comm* comm_;
    int source_;
    int tag_;
    bool consumed_ = false;
  };

  [[nodiscard]] PendingRecv irecv(int source, int tag) {
    return PendingRecv(*this, source, tag);
  }

  // ---- point-to-point (typed, trivially copyable) ----------------------
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, as_bytes(data));
  }
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    send(dest, tag, std::span<const T>(data));
  }
  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag) {
    return from_bytes<T>(recv_bytes(source, tag));
  }
  template <typename T>
  [[nodiscard]] T recv_value(int source, int tag) {
    auto v = recv<T>(source, tag);
    DINFOMAP_REQUIRE_MSG(v.size() == 1,
                         "recv_value: expected exactly one element ("
                             << sizeof(T) << " bytes) from source " << source
                             << " tag " << tag << ", got " << v.size()
                             << " elements (" << v.size() * sizeof(T)
                             << " bytes)");
    return v.front();
  }

  // ---- collectives ------------------------------------------------------
  // Every rank of the runtime must call each collective in the same order.
  void barrier();

  /// Binomial-tree broadcast; on non-root ranks `data` is replaced.
  void bcast_bytes(int root, std::vector<std::byte>& data);

  template <typename T>
  void bcast(int root, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes;
    if (rank_ == root) bytes = to_byte_vector(std::span<const T>(data));
    bcast_bytes(root, bytes);
    if (rank_ != root) data = from_bytes<T>(bytes);
  }
  template <typename T>
  [[nodiscard]] T bcast_value(int root, T value) {
    std::vector<T> v{value};
    bcast(root, v);
    return v.front();
  }

  /// Gather variable-size byte buffers on `root` (empty elsewhere).
  [[nodiscard]] std::vector<std::vector<std::byte>> gatherv_bytes(
      int root, std::span<const std::byte> mine);

  /// All ranks obtain every rank's buffer, indexed by rank.
  [[nodiscard]] std::vector<std::vector<std::byte>> allgatherv_bytes(
      std::span<const std::byte> mine);

  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> allgatherv(const std::vector<T>& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = allgatherv_bytes(as_bytes(std::span<const T>(mine)));
    std::vector<std::vector<T>> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) out[r] = from_bytes<T>(raw[r]);
    return out;
  }

  /// Fixed-size-per-rank allgather of single values.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather_value(const T& value) {
    auto nested = allgatherv(std::vector<T>{value});
    std::vector<T> flat;
    flat.reserve(nested.size());
    for (std::size_t r = 0; r < nested.size(); ++r) {
      DINFOMAP_REQUIRE_MSG(nested[r].size() == 1,
                           "allgather_value: rank "
                               << r << " contributed " << nested[r].size()
                               << " elements (" << sizeof(T)
                               << " bytes each), expected exactly 1");
      flat.push_back(nested[r].front());
    }
    return flat;
  }

  /// Scatter per-rank buffers from `root`; returns this rank's slice.
  /// `slices` is read on the root only.
  [[nodiscard]] std::vector<std::byte> scatterv_bytes(
      int root, const std::vector<std::vector<std::byte>>& slices);

  template <typename T>
  [[nodiscard]] std::vector<T> scatterv(int root,
                                        const std::vector<std::vector<T>>& slices) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::vector<std::byte>> raw;
    if (rank_ == root) {
      raw.resize(slices.size());
      for (std::size_t r = 0; r < slices.size(); ++r)
        raw[r] = to_byte_vector(std::span<const T>(slices[r]));
    }
    return from_bytes<T>(scatterv_bytes(root, raw));
  }

  /// Typed gather of variable-size vectors on `root` (empty elsewhere).
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> gatherv(int root,
                                                    const std::vector<T>& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = gatherv_bytes(root, as_bytes(std::span<const T>(mine)));
    std::vector<std::vector<T>> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) out[r] = from_bytes<T>(raw[r]);
    return out;
  }

  /// Reduce single values to `root` (rank-ordered, deterministic); other
  /// ranks receive T{}.
  template <typename T>
  [[nodiscard]] T reduce_value(int root, const T& value, ReduceOp op) {
    auto gathered = gatherv(root, std::vector<T>{value});
    if (rank_ != root) return T{};
    T acc = gathered.front().front();
    for (std::size_t r = 1; r < gathered.size(); ++r)
      acc = apply(acc, gathered[r].front(), op);
    return acc;
  }

  /// Personalized all-to-all: `out[r]` goes to rank r; returns what each rank
  /// sent to us, indexed by source rank.
  [[nodiscard]] std::vector<std::vector<std::byte>> alltoallv_bytes(
      const std::vector<std::vector<std::byte>>& out);

  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    DINFOMAP_REQUIRE_MSG(static_cast<int>(out.size()) == size_,
                         "alltoallv: need one outbox per rank");
    std::vector<std::vector<std::byte>> raw(out.size());
    for (std::size_t r = 0; r < out.size(); ++r)
      raw[r] = to_byte_vector(std::span<const T>(out[r]));
    auto in = alltoallv_bytes(raw);
    std::vector<std::vector<T>> typed(in.size());
    for (std::size_t r = 0; r < in.size(); ++r) typed[r] = from_bytes<T>(in[r]);
    return typed;
  }

  /// Coalesced personalized all-to-all over heterogeneous record streams:
  /// the per-destination frame concatenates every stream behind a u64
  /// element count ([n1][T1 × n1][n2][T2 × n2]…), so K logically separate
  /// alltoallv rounds ride one collective — one barrier's worth of latency
  /// and one set of per-message framing instead of K. Returns the unpacked
  /// inboxes as a tuple of per-source vectors, in stream order.
  template <typename... Ts>
  [[nodiscard]] std::tuple<std::vector<std::vector<Ts>>...> alltoallv_packed(
      const std::vector<std::vector<Ts>>&... out) {
    static_assert(sizeof...(Ts) >= 2, "use alltoallv for a single stream");
    static_assert((std::is_trivially_copyable_v<Ts> && ...));
    const auto check_shape = [this](std::size_t boxes) {
      DINFOMAP_REQUIRE_MSG(static_cast<int>(boxes) == size_,
                           "alltoallv_packed: need one outbox per rank");
    };
    (check_shape(out.size()), ...);
    counters_.packed_streams += sizeof...(Ts);
    std::vector<std::vector<std::byte>> raw(static_cast<std::size_t>(size_));
    for (std::size_t r = 0; r < raw.size(); ++r)
      (pack_stream(raw[r], std::span<const Ts>(out[r])), ...);
    auto in = alltoallv_bytes(raw);
    std::tuple<std::vector<std::vector<Ts>>...> result;
    std::apply([&](auto&... boxes) { (boxes.resize(in.size()), ...); }, result);
    for (std::size_t r = 0; r < in.size(); ++r) {
      std::size_t cursor = 0;
      std::apply([&](auto&... boxes) { (unpack_stream(in[r], cursor, boxes[r]), ...); },
                 result);
      DINFOMAP_REQUIRE_MSG(cursor == in[r].size(),
                           "alltoallv_packed: trailing bytes in frame from rank "
                               << r);
    }
    return result;
  }

  /// Allreduce of a single value with a built-in op. Reduction order is
  /// rank order on every rank, so floating-point results are deterministic
  /// and identical everywhere.
  template <typename T>
  [[nodiscard]] T allreduce(T value, ReduceOp op) {
    auto all = allgather_value(value);
    T acc = all.front();
    for (std::size_t i = 1; i < all.size(); ++i) acc = apply(acc, all[i], op);
    return acc;
  }

  /// Allreduce over per-element vectors (all ranks contribute equal length).
  template <typename T>
  [[nodiscard]] std::vector<T> allreduce(const std::vector<T>& values, ReduceOp op) {
    auto all = allgatherv(values);
    std::vector<T> acc = all.front();
    for (std::size_t r = 1; r < all.size(); ++r) {
      DINFOMAP_REQUIRE_MSG(all[r].size() == acc.size(),
                           "vector allreduce: length mismatch across ranks");
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = apply(acc[i], all[r][i], op);
    }
    return acc;
  }

  // ---- counters ----------------------------------------------------------
  [[nodiscard]] const CommCounters& counters() const { return counters_; }
  CommCounters& counters() { return counters_; }

  // ---- flight recorder ---------------------------------------------------
  /// Attach this rank's metrics registry; transport sends then feed the
  /// `comm.msg_bytes` message-size histogram. Pass nullptr to detach.
  /// Observability only — never alters what is sent or when.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Attach this rank's trace track; transport sends/recvs then stamp flow
  /// events (message arrows), blocking receives open "recv_wait" spans, and
  /// the leaf collectives stamp per-rank arrive/depart pairs (DESIGN.md §13).
  /// Pass nullptr to detach. Observability only — reads clocks and appends
  /// to the single-writer buffer; never touches payloads, tags, or timing.
  void set_trace(obs::TraceBuffer* trace);

 private:
  template <typename T>
  static std::span<const std::byte> as_bytes(std::span<const T> data) {
    return {reinterpret_cast<const std::byte*>(data.data()), data.size_bytes()};
  }
  template <typename T>
  static std::vector<std::byte> to_byte_vector(std::span<const T> data) {
    auto b = as_bytes(data);
    return {b.begin(), b.end()};
  }
  template <typename T>
  static std::vector<T> from_bytes(std::span<const std::byte> bytes) {
    static_assert(std::is_trivially_copyable_v<T>);
    DINFOMAP_REQUIRE_MSG(bytes.size() % sizeof(T) == 0,
                         "payload size not a multiple of element size");
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// One stream of a packed frame: u64 element count, then the raw elements.
  template <typename T>
  static void pack_stream(std::vector<std::byte>& buf, std::span<const T> data) {
    const std::uint64_t n = data.size();
    const auto* header = reinterpret_cast<const std::byte*>(&n);
    buf.insert(buf.end(), header, header + sizeof(n));
    auto b = as_bytes(data);
    buf.insert(buf.end(), b.begin(), b.end());
  }
  template <typename T>
  static void unpack_stream(const std::vector<std::byte>& buf,
                            std::size_t& cursor, std::vector<T>& out) {
    DINFOMAP_REQUIRE_MSG(cursor + sizeof(std::uint64_t) <= buf.size(),
                         "alltoallv_packed: truncated stream header");
    std::uint64_t n = 0;
    std::memcpy(&n, buf.data() + cursor, sizeof(n));
    cursor += sizeof(n);
    const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(T);
    DINFOMAP_REQUIRE_MSG(cursor + bytes <= buf.size(),
                         "alltoallv_packed: truncated stream payload");
    out.resize(static_cast<std::size_t>(n));
    if (n != 0) std::memcpy(out.data(), buf.data() + cursor, bytes);
    cursor += bytes;
  }

  template <typename T>
  static T apply(T a, T b, ReduceOp op) {
    switch (op) {
      case ReduceOp::kSum: return a + b;
      case ReduceOp::kMin: return b < a ? b : a;
      case ReduceOp::kMax: return a < b ? b : a;
      case ReduceOp::kLogicalAnd: return static_cast<T>(a && b);
      case ReduceOp::kLogicalOr: return static_cast<T>(a || b);
    }
    DINFOMAP_REQUIRE_MSG(false, "unknown ReduceOp");
    return a;
  }

  /// Transport-level send used by both user sends and collectives.
  void transport_send(int dest, int tag, std::span<const std::byte> data,
                      bool collective);
  [[nodiscard]] Message transport_recv(int source, int tag);
  /// Receive loop used when fault injection is active: seq dedup, checksum
  /// verification, timeout-driven retransmit pulls with bounded retries.
  /// Throws CommFault when the budget is exhausted or a corrupt frame's
  /// pristine copy has left the send log.
  [[nodiscard]] Message recv_with_recovery(int source, int tag);

  /// Next reserved tag for a collective step (same sequence on all ranks).
  int next_collective_tag();

  Transport* transport_;
  int rank_;
  int size_;
  /// Frames already consumed — the dedup filter and gap-detection input under
  /// fault injection (see transport.hpp).
  ConsumedFrames consumed_;
  std::uint64_t collective_seq_ = 0;
  CommCounters counters_;
  /// Resolved once by set_metrics so the send path pays one null check.
  obs::Histogram* msg_bytes_hist_ = nullptr;
  /// This rank's trace track (null when tracing is off); every
  /// instrumentation site below is a single null check.
  obs::TraceBuffer* trace_ = nullptr;
  /// Flow-event ordinals, only touched while tracing: the nth send on a
  /// (dest, tag) channel pairs with the nth consumed receive on the matching
  /// (source, tag) channel (consumption is in send order per channel both
  /// fault-free and under recovery — see trace.hpp). std::map keeps lookups
  /// deterministic and dlint-clean; this is never on the untraced hot path.
  std::map<std::pair<int, int>, std::uint64_t> send_ordinals_;
  std::map<std::pair<int, int>, std::uint64_t> recv_ordinals_;
};

}  // namespace dinfomap::comm
