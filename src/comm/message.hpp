// Wire-level message representation for the comm substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dinfomap::comm {

/// Matches MPI_ANY_SOURCE semantics in Mailbox::recv.
inline constexpr int kAnySource = -1;

/// Tags at or above this value are reserved for collectives; user code must
/// stay below (checked in Comm::send/recv).
inline constexpr int kCollectiveTagBase = 1 << 30;

/// One in-flight message: source rank, tag, and an opaque payload, framed
/// with the recovery header the fault-injection layer needs. `seq` numbers
/// frames per (source, dest) channel so receivers can drop duplicates and
/// restore sender order under reordering; `tag_seq` is the frame's ordinal
/// among same-tag frames on that channel (0-based), the socket backend's
/// local gap detector (the receiver knows a frame is early when its tag_seq
/// exceeds the count of same-(source, tag) frames it has consumed);
/// `checksum` covers header + payload (comm::frame_checksum) so corruption
/// is detected rather than consumed. All three are written only when fault
/// injection is active — the fault-free transport neither computes nor
/// verifies them.
struct Message {
  int source = 0;
  int tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t tag_seq = 0;
  std::uint64_t checksum = 0;
  std::vector<std::byte> payload;
};

}  // namespace dinfomap::comm
