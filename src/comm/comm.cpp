#include "comm/comm.hpp"

#include <cstring>

#include "comm/runtime.hpp"
#include "obs/metrics.hpp"

namespace dinfomap::comm {

namespace {
/// Collective tags cycle through a window above kCollectiveTagBase. Every
/// transport message of a collective step is consumed within that step, so a
/// window of 2^20 steps is unreachable by any stale message.
constexpr std::uint64_t kCollectiveTagWindow = 1u << 20;
}  // namespace

void Comm::set_metrics(obs::MetricsRegistry* metrics) {
  msg_bytes_hist_ =
      metrics != nullptr ? &metrics->histogram("comm.msg_bytes") : nullptr;
}

void Comm::transport_send(int dest, int tag, std::span<const std::byte> data,
                          bool collective) {
  DINFOMAP_REQUIRE_MSG(dest >= 0 && dest < size_, "send: destination out of range");
  if (dest != rank_) {
    if (msg_bytes_hist_ != nullptr) msg_bytes_hist_->observe(data.size());
    // Self-delivery is a local copy in any real transport; only remote
    // traffic counts toward communication volume.
    if (collective) {
      counters_.collective_messages += 1;
      counters_.collective_bytes += data.size();
    } else {
      counters_.p2p_messages += 1;
      counters_.p2p_bytes += data.size();
    }
  }
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.payload.assign(data.begin(), data.end());
  runtime_->maybe_delay();
  runtime_->mailbox(dest).deliver(std::move(m));
}

Message Comm::transport_recv(int source, int tag) {
  return runtime_->mailbox(rank_).recv(source, tag);
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  DINFOMAP_REQUIRE_MSG(tag >= 0 && tag < kCollectiveTagBase,
                       "user tags must lie below kCollectiveTagBase");
  transport_send(dest, tag, data, /*collective=*/false);
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag) {
  DINFOMAP_REQUIRE_MSG(tag >= 0 && tag < kCollectiveTagBase,
                       "user tags must lie below kCollectiveTagBase");
  DINFOMAP_REQUIRE_MSG(source == kAnySource || (source >= 0 && source < size_),
                       "recv: source out of range");
  return transport_recv(source, tag).payload;
}

bool Comm::probe(int source, int tag) {
  return runtime_->mailbox(rank_).probe(source, tag);
}

int Comm::next_collective_tag() {
  const auto seq = collective_seq_++ % kCollectiveTagWindow;
  counters_.collective_calls += 1;
  return kCollectiveTagBase + static_cast<int>(seq);
}

void Comm::barrier() {
  // Dissemination barrier: ceil(log2 p) rounds; in round k, rank r signals
  // (r + 2^k) mod p and waits for (r - 2^k) mod p. All 2^k are distinct and
  // < p, so each round's partner is unique and one tag suffices.
  const int tag = next_collective_tag();
  if (size_ == 1) return;
  for (int shift = 1; shift < size_; shift <<= 1) {
    const int to = (rank_ + shift) % size_;
    const int from = (rank_ - shift % size_ + size_) % size_;
    transport_send(to, tag, {}, /*collective=*/true);
    (void)transport_recv(from, tag);
  }
}

void Comm::bcast_bytes(int root, std::vector<std::byte>& data) {
  DINFOMAP_REQUIRE_MSG(root >= 0 && root < size_, "bcast: root out of range");
  const int tag = next_collective_tag();
  if (size_ == 1) return;
  const int vrank = (rank_ - root + size_) % size_;
  // Receive from parent (all non-root ranks).
  int mask = 1;
  while (mask < size_) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % size_;
      data = transport_recv(parent, tag).payload;
      break;
    }
    mask <<= 1;
  }
  // Forward to children in decreasing subtree order.
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & (mask - 1)) == 0 && (vrank & mask) == 0 && vrank + mask < size_) {
      const int child = (vrank + mask + root) % size_;
      transport_send(child, tag, data, /*collective=*/true);
    }
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::gatherv_bytes(
    int root, std::span<const std::byte> mine) {
  DINFOMAP_REQUIRE_MSG(root >= 0 && root < size_, "gatherv: root out of range");
  const int tag = next_collective_tag();
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(size_);
    out[root].assign(mine.begin(), mine.end());
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      out[r] = transport_recv(r, tag).payload;
    }
  } else {
    transport_send(root, tag, mine, /*collective=*/true);
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgatherv_bytes(
    std::span<const std::byte> mine) {
  // gather to rank 0, then broadcast a framed concatenation.
  auto gathered = gatherv_bytes(0, mine);
  std::vector<std::byte> frame;
  if (rank_ == 0) {
    std::vector<std::uint64_t> sizes(size_);
    std::size_t total = 0;
    for (int r = 0; r < size_; ++r) {
      sizes[r] = gathered[r].size();
      total += gathered[r].size();
    }
    frame.resize(sizeof(std::uint64_t) * size_ + total);
    std::memcpy(frame.data(), sizes.data(), sizeof(std::uint64_t) * size_);
    std::size_t off = sizeof(std::uint64_t) * size_;
    for (int r = 0; r < size_; ++r) {
      if (!gathered[r].empty())
        std::memcpy(frame.data() + off, gathered[r].data(), gathered[r].size());
      off += gathered[r].size();
    }
  }
  bcast_bytes(0, frame);
  // Unpack.
  std::vector<std::vector<std::byte>> out(size_);
  DINFOMAP_REQUIRE(frame.size() >= sizeof(std::uint64_t) * size_);
  std::vector<std::uint64_t> sizes(size_);
  std::memcpy(sizes.data(), frame.data(), sizeof(std::uint64_t) * size_);
  std::size_t off = sizeof(std::uint64_t) * size_;
  for (int r = 0; r < size_; ++r) {
    DINFOMAP_REQUIRE(off + sizes[r] <= frame.size());
    out[r].assign(frame.begin() + static_cast<std::ptrdiff_t>(off),
                  frame.begin() + static_cast<std::ptrdiff_t>(off + sizes[r]));
    off += sizes[r];
  }
  return out;
}

std::vector<std::byte> Comm::scatterv_bytes(
    int root, const std::vector<std::vector<std::byte>>& slices) {
  DINFOMAP_REQUIRE_MSG(root >= 0 && root < size_, "scatterv: root out of range");
  const int tag = next_collective_tag();
  if (rank_ == root) {
    DINFOMAP_REQUIRE_MSG(static_cast<int>(slices.size()) == size_,
                         "scatterv: need one slice per rank");
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      transport_send(r, tag, slices[r], /*collective=*/true);
    }
    return slices[root];
  }
  return transport_recv(root, tag).payload;
}

std::vector<std::vector<std::byte>> Comm::alltoallv_bytes(
    const std::vector<std::vector<std::byte>>& out) {
  DINFOMAP_REQUIRE_MSG(static_cast<int>(out.size()) == size_,
                       "alltoallv: need one outbox per rank");
  const int tag = next_collective_tag();
  std::vector<std::vector<std::byte>> in(size_);
  in[rank_] = out[rank_];
  for (int off = 1; off < size_; ++off) {
    const int dest = (rank_ + off) % size_;
    transport_send(dest, tag, out[dest], /*collective=*/true);
  }
  for (int off = 1; off < size_; ++off) {
    const int src = (rank_ - off + size_) % size_;
    in[src] = transport_recv(src, tag).payload;
  }
  return in;
}

}  // namespace dinfomap::comm
