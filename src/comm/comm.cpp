#include "comm/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dinfomap::comm {

namespace {
/// Collective tags cycle through a window above kCollectiveTagBase. Every
/// transport message of a collective step is consumed within that step, so a
/// window of 2^20 steps is unreachable by any stale message.
constexpr std::uint64_t kCollectiveTagWindow = 1u << 20;

/// RAII arrive/depart pair around a leaf collective's body. Null-buffer
/// tolerant like SpanScope; the tag identifies the collective instance across
/// ranks (next_collective_tag yields the same sequence everywhere).
class CollectiveScope {
 public:
  CollectiveScope(obs::TraceBuffer* trace, const char* op, int tag)
      : trace_(trace), op_(op), tag_(tag) {
    if (trace_ != nullptr) trace_->collective_arrive(op_, tag_);
  }
  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;
  ~CollectiveScope() {
    if (trace_ != nullptr) trace_->collective_depart(op_, tag_);
  }

 private:
  obs::TraceBuffer* trace_;
  const char* op_;
  int tag_;
};
}  // namespace

void Comm::set_metrics(obs::MetricsRegistry* metrics) {
  msg_bytes_hist_ =
      metrics != nullptr ? &metrics->histogram("comm.msg_bytes") : nullptr;
}

void Comm::set_trace(obs::TraceBuffer* trace) {
  trace_ = trace != nullptr && trace->enabled() ? trace : nullptr;
}

void Comm::transport_send(int dest, int tag, std::span<const std::byte> data,
                          bool collective) {
  DINFOMAP_REQUIRE_MSG(dest >= 0 && dest < size_, "send: destination out of range");
  if (dest != rank_) {
    if (msg_bytes_hist_ != nullptr) msg_bytes_hist_->observe(data.size());
    // Self-delivery is a local copy in any real transport; only remote
    // traffic counts toward communication volume.
    if (collective) {
      counters_.collective_messages += 1;
      counters_.collective_bytes += data.size();
    } else {
      counters_.p2p_messages += 1;
      counters_.p2p_bytes += data.size();
    }
  }
  // Stamp the flow start before handing off, so the send timestamp bounds
  // the matching receive's from below. Self-deliveries are same-track and
  // carry no cross-rank dependency, so they get no arrow.
  if (trace_ != nullptr && dest != rank_)
    trace_->flow_send(dest, tag, send_ordinals_[{dest, tag}]++);
  // The transport frames the payload (seq + tag ordinal + checksum when
  // fault injection is on), rolls the fault dice, and puts it on the wire.
  transport_->send_frame(dest, tag, data);
}

Message Comm::transport_recv(int source, int tag) {
  if (transport_->faults_enabled()) return recv_with_recovery(source, tag);
  // Fault-free path: plain blocking receive. The waiting flag still gets set
  // so a watchdog (if armed) can tell blocked-in-recv from frozen-elsewhere.
  transport_->set_waiting(true);
  struct WaitClear {
    Transport* t;
    ~WaitClear() { t->set_waiting(false); }
  } clear{transport_};
  Message m;
  {
    obs::SpanScope wait_span(trace_, "recv_wait");
    m = transport_->blocking_recv(source, tag);
  }
  transport_->note_progress();
  if (trace_ != nullptr && m.source != rank_)
    trace_->flow_recv(m.source, m.tag, recv_ordinals_[{m.source, m.tag}]++);
  return m;
}

Message Comm::recv_with_recovery(int source, int tag) {
  const TransportTuning& opt = transport_->tuning();
  auto backoff =
      std::chrono::microseconds(std::max(1u, opt.retry_backoff_us));
  constexpr auto kBackoffCap = std::chrono::microseconds(20'000);
  int retries = 0;
  // The whole loop counts as "blocked in recv" for the watchdog — including
  // the brief spells between timeout and retransmit request.
  transport_->set_waiting(true);
  struct WaitClear {
    Transport* t;
    ~WaitClear() { t->set_waiting(false); }
  } clear{transport_};
  // The recovery loop's dedup/checksum work is negligible next to its
  // blocking waits, so the whole loop reads as wait time in the profile.
  obs::SpanScope wait_span(trace_, "recv_wait");

  for (;;) {
    auto msg = transport_->timed_recv(source, tag, backoff,
                                      /*by_min_seq=*/true);
    if (msg.has_value()) {
      if (msg->source != rank_) {
        if (consumed_.contains(*msg)) {
          counters_.dup_frames_dropped += 1;  // duplicate or stale retransmit
          continue;
        }
        // Gap check: min-seq matching alone cannot see a *missing* frame. If
        // an earlier unconsumed frame of this (channel, tag) exists, it was
        // dropped or is still in flight — requeue the candidate, pull the
        // older frame, and charge the budget.
        if (transport_->gap_before(*msg, consumed_)) {
          const int gap_source = msg->source;
          transport_->requeue(std::move(*msg));
          if (transport_->request_retransmit(gap_source, tag, consumed_) ==
              RetransmitOutcome::kRedelivered) {
            counters_.retransmit_requests += 1;
            counters_.retransmits += 1;
          }
          if (++retries > opt.max_recv_retries) {
            throw CommFault(
                "recv: retry budget exhausted (" +
                    std::to_string(opt.max_recv_retries) +
                    " retransmit requests) closing a sequence gap from "
                    "source " +
                    std::to_string(gap_source) + " tag " +
                    std::to_string(tag),
                gap_source, tag);
          }
          continue;
        }
        const auto expect =
            frame_checksum(msg->source, msg->tag, msg->seq,
                           msg->payload.data(), msg->payload.size());
        if (expect != msg->checksum) {
          counters_.checksum_failures += 1;
          if (!transport_->request_retransmit_seq(msg->source, msg->seq)) {
            throw CommFault(
                "recv: corrupt frame (source " + std::to_string(msg->source) +
                    ", tag " + std::to_string(tag) + ", seq " +
                    std::to_string(msg->seq) +
                    ") and its pristine copy already left the send log — "
                    "unrecoverable",
                msg->source, tag);
          }
          counters_.retransmits += 1;
          continue;  // the pristine copy is on its way
        }
        consumed_.note(*msg);
      }
      transport_->note_progress();
      // Only a consumed frame gets a flow stamp — dedup-dropped duplicates
      // and requeued gap candidates never reach this point, so the recv
      // ordinal stays aligned with the sender's per-(channel, tag) ordinal.
      if (trace_ != nullptr && msg->source != rank_)
        trace_->flow_recv(msg->source, msg->tag,
                          recv_ordinals_[{msg->source, msg->tag}]++);
      return std::move(*msg);
    }

    // Timed out. Ask the send log; only *provable* loss charges the budget —
    // a sender that simply hasn't sent yet is waited on patiently (liveness
    // is the watchdog's job, not ours).
    switch (transport_->request_retransmit(source, tag, consumed_)) {
      case RetransmitOutcome::kRedelivered:
        counters_.retransmit_requests += 1;
        counters_.retransmits += 1;
        ++retries;
        break;
      case RetransmitOutcome::kNoneEvicted:
        counters_.retransmit_requests += 1;
        ++retries;
        break;
      case RetransmitOutcome::kNoneSafe:
        break;
    }
    if (retries > opt.max_recv_retries) {
      throw CommFault("recv: retry budget exhausted (" +
                          std::to_string(opt.max_recv_retries) +
                          " retransmit requests) waiting on source " +
                          std::to_string(source) + " tag " +
                          std::to_string(tag),
                      source, tag);
    }
    backoff = std::min(backoff * 2, kBackoffCap);
  }
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  DINFOMAP_REQUIRE_MSG(tag >= 0 && tag < kCollectiveTagBase,
                       "user tags must lie below kCollectiveTagBase");
  transport_send(dest, tag, data, /*collective=*/false);
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag) {
  DINFOMAP_REQUIRE_MSG(tag >= 0 && tag < kCollectiveTagBase,
                       "user tags must lie below kCollectiveTagBase");
  DINFOMAP_REQUIRE_MSG(source == kAnySource || (source >= 0 && source < size_),
                       "recv: source out of range");
  return transport_recv(source, tag).payload;
}

bool Comm::probe(int source, int tag) {
  return transport_->probe(source, tag);
}

int Comm::next_collective_tag() {
  const auto seq = collective_seq_++ % kCollectiveTagWindow;
  counters_.collective_calls += 1;
  return kCollectiveTagBase + static_cast<int>(seq);
}

void Comm::barrier() {
  // Dissemination barrier: ceil(log2 p) rounds; in round k, rank r signals
  // (r + 2^k) mod p and waits for (r - 2^k) mod p. All 2^k are distinct and
  // < p, so each round's partner is unique and one tag suffices.
  const int tag = next_collective_tag();
  CollectiveScope scope(trace_, "barrier", tag);
  if (size_ == 1) return;
  for (int shift = 1; shift < size_; shift <<= 1) {
    const int to = (rank_ + shift) % size_;
    const int from = (rank_ - shift % size_ + size_) % size_;
    transport_send(to, tag, {}, /*collective=*/true);
    (void)transport_recv(from, tag);
  }
}

void Comm::bcast_bytes(int root, std::vector<std::byte>& data) {
  DINFOMAP_REQUIRE_MSG(root >= 0 && root < size_, "bcast: root out of range");
  const int tag = next_collective_tag();
  CollectiveScope scope(trace_, "bcast", tag);
  if (size_ == 1) return;
  const int vrank = (rank_ - root + size_) % size_;
  // Receive from parent (all non-root ranks).
  int mask = 1;
  while (mask < size_) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % size_;
      data = transport_recv(parent, tag).payload;
      break;
    }
    mask <<= 1;
  }
  // Forward to children in decreasing subtree order.
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & (mask - 1)) == 0 && (vrank & mask) == 0 && vrank + mask < size_) {
      const int child = (vrank + mask + root) % size_;
      transport_send(child, tag, data, /*collective=*/true);
    }
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::gatherv_bytes(
    int root, std::span<const std::byte> mine) {
  DINFOMAP_REQUIRE_MSG(root >= 0 && root < size_, "gatherv: root out of range");
  const int tag = next_collective_tag();
  CollectiveScope scope(trace_, "gatherv", tag);
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(size_);
    out[root].assign(mine.begin(), mine.end());
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      out[r] = transport_recv(r, tag).payload;
    }
  } else {
    transport_send(root, tag, mine, /*collective=*/true);
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgatherv_bytes(
    std::span<const std::byte> mine) {
  // gather to rank 0, then broadcast a framed concatenation.
  auto gathered = gatherv_bytes(0, mine);
  std::vector<std::byte> frame;
  if (rank_ == 0) {
    std::vector<std::uint64_t> sizes(size_);
    std::size_t total = 0;
    for (int r = 0; r < size_; ++r) {
      sizes[r] = gathered[r].size();
      total += gathered[r].size();
    }
    frame.resize(sizeof(std::uint64_t) * size_ + total);
    std::memcpy(frame.data(), sizes.data(), sizeof(std::uint64_t) * size_);
    std::size_t off = sizeof(std::uint64_t) * size_;
    for (int r = 0; r < size_; ++r) {
      if (!gathered[r].empty())
        std::memcpy(frame.data() + off, gathered[r].data(), gathered[r].size());
      off += gathered[r].size();
    }
  }
  bcast_bytes(0, frame);
  // Unpack.
  std::vector<std::vector<std::byte>> out(size_);
  DINFOMAP_REQUIRE(frame.size() >= sizeof(std::uint64_t) * size_);
  std::vector<std::uint64_t> sizes(size_);
  std::memcpy(sizes.data(), frame.data(), sizeof(std::uint64_t) * size_);
  std::size_t off = sizeof(std::uint64_t) * size_;
  for (int r = 0; r < size_; ++r) {
    DINFOMAP_REQUIRE(off + sizes[r] <= frame.size());
    out[r].assign(frame.begin() + static_cast<std::ptrdiff_t>(off),
                  frame.begin() + static_cast<std::ptrdiff_t>(off + sizes[r]));
    off += sizes[r];
  }
  return out;
}

std::vector<std::byte> Comm::scatterv_bytes(
    int root, const std::vector<std::vector<std::byte>>& slices) {
  DINFOMAP_REQUIRE_MSG(root >= 0 && root < size_, "scatterv: root out of range");
  const int tag = next_collective_tag();
  CollectiveScope scope(trace_, "scatterv", tag);
  if (rank_ == root) {
    DINFOMAP_REQUIRE_MSG(static_cast<int>(slices.size()) == size_,
                         "scatterv: need one slice per rank");
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      transport_send(r, tag, slices[r], /*collective=*/true);
    }
    return slices[root];
  }
  return transport_recv(root, tag).payload;
}

std::vector<std::vector<std::byte>> Comm::alltoallv_bytes(
    const std::vector<std::vector<std::byte>>& out) {
  DINFOMAP_REQUIRE_MSG(static_cast<int>(out.size()) == size_,
                       "alltoallv: need one outbox per rank");
  const int tag = next_collective_tag();
  // Instrumenting only the leaf primitives (barrier, bcast, gatherv,
  // scatterv, alltoallv) keeps the wait attribution double-count-free:
  // allgatherv/allreduce/alltoallv_packed decompose into these.
  CollectiveScope scope(trace_, "alltoallv", tag);
  std::vector<std::vector<std::byte>> in(size_);
  in[rank_] = out[rank_];
  for (int off = 1; off < size_; ++off) {
    const int dest = (rank_ + off) % size_;
    transport_send(dest, tag, out[dest], /*collective=*/true);
  }
  for (int off = 1; off < size_; ++off) {
    const int src = (rank_ - off + size_) % size_;
    in[src] = transport_recv(src, tag).payload;
  }
  return in;
}

}  // namespace dinfomap::comm
