// Per-rank inbox with (source, tag) matching — the delivery substrate under
// the MPI-like Comm API.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>

#include "comm/message.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dinfomap::comm {

/// Thrown out of blocked receives when the runtime aborts (a peer rank threw).
class CommAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// MPSC queue of messages addressed to one rank. Receives match on
/// (source, tag) like MPI two-sided semantics; non-matching messages stay
/// queued in arrival order.
class Mailbox {
 public:
  /// Enqueue (called by the sender's thread). Throws CommAborted if poisoned.
  void deliver(Message message) DI_EXCLUDES(mutex_);

  /// Block until a message matching (source|kAnySource, tag) arrives; remove
  /// and return it. Throws CommAborted if the runtime is shutting down.
  Message recv(int source, int tag) DI_EXCLUDES(mutex_);

  /// Timed variant for the recovery layer: wait up to `timeout` for a match,
  /// returning nullopt on expiry so the caller can request a retransmit. With
  /// `by_min_seq`, the *lowest-seq* queued match is taken instead of the
  /// first — this restores per-channel sender order when the fault plan
  /// reorders deliveries. Throws CommAborted if poisoned.
  std::optional<Message> try_recv_for(int source, int tag,
                                      std::chrono::microseconds timeout,
                                      bool by_min_seq) DI_EXCLUDES(mutex_);

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(int source, int tag) DI_EXCLUDES(mutex_);

  /// Wake all blocked receivers with CommAborted; subsequent deliver/recv throw.
  void poison() DI_EXCLUDES(mutex_);

  /// Number of queued (undelivered) messages — used by shutdown diagnostics.
  std::size_t pending() DI_EXCLUDES(mutex_);

  /// Largest queue depth ever observed (flight-recorder backlog signal: a
  /// rank whose inbox grows deep is the straggler its peers wait on).
  std::size_t depth_high_water() DI_EXCLUDES(mutex_);
  /// Total messages ever delivered into this mailbox.
  std::uint64_t delivered() DI_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<Message> queue_ DI_GUARDED_BY(mutex_);
  bool poisoned_ DI_GUARDED_BY(mutex_) = false;
  std::size_t depth_high_water_ DI_GUARDED_BY(mutex_) = 0;
  std::uint64_t delivered_ DI_GUARDED_BY(mutex_) = 0;
};

}  // namespace dinfomap::comm
