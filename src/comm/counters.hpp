// Per-rank communication counters. Exact regardless of transport, so the
// perf model (src/perf) can reason about communication volume the way the
// paper reasons about ghost-vertex counts.
#pragma once

#include <cstdint>

namespace dinfomap::comm {

struct CommCounters {
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t collective_messages = 0;  ///< transport messages inside collectives
  std::uint64_t collective_bytes = 0;
  std::uint64_t collective_calls = 0;     ///< user-level collective invocations
  std::uint64_t packed_streams = 0;       ///< typed streams coalesced into
                                          ///< packed collectives (alltoallv_packed);
                                          ///< streams ÷ calls ≈ collectives saved

  // Receiver-side recovery events (nonzero only under fault injection; the
  // run report uses them to prove a fault plan actually fired and was healed).
  std::uint64_t retransmit_requests = 0;  ///< timeout-driven send-log pulls
  std::uint64_t retransmits = 0;          ///< frames re-delivered on our behalf
  std::uint64_t dup_frames_dropped = 0;   ///< frames discarded by seq dedup
  std::uint64_t checksum_failures = 0;    ///< corrupt frames detected

  void reset() { *this = CommCounters{}; }

  CommCounters& operator+=(const CommCounters& other) {
    p2p_messages += other.p2p_messages;
    p2p_bytes += other.p2p_bytes;
    collective_messages += other.collective_messages;
    collective_bytes += other.collective_bytes;
    collective_calls += other.collective_calls;
    packed_streams += other.packed_streams;
    retransmit_requests += other.retransmit_requests;
    retransmits += other.retransmits;
    dup_frames_dropped += other.dup_frames_dropped;
    checksum_failures += other.checksum_failures;
    return *this;
  }

  [[nodiscard]] std::uint64_t recovery_events() const {
    return retransmit_requests + retransmits + dup_frames_dropped +
           checksum_failures;
  }

  [[nodiscard]] std::uint64_t total_messages() const {
    return p2p_messages + collective_messages;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return p2p_bytes + collective_bytes;
  }
};

}  // namespace dinfomap::comm
