#include "comm/mailbox.hpp"

#include <algorithm>

#include "util/sched_point.hpp"

namespace dinfomap::comm {

namespace {
bool matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) && m.tag == tag;
}
}  // namespace

void Mailbox::deliver(Message message) {
  DI_SCHED_REGION("mailbox.deliver", this);
  {
    util::MutexLock lock(mutex_);
    if (poisoned_) throw CommAborted("deliver to poisoned mailbox");
    queue_.push_back(std::move(message));
    ++delivered_;
    if (queue_.size() > depth_high_water_) depth_high_water_ = queue_.size();
  }
#if defined(DINFOMAP_DCHECK)
  if (util::dcheck::mutation_enabled("mailbox.notify-one")) {
    // Seeded mutation for the dcheck harness: notify_one can hand the wakeup
    // to a receiver whose (source, tag) does not match the delivered message
    // — it re-waits, the matching receiver is never woken, and the channel
    // deadlocks. notify_all below is what makes the real code safe.
    cv_.notify_one();
    return;
  }
#endif
  cv_.notify_all();
}

Message Mailbox::recv(int source, int tag) {
  DI_SCHED_REGION("mailbox.recv", this);
  util::MutexLock lock(mutex_);
  for (;;) {
    if (poisoned_) throw CommAborted("recv aborted: runtime shut down");
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) { return matches(m, source, tag); });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    lock.wait(cv_);
  }
}

std::optional<Message> Mailbox::try_recv_for(int source, int tag,
                                             std::chrono::microseconds timeout,
                                             bool by_min_seq) {
  DI_SCHED_REGION("mailbox.try_recv_for", this);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::MutexLock lock(mutex_);
  for (;;) {
    if (poisoned_) throw CommAborted("recv aborted: runtime shut down");
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!matches(*it, source, tag)) continue;
      if (best == queue_.end() || (by_min_seq && it->seq < best->seq))
        best = it;
      if (!by_min_seq) break;
    }
    if (best != queue_.end()) {
      Message out = std::move(*best);
      queue_.erase(best);
      return out;
    }
    if (lock.wait_until(cv_, deadline) == std::cv_status::timeout) {
      if (poisoned_) throw CommAborted("recv aborted: runtime shut down");
      return std::nullopt;
    }
  }
}

bool Mailbox::probe(int source, int tag) {
  util::MutexLock lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, source, tag); });
}

void Mailbox::poison() {
  {
    util::MutexLock lock(mutex_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() {
  util::MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t Mailbox::depth_high_water() {
  util::MutexLock lock(mutex_);
  return depth_high_water_;
}

std::uint64_t Mailbox::delivered() {
  util::MutexLock lock(mutex_);
  return delivered_;
}

}  // namespace dinfomap::comm
