#include "comm/socket_transport.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_set>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace dinfomap::comm {

namespace {

// ---- wire format ----------------------------------------------------------
// 48-byte header + payload, native byte order (the mesh is same-host; a
// cross-host TCP variant would pin endianness here). `kind` discriminates
// data frames from the retransmit RPC and the shutdown handshake.
constexpr std::uint32_t kMagic = 0x64696d70;  // "dimp"

enum WireKind : std::uint8_t {
  kHello = 1,      ///< first frame on a connection; src = connecting rank
  kData = 2,       ///< an application frame (payload follows)
  kRetxTag = 3,    ///< RPC: redeliver lowest unconsumed seq for (me←you, tag);
                   ///< payload = consumed seqs (u64 each) on that channel
  kRetxSeq = 4,    ///< RPC: redeliver the exact frame `seq` (corruption repair)
  kRetxReply = 5,  ///< RPC verdict; seq field carries the encoded outcome
  kBye = 6,        ///< sender is done for good; no further requests will come
};

struct WireHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t kind = 0;
  std::uint8_t pad[3] = {0, 0, 0};
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t tag_seq = 0;
  std::uint64_t checksum = 0;
  std::uint64_t len = 0;
};
static_assert(sizeof(WireHeader) == 48, "wire header layout drifted");

// RetxReply outcome codes (WireHeader::seq of a kRetxReply).
constexpr std::uint64_t kReplyRedelivered = 0;
constexpr std::uint64_t kReplyNoneSafe = 1;
constexpr std::uint64_t kReplyNoneEvicted = 2;

/// Read exactly n bytes; false on EOF or error (both mean the peer is gone).
bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::byte*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && (errno == EINTR)) continue;
    return false;  // 0 = orderly EOF; <0 = reset/shutdown
  }
  return true;
}

/// Write exactly n bytes; MSG_NOSIGNAL so a dead peer yields EPIPE, not
/// SIGPIPE. False on any error.
bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(buf);
  while (n > 0) {
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void bind_unix(int fd, const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DINFOMAP_REQUIRE_MSG(path.size() < sizeof(addr.sun_path),
                       "socket path too long for AF_UNIX: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  DINFOMAP_REQUIRE_MSG(
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind(" << path << ") failed: " << std::strerror(errno));
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

std::string SocketTransport::socket_path(const std::string& dir, int rank) {
  return dir + "/" + std::to_string(rank) + ".sock";
}

SocketTransport::SocketTransport(int rank, int size,
                                 SocketTransportOptions options,
                                 TransportTuning tuning)
    : rank_(rank),
      size_(size),
      options_(std::move(options)),
      tuning_(tuning),
      faults_enabled_(tuning.faults.any()),
      fds_(static_cast<std::size_t>(size), -1),
      peer_eof_(static_cast<std::size_t>(size)),
      peer_bye_(static_cast<std::size_t>(size)) {
  DINFOMAP_REQUIRE_MSG(rank >= 0 && rank < size,
                       "socket transport: rank " << rank << " out of [0, "
                                                 << size << ")");
  validate_fault_plan(tuning_.faults, size);
  write_mutexes_.reserve(size);
  for (int r = 0; r < size; ++r)
    write_mutexes_.push_back(std::make_unique<util::Mutex>());
  if (faults_enabled_) {
    out_.reserve(size);
    for (int r = 0; r < size; ++r)
      out_.push_back(std::make_unique<OutChannel>());
  }
  try {
    connect_mesh(options_.connect_timeout_ms);
  } catch (...) {
    shutdown_and_join(/*linger=*/false);
    throw;
  }
  readers_.reserve(size);
  for (int s = 0; s < size; ++s) {
    if (s == rank_) continue;
    readers_.emplace_back([this, s] { reader_loop(s); });
  }
  wd_since_ = std::chrono::steady_clock::now();
}

SocketTransport::~SocketTransport() {
  shutdown_and_join(
      /*linger=*/!linger_abandoned_.load(std::memory_order_acquire));
}

void SocketTransport::connect_mesh(unsigned connect_timeout_ms) {
  using clock = std::chrono::steady_clock;
  // Everyone binds their listener first, then dials lower ranks; connects
  // complete against the kernel backlog, so nobody needs to interleave
  // accept() with connect() and the rendezvous cannot deadlock.
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DINFOMAP_REQUIRE_MSG(listen_fd_ >= 0,
                       "socket() failed: " << std::strerror(errno));
  bind_unix(listen_fd_, socket_path(options_.dir, rank_));
  DINFOMAP_REQUIRE_MSG(::listen(listen_fd_, size_) == 0,
                       "listen() failed: " << std::strerror(errno));

  const auto deadline =
      clock::now() + std::chrono::milliseconds(connect_timeout_ms);
  for (int s = 0; s < rank_; ++s) {
    int fd = -1;
    for (;;) {
      fd = connect_unix(socket_path(options_.dir, s));
      if (fd >= 0) break;
      if (clock::now() >= deadline)
        throw CommFault("socket transport: rank " + std::to_string(rank_) +
                            " could not reach rank " + std::to_string(s) +
                            " within " + std::to_string(connect_timeout_ms) +
                            " ms — worker never came up",
                        s, /*tag=*/-1, CommFault::Kind::kPeerExited);
      // dlint:allow(sleep-sync): connect retry backoff against a peer that
      // has not bound its socket yet; nothing to wait on until it exists
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    WireHeader hello;
    hello.kind = kHello;
    hello.src = rank_;
    DINFOMAP_REQUIRE_MSG(write_all(fd, &hello, sizeof(hello)),
                         "hello to rank " << s << " failed");
    fds_[static_cast<std::size_t>(s)] = fd;
  }
  for (int expected = size_ - 1 - rank_; expected > 0; --expected) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    DINFOMAP_REQUIRE_MSG(fd >= 0,
                         "accept() failed: " << std::strerror(errno));
    WireHeader hello;
    DINFOMAP_REQUIRE_MSG(
        read_exact(fd, &hello, sizeof(hello)) && hello.magic == kMagic &&
            hello.kind == kHello && hello.src > rank_ && hello.src < size_,
        "socket transport: bad hello on accepted connection");
    fds_[static_cast<std::size_t>(hello.src)] = fd;
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

// ---- send path ------------------------------------------------------------

bool SocketTransport::write_data_frame(int peer, const Message& m) {
  WireHeader h;
  h.kind = kData;
  h.src = m.source;
  h.tag = m.tag;
  h.seq = m.seq;
  h.tag_seq = m.tag_seq;
  h.checksum = m.checksum;
  h.len = m.payload.size();
  util::MutexLock lock(*write_mutexes_[static_cast<std::size_t>(peer)]);
  const int fd = fds_[static_cast<std::size_t>(peer)];
  if (fd < 0) return false;
  if (!write_all(fd, &h, sizeof(h))) return false;
  return m.payload.empty() ||
         write_all(fd, m.payload.data(), m.payload.size());
}

bool SocketTransport::write_control(int peer, std::uint8_t kind, int tag,
                                    std::uint64_t seq,
                                    std::span<const std::byte> payload) {
  WireHeader h;
  h.kind = kind;
  h.src = rank_;
  h.tag = tag;
  h.seq = seq;
  h.len = payload.size();
  util::MutexLock lock(*write_mutexes_[static_cast<std::size_t>(peer)]);
  const int fd = fds_[static_cast<std::size_t>(peer)];
  if (fd < 0) return false;
  if (!write_all(fd, &h, sizeof(h))) return false;
  return payload.empty() || write_all(fd, payload.data(), payload.size());
}

void SocketTransport::stall(int dest) {
  const FaultPlan& plan = tuning_.faults;
  if (faults_enabled_) {
    OutChannel& ch = out_channel(dest);
    util::MutexLock lock(ch.mutex);
    ch.injected.stalls += 1;
  }
  if (plan.stall_exits) {
    // Model a crash, not a hang: die without unwinding, exactly as a killed
    // worker would. Peers observe connection EOF → CommFault{kPeerExited}.
    LOG_WARN << "fault plan: rank " << rank_ << " exiting mid-send (crash)";
    std::_Exit(kStallExitCode);
  }
  LOG_WARN << "fault plan: rank " << rank_ << " stalling mid-send";
  while (!shutdown_.load(std::memory_order_acquire))
    // dlint:allow(sleep-sync): fault-plan stall — the hang is the scenario
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  throw CommAborted("stalled rank released by shutdown");
}

void SocketTransport::send_frame(int dest, int tag,
                                 std::span<const std::byte> data) {
  DINFOMAP_REQUIRE(dest >= 0 && dest < size_);
  note_progress();
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.payload.assign(data.begin(), data.end());

  if (dest == rank_) {
    // Self-delivery is a local copy in any real transport: no framing, no
    // fault dice — identical to the in-process backend.
    inbox_.deliver(std::move(m));
    return;
  }

  if (!faults_enabled_) {
    if (!write_data_frame(dest, m)) {
      peer_eof_[static_cast<std::size_t>(dest)].store(
          true, std::memory_order_release);
      throw CommFault("send: connection to rank " + std::to_string(dest) +
                          " is gone (peer exited)",
                      dest, tag, CommFault::Kind::kPeerExited);
    }
    return;
  }

  const FaultPlan& plan = tuning_.faults;
  const auto nsent = remote_sends_.fetch_add(1, std::memory_order_relaxed);
  if (rank_ == plan.stall_rank && nsent >= plan.stall_after_sends)
    stall(dest);  // never returns

  // Frames for the wire this call, in order — same construction as the
  // in-process backend's deliver(): sequence + dice under the channel lock,
  // write after it drops.
  std::vector<Message> out;
  {
    OutChannel& ch = out_channel(dest);
    util::MutexLock lock(ch.mutex);
    m.seq = ch.next_seq++;
    m.tag_seq = ch.tag_seq[tag]++;
    m.checksum = frame_checksum(rank_, tag, m.seq, m.payload.data(),
                                m.payload.size());
    ch.log.push_back(m);  // pristine copy, logged before any fault touches it
    while (ch.log.size() > tuning_.retransmit_window) {
      ch.log.pop_front();
      ch.evicted = true;
    }

    const FaultRoll roll = roll_fault(plan, rank_, dest, m.seq);

    const bool had_held = ch.holding;
    Message old_held;
    if (had_held) {
      old_held = std::move(ch.held);
      ch.holding = false;
    }

    switch (roll.action) {
      case FaultAction::kDrop:
        ch.injected.drops += 1;  // never written; the send log answers for it
        break;
      case FaultAction::kDuplicate:
        ch.injected.duplicates += 1;
        out.push_back(m);
        out.push_back(std::move(m));
        break;
      case FaultAction::kReorder:
        ch.injected.reorders += 1;
        ch.held = std::move(m);
        ch.holding = true;
        break;
      case FaultAction::kCorrupt:
        ch.injected.corruptions += 1;
        corrupt_frame(m, roll.mix);  // wire copy only; the log stays pristine
        out.push_back(std::move(m));
        break;
      case FaultAction::kNone:
        out.push_back(std::move(m));
        break;
    }
    if (had_held) out.push_back(std::move(old_held));
  }
  for (const Message& f : out) {
    if (!write_data_frame(dest, f)) {
      peer_eof_[static_cast<std::size_t>(dest)].store(
          true, std::memory_order_release);
      throw CommFault("send: connection to rank " + std::to_string(dest) +
                          " is gone (peer exited)",
                      dest, tag, CommFault::Kind::kPeerExited);
    }
  }
}

// ---- receive path ---------------------------------------------------------

void SocketTransport::set_waiting(bool waiting) {
  if (!waiting) return;
  // Re-arm the local watchdog at the start of every blocking receive.
  wd_last_progress_ = progress_.load(std::memory_order_relaxed);
  wd_since_ = std::chrono::steady_clock::now();
}

void SocketTransport::check_liveness(int source, int tag) {
  if (shutdown_.load(std::memory_order_acquire))
    throw CommAborted("recv aborted: transport shut down");

  // Crash detection: the awaited peer's connection is closed and nothing
  // matching is queued — the data can never arrive.
  if (source == kAnySource) {
    bool all_gone = true;
    for (int s = 0; s < size_; ++s) {
      if (s == rank_) continue;
      if (!peer_eof_[static_cast<std::size_t>(s)].load(
              std::memory_order_acquire)) {
        all_gone = false;
        break;
      }
    }
    if (all_gone && !inbox_.probe(source, tag))
      throw CommFault("recv: every peer's connection is gone (peers exited)",
                      kAnySource, tag, CommFault::Kind::kPeerExited);
  } else if (source != rank_ &&
             peer_eof_[static_cast<std::size_t>(source)].load(
                 std::memory_order_acquire) &&
             !inbox_.probe(source, tag)) {
    throw CommFault("recv: rank " + std::to_string(source) +
                        " exited with no matching frame queued (tag " +
                        std::to_string(tag) + ")",
                    source, tag, CommFault::Kind::kPeerExited);
  }

  // Hang detection: no transport progress since this receive began.
  if (tuning_.watchdog_timeout_ms > 0) {
    const auto cur = progress_.load(std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    if (cur != wd_last_progress_) {
      wd_last_progress_ = cur;
      wd_since_ = now;
    } else if (now - wd_since_ >
               std::chrono::milliseconds(tuning_.watchdog_timeout_ms)) {
      throw CommFault(
          "watchdog: rank " + std::to_string(rank_) +
              " made no transport progress for " +
              std::to_string(tuning_.watchdog_timeout_ms) +
              " ms blocked on source " + std::to_string(source) + " tag " +
              std::to_string(tag) + " — awaited rank presumed stalled",
          source, tag, CommFault::Kind::kStalled);
    }
  }
}

Message SocketTransport::blocking_recv(int source, int tag) {
  // Poll in short slices so EOF and watchdog verdicts surface promptly; the
  // inbox condition variable makes the hit path (frame already queued or
  // arriving) wake immediately.
  constexpr auto kSlice = std::chrono::microseconds(5'000);
  for (;;) {
    auto m = inbox_.try_recv_for(source, tag, kSlice, /*by_min_seq=*/false);
    if (m.has_value()) return std::move(*m);
    check_liveness(source, tag);
  }
}

std::optional<Message> SocketTransport::timed_recv(
    int source, int tag, std::chrono::microseconds timeout, bool by_min_seq) {
  auto m = inbox_.try_recv_for(source, tag, timeout, by_min_seq);
  if (!m.has_value()) check_liveness(source, tag);
  return m;
}

void SocketTransport::requeue(Message m) { inbox_.deliver(std::move(m)); }

bool SocketTransport::probe(int source, int tag) {
  return inbox_.probe(source, tag);
}

bool SocketTransport::gap_before(const Message& m,
                                 const ConsumedFrames& consumed) {
  // Local detector: frames carry their per-(channel, tag) ordinal, and
  // consumption is in ordinal order, so a frame whose ordinal exceeds the
  // count of consumed same-(source, tag) frames has a missing predecessor —
  // dropped or still in flight. (The in-process backend answers the same
  // question by peeking at the sender's log; over a real wire the ordinal is
  // the receiver's only oracle, and it is an exact one.)
  return m.tag_seq > consumed.tag_count(m.source, m.tag);
}

// ---- retransmit RPC (requester side) --------------------------------------

std::uint64_t SocketTransport::rpc(int peer, std::uint8_t kind, int tag,
                                   std::uint64_t seq,
                                   std::span<const std::byte> payload) {
  {
    util::MutexLock lock(rpc_mutex_);
    rpc_have_reply_ = false;
  }
  const auto peer_gone = [&]() -> bool {
    return peer_eof_[static_cast<std::size_t>(peer)].load(
        std::memory_order_acquire);
  };
  if (peer_gone() || !write_control(peer, kind, tag, seq, payload))
    throw CommFault("retransmit request: connection to rank " +
                        std::to_string(peer) + " is gone (peer exited)",
                    peer, tag, CommFault::Kind::kPeerExited);
  // A frozen peer still answers — its reader threads service retransmits
  // even while its comm thread sleeps (mirroring the in-process backend,
  // where a stalled rank's send log stays queryable in shared memory). So a
  // missing verdict within the deadline means the peer's *service* died.
  const unsigned deadline_ms = tuning_.watchdog_timeout_ms > 0
                                   ? tuning_.watchdog_timeout_ms
                                   : 30'000;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  util::MutexLock lock(rpc_mutex_);
  while (!rpc_have_reply_) {
    if (shutdown_.load(std::memory_order_acquire))
      throw CommAborted("retransmit request aborted: transport shut down");
    if (peer_gone())
      throw CommFault("retransmit request: rank " + std::to_string(peer) +
                          " exited before answering",
                      peer, tag, CommFault::Kind::kPeerExited);
    if (lock.wait_until(rpc_cv_, deadline) == std::cv_status::timeout &&
        std::chrono::steady_clock::now() >= deadline) {
      throw CommFault("retransmit request: rank " + std::to_string(peer) +
                          " did not answer within " +
                          std::to_string(deadline_ms) + " ms — presumed stalled",
                      peer, tag, CommFault::Kind::kStalled);
    }
  }
  return rpc_reply_;
}

RetransmitOutcome SocketTransport::request_retransmit(
    int source, int tag, const ConsumedFrames& consumed) {
  const int lo = source == kAnySource ? 0 : source;
  const int hi = source == kAnySource ? size_ - 1 : source;
  bool evicted = false;
  bool any_alive = false;
  for (int s = lo; s <= hi; ++s) {
    if (s == rank_) continue;
    if (source == kAnySource &&
        peer_eof_[static_cast<std::size_t>(s)].load(std::memory_order_acquire))
      continue;  // a dead peer can't answer; the liveness check owns that case
    any_alive = true;
    // Encode this channel's consumed seqs, sorted for a deterministic wire.
    const auto& seen = consumed.seqs[static_cast<std::size_t>(s)];
    std::vector<std::uint64_t> seqs(seen.begin(), seen.end());
    std::sort(seqs.begin(), seqs.end());
    const auto verdict =
        rpc(s, kRetxTag, tag, 0,
            std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(seqs.data()),
                seqs.size() * sizeof(std::uint64_t)));
    if (verdict == kReplyRedelivered) return RetransmitOutcome::kRedelivered;
    if (verdict == kReplyNoneEvicted) evicted = true;
  }
  if (!any_alive && source == kAnySource)
    throw CommFault("retransmit request: every peer's connection is gone",
                    kAnySource, tag, CommFault::Kind::kPeerExited);
  return evicted ? RetransmitOutcome::kNoneEvicted
                 : RetransmitOutcome::kNoneSafe;
}

bool SocketTransport::request_retransmit_seq(int source, std::uint64_t seq) {
  return rpc(source, kRetxSeq, /*tag=*/0, seq, {}) == kReplyRedelivered;
}

// ---- reader threads -------------------------------------------------------

void SocketTransport::serve_retx_tag(int peer, int tag,
                                     std::span<const std::byte> payload) {
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t off = 0; off + sizeof(std::uint64_t) <= payload.size();
       off += sizeof(std::uint64_t)) {
    std::uint64_t s = 0;
    std::memcpy(&s, payload.data() + off, sizeof(s));
    seen.insert(s);
  }
  Message copy;
  bool found = false;
  bool evicted = false;
  if (!out_.empty()) {
    OutChannel& ch = out_channel(peer);
    util::MutexLock lock(ch.mutex);
    evicted = ch.evicted;
    // Lowest unconsumed seq first: redelivery preserves sender order.
    for (const Message& f : ch.log) {
      if (f.tag != tag || seen.count(f.seq) != 0) continue;
      if (!found || f.seq < copy.seq) {
        copy = f;
        found = true;
      }
    }
  }
  // Frame before verdict, on the same connection: the requester's reader
  // queues the redelivered frame before the RPC completes, so `kRedelivered`
  // always means "it is in your inbox now" — the in-process ordering.
  if (found) {
    (void)write_data_frame(peer, copy);
    (void)write_control(peer, kRetxReply, tag, kReplyRedelivered, {});
  } else {
    (void)write_control(peer, kRetxReply, tag,
                        evicted ? kReplyNoneEvicted : kReplyNoneSafe, {});
  }
}

void SocketTransport::serve_retx_seq(int peer, std::uint64_t seq) {
  Message copy;
  bool found = false;
  if (!out_.empty()) {
    OutChannel& ch = out_channel(peer);
    util::MutexLock lock(ch.mutex);
    for (const Message& f : ch.log) {
      if (f.seq == seq) {
        copy = f;
        found = true;
        break;
      }
    }
  }
  if (found) {
    (void)write_data_frame(peer, copy);
    (void)write_control(peer, kRetxReply, /*tag=*/0, kReplyRedelivered, {});
  } else {
    (void)write_control(peer, kRetxReply, /*tag=*/0, kReplyNoneSafe, {});
  }
}

void SocketTransport::reader_loop(int peer) {
  const int fd = fds_[static_cast<std::size_t>(peer)];
  for (;;) {
    WireHeader h;
    if (!read_exact(fd, &h, sizeof(h))) break;
    if (h.magic != kMagic) {
      LOG_WARN << "socket transport: bad magic from rank " << peer
               << "; dropping connection";
      break;
    }
    std::vector<std::byte> payload(static_cast<std::size_t>(h.len));
    if (h.len != 0 && !read_exact(fd, payload.data(), payload.size())) break;
    switch (h.kind) {
      case kData: {
        Message m;
        m.source = h.src;
        m.tag = h.tag;
        m.seq = h.seq;
        m.tag_seq = h.tag_seq;
        m.checksum = h.checksum;
        m.payload = std::move(payload);
        try {
          inbox_.deliver(std::move(m));
        } catch (const CommAborted&) {
          return;  // shutting down
        }
        progress_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case kRetxTag:
        serve_retx_tag(peer, h.tag, payload);
        break;
      case kRetxSeq:
        serve_retx_seq(peer, h.seq);
        break;
      case kRetxReply: {
        util::MutexLock lock(rpc_mutex_);
        rpc_reply_ = h.seq;
        rpc_have_reply_ = true;
        rpc_cv_.notify_all();
        break;
      }
      case kBye:
        peer_bye_[static_cast<std::size_t>(peer)].store(
            true, std::memory_order_release);
        break;
      default:
        LOG_WARN << "socket transport: unknown frame kind "
                 << static_cast<int>(h.kind) << " from rank " << peer;
        break;
    }
  }
  peer_eof_[static_cast<std::size_t>(peer)].store(true,
                                                  std::memory_order_release);
  // Wake a comm thread parked on the RPC reply slot — its peer may be gone.
  util::MutexLock lock(rpc_mutex_);
  rpc_cv_.notify_all();
}

// ---- shutdown -------------------------------------------------------------

void SocketTransport::shutdown_and_join(bool linger) {
  if (linger) {
    // Graceful close: a peer may still need retransmits of frames the fault
    // plan dropped from our *final* sends. Announce bye (we will request
    // nothing more), then keep serving until every peer has said bye too (or
    // its connection died), bounded by linger_timeout_ms.
    for (int s = 0; s < size_; ++s) {
      if (s == rank_ || fds_[static_cast<std::size_t>(s)] < 0) continue;
      (void)write_control(s, kBye, 0, 0, {});
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.linger_timeout_ms);
    for (;;) {
      bool all_done = true;
      for (int s = 0; s < size_; ++s) {
        if (s == rank_ || fds_[static_cast<std::size_t>(s)] < 0) continue;
        if (!peer_bye_[static_cast<std::size_t>(s)].load(
                std::memory_order_acquire) &&
            !peer_eof_[static_cast<std::size_t>(s)].load(
                std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
      if (all_done || std::chrono::steady_clock::now() >= deadline) break;
      // dlint:allow(sleep-sync): shutdown drain polls per-peer EOF flags
      // under a deadline; the reader threads own the fds we would select on
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  shutdown_.store(true, std::memory_order_release);
  inbox_.poison();
  {
    util::MutexLock lock(rpc_mutex_);
    rpc_cv_.notify_all();
  }
  for (int s = 0; s < size_; ++s) {
    const int fd = fds_[static_cast<std::size_t>(s)];
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // unblocks the reader thread
  }
  for (auto& t : readers_) {
    if (t.joinable()) t.join();
  }
  readers_.clear();
  for (int s = 0; s < size_; ++s) {
    int& fd = fds_[static_cast<std::size_t>(s)];
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path(options_.dir, rank_).c_str());
}

FaultCounters SocketTransport::injected() {
  FaultCounters total;
  for (int s = 0; s < size_ && !out_.empty(); ++s) {
    OutChannel& ch = out_channel(s);
    util::MutexLock lock(ch.mutex);
    total += ch.injected;
  }
  return total;
}

}  // namespace dinfomap::comm
