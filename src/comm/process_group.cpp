#include "comm/process_group.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "comm/socket_transport.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace dinfomap::comm {

namespace {

/// One parsed worker verdict: `reporter` accused `accused` of `kind`.
struct Verdict {
  int reporter = -1;
  std::string kind;  // "stalled" | "peer_exited" | "transport"
  int accused = -1;
};

std::vector<Verdict> read_verdicts(const ProcessGroup::Spec& spec) {
  std::vector<Verdict> verdicts;
  for (int r = 0; r < spec.nranks; ++r) {
    std::ifstream in(ProcessGroup::fault_file(spec.dir, r));
    if (!in) continue;
    Verdict v;
    v.reporter = r;
    in >> v.kind >> v.accused;
    if (!v.kind.empty()) verdicts.push_back(v);
  }
  return verdicts;
}

}  // namespace

std::string ProcessGroup::fault_file(const std::string& dir, int rank) {
  return dir + "/fault." + std::to_string(rank);
}

ProcessGroup::Result ProcessGroup::launch(const Spec& spec) {
  DINFOMAP_REQUIRE_MSG(spec.nranks >= 1, "process group: need >= 1 rank");
  Result result;
  result.exit_codes.assign(static_cast<std::size_t>(spec.nranks), -1);
  result.killed_by_launcher.assign(static_cast<std::size_t>(spec.nranks),
                                   false);
  // Stale fault files from a previous run in the same dir would corrupt the
  // diagnosis.
  for (int r = 0; r < spec.nranks; ++r)
    ::unlink(fault_file(spec.dir, r).c_str());

  std::vector<pid_t> pids(static_cast<std::size_t>(spec.nranks), -1);
  for (int r = 0; r < spec.nranks; ++r) {
    // Build argv before fork: the child must only execv (no allocation
    // between fork and exec).
    std::vector<std::string> args;
    args.push_back(spec.exe);
    args.insert(args.end(), spec.worker_args.begin(), spec.worker_args.end());
    args.push_back("--rank-role");
    args.push_back(std::to_string(r));
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    DINFOMAP_REQUIRE_MSG(pid >= 0, "fork failed: " << std::strerror(errno));
    if (pid == 0) {
      ::execv(spec.exe.c_str(), argv.data());
      // Exec failed: nothing sane to do in the child but die loudly.
      ::_exit(127);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Reap loop: non-blocking waits so the grace timer can run alongside. A
  // worker that fails starts the clock; stragglers still alive when it runs
  // out are presumed hung and SIGKILLed (a stalled worker never exits).
  using clock = std::chrono::steady_clock;
  int alive = spec.nranks;
  bool any_failed = false;
  clock::time_point grace_start{};
  bool killed_stragglers = false;
  while (alive > 0) {
    bool reaped_one = false;
    for (int r = 0; r < spec.nranks; ++r) {
      const auto idx = static_cast<std::size_t>(r);
      if (pids[idx] < 0) continue;
      int status = 0;
      const pid_t got = ::waitpid(pids[idx], &status, WNOHANG);
      if (got == 0) continue;
      pids[idx] = -1;
      --alive;
      reaped_one = true;
      if (WIFEXITED(status)) {
        result.exit_codes[idx] = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        result.exit_codes[idx] = -WTERMSIG(status);
      } else {
        result.exit_codes[idx] = -1;
      }
      if (result.exit_codes[idx] != 0 && !any_failed) {
        any_failed = true;
        grace_start = clock::now();
      }
    }
    if (alive == 0) break;
    if (any_failed && !killed_stragglers &&
        clock::now() - grace_start >
            std::chrono::milliseconds(spec.hang_grace_ms)) {
      for (int r = 0; r < spec.nranks; ++r) {
        const auto idx = static_cast<std::size_t>(r);
        if (pids[idx] < 0) continue;
        LOG_WARN << "process group: killing straggler rank " << r << " (pid "
                 << pids[idx] << ")";
        ::kill(pids[idx], SIGKILL);
        result.killed_by_launcher[idx] = true;
      }
      killed_stragglers = true;
    }
    if (!reaped_one)
      // dlint:allow(sleep-sync): reaper polls waitpid(WNOHANG) over forked
      // workers; there is no fd or cv that signals child exit here
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // ---- diagnosis ----------------------------------------------------------
  result.ok = true;
  for (int r = 0; r < spec.nranks; ++r)
    if (result.exit_codes[static_cast<std::size_t>(r)] != 0) result.ok = false;
  if (result.ok) {
    result.diagnosis = "all ranks exited cleanly";
    return result;
  }

  const auto verdicts = read_verdicts(spec);
  const auto filed_verdict = [&](int rank) {
    for (const Verdict& v : verdicts)
      if (v.reporter == rank) return true;
    return false;
  };

  // A rank that died abnormally of its own accord (crash signal, stall-exit
  // injection, or any nonzero exit with no verdict filed — a raw crash path)
  // is the crashed rank.
  for (int r = 0; r < spec.nranks && result.crashed_rank < 0; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    const int code = result.exit_codes[idx];
    if (result.killed_by_launcher[idx]) continue;  // our kill, not its crash
    if (code < 0 || code == kStallExitCode || code == 127)
      result.crashed_rank = r;
  }
  // A rank accused of stalling that filed no verdict and never exited
  // voluntarily (we had to kill it, or it crashed only under our SIGKILL)
  // is the stalled rank. Accusations by ranks that filed their own verdicts
  // are wait-chain symptoms, so only verdict-silent accused ranks qualify.
  for (const Verdict& v : verdicts) {
    if (v.kind != "stalled" || v.accused < 0 || v.accused >= spec.nranks)
      continue;
    if (filed_verdict(v.accused)) continue;
    if (result.killed_by_launcher[static_cast<std::size_t>(v.accused)]) {
      result.stalled_rank = v.accused;
      break;
    }
    if (result.stalled_rank < 0) result.stalled_rank = v.accused;
  }
  // peer_exited accusations corroborate a crash when the exit codes alone
  // are ambiguous (e.g. the accused died of our straggler kill *after*
  // closing its sockets).
  if (result.crashed_rank < 0) {
    for (const Verdict& v : verdicts) {
      if (v.kind == "peer_exited" && v.accused >= 0 &&
          v.accused < spec.nranks && !filed_verdict(v.accused)) {
        result.crashed_rank = v.accused;
        break;
      }
    }
  }

  std::ostringstream msg;
  if (result.crashed_rank >= 0) {
    msg << "rank " << result.crashed_rank << " crashed (exit "
        << result.exit_codes[static_cast<std::size_t>(result.crashed_rank)]
        << ")";
    if (result.stalled_rank >= 0)
      msg << "; rank " << result.stalled_rank << " reported stalled";
  } else if (result.stalled_rank >= 0) {
    msg << "rank " << result.stalled_rank
        << " stalled (convicted by peer watchdogs"
        << (result.killed_by_launcher[static_cast<std::size_t>(
                result.stalled_rank)]
                ? ", killed by launcher"
                : "")
        << ")";
  } else {
    msg << "job failed";
    for (int r = 0; r < spec.nranks; ++r) {
      const int code = result.exit_codes[static_cast<std::size_t>(r)];
      if (code != 0) msg << "; rank " << r << " exit " << code;
    }
  }
  result.diagnosis = msg.str();
  return result;
}

}  // namespace dinfomap::comm
