#include "comm/runtime.hpp"

#include <chrono>
#include <mutex>
#include <thread>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace dinfomap::comm {

Runtime::Runtime(int nranks, const Options& options)
    : options_(options), chaos_state_(options.chaos_seed) {
  mailboxes_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void Runtime::maybe_delay() {
  if (options_.chaos_max_delay_us == 0) return;
  // SplitMix64 step on a shared atomic: races only shuffle the schedule,
  // which is the point.
  std::uint64_t z = chaos_state_.fetch_add(0x9E3779B97F4A7C15ULL,
                                           std::memory_order_relaxed);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  const auto delay = (z ^ (z >> 31)) % (options_.chaos_max_delay_us + 1);
  if (delay > 0) std::this_thread::sleep_for(std::chrono::microseconds(delay));
}

Mailbox& Runtime::mailbox(int rank) {
  DINFOMAP_REQUIRE(rank >= 0 && rank < static_cast<int>(mailboxes_.size()));
  return *mailboxes_[rank];
}

void Runtime::abort() {
  bool expected = false;
  if (!aborted_.compare_exchange_strong(expected, true)) return;
  for (auto& mb : mailboxes_) mb->poison();
}

Runtime::JobReport Runtime::run(int nranks, const RankFn& fn) {
  return run(nranks, fn, Options{});
}

Runtime::JobReport Runtime::run(int nranks, const RankFn& fn,
                                const Options& options) {
  DINFOMAP_REQUIRE_MSG(nranks >= 1, "need at least one rank");
  Runtime runtime(nranks, options);
  JobReport report;
  report.counters.resize(nranks);

  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  std::vector<std::thread> threads;
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      // Tag this thread's log lines with its rank for the lifetime of the job.
      util::ScopedThreadRank rank_tag(r);
      Comm comm(runtime, r, nranks);
      try {
        fn(comm);
      } catch (const CommAborted&) {
        // Secondary casualty of another rank's failure — not the root cause.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(failure_mutex);
          if (!first_failure) first_failure = std::current_exception();
        }
        LOG_WARN << "rank " << r << " failed; aborting job";
        runtime.abort();
      }
      report.counters[r] = comm.counters();
    });
  }
  for (auto& t : threads) t.join();

  report.mailbox_depth_high_water.resize(nranks);
  report.mailbox_delivered.resize(nranks);
  for (int r = 0; r < nranks; ++r) {
    report.mailbox_depth_high_water[r] = runtime.mailbox(r).depth_high_water();
    report.mailbox_delivered[r] = runtime.mailbox(r).delivered();
  }

  if (first_failure) std::rethrow_exception(first_failure);
  return report;
}

}  // namespace dinfomap::comm
