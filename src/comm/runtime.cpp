#include "comm/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace dinfomap::comm {

Runtime::Runtime(int nranks, const Options& options)
    : options_(options),
      faults_enabled_(options.faults.any()),
      chaos_state_(options.chaos_seed) {
  mailboxes_.reserve(nranks);
  rank_state_.reserve(nranks);
  endpoints_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    rank_state_.push_back(std::make_unique<RankState>());
    endpoints_.push_back(std::make_unique<InprocTransport>(*this, r, nranks));
  }
  if (faults_enabled_) {
    const auto n = static_cast<std::size_t>(nranks);
    channels_.reserve(n * n);
    for (std::size_t i = 0; i < n * n; ++i)
      channels_.push_back(std::make_unique<Channel>());
  }
}

void Runtime::maybe_delay() {
  if (options_.chaos_max_delay_us == 0) return;
  // SplitMix64 step on a shared atomic: races only shuffle the schedule,
  // which is the point.
  const std::uint64_t z = splitmix64(chaos_state_.fetch_add(
      0x9E3779B97F4A7C15ULL, std::memory_order_relaxed));
  const auto delay = chaos_delay_us(z, options_.chaos_max_delay_us);
  // dlint:allow(sleep-sync): chaos fault injection — the delay IS the feature
  if (delay > 0) std::this_thread::sleep_for(std::chrono::microseconds(delay));
}

Mailbox& Runtime::mailbox(int rank) {
  DINFOMAP_REQUIRE(rank >= 0 && rank < static_cast<int>(mailboxes_.size()));
  return *mailboxes_[rank];
}

Transport& Runtime::endpoint(int rank) {
  DINFOMAP_REQUIRE(rank >= 0 && rank < static_cast<int>(endpoints_.size()));
  return *endpoints_[rank];
}

void Runtime::abort() {
  bool expected = false;
  if (!aborted_.compare_exchange_strong(expected, true)) return;
  for (auto& mb : mailboxes_) mb->poison();
}

void Runtime::note_progress(int rank) {
  rank_state_[static_cast<std::size_t>(rank)]->progress.fetch_add(
      1, std::memory_order_relaxed);
}

void Runtime::set_waiting(int rank, bool waiting) {
  rank_state_[static_cast<std::size_t>(rank)]->waiting.store(
      waiting, std::memory_order_relaxed);
}

void Runtime::stall_forever(int rank) {
  LOG_WARN << "fault plan: rank " << rank << " stalling mid-send";
  while (!aborted())
    // dlint:allow(sleep-sync): fault-plan stall — wasting time is the point
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  throw CommAborted("stalled rank released by abort");
}

void Runtime::push_log(Channel& ch, const Message& m) {
  ch.log.push_back(m);
  while (ch.log.size() > options_.retransmit_window) {
    ch.log.pop_front();
    ch.evicted = true;
  }
}

void Runtime::deliver(int src, int dest, int tag,
                      std::span<const std::byte> data) {
  Message m;
  m.source = src;
  m.tag = tag;
  m.payload.assign(data.begin(), data.end());
  note_progress(src);

  if (!faults_enabled_ || dest == src) {
    // Fault-free fast path. Self-delivery always takes it too: a local copy
    // cannot be lost or corrupted by any real transport.
    maybe_delay();
    mailbox(dest).deliver(std::move(m));
    return;
  }

  const FaultPlan& plan = options_.faults;
  RankState& rs = *rank_state_[static_cast<std::size_t>(src)];
  const auto nsent = rs.remote_sends.fetch_add(1, std::memory_order_relaxed);
  if (src == plan.stall_rank && nsent >= plan.stall_after_sends) {
    {
      Channel& ch = channel(src, dest);
      util::MutexLock lock(ch.mutex);
      ch.injected.stalls += 1;
    }
    stall_forever(src);  // throws CommAborted once the watchdog pulls the cord
  }

  // Frames to put on the wire this call, in order. Built under the channel
  // lock (sequencing + dice must be atomic per channel), delivered after it
  // drops so a chaos sleep never holds the lane.
  std::vector<Message> out;
  {
    Channel& ch = channel(src, dest);
    util::MutexLock lock(ch.mutex);
    m.seq = ch.next_seq++;
    m.tag_seq = ch.tag_seq[tag]++;
    m.checksum =
        frame_checksum(src, tag, m.seq, m.payload.data(), m.payload.size());
    push_log(ch, m);  // pristine copy, logged before any fault touches it

    // Fault dice: a pure function of (seed, src, dest, seq) shared with the
    // socket backend, so the plan injects identical faults on every run
    // regardless of thread timing — and regardless of backend.
    const FaultRoll roll = roll_fault(plan, src, dest, m.seq);

    // A held (reordered) frame is released behind the channel's *next* frame,
    // whatever that frame's own fate is.
    const bool had_held = ch.holding;
    Message old_held;
    if (had_held) {
      old_held = std::move(ch.held);
      ch.holding = false;
    }

    switch (roll.action) {
      case FaultAction::kDrop:
        ch.injected.drops += 1;  // never delivered; the send log answers for it
        break;
      case FaultAction::kDuplicate:
        ch.injected.duplicates += 1;
        out.push_back(m);
        out.push_back(std::move(m));
        break;
      case FaultAction::kReorder:
        ch.injected.reorders += 1;
        ch.held = std::move(m);
        ch.holding = true;
        break;
      case FaultAction::kCorrupt:
        ch.injected.corruptions += 1;
        // Damage the wire copy (the log keeps the pristine frame).
        corrupt_frame(m, roll.mix);
        out.push_back(std::move(m));
        break;
      case FaultAction::kNone:
        out.push_back(std::move(m));
        break;
    }
    if (had_held) out.push_back(std::move(old_held));
  }
  for (auto& f : out) {
    maybe_delay();
    mailbox(dest).deliver(std::move(f));
  }
}

RetransmitOutcome Runtime::request_retransmit(
    int src, int dst, int tag,
    const std::vector<std::unordered_set<std::uint64_t>>& consumed) {
  const int p = static_cast<int>(mailboxes_.size());
  const int lo = src == kAnySource ? 0 : src;
  const int hi = src == kAnySource ? p - 1 : src;
  bool evicted = false;
  for (int s = lo; s <= hi; ++s) {
    if (s == dst) continue;
    Channel& ch = channel(s, dst);
    Message copy;
    bool found = false;
    {
      util::MutexLock lock(ch.mutex);
      evicted = evicted || ch.evicted;
      const auto& seen = consumed[static_cast<std::size_t>(s)];
      // Lowest unconsumed seq first: redelivery preserves sender order.
      for (const Message& f : ch.log) {
        if (f.tag != tag || seen.count(f.seq) != 0) continue;
        if (!found || f.seq < copy.seq) {
          copy = f;
          found = true;
        }
      }
    }
    if (found) {
      mailbox(dst).deliver(std::move(copy));
      return RetransmitOutcome::kRedelivered;
    }
  }
  return evicted ? RetransmitOutcome::kNoneEvicted
                 : RetransmitOutcome::kNoneSafe;
}

std::uint64_t Runtime::oldest_unconsumed(
    int src, int dst, int tag,
    const std::unordered_set<std::uint64_t>& consumed) {
  Channel& ch = channel(src, dst);
  std::uint64_t oldest = ~std::uint64_t{0};
  util::MutexLock lock(ch.mutex);
  for (const Message& f : ch.log)
    if (f.tag == tag && consumed.count(f.seq) == 0 && f.seq < oldest)
      oldest = f.seq;
  return oldest;
}

bool Runtime::request_retransmit_seq(int src, int dst, std::uint64_t seq) {
  Channel& ch = channel(src, dst);
  Message copy;
  bool found = false;
  {
    util::MutexLock lock(ch.mutex);
    for (const Message& f : ch.log) {
      if (f.seq == seq) {
        copy = f;
        found = true;
        break;
      }
    }
  }
  if (found) mailbox(dst).deliver(std::move(copy));
  return found;
}

Runtime::JobReport Runtime::run(int nranks, const RankFn& fn) {
  return run(nranks, fn, Options{});
}

Runtime::JobReport Runtime::run(int nranks, const RankFn& fn,
                                const Options& options) {
  DINFOMAP_REQUIRE_MSG(nranks >= 1, "need at least one rank");
  validate_fault_plan(options.faults, nranks);  // throws FaultPlanError
  if (options.faults.stall_exits)
    throw FaultPlanError(
        "fault plan: stall-exit mode needs real worker processes — use the "
        "socket transport");
  Runtime runtime(nranks, options);
  JobReport report;
  report.counters.resize(nranks);

  util::Mutex failure_mutex;
  std::exception_ptr first_failure;     // first non-abort root cause
  std::exception_ptr first_abort;       // a rank's own failure *was* CommAborted
  std::exception_ptr watchdog_failure;  // stalled-rank verdict

  std::vector<std::thread> threads;
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      // Tag this thread's log lines with its rank for the lifetime of the job.
      util::ScopedThreadRank rank_tag(r);
      Comm comm(runtime.endpoint(r));
      try {
        fn(comm);
      } catch (const CommAborted&) {
        // Usually a secondary casualty of another rank's failure — but when
        // *no* rank records a primary cause, this abort is itself the root
        // cause and swallowing it would report success for a job that died.
        // Keep the first one; run() rethrows it as a last resort. Abort too:
        // if this CommAborted came from user code rather than a poisoned
        // mailbox, nobody else will unblock the peers.
        {
          util::MutexLock lock(failure_mutex);
          if (!first_abort) first_abort = std::current_exception();
        }
        runtime.abort();
      } catch (...) {
        {
          util::MutexLock lock(failure_mutex);
          if (!first_failure) first_failure = std::current_exception();
        }
        LOG_WARN << "rank " << r << " failed; aborting job";
        runtime.abort();
      }
      report.counters[r] = comm.counters();
      runtime.rank_state_[static_cast<std::size_t>(r)]->done.store(
          true, std::memory_order_release);
    });
  }

  // Watchdog: fires only when *no* unfinished rank has made transport
  // progress for the full timeout, then convicts the rank frozen outside a
  // blocking receive (the stalled-sender signature); when every rank is
  // blocked in recv it names the longest-frozen one (a wait cycle — still a
  // deadlock diagnosis, just a different shape).
  std::thread watchdog;
  std::atomic<bool> job_joined{false};
  if (options.watchdog_timeout_ms > 0) {
    watchdog = std::thread([&, nranks] {
      using clock = std::chrono::steady_clock;
      const auto timeout =
          std::chrono::milliseconds(options.watchdog_timeout_ms);
      const auto poll = std::min(
          std::chrono::milliseconds(
              std::max(1u, options.watchdog_timeout_ms / 4)),
          std::chrono::milliseconds(50));
      std::vector<std::uint64_t> last(static_cast<std::size_t>(nranks), 0);
      std::vector<clock::time_point> since(static_cast<std::size_t>(nranks),
                                           clock::now());
      while (!job_joined.load(std::memory_order_acquire)) {
        // dlint:allow(sleep-sync): straggler watchdog polls rank progress
        // counters at a fixed cadence; there is no event to wait on
        std::this_thread::sleep_for(poll);
        if (runtime.aborted()) return;  // a real failure already pulled the cord
        const auto now = clock::now();
        bool all_frozen = true;
        bool any_running = false;
        for (int r = 0; r < nranks; ++r) {
          const auto& rs = *runtime.rank_state_[static_cast<std::size_t>(r)];
          if (rs.done.load(std::memory_order_acquire)) continue;
          any_running = true;
          const auto cur = rs.progress.load(std::memory_order_relaxed);
          if (cur != last[static_cast<std::size_t>(r)]) {
            last[static_cast<std::size_t>(r)] = cur;
            since[static_cast<std::size_t>(r)] = now;
          }
          if (now - since[static_cast<std::size_t>(r)] < timeout)
            all_frozen = false;
        }
        if (!any_running || !all_frozen) continue;
        int convicted = -1;
        auto oldest = now;
        for (int pass = 0; pass < 2 && convicted < 0; ++pass) {
          // Pass 0: frozen and NOT blocked in recv. Pass 1: anyone frozen.
          for (int r = 0; r < nranks; ++r) {
            const auto& rs = *runtime.rank_state_[static_cast<std::size_t>(r)];
            if (rs.done.load(std::memory_order_acquire)) continue;
            if (pass == 0 && rs.waiting.load(std::memory_order_relaxed))
              continue;
            const auto frozen_at = since[static_cast<std::size_t>(r)];
            if (convicted < 0 || frozen_at < oldest) {
              convicted = r;
              oldest = frozen_at;
            }
          }
        }
        {
          util::MutexLock lock(failure_mutex);
          if (!watchdog_failure)
            watchdog_failure = std::make_exception_ptr(CommFault(
                "watchdog: rank " + std::to_string(convicted) +
                    " made no transport progress for " +
                    std::to_string(options.watchdog_timeout_ms) +
                    " ms while the job was quiescent — stalled rank aborted",
                convicted, /*tag=*/-1, CommFault::Kind::kStalled));
        }
        report.stalled_rank = convicted;
        LOG_WARN << "watchdog: aborting stalled job (rank " << convicted
                 << " frozen)";
        runtime.abort();
        return;
      }
    });
  }

  for (auto& t : threads) t.join();
  job_joined.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();

  report.mailbox_depth_high_water.resize(nranks);
  report.mailbox_delivered.resize(nranks);
  for (int r = 0; r < nranks; ++r) {
    report.mailbox_depth_high_water[r] = runtime.mailbox(r).depth_high_water();
    report.mailbox_delivered[r] = runtime.mailbox(r).delivered();
  }
  report.faults_injected.assign(static_cast<std::size_t>(nranks),
                                FaultCounters{});
  if (runtime.faults_enabled_) {
    // Every rank thread has joined, but the lane counters are lock-protected
    // state and the analysis (rightly) has no concept of "quiescent now".
    for (int s = 0; s < nranks; ++s)
      for (int d = 0; d < nranks; ++d) {
        Channel& ch = runtime.channel(s, d);
        util::MutexLock lock(ch.mutex);
        report.faults_injected[static_cast<std::size_t>(s)] += ch.injected;
      }
  }
  report.aborted = runtime.aborted() || first_abort != nullptr;

  // Rethrow precedence: the watchdog verdict names the root cause (peer
  // failures under a stall are downstream symptoms), then the first primary
  // failure, then — so an aborted job can never masquerade as success — the
  // first CommAborted itself.
  if (watchdog_failure) std::rethrow_exception(watchdog_failure);
  if (first_failure) std::rethrow_exception(first_failure);
  if (first_abort) std::rethrow_exception(first_abort);
  return report;
}

}  // namespace dinfomap::comm
