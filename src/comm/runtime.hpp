// Thread-backed job runtime: spawns N ranks, each running the same function
// with its own Comm — the moral equivalent of `mpirun -np N`.
//
// The runtime is also the transport: Comm hands frames to `deliver`, which
// sequences them per (source, dest) channel, applies the seeded fault plan
// (drop / duplicate / reorder / corrupt / stall), and keeps a bounded send
// log per channel so receivers can pull retransmits (the moral equivalent of
// a NIC-level retransmit queue — a blocked sender thread never has to
// service control traffic itself). A watchdog thread turns rank stalls into
// a typed CommFault diagnosis instead of a ctest hang.
#pragma once

#include <atomic>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "comm/comm.hpp"
#include "comm/counters.hpp"
#include "comm/fault.hpp"
#include "comm/mailbox.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dinfomap::comm {

class Runtime {
 public:
  /// Per-rank results a job can leave behind (counters survive the ranks).
  struct JobReport {
    std::vector<CommCounters> counters;  ///< indexed by rank
    /// Flight-recorder inbox stats per rank: deepest backlog ever queued and
    /// total messages delivered (includes self-delivery).
    std::vector<std::size_t> mailbox_depth_high_water;
    std::vector<std::uint64_t> mailbox_delivered;
    /// Faults the plan injected, per *source* rank (all zero without a plan).
    std::vector<FaultCounters> faults_injected;
    /// True when the job aborted (even if every rank's own failure was a
    /// secondary CommAborted — see Runtime::run's rethrow rules).
    bool aborted = false;
    /// Rank the watchdog convicted of stalling; -1 when it never fired.
    int stalled_rank = -1;
  };

  using RankFn = std::function<void(Comm&)>;

  struct Options {
    /// Chaos testing: delay each message delivery by a random 0..N µs
    /// (seeded, per-message). A correct bulk-synchronous algorithm must
    /// produce bit-identical results under any delivery timing; tests run
    /// the full pipeline with chaos on and compare.
    unsigned chaos_max_delay_us = 0;
    std::uint64_t chaos_seed = 1;

    /// Seeded transport faults (see comm/fault.hpp). Recovery is transparent:
    /// results must stay bit-identical to the fault-free run.
    FaultPlan faults;
    /// Receiver recovery knobs, active only when `faults.any()`. A recv
    /// charges one retry per retransmit request; the budget only limits
    /// *provable* losses (a frame the send log can still answer for, or a
    /// channel that has evicted history) — a merely slow sender is waited on
    /// patiently, because the watchdog owns liveness.
    int max_recv_retries = 12;
    unsigned retry_backoff_us = 200;  ///< first timeout; doubles, capped 20 ms
    std::size_t retransmit_window = 4096;  ///< frames retained per channel

    /// Per-rank watchdog: when > 0, a monitor thread aborts the job with a
    /// CommFault naming the stalled rank once *no* unfinished rank has made
    /// transport progress for this long. 0 disables. Must exceed the longest
    /// compute gap between comm calls of the job.
    unsigned watchdog_timeout_ms = 0;
  };

  /// Run `fn` on `nranks` ranks; blocks until all complete. If any rank
  /// throws, the runtime poisons every mailbox (unblocking peers), joins, and
  /// rethrows — a watchdog verdict first, then the first non-abort failure,
  /// then (when the job aborted with no recorded primary cause) the first
  /// CommAborted, so an aborted job can never report success. Returns
  /// per-rank comm counters.
  static JobReport run(int nranks, const RankFn& fn);
  static JobReport run(int nranks, const RankFn& fn, const Options& options);

  // ---- used by Comm ------------------------------------------------------
  Mailbox& mailbox(int rank);
  void abort();
  [[nodiscard]] bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] bool faults_enabled() const { return faults_enabled_; }

  /// Transport entry point: frame, roll the fault dice, and deliver into
  /// `dest`'s mailbox (self-sends bypass injection — a local copy cannot be
  /// lost). May sleep (chaos / stall) and may deliver zero, one, or several
  /// frames.
  void deliver(int src, int dest, int tag, std::span<const std::byte> data);

  /// Outcome of a receiver's retransmit request against the src→dst log.
  enum class Retransmit {
    kRedelivered,  ///< a pristine unconsumed match was re-delivered
    kNoneSafe,     ///< nothing matched and the log has never evicted: the
                   ///< frame was simply never sent yet — keep waiting
    kNoneEvicted,  ///< nothing matched but history was evicted: the loss may
                   ///< be unprovable — charge the retry budget
  };
  /// Re-deliver the lowest-seq logged frame on src→dst matching `tag` whose
  /// seq is not in `consumed`. `src == kAnySource` scans every channel into
  /// `dst` (consumed sets indexed by source rank).
  Retransmit request_retransmit(
      int src, int dst, int tag,
      const std::vector<std::unordered_set<std::uint64_t>>& consumed);
  /// Re-deliver the exact frame `seq` of src→dst (corruption repair);
  /// false when the frame left the window — unrecoverable.
  bool request_retransmit_seq(int src, int dst, std::uint64_t seq);
  /// Lowest logged unconsumed seq on src→dst matching `tag`, or ~0 when the
  /// log holds none. The receiver's gap detector: a queued frame with a
  /// higher seq than this must not be consumed yet — an earlier frame of the
  /// same (channel, tag) is still missing (dropped or in flight).
  [[nodiscard]] std::uint64_t oldest_unconsumed(
      int src, int dst, int tag,
      const std::unordered_set<std::uint64_t>& consumed);

  /// Progress/liveness hooks for the watchdog: `note_progress` on every real
  /// transport event (send, consumed recv), `set_waiting` around blocking
  /// receives so the watchdog can tell "blocked on a dead peer" from
  /// "frozen mid-send".
  void note_progress(int rank);
  void set_waiting(int rank, bool waiting);

  /// Chaos hook: sleeps a seeded-random interval when chaos is enabled.
  void maybe_delay();
  /// Delay drawn from a mixed word — 64-bit math so `max_delay_us + 1`
  /// cannot wrap to a zero modulus at UINT_MAX (that was live UB).
  [[nodiscard]] static std::uint64_t chaos_delay_us(std::uint64_t mixed,
                                                    unsigned max_delay_us) {
    return mixed % (static_cast<std::uint64_t>(max_delay_us) + 1);
  }

 private:
  Runtime(int nranks, const Options& options);

  /// One src→dst lane: frame sequencing, the bounded pristine send log, the
  /// reorder hold slot, and injected-fault tallies. Everything a lane holds
  /// is touched by both the sender's thread and receivers pulling
  /// retransmits, so every field is guarded by the lane mutex.
  struct Channel {
    util::Mutex mutex;
    std::uint64_t next_seq DI_GUARDED_BY(mutex) = 0;
    std::deque<Message> log DI_GUARDED_BY(mutex);
    /// Sticky: history has been lost at least once.
    bool evicted DI_GUARDED_BY(mutex) = false;
    bool holding DI_GUARDED_BY(mutex) = false;
    Message held DI_GUARDED_BY(mutex);
    FaultCounters injected DI_GUARDED_BY(mutex);
  };

  struct RankState {
    std::atomic<std::uint64_t> progress{0};
    std::atomic<bool> waiting{false};
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> remote_sends{0};
  };

  Channel& channel(int src, int dst) {
    return *channels_[static_cast<std::size_t>(src) * mailboxes_.size() +
                      static_cast<std::size_t>(dst)];
  }
  /// Freeze this thread until the job aborts, then throw CommAborted.
  [[noreturn]] void stall_forever(int rank);
  void push_log(Channel& ch, const Message& m) DI_REQUIRES(ch.mutex);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< empty unless faults
  std::vector<std::unique_ptr<RankState>> rank_state_;
  std::atomic<bool> aborted_{false};
  Options options_;
  bool faults_enabled_ = false;
  std::atomic<std::uint64_t> chaos_state_;
};

}  // namespace dinfomap::comm
