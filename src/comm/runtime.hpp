// Thread-backed job runtime: spawns N ranks, each running the same function
// with its own Comm — the moral equivalent of `mpirun -np N`.
//
// The runtime is also the transport: Comm hands frames to `deliver`, which
// sequences them per (source, dest) channel, applies the seeded fault plan
// (drop / duplicate / reorder / corrupt / stall), and keeps a bounded send
// log per channel so receivers can pull retransmits (the moral equivalent of
// a NIC-level retransmit queue — a blocked sender thread never has to
// service control traffic itself). A watchdog thread turns rank stalls into
// a typed CommFault diagnosis instead of a ctest hang.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "comm/comm.hpp"
#include "comm/counters.hpp"
#include "comm/fault.hpp"
#include "comm/mailbox.hpp"
#include "comm/transport.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dinfomap::comm {

class InprocTransport;

class Runtime {
 public:
  /// Per-rank results a job can leave behind (counters survive the ranks).
  struct JobReport {
    std::vector<CommCounters> counters;  ///< indexed by rank
    /// Flight-recorder inbox stats per rank: deepest backlog ever queued and
    /// total messages delivered (includes self-delivery).
    std::vector<std::size_t> mailbox_depth_high_water;
    std::vector<std::uint64_t> mailbox_delivered;
    /// Faults the plan injected, per *source* rank (all zero without a plan).
    std::vector<FaultCounters> faults_injected;
    /// True when the job aborted (even if every rank's own failure was a
    /// secondary CommAborted — see Runtime::run's rethrow rules).
    bool aborted = false;
    /// Rank the watchdog convicted of stalling; -1 when it never fired.
    int stalled_rank = -1;
  };

  using RankFn = std::function<void(Comm&)>;

  /// TransportTuning carries the recovery knobs shared by every backend
  /// (fault plan, retry budget/backoff, retransmit window, watchdog
  /// timeout); this in-process runtime adds its chaos scheduler on top. The
  /// watchdog here is a monitor thread that aborts the job with a
  /// CommFault{kStalled} naming the stalled rank once *no* unfinished rank
  /// has made transport progress for the timeout; it must exceed the longest
  /// compute gap between comm calls of the job.
  struct Options : TransportTuning {
    /// Chaos testing: delay each message delivery by a random 0..N µs
    /// (seeded, per-message). A correct bulk-synchronous algorithm must
    /// produce bit-identical results under any delivery timing; tests run
    /// the full pipeline with chaos on and compare.
    unsigned chaos_max_delay_us = 0;
    std::uint64_t chaos_seed = 1;
  };

  /// Run `fn` on `nranks` ranks; blocks until all complete. If any rank
  /// throws, the runtime poisons every mailbox (unblocking peers), joins, and
  /// rethrows — a watchdog verdict first, then the first non-abort failure,
  /// then (when the job aborted with no recorded primary cause) the first
  /// CommAborted, so an aborted job can never report success. Returns
  /// per-rank comm counters.
  static JobReport run(int nranks, const RankFn& fn);
  static JobReport run(int nranks, const RankFn& fn, const Options& options);

  // ---- used by the per-rank InprocTransport endpoints --------------------
  Mailbox& mailbox(int rank);
  void abort();
  [[nodiscard]] bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] bool faults_enabled() const { return faults_enabled_; }

  /// Rank `rank`'s Transport endpoint onto this runtime (valid for the
  /// runtime's lifetime). Runtime::run wires each rank's Comm through this;
  /// tests may grab endpoints directly to drive Comm by hand.
  [[nodiscard]] Transport& endpoint(int rank);

  /// Transport entry point: frame, roll the fault dice, and deliver into
  /// `dest`'s mailbox (self-sends bypass injection — a local copy cannot be
  /// lost). May sleep (chaos / stall) and may deliver zero, one, or several
  /// frames.
  void deliver(int src, int dest, int tag, std::span<const std::byte> data);

  /// Re-deliver the lowest-seq logged frame on src→dst matching `tag` whose
  /// seq is not in `consumed`. `src == kAnySource` scans every channel into
  /// `dst` (consumed sets indexed by source rank).
  RetransmitOutcome request_retransmit(
      int src, int dst, int tag,
      const std::vector<std::unordered_set<std::uint64_t>>& consumed);
  /// Re-deliver the exact frame `seq` of src→dst (corruption repair);
  /// false when the frame left the window — unrecoverable.
  bool request_retransmit_seq(int src, int dst, std::uint64_t seq);
  /// Lowest logged unconsumed seq on src→dst matching `tag`, or ~0 when the
  /// log holds none. The receiver's gap detector: a queued frame with a
  /// higher seq than this must not be consumed yet — an earlier frame of the
  /// same (channel, tag) is still missing (dropped or in flight).
  [[nodiscard]] std::uint64_t oldest_unconsumed(
      int src, int dst, int tag,
      const std::unordered_set<std::uint64_t>& consumed);

  /// Progress/liveness hooks for the watchdog: `note_progress` on every real
  /// transport event (send, consumed recv), `set_waiting` around blocking
  /// receives so the watchdog can tell "blocked on a dead peer" from
  /// "frozen mid-send".
  void note_progress(int rank);
  void set_waiting(int rank, bool waiting);

  /// Chaos hook: sleeps a seeded-random interval when chaos is enabled.
  void maybe_delay();
  /// Delay drawn from a mixed word — 64-bit math so `max_delay_us + 1`
  /// cannot wrap to a zero modulus at UINT_MAX (that was live UB).
  [[nodiscard]] static std::uint64_t chaos_delay_us(std::uint64_t mixed,
                                                    unsigned max_delay_us) {
    return mixed % (static_cast<std::uint64_t>(max_delay_us) + 1);
  }

 private:
  Runtime(int nranks, const Options& options);

  /// One src→dst lane: frame sequencing, the bounded pristine send log, the
  /// reorder hold slot, and injected-fault tallies. Everything a lane holds
  /// is touched by both the sender's thread and receivers pulling
  /// retransmits, so every field is guarded by the lane mutex.
  struct Channel {
    util::Mutex mutex;
    std::uint64_t next_seq DI_GUARDED_BY(mutex) = 0;
    /// Per-tag frame ordinals (Message::tag_seq) — unused by this backend's
    /// own gap detector but stamped so the frame format matches the socket
    /// backend's wire exactly.
    std::map<int, std::uint64_t> tag_seq DI_GUARDED_BY(mutex);
    std::deque<Message> log DI_GUARDED_BY(mutex);
    /// Sticky: history has been lost at least once.
    bool evicted DI_GUARDED_BY(mutex) = false;
    bool holding DI_GUARDED_BY(mutex) = false;
    Message held DI_GUARDED_BY(mutex);
    FaultCounters injected DI_GUARDED_BY(mutex);
  };

  struct RankState {
    std::atomic<std::uint64_t> progress{0};
    std::atomic<bool> waiting{false};
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> remote_sends{0};
  };

  Channel& channel(int src, int dst) {
    return *channels_[static_cast<std::size_t>(src) * mailboxes_.size() +
                      static_cast<std::size_t>(dst)];
  }
  /// Freeze this thread until the job aborts, then throw CommAborted.
  [[noreturn]] void stall_forever(int rank);
  void push_log(Channel& ch, const Message& m) DI_REQUIRES(ch.mutex);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< empty unless faults
  std::vector<std::unique_ptr<RankState>> rank_state_;
  std::vector<std::unique_ptr<InprocTransport>> endpoints_;
  std::atomic<bool> aborted_{false};
  Options options_;
  bool faults_enabled_ = false;
  std::atomic<std::uint64_t> chaos_state_;
};

/// The in-process backend's per-rank Transport endpoint: a thin adapter from
/// the Transport interface onto the shared Runtime (mailboxes, channel send
/// logs, watchdog state). Created by Runtime, one per rank.
class InprocTransport final : public Transport {
 public:
  InprocTransport(Runtime& runtime, int rank, int size)
      : runtime_(&runtime), rank_(rank), size_(size) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return size_; }
  [[nodiscard]] const TransportTuning& tuning() const override {
    return runtime_->options();
  }
  [[nodiscard]] bool faults_enabled() const override {
    return runtime_->faults_enabled();
  }

  void send_frame(int dest, int tag, std::span<const std::byte> data) override {
    runtime_->deliver(rank_, dest, tag, data);
  }
  Message blocking_recv(int source, int tag) override {
    return runtime_->mailbox(rank_).recv(source, tag);
  }
  std::optional<Message> timed_recv(int source, int tag,
                                    std::chrono::microseconds timeout,
                                    bool by_min_seq) override {
    return runtime_->mailbox(rank_).try_recv_for(source, tag, timeout,
                                                 by_min_seq);
  }
  void requeue(Message m) override {
    runtime_->mailbox(rank_).deliver(std::move(m));
  }
  [[nodiscard]] bool probe(int source, int tag) override {
    return runtime_->mailbox(rank_).probe(source, tag);
  }

  RetransmitOutcome request_retransmit(int source, int tag,
                                       const ConsumedFrames& consumed) override {
    return runtime_->request_retransmit(source, rank_, tag, consumed.seqs);
  }
  bool request_retransmit_seq(int source, std::uint64_t seq) override {
    return runtime_->request_retransmit_seq(source, rank_, seq);
  }
  [[nodiscard]] bool gap_before(const Message& m,
                                const ConsumedFrames& consumed) override {
    // Sender-log oracle: threads share an address space, so the receiver can
    // ask the authoritative send log whether an older unconsumed frame of
    // this (channel, tag) exists — no wire round trip needed.
    return runtime_->oldest_unconsumed(
               m.source, rank_, m.tag,
               consumed.seqs[static_cast<std::size_t>(m.source)]) < m.seq;
  }

  void note_progress() override { runtime_->note_progress(rank_); }
  void set_waiting(bool waiting) override {
    runtime_->set_waiting(rank_, waiting);
  }

 private:
  Runtime* runtime_;
  int rank_;
  int size_;
};

}  // namespace dinfomap::comm
