// Thread-backed job runtime: spawns N ranks, each running the same function
// with its own Comm — the moral equivalent of `mpirun -np N`.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "comm/comm.hpp"
#include "comm/counters.hpp"
#include "comm/mailbox.hpp"

namespace dinfomap::comm {

class Runtime {
 public:
  /// Per-rank results a job can leave behind (counters survive the ranks).
  struct JobReport {
    std::vector<CommCounters> counters;  ///< indexed by rank
    /// Flight-recorder inbox stats per rank: deepest backlog ever queued and
    /// total messages delivered (includes self-delivery).
    std::vector<std::size_t> mailbox_depth_high_water;
    std::vector<std::uint64_t> mailbox_delivered;
  };

  using RankFn = std::function<void(Comm&)>;

  struct Options {
    /// Chaos testing: delay each message delivery by a random 0..N µs
    /// (seeded, per-message). A correct bulk-synchronous algorithm must
    /// produce bit-identical results under any delivery timing; tests run
    /// the full pipeline with chaos on and compare.
    unsigned chaos_max_delay_us = 0;
    std::uint64_t chaos_seed = 1;
  };

  /// Run `fn` on `nranks` ranks; blocks until all complete. If any rank
  /// throws, the runtime poisons every mailbox (unblocking peers), joins, and
  /// rethrows the first exception. Returns per-rank comm counters.
  static JobReport run(int nranks, const RankFn& fn);
  static JobReport run(int nranks, const RankFn& fn, const Options& options);

  // ---- used by Comm ------------------------------------------------------
  Mailbox& mailbox(int rank);
  void abort();
  [[nodiscard]] bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  /// Chaos hook: sleeps a seeded-random interval when chaos is enabled.
  void maybe_delay();

 private:
  Runtime(int nranks, const Options& options);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  Options options_;
  std::atomic<std::uint64_t> chaos_state_;
};

}  // namespace dinfomap::comm
