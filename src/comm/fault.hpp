// Deterministic fault injection for the comm substrate, and the typed error
// surfaced when recovery fails.
//
// The paper's implementation ran on Titan, where any MPI fault kills the job;
// this layer models the opposite regime: a lossy, duplicating, corrupting,
// reordering transport with the occasional frozen rank. Every transport frame
// rolls seeded dice keyed by (seed, source, dest, seq) — the plan is a pure
// function of the channel position, so a given (plan, program) pair injects
// the same faults on every run regardless of thread interleaving. Recovery
// (seq dedup, checksum verification, retransmit from the per-channel send
// log) is the receiver's job in comm.cpp; the contract, asserted by
// tests/test_comm_faults.cpp, is that recovery is *transparent*: the
// algorithm's results are bit-identical to the fault-free run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace dinfomap::comm {

/// Unrecoverable transport failure: retry budget exhausted, a corrupt frame
/// whose pristine copy was already evicted from the send log, or a watchdog
/// verdict against a stalled rank. Carries the peer rank and tag involved so
/// failures under fault injection are diagnosable (rank < 0 when unknown).
class CommFault : public std::runtime_error {
 public:
  CommFault(const std::string& what, int rank = -1, int tag = -1)
      : std::runtime_error(what), rank_(rank), tag_(tag) {}
  /// The peer rank the failure implicates (the stalled or silent rank).
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int tag() const { return tag_; }

 private:
  int rank_;
  int tag_;
};

/// Seeded per-message fault plan. Probabilities are evaluated as one cascade
/// (at most one fault per frame), so their sum must stay <= 1.
struct FaultPlan {
  double drop = 0;       ///< frame never delivered (send log retains it)
  double duplicate = 0;  ///< frame delivered twice
  double reorder = 0;    ///< frame held and delivered after the channel's next
  double corrupt = 0;    ///< delivered copy has one payload byte flipped
  /// Rank to freeze mid-send (-1 = none): once it has issued
  /// `stall_after_sends` remote sends it sleeps until the job aborts —
  /// the watchdog's prey.
  int stall_rank = -1;
  std::uint64_t stall_after_sends = 0;
  std::uint64_t seed = 1;

  [[nodiscard]] bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           stall_rank >= 0;
  }
};

/// Injected-fault tallies, kept per source rank so the run report can show
/// that a plan actually fired.
struct FaultCounters {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t stalls = 0;

  FaultCounters& operator+=(const FaultCounters& other) {
    drops += other.drops;
    duplicates += other.duplicates;
    reorders += other.reorders;
    corruptions += other.corruptions;
    stalls += other.stalls;
    return *this;
  }

  [[nodiscard]] std::uint64_t total() const {
    return drops + duplicates + reorders + corruptions + stalls;
  }
};

/// SplitMix64 output mixer — the same stream shape Runtime::maybe_delay uses.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Map a mixed 64-bit word to [0, 1).
[[nodiscard]] inline double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// FNV-1a over the frame header and payload. Seeding the hash with
/// (source, tag, seq) means a frame misfiled under the wrong identity also
/// fails verification, not just payload bit flips.
[[nodiscard]] inline std::uint64_t frame_checksum(int source, int tag,
                                                  std::uint64_t seq,
                                                  const std::byte* data,
                                                  std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto eat = [&h](std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (word & 0xff)) * 0x100000001b3ULL;
      word >>= 8;
    }
  };
  eat(static_cast<std::uint64_t>(static_cast<std::uint32_t>(source)));
  eat(static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  eat(seq);
  eat(size);
  for (std::size_t i = 0; i < size; ++i)
    h = (h ^ static_cast<std::uint64_t>(data[i])) * 0x100000001b3ULL;
  return h;
}

}  // namespace dinfomap::comm
