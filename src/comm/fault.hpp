// Deterministic fault injection for the comm substrate, and the typed error
// surfaced when recovery fails.
//
// The paper's implementation ran on Titan, where any MPI fault kills the job;
// this layer models the opposite regime: a lossy, duplicating, corrupting,
// reordering transport with the occasional frozen rank. Every transport frame
// rolls seeded dice keyed by (seed, source, dest, seq) — the plan is a pure
// function of the channel position, so a given (plan, program) pair injects
// the same faults on every run regardless of thread interleaving. Recovery
// (seq dedup, checksum verification, retransmit from the per-channel send
// log) is the receiver's job in comm.cpp; the contract, asserted by
// tests/test_comm_faults.cpp, is that recovery is *transparent*: the
// algorithm's results are bit-identical to the fault-free run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "comm/message.hpp"

namespace dinfomap::comm {

/// Unrecoverable transport failure: retry budget exhausted, a corrupt frame
/// whose pristine copy was already evicted from the send log, or a liveness
/// verdict against a peer. Carries the peer rank and tag involved so
/// failures under fault injection are diagnosable (rank < 0 when unknown),
/// plus a Kind so a launcher can tell a hang from a crash:
///  * kStalled — the peer is alive but frozen (watchdog conviction);
///  * kPeerExited — the peer's process/connection is *gone* (socket EOF with
///    no matching frame queued), which only the multi-process backend can
///    observe.
class CommFault : public std::runtime_error {
 public:
  enum class Kind {
    kTransport,   ///< recovery failure on a live channel
    kStalled,     ///< watchdog verdict: peer alive but making no progress
    kPeerExited,  ///< peer process died (connection EOF) — crash, not hang
  };

  CommFault(const std::string& what, int rank = -1, int tag = -1,
            Kind kind = Kind::kTransport)
      : std::runtime_error(what), rank_(rank), tag_(tag), kind_(kind) {}
  /// The peer rank the failure implicates (the stalled or silent rank).
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int tag() const { return tag_; }
  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  int rank_;
  int tag_;
  Kind kind_;
};

/// Seeded per-message fault plan. Probabilities are evaluated as one cascade
/// (at most one fault per frame), so their sum must stay <= 1.
struct FaultPlan {
  double drop = 0;       ///< frame never delivered (send log retains it)
  double duplicate = 0;  ///< frame delivered twice
  double reorder = 0;    ///< frame held and delivered after the channel's next
  double corrupt = 0;    ///< delivered copy has one payload byte flipped
  /// Rank to freeze mid-send (-1 = none): once it has issued
  /// `stall_after_sends` remote sends it sleeps until the job aborts —
  /// the watchdog's prey.
  int stall_rank = -1;
  std::uint64_t stall_after_sends = 0;
  /// Socket backend only: the stalled rank *exits* instead of freezing,
  /// modelling a crashed worker. Peers observe connection EOF and raise
  /// CommFault{kPeerExited} rather than a watchdog stall verdict. Rejected
  /// by validate_fault_plan for the in-process backend, where there is no
  /// process to kill.
  bool stall_exits = false;
  std::uint64_t seed = 1;

  [[nodiscard]] bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           stall_rank >= 0;
  }
};

/// A fault plan that is malformed *as configuration* — distinct from
/// CommFault (a transport failure at runtime) so CLIs can reject the plan
/// before any rank starts.
class FaultPlanError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Validate `plan` against a rank count. Throws FaultPlanError naming the
/// offending field when a rate falls outside [0, 1], the cascade sum exceeds
/// 1, the stall rank is out of [0, nranks), or stall_exits is set with no
/// stall rank. Call with nranks <= 0 to skip the rank-bound check (rank
/// count not known yet).
inline void validate_fault_plan(const FaultPlan& plan, int nranks) {
  const auto check_rate = [](double v, const char* name) {
    if (!(v >= 0.0 && v <= 1.0))
      throw FaultPlanError("fault plan: " + std::string(name) + " rate " +
                           std::to_string(v) + " outside [0, 1]");
  };
  check_rate(plan.drop, "drop");
  check_rate(plan.duplicate, "dup");
  check_rate(plan.reorder, "reorder");
  check_rate(plan.corrupt, "corrupt");
  if (plan.drop + plan.duplicate + plan.reorder + plan.corrupt > 1.0)
    throw FaultPlanError(
        "fault plan: probabilities form one cascade; their sum must stay <= "
        "1");
  if (plan.stall_rank < -1)
    throw FaultPlanError("fault plan: stall rank " +
                         std::to_string(plan.stall_rank) + " is negative");
  if (nranks > 0 && plan.stall_rank >= nranks)
    throw FaultPlanError("fault plan: stall rank " +
                         std::to_string(plan.stall_rank) +
                         " out of range for " + std::to_string(nranks) +
                         " ranks (valid: 0.." + std::to_string(nranks - 1) +
                         ")");
  if (plan.stall_exits && plan.stall_rank < 0)
    throw FaultPlanError(
        "fault plan: stall-exit mode needs a stall rank (stall=R)");
}

/// Injected-fault tallies, kept per source rank so the run report can show
/// that a plan actually fired.
struct FaultCounters {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t stalls = 0;

  FaultCounters& operator+=(const FaultCounters& other) {
    drops += other.drops;
    duplicates += other.duplicates;
    reorders += other.reorders;
    corruptions += other.corruptions;
    stalls += other.stalls;
    return *this;
  }

  [[nodiscard]] std::uint64_t total() const {
    return drops + duplicates + reorders + corruptions + stalls;
  }
};

/// SplitMix64 output mixer — the same stream shape Runtime::maybe_delay uses.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Map a mixed 64-bit word to [0, 1).
[[nodiscard]] inline double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// The one fault (if any) a frame draws from the cascade.
enum class FaultAction { kNone, kDrop, kDuplicate, kReorder, kCorrupt };

/// A frame's dice roll plus the mixed word that produced it (corrupt_frame
/// reuses the word to pick the damaged byte).
struct FaultRoll {
  FaultAction action = FaultAction::kNone;
  std::uint64_t mix = 0;
};

/// Roll the cascade for frame `seq` on channel src→dest. A pure function of
/// (seed, src, dest, seq) — both transport backends call this, so a given
/// plan injects the *same* fault stream whether ranks are threads or
/// processes, which is what keeps results bit-identical across backends.
[[nodiscard]] inline FaultRoll roll_fault(const FaultPlan& plan, int src,
                                          int dest, std::uint64_t seq) {
  const std::uint64_t key = splitmix64(
      plan.seed ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)) << 20));
  const std::uint64_t h = splitmix64(key ^ seq);
  double u = unit_interval(h);
  if (u < plan.drop) return {FaultAction::kDrop, h};
  if ((u -= plan.drop) < plan.duplicate) return {FaultAction::kDuplicate, h};
  if ((u -= plan.duplicate) < plan.reorder) return {FaultAction::kReorder, h};
  if ((u -= plan.reorder) < plan.corrupt) return {FaultAction::kCorrupt, h};
  return {FaultAction::kNone, h};
}

/// Damage the wire copy of a frame the cascade marked kCorrupt: flip one
/// payload bit at a seeded position, or the checksum field when the payload
/// is empty. The sender's log keeps the pristine frame.
inline void corrupt_frame(Message& m, std::uint64_t h) {
  if (!m.payload.empty()) {
    const auto pos = splitmix64(h ^ 0x5bd1e995ULL) % m.payload.size();
    m.payload[pos] ^= std::byte{0x40};
  } else {
    m.checksum ^= 0x40;
  }
}

/// FNV-1a over the frame header and payload. Seeding the hash with
/// (source, tag, seq) means a frame misfiled under the wrong identity also
/// fails verification, not just payload bit flips.
[[nodiscard]] inline std::uint64_t frame_checksum(int source, int tag,
                                                  std::uint64_t seq,
                                                  const std::byte* data,
                                                  std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto eat = [&h](std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (word & 0xff)) * 0x100000001b3ULL;
      word >>= 8;
    }
  };
  eat(static_cast<std::uint64_t>(static_cast<std::uint32_t>(source)));
  eat(static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  eat(seq);
  eat(size);
  for (std::size_t i = 0; i < size; ++i)
    h = (h ^ static_cast<std::uint64_t>(data[i])) * 0x100000001b3ULL;
  return h;
}

}  // namespace dinfomap::comm
