// Launcher for the multi-process socket transport: forks one worker process
// per rank (a `dinfomap_cli --rank-role R` re-exec), waits for the job, and
// folds per-worker failures into a crash-vs-hang diagnosis (DESIGN.md §14).
//
// Failure reporting protocol: a worker that dies on a CommFault writes a
// one-line fault file `<dir>/fault.<rank>` — `stalled <accused>`,
// `peer_exited <accused>`, or `transport <accused>` — before exiting
// nonzero. The launcher combines those verdicts with how each child actually
// died (clean exit, crash signal, kStallExitCode, or the launcher's own
// straggler SIGKILL) to name the root-cause rank:
//  * a rank that exited abnormally on its own is the *crashed* rank;
//  * a rank accused of stalling that wrote no verdict of its own and never
//    exited voluntarily is the *stalled* rank (accusations by ranks that
//    themselves filed a verdict are downstream symptoms of a wait chain).
#pragma once

#include <string>
#include <vector>

namespace dinfomap::comm {

class ProcessGroup {
 public:
  struct Spec {
    int nranks = 0;
    /// Worker executable (the CLI re-execs itself) and the argv tail shared
    /// by all workers; the launcher appends `--rank-role <r>` per child.
    std::string exe;
    std::vector<std::string> worker_args;
    /// Rendezvous directory: sockets and fault files live here. Must exist.
    std::string dir;
    /// After the first worker fails, surviving workers get this long to
    /// finish unwinding (writing their own verdicts) before SIGKILL — a
    /// genuinely stalled worker never exits on its own.
    unsigned hang_grace_ms = 30'000;
  };

  struct Result {
    bool ok = false;
    /// Per rank: exit status when >= 0, -signal when killed (including the
    /// launcher's own straggler kills — see `killed_by_launcher`).
    std::vector<int> exit_codes;
    std::vector<bool> killed_by_launcher;
    int crashed_rank = -1;  ///< rank that died abnormally of its own accord
    int stalled_rank = -1;  ///< rank convicted of hanging (killed by us)
    std::string diagnosis;  ///< one human-readable line
  };

  /// Fork + exec all workers, block until every child is reaped, diagnose.
  static Result launch(const Spec& spec);

  /// The fault-file path rank `r` writes its verdict to (shared contract
  /// between the launcher and the CLI's worker role).
  [[nodiscard]] static std::string fault_file(const std::string& dir, int rank);
};

}  // namespace dinfomap::comm
