// Multi-process transport backend: one rank per worker process, wired as a
// full mesh of Unix-domain stream sockets (DESIGN.md §14).
//
// Where the in-process backend shares a Runtime (mailboxes and send logs in
// one address space), here every rank owns one SocketTransport endpoint in
// its own process. Rank r listens on `<dir>/<r>.sock`, connects to every
// lower rank, and accepts from every higher rank; each peer connection gets
// a dedicated reader thread that demultiplexes wire frames into the local
// inbox (a comm::Mailbox, so (source, tag) matching and min-seq receives
// behave exactly as in-process) and services peers' retransmit requests
// against this rank's send logs. Reader threads always drain their socket,
// so a blocked sender can never deadlock the mesh on a full kernel buffer —
// the same property the in-process backend gets from Mailbox being
// unbounded.
//
// The PR 3 recovery protocol runs over the real wire: frames carry the same
// per-channel seq, per-(channel, tag) ordinal, and FNV-1a checksum; the
// fault plan's dice are the same pure function of (seed, src, dest, seq)
// (comm::roll_fault), but the faults are genuine socket events — a dropped
// frame is simply never written, a duplicate is written twice, a reorder is
// held behind the channel's next frame, and a stall freezes (or, with
// stall_exits, kills) a real process. Recovery is receiver-driven: a
// retransmit request is a small RPC to the sender, answered by the sender's
// reader thread from its pristine send log — frame first, verdict second, on
// the same connection, so a re-delivered frame is always in the inbox before
// the RPC completes (matching the in-process ordering).
//
// Liveness is local here — there is no thread that can see every rank. Each
// endpoint convicts the peer *it* is blocked on: connection EOF with no
// matching frame queued raises CommFault{kPeerExited} (crash), and a
// watchdog timeout with no transport progress raises CommFault{kStalled}
// (hang). The launcher (process_group.hpp) folds the per-worker verdicts
// into a job-level crash-vs-hang diagnosis.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "comm/transport.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dinfomap::comm {

/// Exit code a worker dies with when the fault plan's stall-exit mode fires
/// (FaultPlan::stall_exits) — a deliberate crash, distinguishable by the
/// launcher from both clean exits and launcher-issued straggler kills.
inline constexpr int kStallExitCode = 86;

struct SocketTransportOptions {
  /// Rendezvous directory: rank r binds `<dir>/<r>.sock`. Every rank of the
  /// job must be given the same directory.
  std::string dir;
  /// How long a connecting rank retries against a peer whose listener has
  /// not appeared yet (workers start at the launcher's mercy).
  unsigned connect_timeout_ms = 30'000;
  /// Graceful-shutdown bound: on destruction an endpoint announces bye,
  /// keeps serving retransmits until every peer has said bye (or vanished),
  /// and force-closes after this long. See shutdown notes in the .cpp.
  unsigned linger_timeout_ms = 10'000;
};

class SocketTransport final : public Transport {
 public:
  /// Binds this rank's listener, connects the mesh, and starts one reader
  /// thread per peer. Blocks until all size-1 connections are up; throws
  /// CommFault when a peer never appears within connect_timeout_ms.
  SocketTransport(int rank, int size, SocketTransportOptions options,
                  TransportTuning tuning);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] static std::string socket_path(const std::string& dir,
                                               int rank);

  // ---- Transport interface ----------------------------------------------
  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return size_; }
  [[nodiscard]] const TransportTuning& tuning() const override {
    return tuning_;
  }
  [[nodiscard]] bool faults_enabled() const override {
    return faults_enabled_;
  }

  void send_frame(int dest, int tag, std::span<const std::byte> data) override;
  Message blocking_recv(int source, int tag) override;
  std::optional<Message> timed_recv(int source, int tag,
                                    std::chrono::microseconds timeout,
                                    bool by_min_seq) override;
  void requeue(Message m) override;
  [[nodiscard]] bool probe(int source, int tag) override;

  RetransmitOutcome request_retransmit(int source, int tag,
                                       const ConsumedFrames& consumed) override;
  bool request_retransmit_seq(int source, std::uint64_t seq) override;
  [[nodiscard]] bool gap_before(const Message& m,
                                const ConsumedFrames& consumed) override;

  void note_progress() override {
    progress_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Entering a blocking receive re-arms the local watchdog: it measures
  /// time blocked in *this* receive without transport progress, so long
  /// compute gaps between comm calls can never be convicted.
  void set_waiting(bool waiting) override;

  // ---- lifecycle / reporting --------------------------------------------
  /// Skip the graceful bye linger on destruction — called on an error path,
  /// where peers are failing too and waiting for their byes only delays the
  /// launcher's diagnosis.
  void abandon_linger() { linger_abandoned_.store(true, std::memory_order_release); }

  /// Faults this endpoint injected into its outgoing channels.
  [[nodiscard]] FaultCounters injected();
  /// Flight-recorder inbox stats, mirroring the in-process JobReport fields.
  [[nodiscard]] std::size_t inbox_depth_high_water() {
    return inbox_.depth_high_water();
  }
  [[nodiscard]] std::uint64_t inbox_delivered() { return inbox_.delivered(); }

  [[nodiscard]] Stats stats() override {
    return {injected(), inbox_depth_high_water(), inbox_delivered()};
  }

 private:
  /// One outgoing channel rank_→dest (faults only): frame sequencing, the
  /// bounded pristine send log, the reorder hold slot, and injected-fault
  /// tallies. Touched by this rank's comm thread (sends) and by the reader
  /// thread of `dest`'s connection (retransmit service), hence the mutex.
  struct OutChannel {
    util::Mutex mutex;
    std::uint64_t next_seq DI_GUARDED_BY(mutex) = 0;
    std::map<int, std::uint64_t> tag_seq DI_GUARDED_BY(mutex);
    std::deque<Message> log DI_GUARDED_BY(mutex);
    bool evicted DI_GUARDED_BY(mutex) = false;  ///< sticky history loss
    bool holding DI_GUARDED_BY(mutex) = false;
    Message held DI_GUARDED_BY(mutex);
    FaultCounters injected DI_GUARDED_BY(mutex);
  };

  OutChannel& out_channel(int dest) {
    return *out_[static_cast<std::size_t>(dest)];
  }

  void connect_mesh(unsigned connect_timeout_ms);
  void reader_loop(int peer);
  void serve_retx_tag(int peer, int tag, std::span<const std::byte> payload);
  void serve_retx_seq(int peer, std::uint64_t seq);
  /// Write one data frame to `peer`; returns false when the connection is
  /// gone (EPIPE / reset), which marks the peer exited.
  bool write_data_frame(int peer, const Message& m);
  bool write_control(int peer, std::uint8_t kind, int tag, std::uint64_t seq,
                     std::span<const std::byte> payload);
  /// Single-outstanding retransmit RPC to `peer`; encodes the consumed-seq
  /// set for that channel and waits for the verdict (frames arrive via the
  /// reader before the verdict does).
  std::uint64_t rpc(int peer, std::uint8_t kind, int tag, std::uint64_t seq,
                    std::span<const std::byte> payload);
  /// EOF / watchdog checks run between receive attempts; throws the typed
  /// CommFault this backend exists to report.
  void check_liveness(int source, int tag);
  [[noreturn]] void stall(int dest);
  void shutdown_and_join(bool linger);

  int rank_;
  int size_;
  SocketTransportOptions options_;
  TransportTuning tuning_;
  bool faults_enabled_;

  Mailbox inbox_;
  int listen_fd_ = -1;
  std::vector<int> fds_;  ///< per peer; own slot unused (-1)
  /// One writer lock per connection: this rank's comm thread (data frames)
  /// and its reader threads (retransmit service) share each outgoing fd.
  std::vector<std::unique_ptr<util::Mutex>> write_mutexes_;
  std::vector<std::unique_ptr<OutChannel>> out_;  ///< empty unless faults
  std::vector<std::thread> readers_;

  std::vector<std::atomic<bool>> peer_eof_;
  std::vector<std::atomic<bool>> peer_bye_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> linger_abandoned_{false};
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<std::uint64_t> remote_sends_{0};

  /// Reply slot for the single-outstanding retransmit RPC (Comm is
  /// single-threaded per rank, so one slot suffices). Readers post verdicts
  /// and EOF wake-ups here.
  util::Mutex rpc_mutex_;
  util::CondVar rpc_cv_;
  bool rpc_have_reply_ DI_GUARDED_BY(rpc_mutex_) = false;
  std::uint64_t rpc_reply_ DI_GUARDED_BY(rpc_mutex_) = 0;

  /// Local watchdog state (comm thread only): last observed progress count
  /// and when it last changed, re-armed by set_waiting(true).
  std::uint64_t wd_last_progress_ = 0;
  std::chrono::steady_clock::time_point wd_since_{};
};

}  // namespace dinfomap::comm
