// Transport abstraction under comm::Comm (DESIGN.md §14).
//
// Comm implements MPI-shaped semantics (two-sided matching, collectives,
// receiver-driven fault recovery) on top of a small per-rank endpoint
// interface: frame a payload and put it on the wire, pull the next matching
// frame off the local inbox, and answer the recovery layer's retransmit /
// gap queries. Two backends implement it:
//
//  * comm::Runtime — the in-process mailbox backend (one rank per thread,
//    default, semantics unchanged from the pre-split runtime), and
//  * comm::SocketTransport — the multi-process backend, one rank per worker
//    process over a full mesh of Unix-domain stream sockets.
//
// The contract across backends: for a fixed (seed, ranks, threads) the
// algorithm above Comm produces bit-identical partitions, codelengths, and
// round traces, because every reduction Comm performs is rank-ordered and
// both backends preserve per-channel sender order (directly, or via the
// seq-numbered recovery protocol when a fault plan is active).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "comm/fault.hpp"
#include "comm/message.hpp"

namespace dinfomap::comm {

/// Receiver-recovery tuning shared by every backend. A recv charges one
/// retry per retransmit request; the budget only limits *provable* losses (a
/// frame the send log can still answer for, or a channel that has evicted
/// history) — a merely slow sender is waited on patiently, because the
/// watchdog owns liveness.
struct TransportTuning {
  /// Seeded transport faults (see comm/fault.hpp). Recovery is transparent:
  /// results must stay bit-identical to the fault-free run.
  FaultPlan faults;
  int max_recv_retries = 12;
  unsigned retry_backoff_us = 200;  ///< first timeout; doubles, capped 20 ms
  std::size_t retransmit_window = 4096;  ///< frames retained per channel
  /// Liveness: when > 0, a rank making no transport progress for this long
  /// is convicted (in-process: a monitor thread convicts the globally
  /// quiescent job's frozen rank; socket backend: each endpoint convicts the
  /// peer it is blocked on). 0 disables.
  unsigned watchdog_timeout_ms = 0;
};

/// Outcome of a receiver's retransmit request against a sender's log.
enum class RetransmitOutcome {
  kRedelivered,  ///< a pristine unconsumed match was re-delivered
  kNoneSafe,     ///< nothing matched and the log has never evicted: the
                 ///< frame was simply never sent yet — keep waiting
  kNoneEvicted,  ///< nothing matched but history was evicted: the loss may
                 ///< be unprovable — charge the retry budget
};

/// Receiver-side bookkeeping of consumed frames, per source rank. `seqs` is
/// the dedup filter (frame seqs are per-channel, so per-source sets
/// suffice); `tag_counts` counts consumed frames per (source, tag) — the
/// socket backend's local gap detector, matched against the per-(channel,
/// tag) ordinal each frame carries in Message::tag_seq.
struct ConsumedFrames {
  std::vector<std::unordered_set<std::uint64_t>> seqs;
  std::map<std::pair<int, int>, std::uint64_t> tag_counts;

  explicit ConsumedFrames(int nranks)
      : seqs(static_cast<std::size_t>(nranks)) {}

  void note(const Message& m) {
    seqs[static_cast<std::size_t>(m.source)].insert(m.seq);
    tag_counts[{m.source, m.tag}] += 1;
  }
  [[nodiscard]] bool contains(const Message& m) const {
    return seqs[static_cast<std::size_t>(m.source)].count(m.seq) != 0;
  }
  [[nodiscard]] std::uint64_t tag_count(int source, int tag) const {
    const auto it = tag_counts.find({source, tag});
    return it == tag_counts.end() ? 0 : it->second;
  }
};

/// One rank's endpoint onto the wire. All methods are called from the rank's
/// own thread (Comm is single-threaded per rank); implementations may run
/// internal service threads but must keep these entry points race-free.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;
  [[nodiscard]] virtual const TransportTuning& tuning() const = 0;
  [[nodiscard]] virtual bool faults_enabled() const = 0;

  // ---- frame path --------------------------------------------------------
  /// Frame `data` (seq + per-tag ordinal + checksum when fault injection is
  /// active), roll the fault dice, and put it on the wire toward `dest`.
  /// Self-sends bypass injection — a local copy cannot be lost.
  virtual void send_frame(int dest, int tag, std::span<const std::byte> data) = 0;

  /// Block until a frame matching (source|kAnySource, tag) is in the local
  /// inbox; remove and return it. Throws CommAborted on shutdown and — on
  /// backends that can observe it — CommFault{kPeerExited} when the awaited
  /// peer's connection closed with no matching frame queued, or
  /// CommFault{kStalled} when the backend's liveness watchdog convicts the
  /// awaited peer.
  virtual Message blocking_recv(int source, int tag) = 0;

  /// Timed variant for the recovery layer: wait up to `timeout` for a match,
  /// returning nullopt on expiry so the caller can request a retransmit.
  /// With `by_min_seq`, the *lowest-seq* queued match is taken instead of
  /// the first — this restores per-channel sender order when faults reorder
  /// deliveries.
  virtual std::optional<Message> timed_recv(int source, int tag,
                                            std::chrono::microseconds timeout,
                                            bool by_min_seq) = 0;

  /// Put a deferred frame back into the local inbox (the recovery layer's
  /// gap handling requeues a too-new candidate while it pulls the missing
  /// older frame).
  virtual void requeue(Message m) = 0;

  /// Non-blocking probe: true if a matching frame is queued locally.
  [[nodiscard]] virtual bool probe(int source, int tag) = 0;

  // ---- receiver-driven recovery assists ----------------------------------
  /// Ask the sender's log to re-deliver the lowest-seq unconsumed frame on
  /// source→me matching `tag`. `source == kAnySource` queries every peer.
  virtual RetransmitOutcome request_retransmit(int source, int tag,
                                               const ConsumedFrames& consumed) = 0;
  /// Re-deliver the exact frame `seq` of source→me (corruption repair);
  /// false when the frame left the sender's window — unrecoverable.
  virtual bool request_retransmit_seq(int source, std::uint64_t seq) = 0;
  /// True when consuming `m` now would skip over an earlier same-(channel,
  /// tag) frame that is still missing (dropped or in flight) — the
  /// receiver's gap detector.
  [[nodiscard]] virtual bool gap_before(const Message& m,
                                        const ConsumedFrames& consumed) = 0;

  // ---- liveness ----------------------------------------------------------
  /// Called by Comm on every real transport event (send, consumed recv) and
  /// around blocking receives, so the backend's watchdog can tell "blocked
  /// on a dead peer" from "frozen mid-send".
  virtual void note_progress() {}
  virtual void set_waiting(bool /*waiting*/) {}

  // ---- local observability ------------------------------------------------
  /// This endpoint's transport-level tallies. The in-process backend reports
  /// these through Runtime's JobReport instead (its fault counters live on
  /// the shared channels), so its endpoints keep the empty default; the
  /// socket backend fills them in — each worker process can only see its own
  /// side of the mesh.
  struct Stats {
    FaultCounters injected;  ///< faults this endpoint's sends injected
    std::uint64_t inbox_depth_high_water = 0;
    std::uint64_t inbox_delivered = 0;
  };
  [[nodiscard]] virtual Stats stats() { return {}; }
};

}  // namespace dinfomap::comm
