#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace dinfomap::obs {

Trace::Trace(int num_tracks, bool enabled, std::uint64_t epoch_steady_ns)
    : enabled_(enabled) {
  tracks_.resize(static_cast<std::size_t>(num_tracks < 0 ? 0 : num_tracks));
  const auto epoch =
      epoch_steady_ns == 0
          ? TraceBuffer::Clock::now()
          : TraceBuffer::Clock::time_point(
                std::chrono::duration_cast<TraceBuffer::Clock::duration>(
                    std::chrono::nanoseconds(epoch_steady_ns)));
  for (auto& t : tracks_) t.attach(epoch, enabled);
}

namespace {

void append_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

/// Deterministic 64-bit flow id from the (src, dst, tag, ordinal) tuple so
/// the send-side "s" and recv-side "f" records bind to the same arrow.
/// FNV-1a over the packed fields; the analyzer matches on the exact tuple,
/// never on this hash, so a collision can only smudge the rendered arrows.
std::uint64_t flow_id(int src, int dst, int tag, std::uint64_t ordinal) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  mix(ordinal);
  // Keep ids under 2^53: JSON consumers parse numbers as doubles, and two
  // full-width ids could round to the same value.
  return h & ((std::uint64_t{1} << 48) - 1);
}

void append_event(std::ostream& os, int tid, const TraceEvent& e, bool& first) {
  const char* ph = nullptr;
  switch (e.kind) {
    case TraceEvent::Kind::kBegin: ph = "B"; break;
    case TraceEvent::Kind::kEnd: ph = "E"; break;
    case TraceEvent::Kind::kInstant: ph = "i"; break;
    case TraceEvent::Kind::kCounter: ph = "C"; break;
    case TraceEvent::Kind::kFlowSend: ph = "s"; break;
    case TraceEvent::Kind::kFlowRecv: ph = "f"; break;
    // Collective arrive/depart render as a span named after the op, so the
    // Perfetto view shows each collective's per-rank occupancy directly.
    case TraceEvent::Kind::kCollectiveArrive: ph = "B"; break;
    case TraceEvent::Kind::kCollectiveDepart: ph = "E"; break;
  }
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\": \"";
  append_escaped(os, e.name);
  os << "\", \"ph\": \"" << ph << "\", \"pid\": 0, \"tid\": " << tid
     << ", \"ts\": " << e.ts_us;
  if (e.kind == TraceEvent::Kind::kInstant) os << ", \"s\": \"t\"";
  if (e.kind == TraceEvent::Kind::kCounter)
    os << ", \"args\": {\"value\": " << e.value << "}";
  if (e.kind == TraceEvent::Kind::kFlowSend ||
      e.kind == TraceEvent::Kind::kFlowRecv) {
    const bool send = e.kind == TraceEvent::Kind::kFlowSend;
    const int src = send ? tid : e.peer;
    const int dst = send ? e.peer : tid;
    os << ", \"cat\": \"msg\", \"id\": " << flow_id(src, dst, e.tag, e.ordinal);
    if (!send) os << ", \"bp\": \"e\"";  // bind to the enclosing slice
  }
  if (e.kind == TraceEvent::Kind::kCollectiveArrive)
    os << ", \"args\": {\"tag\": " << e.tag << "}";
  os << "}";
}

}  // namespace

std::string Trace::to_chrome_json() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  // Track naming metadata: one thread per rank.
  for (int r = 0; r < num_tracks(); ++r) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
       << r << ", \"args\": {\"name\": \"rank " << r << "\"}}";
  }
  for (int r = 0; r < num_tracks(); ++r)
    for (const TraceEvent& e : tracks_[r].events())
      append_event(os, r, e, first);
  os << "\n]\n}\n";
  return os.str();
}

bool Trace::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    LOG_WARN << "trace: cannot open " << path << " for writing";
    return false;
  }
  out << to_chrome_json();
  return static_cast<bool>(out);
}

}  // namespace dinfomap::obs
