#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace dinfomap::obs {

Trace::Trace(int num_tracks, bool enabled) : enabled_(enabled) {
  tracks_.resize(static_cast<std::size_t>(num_tracks < 0 ? 0 : num_tracks));
  const auto epoch = TraceBuffer::Clock::now();
  for (auto& t : tracks_) t.attach(epoch, enabled);
}

namespace {

void append_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

void append_event(std::ostream& os, int tid, const TraceEvent& e, bool& first) {
  const char* ph = nullptr;
  switch (e.kind) {
    case TraceEvent::Kind::kBegin: ph = "B"; break;
    case TraceEvent::Kind::kEnd: ph = "E"; break;
    case TraceEvent::Kind::kInstant: ph = "i"; break;
    case TraceEvent::Kind::kCounter: ph = "C"; break;
  }
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\": \"";
  append_escaped(os, e.name);
  os << "\", \"ph\": \"" << ph << "\", \"pid\": 0, \"tid\": " << tid
     << ", \"ts\": " << e.ts_us;
  if (e.kind == TraceEvent::Kind::kInstant) os << ", \"s\": \"t\"";
  if (e.kind == TraceEvent::Kind::kCounter)
    os << ", \"args\": {\"value\": " << e.value << "}";
  os << "}";
}

}  // namespace

std::string Trace::to_chrome_json() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  // Track naming metadata: one thread per rank.
  for (int r = 0; r < num_tracks(); ++r) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
       << r << ", \"args\": {\"name\": \"rank " << r << "\"}}";
  }
  for (int r = 0; r < num_tracks(); ++r)
    for (const TraceEvent& e : tracks_[r].events())
      append_event(os, r, e, first);
  os << "\n]\n}\n";
  return os.str();
}

bool Trace::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    LOG_WARN << "trace: cannot open " << path << " for writing";
    return false;
  }
  out << to_chrome_json();
  return static_cast<bool>(out);
}

}  // namespace dinfomap::obs
