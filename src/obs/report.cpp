#include "obs/report.hpp"

#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace dinfomap::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string quoted(const std::string& s) { return '"' + escape(s) + '"'; }

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);  // round-trip exact; codelengths are compared bitwise
  os << v;
  return os.str();
}

void append_work(std::ostream& os, const perf::WorkCounters& w) {
  os << "{\"arcs_scanned\": " << w.arcs_scanned
     << ", \"delta_evals\": " << w.delta_evals
     << ", \"pruned_evals\": " << w.pruned_evals
     << ", \"module_updates\": " << w.module_updates
     << ", \"messages\": " << w.messages << ", \"bytes\": " << w.bytes << "}";
}

void append_work_list(std::ostream& os,
                      const std::vector<perf::WorkCounters>& per_rank) {
  os << '[';
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (r) os << ", ";
    append_work(os, per_rank[r]);
  }
  os << ']';
}

}  // namespace

void RunReport::add_config(const std::string& key, const std::string& value) {
  config.emplace_back(key, quoted(value));
}
void RunReport::add_config(const std::string& key, const char* value) {
  add_config(key, std::string(value));
}
void RunReport::add_config(const std::string& key, double value) {
  config.emplace_back(key, num(value));
}
void RunReport::add_config(const std::string& key, std::int64_t value) {
  config.emplace_back(key, std::to_string(value));
}
void RunReport::add_config(const std::string& key, std::uint64_t value) {
  config.emplace_back(key, std::to_string(value));
}
void RunReport::add_config(const std::string& key, bool value) {
  config.emplace_back(key, value ? "true" : "false");
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n";
  os << "\"schema\": " << quoted(schema) << ",\n";
  os << "\"algorithm\": " << quoted(algorithm) << ",\n";

  os << "\"config\": {";
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (i) os << ", ";
    os << quoted(config[i].first) << ": " << config[i].second;
  }
  os << "},\n";

  os << "\"graph\": {\"vertices\": " << graph_vertices
     << ", \"edges\": " << graph_edges << "},\n";
  os << "\"num_ranks\": " << num_ranks << ",\n";
  os << "\"codelength\": " << num(codelength) << ",\n";
  os << "\"singleton_codelength\": " << num(singleton_codelength) << ",\n";
  os << "\"num_modules\": " << num_modules << ",\n";

  os << "\"levels\": [";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelRow& lr = levels[i];
    if (i) os << ", ";
    os << "{\"level\": " << lr.level << ", \"vertices\": " << lr.vertices
       << ", \"rounds\": " << lr.rounds << ", \"moves\": " << lr.moves
       << ", \"codelength_before\": " << num(lr.codelength_before)
       << ", \"codelength_after\": " << num(lr.codelength_after)
       << ", \"num_modules\": " << lr.num_modules << "}";
  }
  os << "],\n";

  os << "\"round_codelengths\": [";
  for (std::size_t i = 0; i < round_codelengths.size(); ++i) {
    if (i) os << ", ";
    os << num(round_codelengths[i]);
  }
  os << "],\n";

  os << "\"stage1\": {\"rounds\": " << stage1_rounds
     << ", \"wall_seconds\": " << num(stage1_wall_seconds) << "},\n";
  os << "\"stage2\": {\"levels\": " << stage2_levels
     << ", \"wall_seconds\": " << num(stage2_wall_seconds) << "},\n";

  os << "\"phases\": [";
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const PhaseRow& ph = phases[p];
    if (p) os << ", ";
    os << "{\"name\": " << quoted(ph.name) << ", \"work\": ";
    append_work_list(os, ph.work);
    os << ", \"seconds\": [";
    for (std::size_t r = 0; r < ph.seconds.size(); ++r) {
      if (r) os << ", ";
      os << num(ph.seconds[r]);
    }
    os << "]}";
  }
  os << "],\n";

  os << "\"stage_work\": [";
  append_work_list(os, stage_work[0]);
  os << ", ";
  append_work_list(os, stage_work[1]);
  os << "],\n";

  os << "\"comm\": [";
  for (std::size_t r = 0; r < comm.size(); ++r) {
    if (r) os << ", ";
    os << "{\"p2p_messages\": " << comm[r].p2p_messages
       << ", \"p2p_bytes\": " << comm[r].p2p_bytes
       << ", \"collective_messages\": " << comm[r].collective_messages
       << ", \"collective_bytes\": " << comm[r].collective_bytes
       << ", \"collective_calls\": " << comm[r].collective_calls
       << ", \"packed_streams\": " << comm[r].packed_streams
       << ", \"retransmit_requests\": " << comm[r].retransmit_requests
       << ", \"retransmits\": " << comm[r].retransmits
       << ", \"dup_frames_dropped\": " << comm[r].dup_frames_dropped
       << ", \"checksum_failures\": " << comm[r].checksum_failures << "}";
  }
  os << "],\n";

  os << "\"faults_injected\": [";
  for (std::size_t r = 0; r < faults_injected.size(); ++r) {
    if (r) os << ", ";
    os << "{\"drops\": " << faults_injected[r].drops
       << ", \"duplicates\": " << faults_injected[r].duplicates
       << ", \"reorders\": " << faults_injected[r].reorders
       << ", \"corruptions\": " << faults_injected[r].corruptions
       << ", \"stalls\": " << faults_injected[r].stalls << "}";
  }
  os << "],\n";

  os << "\"metrics\": [";
  for (std::size_t r = 0; r < metrics_json.size(); ++r) {
    if (r) os << ", ";
    os << (metrics_json[r].empty() ? "{}" : metrics_json[r]);
  }
  os << "],\n";

  os << "\"profile\": ";
  if (has_profile) {
    std::string p = profile.to_json();
    while (!p.empty() && p.back() == '\n') p.pop_back();
    os << p;
  } else {
    os << "null";
  }
  os << ",\n";

  os << "\"anomalies\": [";
  for (std::size_t i = 0; i < anomalies.size(); ++i) {
    const Anomaly& a = anomalies[i];
    if (i) os << ", ";
    os << "{\"rank\": " << a.rank << ", \"level\": " << a.level
       << ", \"round\": " << a.round << ", \"kind\": " << quoted(a.kind)
       << ", \"detail\": " << quoted(a.detail) << "}";
  }
  os << "]\n}\n";
  return os.str();
}

bool RunReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    LOG_WARN << "run report: cannot open " << path << " for writing";
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace dinfomap::obs
