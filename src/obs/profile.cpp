#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/logging.hpp"

namespace dinfomap::obs {

namespace {

bool is_recv_wait(const TraceEvent& e) {
  return std::strcmp(e.name, "recv_wait") == 0;
}

/// One rank's participation in one collective instance.
struct Participation {
  int rank = 0;
  double arrive = 0;
  double depart = 0;
  const char* phase = "";
};

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);  // round-trip exact, same discipline as the run report
  os << v;
  return os.str();
}

void append_histogram(std::ostream& os, const Histogram& h) {
  os << "{\"count\": " << h.count() << ", \"max\": " << h.max()
     << ", \"mean\": " << num(h.mean()) << ", \"p50\": " << num(h.p50())
     << ", \"p90\": " << num(h.p90()) << ", \"p99\": " << num(h.p99())
     << ", \"sum\": " << h.sum() << "}";
}

}  // namespace

ProfileDigest build_profile(const Trace& trace) {
  ProfileDigest d;
  const int p = trace.num_tracks();
  d.num_ranks = p;
  d.ranks.resize(static_cast<std::size_t>(p));

  // ---- pass 1: per-rank linear scans ------------------------------------
  // Wall/wait/comm decomposition, plus collective-instance participation
  // keyed by (tag, per-rank occurrence index) — the same collective call has
  // the same tag and the same occurrence count on every rank, so the key
  // pairs ranks correctly even if the 2^20 tag window ever wrapped.
  std::map<std::pair<int, std::uint64_t>, std::vector<Participation>> instances;
  double global_first = std::numeric_limits<double>::infinity();
  double global_last = -std::numeric_limits<double>::infinity();
  bool any_events = false;

  for (int r = 0; r < p; ++r) {
    const auto& ev = trace.track(r).events();
    RankProfile& rp = d.ranks[static_cast<std::size_t>(r)];
    rp.rank = r;
    if (ev.empty()) continue;
    any_events = true;
    const double first = ev.front().ts_us;
    const double last = ev.back().ts_us;
    rp.wall_us = last - first;
    global_first = std::min(global_first, first);
    global_last = std::max(global_last, last);

    std::vector<const char*> span_stack;
    int wait_depth = 0;
    double wait_open = 0;
    double wait_total = 0;
    double wait_in_coll = 0;
    int coll_depth = 0;
    double coll_open = 0;
    double coll_total = 0;
    std::map<int, std::uint64_t> occurrence;  // collective tag -> call count
    struct OpenCollective {
      std::pair<int, std::uint64_t> key;
      double arrive = 0;
      const char* phase = "";
    };
    std::vector<OpenCollective> open_coll;

    for (const TraceEvent& e : ev) {
      switch (e.kind) {
        case TraceEvent::Kind::kBegin:
          if (is_recv_wait(e)) {
            if (wait_depth++ == 0) wait_open = e.ts_us;
          } else {
            span_stack.push_back(e.name);
          }
          break;
        case TraceEvent::Kind::kEnd:
          if (is_recv_wait(e)) {
            if (wait_depth > 0 && --wait_depth == 0) {
              const double w = e.ts_us - wait_open;
              wait_total += w;
              if (coll_depth > 0) wait_in_coll += w;
            }
          } else if (!span_stack.empty()) {
            span_stack.pop_back();
          }
          break;
        case TraceEvent::Kind::kCollectiveArrive: {
          OpenCollective oc;
          oc.key = {e.tag, occurrence[e.tag]++};
          oc.arrive = e.ts_us;
          oc.phase = span_stack.empty() ? "(top)" : span_stack.back();
          open_coll.push_back(oc);
          if (coll_depth++ == 0) coll_open = e.ts_us;
          break;
        }
        case TraceEvent::Kind::kCollectiveDepart: {
          if (!open_coll.empty()) {
            const OpenCollective oc = open_coll.back();
            open_coll.pop_back();
            instances[oc.key].push_back({r, oc.arrive, e.ts_us, oc.phase});
          }
          if (coll_depth > 0 && --coll_depth == 0)
            coll_total += e.ts_us - coll_open;
          break;
        }
        default:
          break;
      }
    }
    // A rank that died inside a receive (fault abort) leaves the span open;
    // charge the remainder of its track as wait.
    if (wait_depth > 0) {
      wait_total += last - wait_open;
      if (coll_depth > 0) wait_in_coll += last - wait_open;
    }
    if (coll_depth > 0) coll_total += last - coll_open;

    rp.wait_us = wait_total;
    rp.comm_us = std::max(0.0, coll_total - wait_in_coll);
    rp.compute_us = std::max(0.0, rp.wall_us - rp.wait_us - rp.comm_us);
    rp.busy_us = std::max(0.0, rp.wall_us - rp.wait_us);
  }
  d.wall_us = any_events ? global_last - global_first : 0.0;

  // ---- collective wait / straggler attribution --------------------------
  // For every instance: wait_r = clamp(min(depart_r, last_arrival) −
  // arrive_r, ≥ 0), i.e. the time rank r spent ahead of the last arriver.
  // The instance's total wait is charged to that last arriver ("caused"),
  // and the instance is attributed to the enclosing span name.
  std::map<std::string, PhaseProfile> phase_map;
  for (const auto& [key, parts] : instances) {
    double max_arr = -std::numeric_limits<double>::infinity();
    double min_arr = std::numeric_limits<double>::infinity();
    int straggler = -1;
    for (const Participation& pa : parts) {
      if (pa.arrive > max_arr) {
        max_arr = pa.arrive;
        straggler = pa.rank;
      }
      min_arr = std::min(min_arr, pa.arrive);
    }
    double inst_wait = 0;
    double inst_span = 0;
    for (const Participation& pa : parts) {
      const double w =
          std::max(0.0, std::min(pa.depart, max_arr) - pa.arrive);
      inst_wait += w;
      inst_span += pa.depart - pa.arrive;
      d.ranks[static_cast<std::size_t>(pa.rank)].collective_wait_us += w;
    }
    PhaseProfile& agg = phase_map[parts.front().phase];
    if (agg.caused_wait_us.empty())
      agg.caused_wait_us.assign(static_cast<std::size_t>(p), 0.0);
    agg.instances += 1;
    agg.wait_us += inst_wait;
    agg.span_us += inst_span;
    const double skew = max_arr - min_arr;
    if (skew > agg.max_skew_us) {
      agg.max_skew_us = skew;
      agg.worst_rank = straggler;
    }
    if (straggler >= 0)
      agg.caused_wait_us[static_cast<std::size_t>(straggler)] += inst_wait;
  }
  for (auto& [name, agg] : phase_map) {
    agg.name = name;
    d.phases.push_back(std::move(agg));
  }
  std::sort(d.phases.begin(), d.phases.end(),
            [](const PhaseProfile& a, const PhaseProfile& b) {
              if (a.wait_us != b.wait_us) return a.wait_us > b.wait_us;
              return a.name < b.name;
            });

  // ---- pass 2: merged timestamp-order scan ------------------------------
  // All tracks share one steady_clock epoch, so the global timestamp order
  // is a valid linearization. Per-rank critical path advances by active
  // (non-blocked) time; a flow edge splices the sender's chain into the
  // receiver's. Collectives need no extra edges — they decompose into the
  // p2p transport messages already stamped as flows.
  struct Ref {
    double ts;
    int rank;
    std::size_t idx;
  };
  std::vector<Ref> order;
  std::size_t total_events = 0;
  for (int r = 0; r < p; ++r) total_events += trace.track(r).events().size();
  order.reserve(total_events);
  for (int r = 0; r < p; ++r) {
    const auto& ev = trace.track(r).events();
    for (std::size_t i = 0; i < ev.size(); ++i)
      order.push_back({ev[i].ts_us, r, i});
  }
  std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
    return std::tie(a.ts, a.rank, a.idx) < std::tie(b.ts, b.rank, b.idx);
  });

  std::vector<double> cp(static_cast<std::size_t>(p), 0.0);
  std::vector<double> last_ts(static_cast<std::size_t>(p), 0.0);
  std::vector<int> wait_depth(static_cast<std::size_t>(p), 0);
  std::vector<bool> started(static_cast<std::size_t>(p), false);
  struct SendInfo {
    double cp = 0;
    double ts = 0;
  };
  std::map<std::tuple<int, int, int, std::uint64_t>, SendInfo> sends;
  struct ChannelAgg {
    std::uint64_t messages = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t max_in_flight = 0;
    Histogram latency;
  };
  std::map<std::pair<int, int>, ChannelAgg> channels;

  for (const Ref& ref : order) {
    const std::size_t r = static_cast<std::size_t>(ref.rank);
    const TraceEvent& e = trace.track(ref.rank).events()[ref.idx];
    const double t = e.ts_us;
    if (!started[r]) {
      started[r] = true;
      last_ts[r] = t;
    }
    if (wait_depth[r] == 0) cp[r] += t - last_ts[r];
    last_ts[r] = t;
    switch (e.kind) {
      case TraceEvent::Kind::kBegin:
        if (is_recv_wait(e)) ++wait_depth[r];
        break;
      case TraceEvent::Kind::kEnd:
        if (is_recv_wait(e) && wait_depth[r] > 0) --wait_depth[r];
        break;
      case TraceEvent::Kind::kFlowSend: {
        sends[{ref.rank, e.peer, e.tag, e.ordinal}] = {cp[r], t};
        ChannelAgg& ch = channels[{ref.rank, e.peer}];
        if (++ch.in_flight > ch.max_in_flight) ch.max_in_flight = ch.in_flight;
        break;
      }
      case TraceEvent::Kind::kFlowRecv: {
        const auto it = sends.find({e.peer, ref.rank, e.tag, e.ordinal});
        if (it != sends.end()) {
          cp[r] = std::max(cp[r], it->second.cp);
          ChannelAgg& ch = channels[{e.peer, ref.rank}];
          ch.messages += 1;
          const double lat = std::max(0.0, t - it->second.ts);
          ch.latency.observe(static_cast<std::uint64_t>(std::llround(lat)));
          if (ch.in_flight > 0) --ch.in_flight;
          sends.erase(it);
        } else {
          d.unmatched_recvs += 1;
        }
        break;
      }
      default:
        break;
    }
  }
  for (int r = 0; r < p; ++r)
    d.critical_path_us =
        std::max(d.critical_path_us, cp[static_cast<std::size_t>(r)]);
  d.unmatched_sends = sends.size();
  for (const auto& [key, agg] : channels) {
    ChannelProfile ch;
    ch.src = key.first;
    ch.dst = key.second;
    ch.messages = agg.messages;
    ch.max_in_flight = agg.max_in_flight;
    ch.latency_us = agg.latency;
    d.messages += agg.messages;
    d.channels.push_back(std::move(ch));
  }
  return d;
}

std::vector<Anomaly> analyze_profile(const ProfileDigest& digest,
                                     const WatchdogOptions& options) {
  std::vector<Anomaly> out;
  for (const RankProfile& rp : digest.ranks) {
    if (rp.wall_us < options.min_profile_wall_us) continue;
    const double frac = rp.wall_us > 0 ? rp.wait_us / rp.wall_us : 0.0;
    if (frac > options.wait_dominated_threshold) {
      std::ostringstream os;
      os.precision(4);
      os << "rank " << rp.rank << " spent " << 100.0 * frac << "% of its "
         << rp.wall_us / 1000.0 << " ms wall blocked in receives";
      out.push_back({rp.rank, 0, 0, "wait_dominated", os.str()});
    }
  }
  for (const PhaseProfile& ph : digest.phases) {
    if (ph.wait_us < options.min_straggler_wait_us) continue;
    int culprit = -1;
    double caused = 0;
    for (std::size_t r = 0; r < ph.caused_wait_us.size(); ++r) {
      if (ph.caused_wait_us[r] > caused) {
        caused = ph.caused_wait_us[r];
        culprit = static_cast<int>(r);
      }
    }
    if (culprit >= 0 && caused > options.straggler_skew_share * ph.wait_us) {
      std::ostringstream os;
      os.precision(4);
      os << "rank " << culprit << " caused " << 100.0 * caused / ph.wait_us
         << "% of the " << ph.wait_us / 1000.0 << " ms collective wait in "
         << ph.name << " (" << ph.instances << " collectives, max skew "
         << ph.max_skew_us / 1000.0 << " ms)";
      out.push_back({culprit, 0, 0, "straggler_skew", os.str()});
    }
  }
  return out;
}

std::string ProfileDigest::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n\"channels\": [";
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const ChannelProfile& ch = channels[i];
    if (i) os << ", ";
    os << "{\"dst\": " << ch.dst << ", \"latency_us\": ";
    append_histogram(os, ch.latency_us);
    os << ", \"max_in_flight\": " << ch.max_in_flight
       << ", \"messages\": " << ch.messages << ", \"src\": " << ch.src << "}";
  }
  os << "],\n";
  os << "\"critical_path_us\": " << num(critical_path_us) << ",\n";
  os << "\"messages\": " << messages << ",\n";
  os << "\"num_ranks\": " << num_ranks << ",\n";
  os << "\"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseProfile& ph = phases[i];
    if (i) os << ", ";
    os << "{\"caused_wait_us\": [";
    for (std::size_t r = 0; r < ph.caused_wait_us.size(); ++r) {
      if (r) os << ", ";
      os << num(ph.caused_wait_us[r]);
    }
    os << "], \"instances\": " << ph.instances
       << ", \"max_skew_us\": " << num(ph.max_skew_us) << ", \"name\": \""
       << escape(ph.name) << "\", \"span_us\": " << num(ph.span_us)
       << ", \"wait_us\": " << num(ph.wait_us)
       << ", \"worst_rank\": " << ph.worst_rank << "}";
  }
  os << "],\n";
  os << "\"ranks\": [";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankProfile& rp = ranks[i];
    if (i) os << ", ";
    os << "{\"busy_us\": " << num(rp.busy_us)
       << ", \"collective_wait_us\": " << num(rp.collective_wait_us)
       << ", \"comm_us\": " << num(rp.comm_us)
       << ", \"compute_us\": " << num(rp.compute_us)
       << ", \"rank\": " << rp.rank << ", \"wait_us\": " << num(rp.wait_us)
       << ", \"wall_us\": " << num(rp.wall_us) << "}";
  }
  os << "],\n";
  os << "\"schema\": \"" << escape(schema) << "\",\n";
  os << "\"unmatched_recvs\": " << unmatched_recvs << ",\n";
  os << "\"unmatched_sends\": " << unmatched_sends << ",\n";
  os << "\"wall_us\": " << num(wall_us) << "\n}\n";
  return os.str();
}

bool ProfileDigest::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    LOG_WARN << "profile: cannot open " << path << " for writing";
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace dinfomap::obs
