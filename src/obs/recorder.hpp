// Per-run flight recorder: one trace track, one metrics registry, one round
// stream, and one anomaly list per rank, behind a single master switch.
//
// Threading contract: rank r's thread is the only writer of track(r),
// metrics(r), the rank-r round stream, and the rank-r anomaly list, so no
// recording path takes a lock. The driver reads everything after the job
// joins (and the post-run watchdog appends to the global anomaly list from a
// single thread).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace dinfomap::obs {

struct ObsOptions {
  /// Master switch. Off (the default) keeps the recorder allocation-light
  /// and every instrumentation site a dead branch.
  bool enabled = false;
  /// Record trace events (spans, instants, counters) when enabled.
  bool trace = true;
  /// Run the invariant watchdog over the round stream when enabled.
  bool watchdog = true;
  WatchdogOptions watchdog_options;
  /// When non-empty, the driver writes the Chrome/Perfetto trace JSON here.
  std::string trace_path;
  /// When non-empty, the driver writes the run-report JSON here.
  std::string report_path;
  /// When non-empty, the driver writes the standalone profile-digest JSON
  /// here (the digest is also embedded in the run report either way).
  std::string profile_path;
  /// Pin the trace epoch to this steady-clock reading (ns since the clock's
  /// origin); 0 = the recorder's construction time. Socket-transport workers
  /// all receive the launcher's reading so their per-process traces merge
  /// onto one timeline (obs/trace_merge.hpp).
  std::uint64_t trace_epoch_steady_ns = 0;
};

class Recorder {
 public:
  Recorder(int num_ranks, const ObsOptions& options);

  [[nodiscard]] const ObsOptions& options() const { return options_; }
  [[nodiscard]] bool enabled() const { return options_.enabled; }
  [[nodiscard]] int num_ranks() const { return num_ranks_; }

  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }
  /// Rank r's trace track; nullptr when tracing is off (SpanScope accepts
  /// null, so call sites never branch).
  [[nodiscard]] TraceBuffer* track(int rank) {
    return options_.enabled && options_.trace ? &trace_.track(rank) : nullptr;
  }
  /// Rank r's metrics registry; nullptr when the recorder is disabled.
  [[nodiscard]] MetricsRegistry* metrics(int rank) {
    return options_.enabled ? &metrics_[static_cast<std::size_t>(rank)]
                            : nullptr;
  }
  [[nodiscard]] const std::vector<MetricsRegistry>& all_metrics() const {
    return metrics_;
  }

  /// Append one round observation to rank `rank`'s stream (no-op when
  /// disabled).
  void record_round(int rank, const RoundSample& sample) {
    if (!options_.enabled) return;
    rounds_[static_cast<std::size_t>(rank)].push_back(sample);
  }
  [[nodiscard]] const std::vector<std::vector<RoundSample>>& round_streams()
      const {
    return rounds_;
  }

  /// Report an invariant violation detected inline by rank `rank` (e.g. an
  /// isSent dedup violation). Also mirrored into the rank's trace track as an
  /// instant event and onto the log as a warning.
  void report_anomaly(int rank, Anomaly anomaly);

  /// Build the causal profile digest from the trace and fold the profile
  /// watchdog rules (wait_dominated, straggler_skew) into the anomaly list.
  /// Call once, after the job joins and BEFORE finish_watchdog(): mirrored
  /// anomaly instants carry post-run timestamps that must not enter the
  /// digest's wall-clock window.
  void finish_profile();
  /// The digest finish_profile() built, or nullptr when tracing was off or
  /// finish_profile() has not run.
  [[nodiscard]] const ProfileDigest* profile() const {
    return profile_built_ ? &profile_ : nullptr;
  }

  /// Run the watchdog over the recorded round stream and fold its findings
  /// into the anomaly list. Call once, after the job joins.
  void finish_watchdog();

  /// All anomalies: per-rank inline reports (rank order) followed by
  /// watchdog findings.
  [[nodiscard]] std::vector<Anomaly> anomalies() const;

 private:
  ObsOptions options_;
  int num_ranks_;
  Trace trace_;
  std::vector<MetricsRegistry> metrics_;
  std::vector<std::vector<RoundSample>> rounds_;
  std::vector<std::vector<Anomaly>> rank_anomalies_;
  std::vector<Anomaly> global_anomalies_;
  bool profile_built_ = false;
  ProfileDigest profile_;
};

}  // namespace dinfomap::obs
