#include "obs/metrics.hpp"

#include <sstream>

namespace dinfomap::obs {

void MetricsRegistry::absorb(const comm::CommCounters& c,
                             const std::string& prefix) {
  counter(prefix + ".p2p_messages").set(c.p2p_messages);
  counter(prefix + ".p2p_bytes").set(c.p2p_bytes);
  counter(prefix + ".collective_messages").set(c.collective_messages);
  counter(prefix + ".collective_bytes").set(c.collective_bytes);
  counter(prefix + ".collective_calls").set(c.collective_calls);
  counter(prefix + ".packed_streams").set(c.packed_streams);
  counter(prefix + ".retransmit_requests").set(c.retransmit_requests);
  counter(prefix + ".retransmits").set(c.retransmits);
  counter(prefix + ".dup_frames_dropped").set(c.dup_frames_dropped);
  counter(prefix + ".checksum_failures").set(c.checksum_failures);
}

void MetricsRegistry::absorb(const comm::FaultCounters& f,
                             const std::string& prefix) {
  counter(prefix + ".drops").set(f.drops);
  counter(prefix + ".duplicates").set(f.duplicates);
  counter(prefix + ".reorders").set(f.reorders);
  counter(prefix + ".corruptions").set(f.corruptions);
  counter(prefix + ".stalls").set(f.stalls);
}

void MetricsRegistry::absorb(const perf::WorkCounters& w,
                             const std::string& prefix) {
  counter(prefix + ".arcs_scanned").set(w.arcs_scanned);
  counter(prefix + ".delta_evals").set(w.delta_evals);
  counter(prefix + ".module_updates").set(w.module_updates);
  counter(prefix + ".messages").set(w.messages);
  counter(prefix + ".bytes").set(w.bytes);
}

namespace {
void append_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}
}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ", ";
    first = false;
    os << '"';
    append_escaped(os, name);
    os << "\": " << c.value;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ", ";
    first = false;
    os << '"';
    append_escaped(os, name);
    os << "\": " << g.value;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ", ";
    first = false;
    os << '"';
    append_escaped(os, name);
    os << "\": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
       << ", \"max\": " << h.max() << ", \"mean\": " << h.mean()
       << ", \"p50\": " << h.p50() << ", \"p90\": " << h.p90()
       << ", \"p99\": " << h.p99() << ", \"buckets\": [";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (h.buckets()[static_cast<std::size_t>(b)] == 0) continue;
      if (!bfirst) os << ", ";
      bfirst = false;
      os << '[' << Histogram::bucket_low(b) << ", "
         << h.buckets()[static_cast<std::size_t>(b)] << ']';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

}  // namespace dinfomap::obs
