// Flight-recorder tracing: cheap per-rank event buffers and a Chrome
// trace-event (Perfetto-loadable) JSON exporter.
//
// Each rank owns one TraceBuffer and is its only writer, so recording is a
// plain vector append with no synchronization; the exporter runs after the
// job joins. When tracing is disabled the per-span cost is a single branch on
// a bool captured once at SpanScope construction — recording never touches
// the algorithm's RNG or communication, so traced and untraced runs produce
// bit-identical results (asserted by the chaos determinism regression).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dinfomap::obs {

/// One recorded event. `name` must point at static-duration storage (phase
/// names, literal tags) — buffers store the pointer, not a copy.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kBegin,    ///< span open
    kEnd,      ///< span close (matches the innermost open span)
    kInstant,  ///< point event (anomalies, markers)
    kCounter,  ///< sampled numeric series
    // Causal events (DESIGN.md §13). Flow events pair the nth send on a
    // (src, dst, tag) channel with the nth consumed receive — valid because
    // per-(source, tag) consumption order equals send order both fault-free
    // (FIFO mailbox) and under recovery (min-seq matching with dedup).
    kFlowSend,          ///< message departure; peer = dest, tag + ordinal
    kFlowRecv,          ///< message consumption; peer = source, tag + ordinal
    kCollectiveArrive,  ///< rank enters a leaf collective; tag identifies it
    kCollectiveDepart,  ///< rank leaves that collective
  };
  Kind kind = Kind::kInstant;
  const char* name = "";
  double ts_us = 0;   ///< microseconds since the trace epoch
  double value = 0;   ///< kCounter payload; unused otherwise
  std::int32_t peer = -1;     ///< flow events: the other endpoint's rank
  std::int32_t tag = -1;      ///< flow events / collectives: message tag
  std::uint64_t ordinal = 0;  ///< flow events: per-(peer, tag) send/recv index
};

/// Single-writer event buffer for one rank (one track in the exported trace).
class TraceBuffer {
 public:
  using Clock = std::chrono::steady_clock;

  TraceBuffer() = default;

  /// Bind to the trace epoch and arm/disarm recording. Called once by the
  /// owning Trace before any rank runs.
  void attach(Clock::time_point epoch, bool enabled) {
    epoch_ = epoch;
    enabled_ = enabled;
  }

  [[nodiscard]] bool enabled() const { return enabled_; }

  void begin(const char* name) { push(TraceEvent::Kind::kBegin, name, 0); }
  void end(const char* name) { push(TraceEvent::Kind::kEnd, name, 0); }
  void instant(const char* name) { push(TraceEvent::Kind::kInstant, name, 0); }
  void counter(const char* name, double value) {
    push(TraceEvent::Kind::kCounter, name, value);
  }

  /// Stamp the departure of the `ordinal`-th message this rank sends on the
  /// (this rank → peer, tag) channel. Exported as a Perfetto flow start.
  void flow_send(int peer, int tag, std::uint64_t ordinal) {
    push_causal(TraceEvent::Kind::kFlowSend, "msg", peer, tag, ordinal);
  }
  /// Stamp the consumption of the `ordinal`-th message received on the
  /// (peer → this rank, tag) channel. Exported as a Perfetto flow finish.
  void flow_recv(int peer, int tag, std::uint64_t ordinal) {
    push_causal(TraceEvent::Kind::kFlowRecv, "msg", peer, tag, ordinal);
  }
  /// Stamp entry/exit of a leaf collective (`op` = "barrier", "alltoallv",
  /// …; `tag` is the collective tag, identical across ranks per call site).
  void collective_arrive(const char* op, int tag) {
    push_causal(TraceEvent::Kind::kCollectiveArrive, op, -1, tag, 0);
  }
  void collective_depart(const char* op, int tag) {
    push_causal(TraceEvent::Kind::kCollectiveDepart, op, -1, tag, 0);
  }

  /// Append a fully caller-built event, bypassing the clock. For synthetic
  /// traces in tests and the post-run anomaly mirror; respects `enabled`.
  void append_raw(const TraceEvent& e) {
    if (enabled_) events_.push_back(e);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

 private:
  void push(TraceEvent::Kind kind, const char* name, double value) {
    if (!enabled_) return;
    TraceEvent e;
    e.kind = kind;
    e.name = name;
    e.ts_us = std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
                  .count();
    e.value = value;
    events_.push_back(e);
  }

  void push_causal(TraceEvent::Kind kind, const char* name, int peer, int tag,
                   std::uint64_t ordinal) {
    if (!enabled_) return;
    TraceEvent e;
    e.kind = kind;
    e.name = name;
    e.ts_us = std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
                  .count();
    e.peer = peer;
    e.tag = tag;
    e.ordinal = ordinal;
    events_.push_back(e);
  }

  bool enabled_ = false;
  Clock::time_point epoch_{};
  std::vector<TraceEvent> events_;
};

/// RAII span. A null buffer (tracing subsystem absent) or a disabled buffer
/// degrades to a no-op — the enabled flag is checked exactly once here.
class SpanScope {
 public:
  SpanScope(TraceBuffer* buf, const char* name)
      : buf_(buf != nullptr && buf->enabled() ? buf : nullptr), name_(name) {
    if (buf_ != nullptr) buf_->begin(name_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (buf_ != nullptr) buf_->end(name_);
  }

 private:
  TraceBuffer* buf_;
  const char* name_;
};

/// Multi-track trace: one buffer per rank, exported as Chrome trace-event
/// JSON (loadable at ui.perfetto.dev or chrome://tracing). Rank r is thread
/// `tid = r` of process 0, named "rank r".
class Trace {
 public:
  /// `epoch_steady_ns` pins the trace epoch to an absolute steady-clock
  /// reading (nanoseconds since the clock's arbitrary origin); 0 means "now".
  /// Worker processes of one multi-process job are all given the launcher's
  /// reading — CLOCK_MONOTONIC is machine-wide, so their merged per-process
  /// traces share a timeline.
  Trace(int num_tracks, bool enabled, std::uint64_t epoch_steady_ns = 0);

  [[nodiscard]] int num_tracks() const {
    return static_cast<int>(tracks_.size());
  }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] TraceBuffer& track(int i) { return tracks_[i]; }
  [[nodiscard]] const TraceBuffer& track(int i) const { return tracks_[i]; }

  /// Chrome trace-event JSON: `{"traceEvents": [...], ...}`. Spans become
  /// B/E pairs, instants "i", counters "C", flow sends/recvs "s"/"f" (the
  /// message arrows between rank tracks), and collective arrive/depart pairs
  /// render as B/E spans named after the collective op.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path`; returns false (and logs a warning) on
  /// I/O failure.
  bool write(const std::string& path) const;

 private:
  bool enabled_;
  std::vector<TraceBuffer> tracks_;
};

}  // namespace dinfomap::obs
