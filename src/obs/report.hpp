// Structured run report: one JSON document per distributed_infomap call that
// captures everything the paper's evaluation plots need — config echo,
// per-level and per-round exact codelengths, per-phase/per-rank work and
// wall seconds, per-rank comm counters, metrics dumps, and the watchdog's
// anomaly list. Benches consume this instead of re-accumulating counters by
// hand; `schema` versions the layout.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/counters.hpp"
#include "comm/fault.hpp"
#include "obs/profile.hpp"
#include "obs/watchdog.hpp"
#include "perf/work_counters.hpp"

namespace dinfomap::obs {

inline constexpr const char* kRunReportSchema = "dinfomap.run_report/1";

struct RunReport {
  std::string schema = kRunReportSchema;
  std::string algorithm = "distributed_infomap";

  /// Config echo as (key, raw-JSON value) pairs in insertion order; use the
  /// add_config helpers so values are valid JSON.
  std::vector<std::pair<std::string, std::string>> config;

  std::uint64_t graph_vertices = 0;
  std::uint64_t graph_edges = 0;
  int num_ranks = 0;

  double codelength = 0;
  double singleton_codelength = 0;
  std::uint64_t num_modules = 0;

  /// One row per outer level (level 0 = stage 1 with delegates).
  struct LevelRow {
    int level = 0;
    std::uint64_t vertices = 0;
    int rounds = 0;
    std::uint64_t moves = 0;
    double codelength_before = 0;
    double codelength_after = 0;
    std::uint64_t num_modules = 0;
  };
  std::vector<LevelRow> levels;

  /// Exact global L after every stage-1 round (the Fig. 4 series).
  std::vector<double> round_codelengths;

  int stage1_rounds = 0;
  int stage2_levels = 0;
  double stage1_wall_seconds = 0;
  double stage2_wall_seconds = 0;

  /// Per-phase per-rank work and wall seconds (the Fig. 8 inputs).
  struct PhaseRow {
    std::string name;
    std::vector<perf::WorkCounters> work;  ///< indexed by rank
    std::vector<double> seconds;           ///< indexed by rank
  };
  std::vector<PhaseRow> phases;

  /// Per-rank totals split by stage (the two Fig. 9 series).
  std::array<std::vector<perf::WorkCounters>, 2> stage_work;

  std::vector<comm::CommCounters> comm;  ///< indexed by rank

  /// Faults the plan injected, indexed by source rank (empty without a plan).
  std::vector<comm::FaultCounters> faults_injected;

  /// Per-rank metrics registry dumps, already JSON (MetricsRegistry::to_json).
  std::vector<std::string> metrics_json;

  std::vector<Anomaly> anomalies;

  /// Causal profile digest (DESIGN.md §13); only meaningful when
  /// `has_profile` — emitted as `"profile": null` otherwise.
  ProfileDigest profile;
  bool has_profile = false;

  // ---- config echo helpers ----------------------------------------------
  void add_config(const std::string& key, const std::string& value);
  void add_config(const std::string& key, const char* value);
  void add_config(const std::string& key, double value);
  void add_config(const std::string& key, std::int64_t value);
  void add_config(const std::string& key, int value) {
    add_config(key, static_cast<std::int64_t>(value));
  }
  void add_config(const std::string& key, std::uint64_t value);
  void add_config(const std::string& key, bool value);

  /// The full document as JSON.
  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to `path`; returns false (and logs a warning) on I/O
  /// failure.
  bool write(const std::string& path) const;
};

}  // namespace dinfomap::obs
