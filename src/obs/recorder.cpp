#include "obs/recorder.hpp"

#include "util/logging.hpp"

namespace dinfomap::obs {

Recorder::Recorder(int num_ranks, const ObsOptions& options)
    : options_(options),
      num_ranks_(num_ranks),
      trace_(num_ranks, options.enabled && options.trace,
             options.trace_epoch_steady_ns) {
  metrics_.resize(static_cast<std::size_t>(num_ranks));
  rounds_.resize(static_cast<std::size_t>(num_ranks));
  rank_anomalies_.resize(static_cast<std::size_t>(num_ranks));
}

void Recorder::report_anomaly(int rank, Anomaly anomaly) {
  if (!options_.enabled) return;
  LOG_WARN << "watchdog: " << anomaly.kind << " (level " << anomaly.level
           << ", round " << anomaly.round << "): " << anomaly.detail;
  if (TraceBuffer* t = track(rank)) t->instant("anomaly");
  rank_anomalies_[static_cast<std::size_t>(rank)].push_back(std::move(anomaly));
}

void Recorder::finish_profile() {
  if (!options_.enabled || !options_.trace) return;
  profile_ = build_profile(trace_);
  profile_built_ = true;
  if (!options_.watchdog) return;
  std::vector<Anomaly> found =
      analyze_profile(profile_, options_.watchdog_options);
  for (Anomaly& a : found) {
    LOG_WARN << "watchdog: " << a.kind << " (rank " << a.rank
             << "): " << a.detail;
    if (TraceBuffer* t = track(a.rank < 0 ? 0 : a.rank)) t->instant("anomaly");
    global_anomalies_.push_back(std::move(a));
  }
}

void Recorder::finish_watchdog() {
  if (!options_.enabled || !options_.watchdog) return;
  std::vector<Anomaly> found = analyze_rounds(rounds_, options_.watchdog_options);
  for (Anomaly& a : found) {
    LOG_WARN << "watchdog: " << a.kind << " (level " << a.level << ", round "
             << a.round << "): " << a.detail;
    if (TraceBuffer* t = track(a.rank < 0 ? 0 : a.rank)) t->instant("anomaly");
    global_anomalies_.push_back(std::move(a));
  }
}

std::vector<Anomaly> Recorder::anomalies() const {
  std::vector<Anomaly> out;
  for (const auto& ra : rank_anomalies_) out.insert(out.end(), ra.begin(), ra.end());
  out.insert(out.end(), global_anomalies_.begin(), global_anomalies_.end());
  return out;
}

}  // namespace dinfomap::obs
