#include "obs/watchdog.hpp"

#include <algorithm>
#include <sstream>

namespace dinfomap::obs {

std::vector<Anomaly> analyze_rounds(
    const std::vector<std::vector<RoundSample>>& streams,
    const WatchdogOptions& options) {
  std::vector<Anomaly> out;
  if (streams.empty() || streams.front().empty()) return out;
  const std::size_t rounds = streams.front().size();

  // The synchronous protocol requires every rank to observe every round; a
  // ragged stream is itself an anomaly (and we only analyze the common
  // prefix below).
  std::size_t common = rounds;
  for (std::size_t r = 1; r < streams.size(); ++r) {
    if (streams[r].size() != rounds) {
      std::ostringstream os;
      os << "rank " << r << " recorded " << streams[r].size()
         << " rounds, rank 0 recorded " << rounds;
      out.push_back({static_cast<int>(r), 0, 0, "ragged_round_stream", os.str()});
      common = std::min(common, streams[r].size());
    }
  }

  // Non-monotone global MDL: L after a round should not exceed L after the
  // previous round beyond tolerance. Rank 0's stream carries the global
  // value (identical on all ranks by the allreduce). Only exact samples
  // enter the comparison — async drain epochs record the last reconciled L
  // and flag it stale, and judging a stale estimate against an exact value
  // would manufacture regressions.
  const auto& s0 = streams.front();
  bool have_prev = false;
  double prev_l = 0;
  for (std::size_t i = 0; i < s0.size(); ++i) {
    if (!s0[i].exact_mdl) continue;
    if (have_prev) {
      const double regression = s0[i].codelength - prev_l;
      if (regression > options.mdl_tolerance) {
        std::ostringstream os;
        os.precision(12);
        os << "L rose " << prev_l << " -> " << s0[i].codelength << " (+"
           << regression << ")";
        out.push_back(
            {-1, s0[i].level, s0[i].round, "mdl_regression", os.str()});
      }
    }
    have_prev = true;
    prev_l = s0[i].codelength;
  }

  // Per-round work skew across ranks.
  for (std::size_t i = 0; i < common; ++i) {
    std::uint64_t total = 0;
    std::uint64_t max_work = 0;
    int max_rank = 0;
    for (std::size_t r = 0; r < streams.size(); ++r) {
      const std::uint64_t w = streams[r][i].rank_work;
      total += w;
      if (w > max_work) {
        max_work = w;
        max_rank = static_cast<int>(r);
      }
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(streams.size());
    if (mean < static_cast<double>(options.min_skew_work)) continue;
    if (static_cast<double>(max_work) > options.skew_threshold * mean) {
      std::ostringstream os;
      os << "rank " << max_rank << " scanned " << max_work
         << " arcs vs mean " << static_cast<std::uint64_t>(mean) << " ("
         << static_cast<double>(max_work) / mean << "x)";
      out.push_back(
          {max_rank, s0[i].level, s0[i].round, "work_skew", os.str()});
    }
  }

  // Pathological unsynced-skip rates: a rank whose move search mostly hits
  // modules absent from its local table is being starved by the swap
  // protocol (previously this skip was silent — see dist move search).
  for (std::size_t i = 0; i < common; ++i) {
    for (std::size_t r = 0; r < streams.size(); ++r) {
      const RoundSample& s = streams[r][i];
      if (s.skipped_unsynced < options.min_skip_samples) continue;
      const auto work = std::max<std::uint64_t>(s.rank_work, 1);
      const double rate = static_cast<double>(s.skipped_unsynced) /
                          static_cast<double>(work);
      if (rate > options.skip_rate_threshold) {
        std::ostringstream os;
        os << "rank " << r << " skipped " << s.skipped_unsynced
           << " unsynced candidates against " << s.rank_work
           << " scanned arcs";
        out.push_back({static_cast<int>(r), s.level, s.round,
                       "unsynced_skip_rate", os.str()});
      }
    }
  }

  // Async worklist thrashing: requeues dominating pops means vertices are
  // reactivated faster than the drain retires them — the staleness budget is
  // too loose for the graph (ranks keep invalidating each other's work).
  for (std::size_t i = 0; i < common; ++i) {
    for (std::size_t r = 0; r < streams.size(); ++r) {
      const RoundSample& s = streams[r][i];
      if (!s.is_epoch || s.worklist_popped < options.min_worklist_popped)
        continue;
      const double ratio = static_cast<double>(s.worklist_requeued) /
                           static_cast<double>(s.worklist_popped);
      if (ratio > options.worklist_thrash_ratio) {
        std::ostringstream os;
        os << "rank " << r << " requeued " << s.worklist_requeued
           << " vertices against " << s.worklist_popped << " pops ("
           << ratio << "x)";
        out.push_back({static_cast<int>(r), s.level, s.round,
                       "worklist_thrash", os.str()});
      }
    }
  }

  // Async starvation: a rank with a dead worklist while the epoch still
  // moves many vertices globally is cut out of the priority schedule —
  // usually a partitioning or activation-propagation problem.
  for (std::size_t i = 0; i < common; ++i) {
    for (std::size_t r = 0; r < streams.size(); ++r) {
      const RoundSample& s = streams[r][i];
      if (!s.is_epoch) continue;
      if (s.worklist_popped != 0 || s.worklist_pushed != 0) continue;
      if (s.moves < options.starved_min_global_moves) continue;
      std::ostringstream os;
      os << "rank " << r << " worklist idle while the epoch moved " << s.moves
         << " vertices globally";
      out.push_back({static_cast<int>(r), s.level, s.round,
                     "starved_worklist", os.str()});
    }
  }
  return out;
}

std::vector<Anomaly> analyze_block_cache(const BlockCacheSample& sample,
                                         const WatchdogOptions& options) {
  std::vector<Anomaly> out;
  const std::uint64_t faults = sample.hits + sample.misses;
  if (faults < options.min_cache_faults) return out;
  if (sample.evictions == 0) return out;  // cold misses only: budget suffices
  const double miss_ratio =
      static_cast<double>(sample.misses) / static_cast<double>(faults);
  if (miss_ratio <= options.cache_miss_ratio_threshold) return out;
  std::ostringstream os;
  os << "decode cache miss ratio " << miss_ratio << " over " << faults
     << " block faults with " << sample.evictions
     << " evictions — working set cycles through the cache budget; raise "
        "--block-cache-mb or repartition for block locality";
  out.push_back({-1, 0, 0, "cache_thrash", os.str()});
  return out;
}

}  // namespace dinfomap::obs
