// Post-run causal profiler (DESIGN.md §13): reconstructs the happens-before
// DAG of a finished run from the trace — per-rank spans, cross-rank flow
// edges (message send → consumption), and per-collective arrival stamps —
// and reduces it to a versioned digest: the run's critical path, a per-rank
// wall = wait + comm + compute decomposition, per-phase straggler/skew
// attribution, and per-channel delivery-latency/in-flight statistics.
//
// The profiler is strictly read-only over the trace buffers and runs after
// the ranks join, so it shares the flight recorder's zero-perturbation
// contract: building (or not building) the digest cannot change a run's
// partitions, MDL, or round traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace dinfomap::obs {

inline constexpr const char* kProfileSchema = "dinfomap.profile/1";

/// One rank's wall-clock decomposition. The three segments tile the rank's
/// wall time by construction: wait is measured (recv_wait spans), comm is
/// measured (leaf-collective occupancy minus the wait nested inside it), and
/// compute is the remainder.
struct RankProfile {
  int rank = 0;
  double wall_us = 0;     ///< last − first event on the rank's track
  double wait_us = 0;     ///< blocked inside recv_wait spans
  double comm_us = 0;     ///< inside leaf collectives, minus contained wait
  double compute_us = 0;  ///< wall − wait − comm
  double busy_us = 0;     ///< wall − wait; critical path ≥ max over ranks
  /// Cross-rank skew share of this rank's wait: time between its arrival at
  /// a collective and the last rank's arrival, summed over collectives.
  double collective_wait_us = 0;
};

/// Cross-rank collective wait aggregated per enclosing span name (the
/// paper's phases, plus Stage/MergeLevel/AsyncEpoch structure spans).
struct PhaseProfile {
  std::string name;
  std::uint64_t instances = 0;  ///< leaf-collective calls under this name
  double wait_us = 0;   ///< Σ over instances and ranks of arrival-skew wait
  double span_us = 0;   ///< Σ collective occupancy over instances and ranks
  double max_skew_us = 0;  ///< worst single-instance arrival spread
  int worst_rank = -1;     ///< last arriver of that worst instance
  /// Per-rank wait *caused*: instance wait is charged to its last arriver.
  std::vector<double> caused_wait_us;
};

/// One directed point-to-point channel (collective traffic included — the
/// collectives decompose into p2p transport messages).
struct ChannelProfile {
  int src = 0;
  int dst = 0;
  std::uint64_t messages = 0;       ///< matched send/recv pairs
  std::uint64_t max_in_flight = 0;  ///< peak sent-but-not-yet-consumed depth
  Histogram latency_us;             ///< send-to-consumption latency (µs)
};

/// The `dinfomap.profile/1` digest. Embedded in the run report and written
/// standalone via `dinfomap_cli --profile out.json`.
struct ProfileDigest {
  std::string schema = kProfileSchema;
  int num_ranks = 0;
  double wall_us = 0;  ///< latest event across ranks − earliest event
  /// Length of the longest chain of causally ordered active time: per-rank
  /// execution advances it by non-blocked time, message edges splice in the
  /// sender's chain. The run cannot finish faster than this on any number of
  /// ranks — the distributed analogue of a single thread's busy time.
  double critical_path_us = 0;
  std::uint64_t messages = 0;         ///< matched flow pairs
  std::uint64_t unmatched_sends = 0;  ///< sends never consumed (should be 0)
  std::uint64_t unmatched_recvs = 0;  ///< recvs without a send (should be 0)
  std::vector<RankProfile> ranks;       ///< indexed by rank
  std::vector<PhaseProfile> phases;     ///< sorted by wait_us descending
  std::vector<ChannelProfile> channels; ///< sorted by (src, dst)

  /// One JSON object, keys in sorted order within every object so the
  /// artifact is byte-stable (same discipline as the metrics registry).
  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to `path`; returns false (and logs a warning) on I/O
  /// failure.
  bool write(const std::string& path) const;
};

/// Build the digest from a finished trace. Tolerates traces without causal
/// events (pre-§13 or synthetic): those yield empty channel/phase tables and
/// a critical path equal to the max per-rank busy time.
[[nodiscard]] ProfileDigest build_profile(const Trace& trace);

/// Watchdog rules over the digest: `wait_dominated` (a rank mostly blocked)
/// and `straggler_skew` (one rank causing most of a phase's collective
/// wait). Callers fold the findings into the recorder's anomaly list.
[[nodiscard]] std::vector<Anomaly> analyze_profile(
    const ProfileDigest& digest, const WatchdogOptions& options);

}  // namespace dinfomap::obs
