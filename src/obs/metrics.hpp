// Typed per-rank metrics registry: monotonic counters, gauges, and log2-
// bucket histograms, emitted in sorted-name order so every dump is
// deterministic and diffable.
//
// Each rank owns one registry and is its only writer while the job runs; the
// driver reads them after the ranks join. Hot paths resolve a metric once and
// keep the reference — the by-name lookup is for registration and reporting,
// not the fast path. The registry also absorbs whole CommCounters /
// WorkCounters snapshots, replacing the hand-threaded struct copies the
// benches used to do.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "comm/counters.hpp"
#include "comm/fault.hpp"
#include "perf/work_counters.hpp"

namespace dinfomap::obs {

/// Monotonic event count.
struct Counter {
  std::uint64_t value = 0;
  void inc(std::uint64_t n = 1) { value += n; }
  void set(std::uint64_t v) { value = v; }
};

/// Last-written level (table sizes, thresholds, ratios).
struct Gauge {
  double value = 0;
  void set(double v) { value = v; }
};

/// Power-of-two bucket histogram for non-negative integer samples.
/// Bucket 0 holds exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b - 1] — i.e.
/// all values whose bit width is b. 64-bit samples always fit: 65 buckets.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void observe(std::uint64_t v) {
    ++counts_[static_cast<std::size_t>(bucket_of(v))];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  /// Bucket index of `v`: 0 for 0, otherwise bit_width(v).
  [[nodiscard]] static int bucket_of(std::uint64_t v) {
    int b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  /// Smallest value landing in bucket `b` (inclusive lower edge).
  [[nodiscard]] static std::uint64_t bucket_low(int b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Largest value landing in bucket `b` (inclusive upper edge).
  [[nodiscard]] static std::uint64_t bucket_high(int b) {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Approximate q-quantile (q in [0, 1]) by linear interpolation inside the
  /// log2 bucket holding the q·count-th sample, clamped to the observed max.
  /// Exact when a bucket holds one distinct value (e.g. bucket 0); otherwise
  /// accurate to the bucket's width, which is the resolution this histogram
  /// trades for O(1) observes.
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (count_ == 1) return static_cast<double>(max_);
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const double target = q * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      const std::uint64_t c = counts_[static_cast<std::size_t>(b)];
      if (c == 0) continue;
      if (static_cast<double>(cum) + static_cast<double>(c) >= target) {
        const double lo = static_cast<double>(bucket_low(b));
        const double hi = static_cast<double>(bucket_high(b));
        const double frac =
            (target - static_cast<double>(cum)) / static_cast<double>(c);
        const double v = lo + frac * (hi - lo);
        const double cap = static_cast<double>(max_);
        return v < cap ? v : cap;
      }
      cum += c;
    }
    return static_cast<double>(max_);
  }
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] const std::array<std::uint64_t, kNumBuckets>& buckets() const {
    return counts_;
  }

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Named metrics for one rank. std::map keeps every dump sorted by name.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Snapshot a comm counter struct as `<prefix>.p2p_messages` etc.
  void absorb(const comm::CommCounters& c, const std::string& prefix);
  /// Snapshot injected-fault tallies as `<prefix>.drops` etc.
  void absorb(const comm::FaultCounters& f, const std::string& prefix);
  /// Snapshot a work counter struct as `<prefix>.arcs_scanned` etc.
  void absorb(const perf::WorkCounters& w, const std::string& prefix);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}} with keys in sorted order; histograms emit only non-empty buckets
  /// as [bucket_low, count] pairs.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dinfomap::obs
