// Invariant watchdog: consumes the per-rank round stream the flight recorder
// captured and flags violations of the properties the algorithm is supposed
// to maintain — non-monotone global MDL, per-rank work skew beyond a
// threshold, and isSent dedup violations (reported inline by the ranks).
// Findings are structured anomaly events: they land in the run report, in
// the trace (as instant events), and on the log as warnings so tests can
// capture them through util::set_log_sink.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dinfomap::obs {

/// One synchronous round as observed by one rank.
struct RoundSample {
  int level = 0;
  int round = 0;              ///< round index within the run (monotone per rank)
  double codelength = 0;      ///< exact global L after the round
  std::uint64_t moves = 0;    ///< global move count of the round
  std::uint64_t rank_work = 0;  ///< this rank's arcs scanned during the round
  /// Move candidates this rank skipped because the target module was not yet
  /// synced into its local table. A few per round are normal right after
  /// module churn; a persistently high rate means the swap protocol is
  /// starving the move search.
  std::uint64_t skipped_unsynced = 0;
  /// Vertex evaluations the active-set fast path skipped this round (sync
  /// engine; 0 when the fast path is off).
  std::uint64_t pruned = 0;
  /// True when `codelength` is an exact post-allreduce global value (every
  /// synchronous round; async reconciliation epochs). Async drain epochs
  /// record the last reconciled value instead and mark it stale here, so the
  /// MDL-monotonicity rule must only compare exact samples.
  bool exact_mdl = true;
  /// Async engine: set on epoch samples (including reconciliation epochs) so
  /// the worklist rules below only judge worklist-driven rounds.
  bool is_epoch = false;
  // Async worklist traffic of the epoch (all zero for synchronous rounds).
  std::uint64_t worklist_pushed = 0;    ///< first-time activations enqueued
  std::uint64_t worklist_popped = 0;    ///< live entries drained & evaluated
  std::uint64_t worklist_requeued = 0;  ///< priority re-raises of queued vertices
  std::uint64_t worklist_stale = 0;     ///< lazy-deletion pops discarded
};

/// A detected invariant violation. `rank < 0` means "global" (derived from
/// the cross-rank view rather than one rank's stream).
struct Anomaly {
  int rank = -1;
  int level = 0;
  int round = 0;
  std::string kind;    ///< stable identifier, e.g. "mdl_regression"
  std::string detail;  ///< human-readable specifics
};

struct WatchdogOptions {
  /// L may grow by at most this much between consecutive rounds before the
  /// regression is flagged (conflicting synchronous moves can overshoot by a
  /// hair; the round loop itself tolerates round_theta).
  double mdl_tolerance = 1e-7;
  /// Flag a round when max rank work exceeds `skew_threshold` × mean rank
  /// work (only once the round does meaningful work — see min_skew_work).
  double skew_threshold = 8.0;
  /// Rounds whose mean per-rank work is below this many arcs are too small
  /// for a skew verdict and are skipped.
  std::uint64_t min_skew_work = 1024;
  /// Flag a rank's round when more than this fraction of its scanned arcs
  /// were unsynced-module skips (the rank is mostly unable to evaluate its
  /// candidates — the swap protocol is starving it).
  double skip_rate_threshold = 0.5;
  /// Rounds with fewer skips than this are below the noise floor for a
  /// skip-rate verdict.
  std::uint64_t min_skip_samples = 256;
  /// Async worklist thrashing: flag an epoch where a rank's
  /// `worklist_requeued / worklist_popped` exceeds this ratio — the same
  /// vertices keep re-entering the queue faster than they are drained, i.e.
  /// the staleness budget is letting ranks chase each other's tails.
  double worklist_thrash_ratio = 4.0;
  /// Epochs draining fewer live entries than this are below the noise floor
  /// for a thrash verdict.
  std::uint64_t min_worklist_popped = 256;
  /// Async starvation: flag an epoch where a rank's worklist was completely
  /// idle (nothing popped, nothing pushed) while the epoch still moved at
  /// least this many vertices globally — the priority schedule has starved
  /// that rank out of useful work.
  std::uint64_t starved_min_global_moves = 64;

  // ---- profile-digest rules (analyze_profile, DESIGN.md §13) -------------
  /// Flag a rank that spent more than this fraction of its wall time blocked
  /// in receives — computation is no longer the bottleneck for that rank.
  double wait_dominated_threshold = 0.6;
  /// Runs whose per-rank wall time is below this are too short for a
  /// wait-dominance verdict (startup collectives dominate tiny runs).
  double min_profile_wall_us = 10'000.0;
  /// Flag a phase where one rank, by arriving last at the phase's
  /// collectives, caused more than this share of the phase's total
  /// cross-rank wait — a persistent straggler rather than diffuse jitter.
  double straggler_skew_share = 0.6;
  /// Phases accumulating less cross-rank collective wait than this are below
  /// the noise floor for a straggler verdict.
  double min_straggler_wait_us = 5'000.0;

  // ---- decode-cache rule (out-of-core blocks backend) --------------------
  /// Flag the run when the block cache's miss ratio exceeds this while it is
  /// also evicting — the decoded working set cycles through a too-small
  /// budget, and every scan pays the decode bill again (cache thrash).
  double cache_miss_ratio_threshold = 0.5;
  /// Runs with fewer block faults (hits + misses) than this are below the
  /// noise floor for a thrash verdict.
  std::uint64_t min_cache_faults = 1024;
};

/// Analyze per-rank round streams (`streams[r]` is rank r's samples, all the
/// same length for a correct synchronous run). Returns anomalies found;
/// callers append them to the recorder's inline anomalies.
[[nodiscard]] std::vector<Anomaly> analyze_rounds(
    const std::vector<std::vector<RoundSample>>& streams,
    const WatchdogOptions& options);

/// Decode-cache counters of one out-of-core run (a plain mirror of
/// graph::blockgraph::BlockGraphStats — obs does not link the graph layer).
struct BlockCacheSample {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Judge the decode cache of a blocks-backend run against the cache_thrash
/// rule. Returns at most one anomaly (kind "cache_thrash", rank -1).
[[nodiscard]] std::vector<Anomaly> analyze_block_cache(
    const BlockCacheSample& sample, const WatchdogOptions& options);

}  // namespace dinfomap::obs
