// Merge the per-process trace files of a multi-process (socket-transport)
// run into one Chrome trace-event JSON.
//
// Each worker of a socket-transport job records only its own rank's track
// but exports the full p-track file shape (Trace::write), all pinned to the
// launcher's shared steady-clock epoch. The launcher concatenates the
// workers' traceEvents arrays — dropping the duplicated thread_name metadata
// after the first file — so the merged file looks exactly like an in-process
// trace: p populated rank tracks on one timeline, with the PR 7 flow arrows
// intact (send and consume sides carry matching (src, dst, tag, ordinal)
// tuples even though they were recorded by different processes).
#pragma once

#include <string>
#include <vector>

namespace dinfomap::obs {

/// Merge `inputs` (in rank order) into `out_path`. Inputs must be files
/// written by Trace::write. Missing/unreadable inputs are skipped with a
/// warning; returns false when the output cannot be written or no input
/// contributed any events.
bool merge_trace_files(const std::vector<std::string>& inputs,
                       const std::string& out_path);

}  // namespace dinfomap::obs
