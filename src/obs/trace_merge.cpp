#include "obs/trace_merge.hpp"

#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace dinfomap::obs {

namespace {

/// Pull the event lines out of one Trace::write file. The exporter emits one
/// event object per line inside a fixed frame ("traceEvents": [ ... ]), so a
/// line-level scan is exact for files we wrote ourselves; anything else is
/// rejected by the frame match.
bool extract_event_lines(const std::string& path, bool keep_metadata,
                         std::vector<std::string>& out) {
  std::ifstream in(path);
  if (!in) {
    LOG_WARN << "trace merge: cannot read " << path << ", skipping";
    return false;
  }
  std::string line;
  bool inside = false;
  bool saw_frame = false;
  while (std::getline(in, line)) {
    if (!inside) {
      if (line.find("\"traceEvents\"") != std::string::npos) {
        inside = true;
        saw_frame = true;
      }
      continue;
    }
    if (line == "]" || line == "]\n") break;
    if (line.empty()) continue;
    if (!keep_metadata &&
        line.find("\"thread_name\"") != std::string::npos)
      continue;
    // Normalize: strip one trailing comma; the writer re-separates.
    if (!line.empty() && line.back() == ',') line.pop_back();
    if (line.find('{') == std::string::npos) continue;
    out.push_back(line);
  }
  if (!saw_frame) {
    LOG_WARN << "trace merge: " << path << " is not a trace file, skipping";
  }
  return saw_frame;
}

}  // namespace

bool merge_trace_files(const std::vector<std::string>& inputs,
                       const std::string& out_path) {
  std::vector<std::string> events;
  bool first = true;
  bool any = false;
  for (const std::string& path : inputs) {
    if (extract_event_lines(path, /*keep_metadata=*/first, events)) {
      any = true;
      first = false;
    }
  }
  if (!any) {
    LOG_WARN << "trace merge: no readable inputs, not writing " << out_path;
    return false;
  }
  std::ofstream out(out_path);
  if (!out) {
    LOG_WARN << "trace merge: cannot open " << out_path << " for writing";
    return false;
  }
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out << events[i];
    if (i + 1 < events.size()) out << ",";
    out << "\n";
  }
  out << "]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace dinfomap::obs
