#include "partition/metrics.hpp"

#include <algorithm>
#include <unordered_set>

namespace dinfomap::partition {

std::vector<std::uint64_t> arcs_per_rank(const ArcPartition& part) {
  std::vector<std::uint64_t> counts(part.num_ranks);
  for (int r = 0; r < part.num_ranks; ++r) counts[r] = part.rank_arcs[r].size();
  return counts;
}

std::vector<std::uint64_t> ghosts_per_rank(const ArcPartition& part) {
  std::vector<std::uint64_t> counts(part.num_ranks, 0);
  for (int r = 0; r < part.num_ranks; ++r) {
    std::unordered_set<VertexId> ghosts;
    for (const Arc& a : part.rank_arcs[r]) {
      if (!part.local_on(a.source, r)) ghosts.insert(a.source);
      if (!part.local_on(a.target, r)) ghosts.insert(a.target);
    }
    counts[r] = ghosts.size();
  }
  return counts;
}

bool validate_partition(const ArcPartition& part, const GraphView& graph) {
  // Multiset of all assigned arcs must equal the CSR's arc multiset.
  std::vector<Arc> assigned;
  assigned.reserve(graph.num_arcs());
  for (const auto& arcs : part.rank_arcs)
    assigned.insert(assigned.end(), arcs.begin(), arcs.end());
  if (assigned.size() != graph.num_arcs()) return false;

  std::vector<Arc> expected;
  expected.reserve(graph.num_arcs());
  auto cursor = graph.cursor();
  for (VertexId u = 0; u < graph.num_vertices(); ++u)
    for (const auto& nb : graph.neighbors(u, cursor))
      expected.push_back({u, nb.target, nb.weight});

  auto arc_less = [](const Arc& a, const Arc& b) {
    if (a.source != b.source) return a.source < b.source;
    if (a.target != b.target) return a.target < b.target;
    return a.weight < b.weight;
  };
  std::sort(assigned.begin(), assigned.end(), arc_less);
  std::sort(expected.begin(), expected.end(), arc_less);
  if (!(assigned == expected)) return false;

  // Low-degree sources must sit with their owner (both strategies keep this).
  for (int r = 0; r < part.num_ranks; ++r) {
    for (const Arc& a : part.rank_arcs[r]) {
      if (!part.delegate(a.source) && part.owner(a.source) != r) return false;
    }
  }
  return true;
}

bool validate_partition(const ArcPartition& part, const Csr& graph) {
  return validate_partition(part, GraphView(graph));
}

}  // namespace dinfomap::partition
