#include "partition/arc_partition.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"
#include "util/flat_map.hpp"

namespace dinfomap::partition {

namespace {
void require_ranks(const GraphView& graph, int num_ranks) {
  DINFOMAP_REQUIRE_MSG(num_ranks >= 1, "need at least one rank");
  DINFOMAP_REQUIRE_MSG(graph.num_vertices() > 0, "empty graph");
}

void fill_round_robin(ArcPartition& part, VertexId n) {
  part.owners.resize(n);
  for (VertexId v = 0; v < n; ++v)
    part.owners[v] = static_cast<int>(v % static_cast<VertexId>(part.num_ranks));
}

/// Assign every out-arc to its source's owner (the 1D family).
void assign_by_source_owner(ArcPartition& part, const GraphView& graph) {
  part.rank_arcs.assign(part.num_ranks, {});
  auto cursor = graph.cursor();
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    const int r = part.owner(u);
    for (const auto& nb : graph.neighbors(u, cursor))
      part.rank_arcs[r].push_back({u, nb.target, nb.weight});
  }
}

/// Per-rank state for the decode-aware rebalance: arc load plus how many
/// distinct edge blocks the rank's arcs touch (the decode-cost driver).
struct RankCost {
  EdgeIndex load = 0;
  util::FlatMap<std::uint32_t, std::uint32_t> block_arcs;

  void add(std::uint32_t block) {
    ++load;
    ++block_arcs[block];
  }
  void remove(std::uint32_t block) {
    --load;
    auto it = block_arcs.find(block);
    if (it != block_arcs.end() && it->second > 0) --it->second;
  }
  [[nodiscard]] std::uint64_t distinct_blocks() {
    std::uint64_t d = 0;
    // dlint:allow(unordered-iter): counting non-zero entries — a pure
    // reduction over integers, insensitive to iteration order.
    for (const auto& slot : block_arcs)
      if (slot.second > 0) ++d;
    return d;
  }
};
}  // namespace

ArcPartition make_oned(const GraphView& graph, int num_ranks) {
  require_ranks(graph, num_ranks);
  ArcPartition part;
  part.strategy = Strategy::kOneD;
  part.num_ranks = num_ranks;
  part.is_delegate.assign(graph.num_vertices(), 0);
  fill_round_robin(part, graph.num_vertices());
  assign_by_source_owner(part, graph);
  return part;
}

ArcPartition make_oned_balanced(const GraphView& graph, int num_ranks) {
  require_ranks(graph, num_ranks);
  ArcPartition part;
  part.strategy = Strategy::kOneDBalanced;
  part.num_ranks = num_ranks;
  part.is_delegate.assign(graph.num_vertices(), 0);
  part.owners.assign(graph.num_vertices(), num_ranks - 1);

  // Greedy contiguous split: advance the cut whenever the running degree sum
  // reaches the next 1/p quantile of total arcs.
  const double per_rank =
      static_cast<double>(graph.num_arcs()) / static_cast<double>(num_ranks);
  double acc = 0;
  int rank = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    part.owners[v] = rank;
    acc += static_cast<double>(graph.degree(v));
    if (acc >= per_rank * (rank + 1) && rank + 1 < num_ranks) ++rank;
  }
  assign_by_source_owner(part, graph);
  return part;
}

ArcPartition make_hash(const GraphView& graph, int num_ranks,
                       std::uint64_t seed) {
  require_ranks(graph, num_ranks);
  ArcPartition part;
  part.strategy = Strategy::kHash;
  part.num_ranks = num_ranks;
  part.is_delegate.assign(graph.num_vertices(), 0);
  part.owners.resize(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    // SplitMix64 finalizer as the hash.
    std::uint64_t z = (static_cast<std::uint64_t>(v) + seed) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    part.owners[v] = static_cast<int>((z ^ (z >> 31)) %
                                      static_cast<std::uint64_t>(num_ranks));
  }
  assign_by_source_owner(part, graph);
  return part;
}

ArcPartition make_delegate(const GraphView& graph, int num_ranks,
                           EdgeIndex degree_threshold,
                           const DelegateDecodeCost& decode_cost) {
  require_ranks(graph, num_ranks);
  if (degree_threshold == 0)
    degree_threshold = static_cast<EdgeIndex>(num_ranks);  // paper: d_high = p
  const bool cost_aware = decode_cost.enabled();
  DINFOMAP_REQUIRE_MSG(!cost_aware || graph.out_of_core(),
                       "decode-aware rebalance needs the blocks backend "
                       "(it reasons about edge-block topology)");

  ArcPartition part;
  part.strategy = Strategy::kDelegate;
  part.num_ranks = num_ranks;
  part.degree_threshold = degree_threshold;
  part.is_delegate.assign(graph.num_vertices(), 0);
  fill_round_robin(part, graph.num_vertices());
  part.rank_arcs.resize(num_ranks);

  const VertexId n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v)
    if (graph.degree(v) > degree_threshold) part.is_delegate[v] = 1;

  // Hub→hub arcs are free to go anywhere; collect them as the rebalance pool.
  std::deque<Arc> pool;
  {
    auto cursor = graph.cursor();
    for (VertexId u = 0; u < n; ++u) {
      const bool u_hub = part.delegate(u);
      for (const auto& nb : graph.neighbors(u, cursor)) {
        const Arc arc{u, nb.target, nb.weight};
        if (!u_hub) {
          part.rank_arcs[part.owner(u)].push_back(arc);  // E_low: by source owner
        } else if (!part.delegate(nb.target)) {
          part.rank_arcs[part.owner(nb.target)].push_back(arc);  // E_high: by target
        } else {
          pool.push_back(arc);  // both endpoints duplicated everywhere
        }
      }
    }
  }

  // Rebalance: first place pooled arcs onto the least-loaded ranks, then move
  // hub-sourced arcs off overloaded ranks (their sources are duplicated, so
  // relocation is free in ownership terms — §3.3 step 4).
  const EdgeIndex total_arcs = graph.num_arcs();
  const EdgeIndex target =
      (total_arcs + static_cast<EdgeIndex>(num_ranks) - 1) /
      static_cast<EdgeIndex>(num_ranks);

  std::vector<EdgeIndex> load(num_ranks);
  for (int r = 0; r < num_ranks; ++r) load[r] = part.rank_arcs[r].size();

  auto least_loaded = [&] {
    int best = 0;
    for (int r = 1; r < num_ranks; ++r)
      if (load[r] < load[best]) best = r;
    return best;
  };
  while (!pool.empty()) {
    const int r = least_loaded();
    part.rank_arcs[r].push_back(pool.front());
    pool.pop_front();
    ++load[r];
  }

  if (!cost_aware) {
    for (int r = 0; r < num_ranks; ++r) {
      if (load[r] <= target) continue;
      auto& arcs = part.rank_arcs[r];
      // Partition so movable (hub-sourced) arcs sit at the back.
      const std::size_t first_movable = static_cast<std::size_t>(
          std::stable_partition(arcs.begin(), arcs.end(),
                                [&](const Arc& a) { return !part.delegate(a.source); }) -
          arcs.begin());
      while (load[r] > target && arcs.size() > first_movable) {
        const int dest = least_loaded();
        if (load[dest] >= target) break;  // nowhere left to shed load
        part.rank_arcs[dest].push_back(arcs.back());
        arcs.pop_back();
        --load[r];
        ++load[dest];
      }
    }
    return part;
  }

  // Decode-aware shedding: the cost of a rank is its arc load plus the
  // decode bill for the distinct edge blocks those arcs pull through the
  // cache. Overloaded ranks shed their *rarest-block* movable arcs first
  // (dropping a block's last arc removes a whole decode), toward the rank
  // with the lowest modeled cost. Fully deterministic: sort keys are
  // (block frequency, block id, arc position).
  const auto& bg = *graph.blocks();
  const double miss_cost = decode_cost.arcs_per_block *
                           (1.0 - decode_cost.expected_hit_ratio) *
                           decode_cost.sec_per_arc_decode;
  std::vector<RankCost> rc(num_ranks);
  for (int r = 0; r < num_ranks; ++r)
    for (const Arc& a : part.rank_arcs[r]) rc[r].add(bg.block_of(a.source));

  auto cost_of = [&](int r) {
    return static_cast<double>(rc[r].load) * decode_cost.sec_per_arc +
           static_cast<double>(rc[r].distinct_blocks()) * miss_cost;
  };
  double total_cost = 0;
  for (int r = 0; r < num_ranks; ++r) total_cost += cost_of(r);
  const double target_cost = total_cost / num_ranks;

  auto least_cost = [&] {
    int best = 0;
    double best_c = cost_of(0);
    for (int r = 1; r < num_ranks; ++r) {
      const double c = cost_of(r);
      if (c < best_c) {
        best = r;
        best_c = c;
      }
    }
    return best;
  };

  for (int r = 0; r < num_ranks; ++r) {
    if (cost_of(r) <= target_cost) continue;
    auto& arcs = part.rank_arcs[r];
    const std::size_t first_movable = static_cast<std::size_t>(
        std::stable_partition(arcs.begin(), arcs.end(),
                              [&](const Arc& a) { return !part.delegate(a.source); }) -
        arcs.begin());
    // Rarest blocks last, so shedding pops them first.
    auto block_freq = [&](const Arc& a) {
      auto it = rc[r].block_arcs.find(bg.block_of(a.source));
      return it != rc[r].block_arcs.end() ? it->second : 0u;
    };
    std::stable_sort(
        arcs.begin() + static_cast<std::ptrdiff_t>(first_movable), arcs.end(),
        [&](const Arc& a, const Arc& b) {
          const std::uint32_t fa = block_freq(a);
          const std::uint32_t fb = block_freq(b);
          if (fa != fb) return fa > fb;
          return bg.block_of(a.source) < bg.block_of(b.source);
        });
    while (cost_of(r) > target_cost && arcs.size() > first_movable) {
      const int dest = least_cost();
      if (dest == r || cost_of(dest) >= target_cost) break;
      const Arc moved = arcs.back();
      arcs.pop_back();
      part.rank_arcs[dest].push_back(moved);
      const std::uint32_t blk = bg.block_of(moved.source);
      rc[r].remove(blk);
      rc[dest].add(blk);
    }
  }
  return part;
}

ArcPartition make_oned(const Csr& graph, int num_ranks) {
  return make_oned(GraphView(graph), num_ranks);
}
ArcPartition make_oned_balanced(const Csr& graph, int num_ranks) {
  return make_oned_balanced(GraphView(graph), num_ranks);
}
ArcPartition make_hash(const Csr& graph, int num_ranks, std::uint64_t seed) {
  return make_hash(GraphView(graph), num_ranks, seed);
}
ArcPartition make_delegate(const Csr& graph, int num_ranks,
                           EdgeIndex degree_threshold) {
  return make_delegate(GraphView(graph), num_ranks, degree_threshold);
}

}  // namespace dinfomap::partition
