// Balance metrics over an ArcPartition — the quantities plotted in the
// paper's Figs. 6 (workload = per-rank arc count) and 7 (communication =
// per-rank ghost-vertex count).
#pragma once

#include <cstdint>
#include <vector>

#include "partition/arc_partition.hpp"

namespace dinfomap::partition {

/// Arcs held by each rank.
std::vector<std::uint64_t> arcs_per_rank(const ArcPartition& part);

/// Ghost vertices per rank: distinct arc endpoints on the rank that are
/// neither owned there nor delegates.
std::vector<std::uint64_t> ghosts_per_rank(const ArcPartition& part);

/// Structural audit used by tests: every CSR arc appears on exactly one rank,
/// and (for delegate partitions) every low-degree source sits with its owner.
bool validate_partition(const ArcPartition& part, const GraphView& graph);
bool validate_partition(const ArcPartition& part, const Csr& graph);

}  // namespace dinfomap::partition
