// Graph distribution across ranks: plain 1D and delegate partitioning.
//
// Both strategies assign *arcs* (directed halves of undirected edges). A
// vertex's workload in Infomap is proportional to the arcs it must scan, so
// per-rank arc counts are the workload metric of Fig. 6 and ghost-vertex
// counts the communication metric of Fig. 7.
//
// Ownership of low-degree vertices is round-robin: owner(v) = v mod p, the
// paper's "round-robin 1D partitioning" (§3.3).
//
// 1D:        arc (u→v) lives on owner(u) — whole adjacency list with its
//            vertex. Hubs concentrate arcs on one rank.
// Delegate:  vertices with degree > d_high are *delegates*, duplicated on
//            every rank. Their arcs are assigned by target: to owner(v) if v
//            is low-degree, or to a rebalance pool when v is itself a hub.
//            A final pass moves pool/hub arcs from overloaded to underloaded
//            ranks until every rank holds ≈ |arcs|/p.
//
// Every builder takes a graph::GraphView, so partitioning streams equally
// from the resident CSR or the out-of-core block file; the Csr overloads
// are thin wrappers. With identical inputs the builders are deterministic,
// which is what makes partitions bit-identical across backends.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph_view.hpp"
#include "graph/types.hpp"

namespace dinfomap::partition {

using graph::Csr;
using graph::EdgeIndex;
using graph::GraphView;
using graph::VertexId;
using graph::Weight;

/// One directed half-edge as stored on a rank.
struct Arc {
  VertexId source = 0;
  VertexId target = 0;
  Weight weight = 1.0;

  friend bool operator==(const Arc&, const Arc&) = default;
};

enum class Strategy { kOneD, kOneDBalanced, kHash, kDelegate };

/// The result of distributing a graph over `num_ranks` ranks.
struct ArcPartition {
  Strategy strategy = Strategy::kOneD;
  int num_ranks = 1;
  /// Hub threshold used (meaningful for kDelegate; 0 otherwise).
  EdgeIndex degree_threshold = 0;
  /// Per-vertex delegate flag (all false outside kDelegate).
  std::vector<std::uint8_t> is_delegate;
  /// Per-vertex owning rank.
  std::vector<int> owners;
  /// Arcs assigned to each rank.
  std::vector<std::vector<Arc>> rank_arcs;

  [[nodiscard]] bool delegate(VertexId v) const { return is_delegate[v] != 0; }
  [[nodiscard]] int owner(VertexId v) const { return owners[v]; }
  /// True if v is local on `rank`: delegates everywhere, low-degree at owner.
  [[nodiscard]] bool local_on(VertexId v, int rank) const {
    return delegate(v) || owner(v) == rank;
  }
  /// True when ownership is round-robin v mod p — what the distributed
  /// Infomap's addressing assumes.
  [[nodiscard]] bool round_robin_ownership() const {
    for (VertexId v = 0; v < owners.size(); ++v)
      if (owners[v] != static_cast<int>(v % static_cast<VertexId>(num_ranks)))
        return false;
    return true;
  }

  /// Release every rank's arc vector except `rank`'s — a multi-process
  /// worker only ever reads its own slice, and in blocks mode the O(|E|)
  /// full partition is the last resident copy of the edge set.
  void keep_only_rank(int rank) {
    for (int r = 0; r < num_ranks; ++r) {
      if (r == rank) continue;
      std::vector<Arc>().swap(rank_arcs[r]);
    }
  }
};

/// Decode-cost coupling for delegate rebalancing (perf::CostModel supplies
/// the numbers; see perf/decode_cost.hpp). When enabled, the rebalance pass
/// models each rank's cost as
///
///   load·sec_per_arc + distinct_blocks·arcs_per_block·(1−hit)·sec_per_arc_decode
///
/// — i.e. arcs concentrated in few edge blocks decode cheaper than the same
/// count scattered across many — and sheds overload accordingly. Requires
/// the blocks backend (block topology is what it reasons about). Disabled
/// (the default) the rebalance is the pure arc-count pass, identical on
/// both backends.
struct DelegateDecodeCost {
  double sec_per_arc = 0;         ///< baseline gather cost per arc
  double sec_per_arc_decode = 0;  ///< amortized decode cost per arc on a miss
  double expected_hit_ratio = 0;  ///< fraction of block faults served cached
  double arcs_per_block = 0;      ///< mean decoded arcs per block

  [[nodiscard]] bool enabled() const {
    return sec_per_arc > 0 && sec_per_arc_decode > 0 && arcs_per_block > 0;
  }
};

/// Plain 1D with round-robin ownership: every out-arc with its source's owner.
ArcPartition make_oned(const GraphView& graph, int num_ranks);
ArcPartition make_oned(const Csr& graph, int num_ranks);

/// 1D over contiguous vertex ranges whose degree sums are balanced — the
/// edge-count workload model of Zeng & Yu [29,30]. Balances arcs per rank
/// but not the hub-induced ghost traffic.
ArcPartition make_oned_balanced(const GraphView& graph, int num_ranks);
ArcPartition make_oned_balanced(const Csr& graph, int num_ranks);

/// 1D with hashed ownership (decorrelates vertex id from placement).
ArcPartition make_hash(const GraphView& graph, int num_ranks,
                       std::uint64_t seed = 0x9E3779B9u);
ArcPartition make_hash(const Csr& graph, int num_ranks,
                       std::uint64_t seed = 0x9E3779B9u);

/// Delegate partitioning; `degree_threshold` of 0 applies the paper's default
/// d_high = num_ranks. `decode_cost` optionally biases the rebalance pass
/// (see DelegateDecodeCost); default-constructed it is inert.
ArcPartition make_delegate(const GraphView& graph, int num_ranks,
                           EdgeIndex degree_threshold = 0,
                           const DelegateDecodeCost& decode_cost = {});
ArcPartition make_delegate(const Csr& graph, int num_ranks,
                           EdgeIndex degree_threshold = 0);

}  // namespace dinfomap::partition
