// Open-addressing hash map (linear probing, power-of-two capacity, Fibonacci
// hashing) for integral keys. Replaces `std::unordered_map` in lookup-heavy
// hot paths — the per-rank module table of the distributed Infomap probes this
// once per candidate module per ΔL evaluation, and a node-based map pays a
// bucket-pointer chase plus an allocation per insert. Slots live in one
// contiguous array, so a probe is one cache line in the common case.
//
// Not a general container: no erase (the algorithms only ever clear whole
// tables between rounds), keys are value types, and iteration order is slot
// order (callers that need deterministic order must sort — the hot paths never
// iterate). See DESIGN.md "Hot-path data structures".
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dinfomap::util {

template <typename K, typename V>
class FlatMap {
  struct Slot {
    K first{};
    V second{};
    bool used = false;
  };

 public:
  /// Forward iterator over occupied slots; `it->first` / `it->second` mirror
  /// the std::unordered_map access idiom so call sites read unchanged.
  class iterator {
   public:
    iterator() = default;
    iterator(Slot* p, Slot* end) : p_(p), end_(end) { skip(); }
    Slot& operator*() const { return *p_; }
    Slot* operator->() const { return p_; }
    iterator& operator++() {
      ++p_;
      skip();
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.p_ == b.p_;
    }

   private:
    void skip() {
      while (p_ != end_ && !p_->used) ++p_;
    }
    Slot* p_ = nullptr;
    Slot* end_ = nullptr;
  };

  FlatMap() = default;
  explicit FlatMap(std::size_t expected) { reserve(expected); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Growth rehashes so far: times a non-empty table re-inserted all its
  /// entries into a larger slot array (feeds the `flatmap.rehashes` metric).
  /// clear() keeps the count — it tracks lifetime rehash work.
  [[nodiscard]] std::uint64_t rehashes() const { return rehashes_; }

  /// Set the maximum load factor to `num/den` (entries ≤ capacity·num/den).
  /// Lower = fewer probe collisions, more memory; higher = denser tables,
  /// longer probes. Affects only future growth decisions — the slot layout
  /// is untouched, so a map that never calls this behaves bit-for-bit like
  /// the built-in 7/8 default. Degenerate fractions (0, ≥ 1) are ignored.
  void set_max_load(std::size_t num, std::size_t den) {
    if (num == 0 || den == 0 || num >= den) return;
    max_load_num_ = num;
    max_load_den_ = den;
  }

  /// Drop all entries; keeps the slot array (O(capacity), no deallocation).
  void clear() {
    for (Slot& s : slots_) s.used = false;
    size_ = 0;
  }

  void reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap * max_load_num_ < expected * max_load_den_) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  iterator begin() {
    return {slots_.data(), slots_.data() + slots_.size()};
  }
  iterator end() {
    Slot* e = slots_.data() + slots_.size();
    return {e, e};
  }

  iterator find(K key) {
    Slot* s = locate(key);
    return (s && s->used) ? iterator{s, slots_.data() + slots_.size()}
                          : end();
  }
  [[nodiscard]] bool contains(K key) const {
    const Slot* s = const_cast<FlatMap*>(this)->locate(key);
    return s && s->used;
  }
  [[nodiscard]] std::size_t count(K key) const { return contains(key) ? 1 : 0; }

  V& operator[](K key) {
    grow_if_needed();
    Slot* s = locate(key);
    if (!s->used) {
      s->first = key;
      s->second = V{};
      s->used = true;
      ++size_;
    }
    return s->second;
  }

  /// Insert (key, value) if absent; returns {slot, inserted}.
  std::pair<iterator, bool> emplace(K key, const V& value) {
    grow_if_needed();
    Slot* s = locate(key);
    const bool inserted = !s->used;
    if (inserted) {
      s->first = key;
      s->second = value;
      s->used = true;
      ++size_;
    }
    return {iterator{s, slots_.data() + slots_.size()}, inserted};
  }

  /// Hash mix, exposed so tests can construct collision-heavy key sets.
  static std::uint64_t mix(K key) {
    return static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
  }

  /// Diagnostic: slots inspected to reach `key` (1 = home slot, 0 = absent or
  /// empty table). Flight-recorder sampling only — never on the hot path.
  [[nodiscard]] std::size_t probe_length(K key) const {
    if (slots_.empty()) return 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key) >> shift_) & mask;
    std::size_t probes = 1;
    while (slots_[i].used && slots_[i].first != key) {
      i = (i + 1) & mask;
      ++probes;
    }
    return slots_[i].used ? probes : 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  /// Slot holding `key`, or the empty slot where it would be inserted.
  /// Null only when the table has no storage yet.
  Slot* locate(K key) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key) >> shift_) & mask;
    while (slots_[i].used && slots_[i].first != key) i = (i + 1) & mask;
    return &slots_[i];
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * max_load_den_ > slots_.size() * max_load_num_) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    if (size_ > 0) ++rehashes_;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    shift_ = 64;
    for (std::size_t c = new_cap; c > 1; c >>= 1) --shift_;
    size_ = 0;
    for (Slot& s : old) {
      if (!s.used) continue;
      Slot* t = locate(s.first);
      t->first = s.first;
      t->second = std::move(s.second);
      t->used = true;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  int shift_ = 64;  ///< top-bits shift for the current capacity
  // Entries fill at most num/den of the slots (default 7/8; linear probing
  // degrades sharply past that). Adjustable per table via set_max_load.
  std::size_t max_load_num_ = 7;
  std::size_t max_load_den_ = 8;
  std::uint64_t rehashes_ = 0;
};

}  // namespace dinfomap::util
