// Wall-clock timers over std::chrono::steady_clock.
#pragma once

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dinfomap::util {

/// Simple stopwatch: start() .. seconds().
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations; used for the Fig. 8 time breakdown.
class PhaseTimer {
 public:
  /// Add `seconds` to phase `name`.
  void add(const std::string& name, double seconds) { acc_[name] += seconds; }

  /// Total accumulated for `name` (0 if never recorded).
  [[nodiscard]] double total(const std::string& name) const {
    auto it = acc_.find(name);
    return it == acc_.end() ? 0.0 : it->second;
  }

  void clear() { acc_.clear(); }

  /// All accumulated phases in sorted name order. Printing code iterates
  /// this, so reports are deterministic regardless of hash-map layout.
  [[nodiscard]] std::vector<std::pair<std::string, double>> phases() const {
    std::vector<std::pair<std::string, double>> out(acc_.begin(), acc_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_map<std::string, double> acc_;
};

/// RAII helper: measures its own lifetime into a PhaseTimer entry.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& sink, std::string name)
      : sink_(sink), name_(std::move(name)) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() { sink_.add(name_, timer_.seconds()); }

 private:
  PhaseTimer& sink_;
  std::string name_;
  Timer timer_;
};

}  // namespace dinfomap::util
