// util::Atomic<T> — std::atomic with a dcheck scheduling point on every
// access (DESIGN.md §16).
//
// The handful of raw atomics in the concurrency substrate (ThreadPool's
// dispatch counter and nested-use guard, the worklist's shared counters in
// harnesses) go through this wrapper so the model checker can interleave
// around them and feed them to its race detector as synchronizing accesses.
// In a normal build every method inlines to the std::atomic call — the hook
// macro expands to nothing.
#pragma once

#include <atomic>

#include "util/sched_point.hpp"

namespace dinfomap::util {

template <typename T>
class Atomic {
 public:
  constexpr Atomic() = default;
  constexpr Atomic(T v) : v_(v) {}  // NOLINT(*-explicit-constructor)
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    DI_SCHED_ATOMIC(this, false, "Atomic.load");
    return v_.load(mo);
  }
  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    DI_SCHED_ATOMIC(this, true, "Atomic.store");
    v_.store(v, mo);
  }
  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    DI_SCHED_ATOMIC(this, true, "Atomic.exchange");
    return v_.exchange(v, mo);
  }
  T fetch_add(T v, std::memory_order mo = std::memory_order_seq_cst) {
    DI_SCHED_ATOMIC(this, true, "Atomic.fetch_add");
    return v_.fetch_add(v, mo);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    DI_SCHED_ATOMIC(this, true, "Atomic.cas");
    return v_.compare_exchange_strong(expected, desired, mo);
  }

 private:
  std::atomic<T> v_;
};

}  // namespace dinfomap::util
