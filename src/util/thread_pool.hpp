// Deterministic intra-rank thread parallelism for the O(V+E) hot loops.
//
// A ThreadPool owns `num_threads - 1` persistent workers (the calling thread
// always executes slot 0), dispatched with *static* slot assignment: every
// invocation runs exactly one task per slot, and parallel_for cuts [0, n)
// into `num_threads` contiguous chunks, chunk s on slot s. Static chunking is
// what makes thread-level parallelism composable with this codebase's
// bit-reproducibility contract: a chunked computation whose per-slot outputs
// are merged in slot order replays the exact serial iteration (and hence
// floating-point accumulation) order, for any thread count.
//
// The pool is rank-local — with ranks-as-threads (comm::Runtime), a p-rank
// run with t threads per rank holds p pools of t-1 workers each. Workers are
// reused across rounds and levels; one dispatch costs two mutex handoffs,
// which is noise against the O(V/p + E/p) chunks it carries.
//
// Exceptions thrown inside a slot are captured and rethrown on the calling
// thread (lowest slot wins) after all slots finish. Nested use from inside a
// running slot is detected and degrades to inline serial execution of all
// slots on the calling thread — same results, no deadlock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/atomic.hpp"
#include "util/mutex.hpp"

namespace dinfomap::util {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; `num_threads <= 1` means no workers
  /// (every run_slots call executes inline on the caller).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// Invoke `fn(slot)` once per slot in [0, num_threads). The caller runs
  /// slot 0; workers run the rest concurrently. Returns after every slot
  /// finished; the first (lowest-slot) captured exception is rethrown.
  void run_slots(const std::function<void(int)>& fn);

  /// Static-chunk loop: `fn(slot, begin, end)` with [begin, end) the slot's
  /// contiguous chunk of [0, n). Empty chunks (n < num_threads) are skipped.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    const auto t = static_cast<std::size_t>(num_threads_);
    run_slots([&](int slot) {
      const auto s = static_cast<std::size_t>(slot);
      const std::size_t begin = n * s / t;
      const std::size_t end = n * (s + 1) / t;
      if (begin < end) fn(slot, begin, end);
    });
  }

  /// Wall seconds each slot spent in the most recent run_slots invocation
  /// (imbalance diagnostics for the flight recorder).
  [[nodiscard]] const std::vector<double>& last_slot_seconds() const {
    return slot_seconds_;
  }

  /// Cumulative run_slots invocations (each dispatches num_threads tasks).
  [[nodiscard]] std::uint64_t dispatches() const {
    return dispatches_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(int slot);
  void worker_loop_body(int slot);
  void run_inline(const std::function<void(int)>& fn);

  int num_threads_;
  std::vector<std::thread> workers_;

  util::Mutex mutex_;
  util::CondVar start_cv_;
  util::CondVar done_cv_;
  const std::function<void(int)>* job_ DI_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ DI_GUARDED_BY(mutex_) = 0;  ///< bumped per dispatch
  /// Workers still running the current job.
  int pending_ DI_GUARDED_BY(mutex_) = 0;
  bool stop_ DI_GUARDED_BY(mutex_) = false;

  /// Nested-use guard: set while a dispatch is in flight so a slot that
  /// re-enters the pool runs inline instead of deadlocking on its own job.
  util::Atomic<bool> active_{false};

  /// Per-slot outputs, intentionally outside mutex_: each slot writes only
  /// its own element, and the dispatch handshake (generation bump →
  /// pending_ drain, both under mutex_) orders those writes against the
  /// caller's reads.
  std::vector<std::exception_ptr> errors_;  ///< per slot
  std::vector<double> slot_seconds_;        ///< per slot, last dispatch
  /// Atomic because a nested dispatch increments it from inside a running
  /// slot, concurrently with nothing else *except* another nesting slot.
  util::Atomic<std::uint64_t> dispatches_{0};

#if defined(DINFOMAP_DCHECK)
  /// Pool created by a model thread: workers are adopted into the running
  /// exploration and the dtor joins through the scheduler.
  bool dcheck_modeled_ = false;
#endif
};

}  // namespace dinfomap::util
