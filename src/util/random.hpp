// Deterministic, splittable random number generation.
//
// All stochastic pieces of the library (generators, vertex-order shuffles)
// take an explicit seed so that every experiment is bit-reproducible across
// runs and rank counts (see DESIGN.md §5 "Determinism").
#pragma once

#include <cstdint>
#include <vector>

namespace dinfomap::util {

/// SplitMix64: used to expand one user seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality PRNG; satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

 private:
  std::uint64_t s_[4];
};

/// Derive an independent seed for stream `stream_id` from `root_seed`.
std::uint64_t derive_seed(std::uint64_t root_seed, std::uint64_t stream_id);

/// Seeded Fisher–Yates shuffle (deterministic across platforms, unlike
/// std::shuffle whose distribution mapping is unspecified).
template <typename T>
void deterministic_shuffle(std::vector<T>& values, Xoshiro256& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace dinfomap::util
