// Small statistics helpers used by the balance / breakdown experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dinfomap::util {

/// Five-number-style summary of a sample (plus mean and imbalance ratio).
struct Summary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;
  /// max/mean — the "load imbalance factor" used to compare partitioners.
  double imbalance = 0;
  std::size_t count = 0;
};

Summary summarize(const std::vector<double>& values);
Summary summarize_counts(const std::vector<std::uint64_t>& values);

/// Log10-bucketed histogram, mirroring the log-scale per-processor plots of
/// Figs. 6–7 (buckets: [10^k, 10^(k+1))).
class LogHistogram {
 public:
  void add(double value);
  /// Lines like "1e+03..1e+04 : 12".
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;  // bucket i counts values in [10^(i-1), 10^i)
  std::uint64_t zeros_ = 0;
};

/// Format a count with thousands separators for table output ("1,810,000").
std::string with_commas(std::uint64_t value);

}  // namespace dinfomap::util
