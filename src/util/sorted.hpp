// Deterministic iteration over unordered containers (DESIGN.md §11).
//
// Iterating a std::unordered_{map,set} in hash order is the project's most
// common nondeterminism source: the order is stable for one binary but not
// across standard libraries, and any floating-point reduction or message
// layout it feeds silently loses the bit-reproducibility contract. The dlint
// `unordered-iter` rule bans such loops in order-sensitive directories;
// these helpers are the sanctioned fix — materialize the keys, sort, then
// index back into the container.
//
// Cost: one O(n log n) sort per loop. Use on per-round / per-level
// aggregation paths; per-vertex hot loops should use util::SparseAccumulator
// (insertion-ordered) instead.
#pragma once

#include <algorithm>
#include <vector>

namespace dinfomap::util {

/// Keys of a map-like container, ascending. `for (auto k : sorted_keys(m))`
/// replaces `for (auto& [k, v] : m)` where the body re-reads `m.at(k)`.
template <typename Map>
[[nodiscard]] std::vector<typename Map::key_type> sorted_keys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& item : map) keys.push_back(item.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Elements of a set-like container, ascending.
template <typename Set>
[[nodiscard]] std::vector<typename Set::key_type> sorted_elems(const Set& set) {
  std::vector<typename Set::key_type> elems(set.begin(), set.end());
  std::sort(elems.begin(), elems.end());
  return elems;
}

}  // namespace dinfomap::util
