// Reusable sparse accumulator for the gather/scatter idiom of the move-search
// hot paths: dense value scratch indexed by key, an epoch stamp per slot (so
// clear() is O(1) and never touches the dense arrays), and a touched-key list
// that makes iteration O(#distinct keys) in deterministic first-touch order.
//
// This replaces the per-vertex `std::unordered_map<ModuleId, double>` flow
// maps of Infomap/Louvain move passes, which heap-allocate buckets and chase
// pointers on every probe. Keys must be integral and < capacity (module ids
// are current-level vertex ids everywhere in this codebase, so the invariant
// is free). See DESIGN.md "Hot-path data structures".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace dinfomap::util {

template <typename K, typename V>
class SparseAccumulator {
 public:
  SparseAccumulator() = default;
  explicit SparseAccumulator(std::size_t capacity) { reset(capacity); }

  /// Resize the dense scratch to `capacity` slots and forget all entries.
  /// Existing storage is reused when already large enough.
  void reset(std::size_t capacity) {
    if (capacity > values_.size()) {
      values_.resize(capacity);
      stamp_.resize(capacity, 0);
    }
    clear();
  }

  /// Forget all entries. O(1): bumps the epoch; slots lazily reinitialize to
  /// V{} on next touch.
  void clear() {
    ++epoch_;
    touched_.clear();
  }

  /// Value slot for `key`; default-initialized on the first touch since the
  /// last clear(). Keys must be < capacity().
  V& operator[](K key) {
    const auto i = static_cast<std::size_t>(key);
    DINFOMAP_ASSERT(i < values_.size());
    if (stamp_[i] != epoch_) {
      stamp_[i] = epoch_;
      values_[i] = V{};
      touched_.push_back(key);
    }
    return values_[i];
  }

  [[nodiscard]] bool contains(K key) const {
    const auto i = static_cast<std::size_t>(key);
    return i < values_.size() && stamp_[i] == epoch_;
  }

  /// Pointer to the current value of `key`, or nullptr if untouched.
  [[nodiscard]] const V* find(K key) const {
    const auto i = static_cast<std::size_t>(key);
    if (i >= values_.size() || stamp_[i] != epoch_) return nullptr;
    return &values_[i];
  }

  /// Value of `key`, or `fallback` if untouched (single probe; replaces the
  /// `count() ? at() : fallback` double-lookup pattern).
  [[nodiscard]] V value_or(K key, V fallback) const {
    const V* v = find(key);
    return v ? *v : fallback;
  }

  /// Touched keys in deterministic first-touch order.
  [[nodiscard]] const std::vector<K>& keys() const { return touched_; }
  [[nodiscard]] std::size_t size() const { return touched_.size(); }
  [[nodiscard]] bool empty() const { return touched_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return values_.size(); }

  /// Resident bytes of the dense scratch (per-thread arena accounting).
  [[nodiscard]] std::size_t memory_bytes() const {
    return values_.capacity() * sizeof(V) +
           stamp_.capacity() * sizeof(std::uint64_t) +
           touched_.capacity() * sizeof(K);
  }

 private:
  std::vector<V> values_;
  std::vector<std::uint64_t> stamp_;
  std::vector<K> touched_;
  std::uint64_t epoch_ = 1;  // 0 marks never-touched slots
};

}  // namespace dinfomap::util
