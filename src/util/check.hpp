// Runtime checking macros (P.6/P.7 of the C++ Core Guidelines: what cannot be
// checked at compile time should be checkable — and caught early — at run time).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dinfomap {

/// Thrown by DINFOMAP_REQUIRE on contract violation. Tests catch this to
/// exercise failure paths without aborting the process.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void require_fail(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace dinfomap

/// Precondition / invariant check that is always on (cheap checks only).
#define DINFOMAP_REQUIRE(expr)                                                \
  do {                                                                        \
    if (!(expr)) ::dinfomap::detail::require_fail(#expr, __FILE__, __LINE__, {}); \
  } while (0)

/// Variant carrying a human-readable explanation.
#define DINFOMAP_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream os_;                                                 \
      os_ << msg;                                                             \
      ::dinfomap::detail::require_fail(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                         \
  } while (0)

/// Heavier consistency checks, compiled out in release unless requested.
#ifndef NDEBUG
#define DINFOMAP_ASSERT(expr) DINFOMAP_REQUIRE(expr)
#else
#define DINFOMAP_ASSERT(expr) ((void)0)
#endif
