#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace dinfomap::util {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  double ss = 0;
  for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(n));
  s.imbalance = s.mean > 0 ? s.max / s.mean : 0.0;
  return s;
}

Summary summarize_counts(const std::vector<std::uint64_t>& values) {
  std::vector<double> d(values.size());
  std::transform(values.begin(), values.end(), d.begin(),
                 [](std::uint64_t v) { return static_cast<double>(v); });
  return summarize(d);
}

void LogHistogram::add(double value) {
  DINFOMAP_REQUIRE(value >= 0);
  if (value < 1.0) {
    ++zeros_;
    return;
  }
  const auto bucket = static_cast<std::size_t>(std::floor(std::log10(value))) + 1;
  if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  if (zeros_ > 0) os << "[0,1)        : " << zeros_ << '\n';
  for (std::size_t i = 1; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    os << "[1e" << (i - 1) << ",1e" << i << ")  : " << buckets_[i] << '\n';
  }
  return os.str();
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace dinfomap::util
