// Scheduling-point hooks for the dcheck model checker (DESIGN.md §16).
//
// Every synchronization primitive in this tree (util::Mutex, util::CondVar,
// util::Atomic, the RelaxMap SpinLock, comm::Mailbox channel ops) funnels
// through the small hook surface declared here. In a normal build
// (DINFOMAP_DCHECK undefined) the macros below expand to nothing and the
// wrappers compile to the raw primitives — zero overhead, byte-identical hot
// paths. Under -DDINFOMAP_DCHECK=ON, tools/dcheck installs a SchedHooks
// implementation that replaces blocking with cooperative scheduling: threads
// participating in an exploration ("model threads") park at every hook call
// and the checker decides, deterministically and exhaustively, who runs next.
//
// Only threads marked with set_on_model_thread(true) are intercepted, so a
// DCHECK build still runs the regular test suite unmodeled. Production code
// never includes tools/dcheck; the dependency is inverted through the
// SchedHooks vtable installed at runtime.
//
// Seeded mutations: dcheck validates each harness by re-introducing a known
// bug (e.g. the PR 6 nested run_inline slot_seconds_ race) behind
// mutation_enabled("name"). Mutation code is compiled only under
// DINFOMAP_DCHECK and is dead unless the checker turns the named mutation on.
#pragma once

#if defined(DINFOMAP_DCHECK)

namespace dinfomap::util::dcheck {

/// Thrown into model threads blocked at a scheduling point when an
/// exploration aborts (a bug was found and remaining threads must unwind).
/// Production code must let it propagate to the adoption wrapper; harness
/// threads catch it at their outermost frame.
struct Aborted {};

/// The checker's side of the contract. All calls are made by model threads;
/// the "blocking" entries park the caller until the scheduler grants its
/// next step (and, for locks, until the operation can proceed).
struct SchedHooks {
  virtual ~SchedHooks() = default;

  // --- mutual exclusion (util::Mutex, SpinLock) --------------------------
  /// Scheduling point. Parks until this thread is chosen *and* `m` is free;
  /// then acquires it in the model (the real mutex is never touched).
  virtual void mutex_lock(void* m, const char* what) = 0;
  /// Releases `m` in the model. Not a scheduling point: the next hook call
  /// of this thread offers the switch before its next operation runs.
  virtual void mutex_unlock(void* m) = 0;

  // --- condition variables (util::CondVar via MutexLock shims) -----------
  /// Atomically release `m` and park until notified; reacquires `m` before
  /// returning. Scheduling point.
  virtual void cv_wait(void* cv, void* m) = 0;
  /// Timed variant in virtual time: the waiter stays eligible and the
  /// scheduler explores both wake-by-notify and timeout. Returns false on
  /// (virtual) timeout; `m` is reacquired either way. Scheduling point.
  virtual bool cv_wait_timed(void* cv, void* m) = 0;
  /// Wake one/all model waiters. With `all == false` and several waiters the
  /// victim is a scheduling *decision* (recorded in the schedule string) so
  /// lost-wakeup interleavings are explored, not sampled.
  virtual void cv_notify(void* cv, bool all) = 0;

  // --- memory accesses ---------------------------------------------------
  /// Tracked access to shared state; scheduling point, and input to the
  /// vector-clock race detector. `atomic` accesses synchronize (acq/rel on
  /// the address); plain accesses are checked for data races.
  virtual void access(const void* addr, bool write, bool atomic,
                      const char* what) = 0;
  /// Labeled scheduling point with no memory semantics (protocol-level
  /// granularity markers, e.g. mailbox enqueue/dequeue).
  virtual void region(const char* what, const void* obj) = 0;

  // --- thread lifecycle --------------------------------------------------
  /// Called by the creator immediately before std::thread launch so the
  /// scheduler can wait for the adoption instead of declaring quiescence.
  virtual void thread_announced() = 0;
  /// First call of a freshly adopted thread; parks until first granted.
  virtual void thread_started() = 0;
  /// Last call of an adopted thread.
  virtual void thread_finished() = 0;
  /// Park until every other managed thread has finished (ThreadPool's dtor
  /// join — the workers are the only peers left by then). Never throws, so
  /// it is safe during unwinding.
  virtual void join_all() = 0;
};

/// Installed hooks, or nullptr when no exploration is active.
SchedHooks* hooks();
void install_hooks(SchedHooks* h);

/// Whether the *current thread* participates in the exploration.
bool on_model_thread();
void set_on_model_thread(bool v);

/// True only when hooks are installed and this thread is managed — the one
/// test every intercepted primitive performs.
inline bool modeled() { return hooks() != nullptr && on_model_thread(); }

/// Seeded-mutation registry: at most one mutation is active per run.
bool mutation_enabled(const char* name);
void set_mutation(const char* name);  // nullptr clears

}  // namespace dinfomap::util::dcheck

/// Tracked plain store/load (race-detector input + scheduling point).
#define DI_SCHED_STORE(addr, what)                                   \
  do {                                                               \
    if (::dinfomap::util::dcheck::modeled())                         \
      ::dinfomap::util::dcheck::hooks()->access(addr, true, false,   \
                                                what);               \
  } while (0)
#define DI_SCHED_LOAD(addr, what)                                    \
  do {                                                               \
    if (::dinfomap::util::dcheck::modeled())                         \
      ::dinfomap::util::dcheck::hooks()->access(addr, false, false,  \
                                                what);               \
  } while (0)
/// Tracked atomic access (synchronizes; scheduling point).
#define DI_SCHED_ATOMIC(addr, is_write, what)                        \
  do {                                                               \
    if (::dinfomap::util::dcheck::modeled())                         \
      ::dinfomap::util::dcheck::hooks()->access(addr, is_write,      \
                                                true, what);         \
  } while (0)
/// Labeled scheduling point (no memory semantics).
#define DI_SCHED_REGION(what, obj)                                   \
  do {                                                               \
    if (::dinfomap::util::dcheck::modeled())                         \
      ::dinfomap::util::dcheck::hooks()->region(what, obj);          \
  } while (0)

#else  // !DINFOMAP_DCHECK — every hook disappears entirely.

#define DI_SCHED_STORE(addr, what) ((void)0)
#define DI_SCHED_LOAD(addr, what) ((void)0)
#define DI_SCHED_ATOMIC(addr, is_write, what) ((void)0)
#define DI_SCHED_REGION(what, obj) ((void)0)

#endif  // DINFOMAP_DCHECK
