// Annotated mutex + scoped lock (DESIGN.md §11).
//
// libstdc++'s std::mutex carries no thread-safety attributes, so clang's
// -Wthread-safety cannot see std::lock_guard acquire it. These thin wrappers
// are the annotated equivalents the analysis *can* track: a util::Mutex is a
// DI_CAPABILITY, a util::MutexLock is the one sanctioned way to hold it, and
// condition-variable waits go through the guard so the "lock is reacquired
// before the predicate runs" contract stays visible to the analysis.
//
// Zero overhead: both types compile down to std::mutex / std::unique_lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace dinfomap::util {

class DI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The wrapper bodies are the one sanctioned place that calls the raw
  // std::mutex members; every other call site must use a scoped guard.
  void lock() DI_ACQUIRE() {
    m_.lock();  // dlint:allow(raw-mutex-lock): annotated wrapper implementation
  }
  void unlock() DI_RELEASE() {
    m_.unlock();  // dlint:allow(raw-mutex-lock): annotated wrapper implementation
  }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII guard over util::Mutex — the project's std::lock_guard. Also the
/// condition-variable shim: cv waits need the underlying std::unique_lock,
/// and routing them through the guard keeps the capability provably held
/// across the wait from the analysis's point of view.
class DI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DI_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~MutexLock() DI_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Block on `cv`; the mutex is released during the wait and reacquired
  /// before return (and before any predicate runs).
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

  template <typename Predicate>
  void wait(std::condition_variable& cv, Predicate predicate) {
    cv.wait(lock_, std::move(predicate));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      std::condition_variable& cv,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv.wait_until(lock_, deadline);
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace dinfomap::util
