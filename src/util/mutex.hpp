// Annotated mutex + scoped lock + condition variable (DESIGN.md §11, §16).
//
// libstdc++'s std::mutex carries no thread-safety attributes, so clang's
// -Wthread-safety cannot see std::lock_guard acquire it. These thin wrappers
// are the annotated equivalents the analysis *can* track: a util::Mutex is a
// DI_CAPABILITY, a util::MutexLock is the one sanctioned way to hold it, and
// condition-variable waits go through the guard so the "lock is reacquired
// before the predicate runs" contract stays visible to the analysis.
//
// The same wrappers are the dcheck model checker's interception surface
// (util/sched_point.hpp): under -DDINFOMAP_DCHECK=ON a thread participating
// in an exploration parks at every lock/wait/notify instead of touching the
// raw primitive, which is what lets tools/dcheck enumerate interleavings
// exhaustively. util::CondVar exists (rather than a bare
// std::condition_variable) so notify calls are interceptable too.
//
// Zero overhead in a normal build: all three types compile down to
// std::mutex / std::unique_lock / std::condition_variable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"
#include "util/sched_point.hpp"

namespace dinfomap::util {

class DI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The wrapper bodies are the one sanctioned place that calls the raw
  // std::mutex members; every other call site must use a scoped guard.
  void lock() DI_ACQUIRE() {
#if defined(DINFOMAP_DCHECK)
    if (dcheck::modeled()) {
      dcheck::hooks()->mutex_lock(this, "util::Mutex");
      return;
    }
#endif
    m_.lock();  // dlint:allow(raw-mutex-lock): annotated wrapper implementation
  }
  void unlock() DI_RELEASE() {
#if defined(DINFOMAP_DCHECK)
    if (dcheck::modeled()) {
      dcheck::hooks()->mutex_unlock(this);
      return;
    }
#endif
    m_.unlock();  // dlint:allow(raw-mutex-lock): annotated wrapper implementation
  }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// Condition variable paired with util::Mutex through MutexLock's wait
/// shims. Notifies are forwarded to the model checker when the calling
/// thread is under exploration — with notify_one, *which* waiter wakes is an
/// explored scheduling decision, so lost-wakeup bugs are found, not sampled.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() {
#if defined(DINFOMAP_DCHECK)
    if (dcheck::modeled()) {
      dcheck::hooks()->cv_notify(this, /*all=*/false);
      return;
    }
#endif
    cv_.notify_one();
  }
  void notify_all() {
#if defined(DINFOMAP_DCHECK)
    if (dcheck::modeled()) {
      dcheck::hooks()->cv_notify(this, /*all=*/true);
      return;
    }
#endif
    cv_.notify_all();
  }

 private:
  friend class MutexLock;
  std::condition_variable cv_;
};

/// RAII guard over util::Mutex — the project's std::lock_guard. Also the
/// condition-variable shim: cv waits need the underlying std::unique_lock,
/// and routing them through the guard keeps the capability provably held
/// across the wait from the analysis's point of view.
class DI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DI_ACQUIRE(mutex) {
#if defined(DINFOMAP_DCHECK)
    mutex_ = &mutex;
    if (dcheck::modeled()) {
      modeled_ = true;
      dcheck::hooks()->mutex_lock(&mutex, "util::Mutex");
      return;
    }
#endif
    lock_ = std::unique_lock<std::mutex>(mutex.m_);
  }
  ~MutexLock() DI_RELEASE() {
#if defined(DINFOMAP_DCHECK)
    if (modeled_) dcheck::hooks()->mutex_unlock(mutex_);
#endif
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Block on `cv`; the mutex is released during the wait and reacquired
  /// before return (and before any predicate runs).
  void wait(CondVar& cv) {
#if defined(DINFOMAP_DCHECK)
    if (modeled_) {
      dcheck::hooks()->cv_wait(&cv, mutex_);
      return;
    }
#endif
    cv.cv_.wait(lock_);
  }

  template <typename Predicate>
  void wait(CondVar& cv, Predicate predicate) {
#if defined(DINFOMAP_DCHECK)
    if (modeled_) {
      while (!predicate()) dcheck::hooks()->cv_wait(&cv, mutex_);
      return;
    }
#endif
    cv.cv_.wait(lock_, std::move(predicate));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      CondVar& cv, const std::chrono::time_point<Clock, Duration>& deadline) {
#if defined(DINFOMAP_DCHECK)
    if (modeled_) {
      // Virtual time: the deadline's magnitude is irrelevant — the checker
      // explores both the notify and the timeout transition.
      return dcheck::hooks()->cv_wait_timed(&cv, mutex_)
                 ? std::cv_status::no_timeout
                 : std::cv_status::timeout;
    }
#endif
    return cv.cv_.wait_until(lock_, deadline);
  }

 private:
  std::unique_lock<std::mutex> lock_;
#if defined(DINFOMAP_DCHECK)
  Mutex* mutex_ = nullptr;
  bool modeled_ = false;
#endif
};

}  // namespace dinfomap::util
