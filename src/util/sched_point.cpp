#include "util/sched_point.hpp"

#if defined(DINFOMAP_DCHECK)

#include <cstring>
#include <string>

namespace dinfomap::util::dcheck {

namespace {
SchedHooks* g_hooks = nullptr;
thread_local bool t_model_thread = false;
// Written only between explorations (single-threaded setup in tools/dcheck),
// read by model threads while serialized under the scheduler's token.
std::string g_mutation;
}  // namespace

SchedHooks* hooks() { return g_hooks; }
void install_hooks(SchedHooks* h) { g_hooks = h; }

bool on_model_thread() { return t_model_thread; }
void set_on_model_thread(bool v) { t_model_thread = v; }

bool mutation_enabled(const char* name) {
  return !g_mutation.empty() && g_mutation == name;
}
void set_mutation(const char* name) { g_mutation = name ? name : ""; }

}  // namespace dinfomap::util::dcheck

#endif  // DINFOMAP_DCHECK
