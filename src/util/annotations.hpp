// Clang thread-safety annotation macros (DESIGN.md §11).
//
// The project's concurrency rules — which mutex guards which member, which
// functions must (or must not) be called with a lock held — are encoded with
// these macros so `clang -Wthread-safety` checks them statically. Under any
// other compiler they expand to nothing; the annotated code stays portable.
//
// Conventions:
//  - Every lock-protected member carries DI_GUARDED_BY(its_mutex).
//  - Locks are taken through scoped guards (util::MutexLock, or a local
//    DI_SCOPED_CAPABILITY type); bare .lock()/.unlock() pairs are banned by
//    the dlint `raw-mutex-lock` rule, not just by convention.
//  - Public methods that take a lock internally carry DI_EXCLUDES(mutex) so
//    re-entrant misuse is a compile error under clang.
//  - DI_NO_THREAD_SAFETY_ANALYSIS is reserved for by-design racy reads
//    (RelaxMap's consistency model) and each use must carry a comment
//    justifying it.
#pragma once

#if defined(__clang__)
#define DI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DI_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (e.g. a mutex or spinlock).
#define DI_CAPABILITY(x) DI_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define DI_SCOPED_CAPABILITY DI_THREAD_ANNOTATION(scoped_lockable)

/// Member is only read/written with the named capability held.
#define DI_GUARDED_BY(x) DI_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define DI_PT_GUARDED_BY(x) DI_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability (function does not acquire it).
#define DI_REQUIRES(...) DI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define DI_ACQUIRE(...) DI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability held on entry.
#define DI_RELEASE(...) DI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when returning the given value.
#define DI_TRY_ACQUIRE(...) \
  DI_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (function acquires it internally).
#define DI_EXCLUDES(...) DI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define DI_RETURN_CAPABILITY(x) DI_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress analysis for one function. Reserved for by-design
/// data races; every use needs a justifying comment.
#define DI_NO_THREAD_SAFETY_ANALYSIS \
  DI_THREAD_ANNOTATION(no_thread_safety_analysis)
