// Minimal leveled logger. Thread-safe line-at-a-time output; intended for
// coarse progress reporting, not per-edge tracing.
#pragma once

#include <sstream>
#include <string>

namespace dinfomap::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users opt in to chatter.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line (with level tag and monotonic timestamp) to stderr.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dinfomap::util

#define DINFOMAP_LOG(level)                                        \
  if (static_cast<int>(level) < static_cast<int>(::dinfomap::util::log_level())) \
    ;                                                              \
  else                                                             \
    ::dinfomap::util::detail::LogStream(level)

#define LOG_DEBUG DINFOMAP_LOG(::dinfomap::util::LogLevel::kDebug)
#define LOG_INFO DINFOMAP_LOG(::dinfomap::util::LogLevel::kInfo)
#define LOG_WARN DINFOMAP_LOG(::dinfomap::util::LogLevel::kWarn)
#define LOG_ERROR DINFOMAP_LOG(::dinfomap::util::LogLevel::kError)
