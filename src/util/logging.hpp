// Minimal leveled logger. Thread-safe line-at-a-time output; intended for
// coarse progress reporting, not per-edge tracing. Lines carry the log level
// and, when emitted from inside a comm runtime rank, the rank id.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dinfomap::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users opt in to chatter.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect formatted lines to `sink` instead of stderr (tests capture
/// watchdog warnings this way); pass nullptr to restore stderr. The sink
/// receives the level and the raw message (no timestamp/level/rank prefix).
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Rank id attached to every line logged from the calling thread (the comm
/// runtime tags each rank thread); -1 = not inside a rank.
void set_thread_rank(int rank);
int thread_rank();

/// RAII rank tag for the current thread.
class ScopedThreadRank {
 public:
  explicit ScopedThreadRank(int rank) : prev_(thread_rank()) {
    set_thread_rank(rank);
  }
  ScopedThreadRank(const ScopedThreadRank&) = delete;
  ScopedThreadRank& operator=(const ScopedThreadRank&) = delete;
  ~ScopedThreadRank() { set_thread_rank(prev_); }

 private:
  int prev_;
};

/// Emit one line (with level tag, monotonic timestamp, and rank id when
/// inside a rank) to stderr or the installed sink.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dinfomap::util

#define DINFOMAP_LOG(level)                                        \
  if (static_cast<int>(level) < static_cast<int>(::dinfomap::util::log_level())) \
    ;                                                              \
  else                                                             \
    ::dinfomap::util::detail::LogStream(level)

#define LOG_DEBUG DINFOMAP_LOG(::dinfomap::util::LogLevel::kDebug)
#define LOG_INFO DINFOMAP_LOG(::dinfomap::util::LogLevel::kInfo)
#define LOG_WARN DINFOMAP_LOG(::dinfomap::util::LogLevel::kWarn)
#define LOG_ERROR DINFOMAP_LOG(::dinfomap::util::LogLevel::kError)
