#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace dinfomap::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

double seconds_since_start() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%8.3f] %s %s\n", seconds_since_start(), tag(level),
               message.c_str());
}

}  // namespace dinfomap::util
