#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dinfomap::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex;  // serializes stderr interleaving and guards the sink
LogSink g_sink DI_GUARDED_BY(g_mutex);
thread_local int t_rank = -1;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

double seconds_since_start() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  MutexLock lock(g_mutex);
  g_sink = std::move(sink);
}

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  MutexLock lock(g_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  if (t_rank >= 0) {
    std::fprintf(stderr, "[%8.3f] [r%d] %s %s\n", seconds_since_start(),
                 t_rank, tag(level), message.c_str());
  } else {
    std::fprintf(stderr, "[%8.3f] %s %s\n", seconds_since_start(), tag(level),
                 message.c_str());
  }
}

}  // namespace dinfomap::util
