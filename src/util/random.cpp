#include "util/random.hpp"

namespace dinfomap::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // A zero state would lock the generator at zero forever; SplitMix64 cannot
  // emit four zeros for any seed, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t derive_seed(std::uint64_t root_seed, std::uint64_t stream_id) {
  SplitMix64 sm(root_seed ^ (0xD1B54A32D192ED03ULL * (stream_id + 1)));
  sm.next();
  return sm.next();
}

}  // namespace dinfomap::util
