#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/sched_point.hpp"
#include "util/timer.hpp"

namespace dinfomap::util {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)),
      errors_(static_cast<std::size_t>(num_threads_)),
      slot_seconds_(static_cast<std::size_t>(num_threads_), 0.0) {
#if defined(DINFOMAP_DCHECK)
  dcheck_modeled_ = dcheck::modeled();
#endif
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int slot = 1; slot < num_threads_; ++slot) {
#if defined(DINFOMAP_DCHECK)
    if (dcheck_modeled_) dcheck::hooks()->thread_announced();
#endif
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
#if defined(DINFOMAP_DCHECK)
  // Workers need scheduler grants to observe stop_ and exit; hand them the
  // token until they all finish, then the real joins return immediately.
  if (dcheck_modeled_) dcheck::hooks()->join_all();
#endif
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_inline(const std::function<void(int)>& fn) {
#if defined(DINFOMAP_DCHECK)
  if (dcheck::mutation_enabled("threadpool.nested-slot-seconds")) {
    // Seeded mutation: the PR 6 race, re-introduced for the dcheck harness.
    // A nested inline dispatch recorded per-slot times while the *outer*
    // dispatch's workers still owned their slot_seconds_ entries — two
    // unordered writes to the same element.
    for (int slot = 0; slot < num_threads_; ++slot) {
      Timer t;
      fn(slot);
      const auto s = static_cast<std::size_t>(slot);
      DI_SCHED_STORE(&slot_seconds_[s], "ThreadPool.slot_seconds");
      slot_seconds_[s] = t.seconds();
    }
    return;
  }
#endif
  // Nested dispatch only: the outer job's workers are still running and
  // still own their slot_seconds_ entries, so record no per-slot times here
  // — the nested work is timed as part of the enclosing slot's measurement.
  for (int slot = 0; slot < num_threads_; ++slot) fn(slot);
}

void ThreadPool::run_slots(const std::function<void(int)>& fn) {
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ == 1) {
    Timer t;
    fn(0);
    slot_seconds_[0] = t.seconds();
    return;
  }
  // Nested dispatch (a slot re-entering the pool) would wait on workers that
  // are waiting on it; degrade to inline serial execution — same slots, same
  // order, same results.
  if (active_.exchange(true, std::memory_order_acquire)) {
    run_inline(fn);
    return;
  }

  {
    MutexLock lock(mutex_);
    job_ = &fn;
    pending_ = num_threads_ - 1;
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
    ++generation_;
  }
  start_cv_.notify_all();

  {
    Timer t;
    try {
      fn(0);
    } catch (...) {
      errors_[0] = std::current_exception();
    }
    DI_SCHED_STORE(&slot_seconds_[0], "ThreadPool.slot_seconds");
    slot_seconds_[0] = t.seconds();
  }

  {
    MutexLock lock(mutex_);
    lock.wait(done_cv_,
              [this]() DI_REQUIRES(mutex_) { return pending_ == 0; });
    job_ = nullptr;
  }
  active_.store(false, std::memory_order_release);

  for (const auto& e : errors_)
    if (e) std::rethrow_exception(e);
}

void ThreadPool::worker_loop(int slot) {
#if defined(DINFOMAP_DCHECK)
  if (dcheck_modeled_) {
    dcheck::set_on_model_thread(true);
    dcheck::hooks()->thread_started();
    try {
      worker_loop_body(slot);
    } catch (const dcheck::Aborted&) {
      // Exploration abort: unwind quietly; the scheduler is tearing down.
    }
    dcheck::hooks()->thread_finished();
    return;
  }
#endif
  worker_loop_body(slot);
}

void ThreadPool::worker_loop_body(int slot) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      lock.wait(start_cv_, [&]() DI_REQUIRES(mutex_) {
        return stop_ || generation_ != seen;
      });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    Timer t;
    try {
      (*job)(slot);
    } catch (...) {
      errors_[static_cast<std::size_t>(slot)] = std::current_exception();
    }
    DI_SCHED_STORE(&slot_seconds_[static_cast<std::size_t>(slot)],
                   "ThreadPool.slot_seconds");
    slot_seconds_[static_cast<std::size_t>(slot)] = t.seconds();
    {
      MutexLock lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace dinfomap::util
