#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace dinfomap::util {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)),
      errors_(static_cast<std::size_t>(num_threads_)),
      slot_seconds_(static_cast<std::size_t>(num_threads_), 0.0) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int slot = 1; slot < num_threads_; ++slot)
    workers_.emplace_back([this, slot] { worker_loop(slot); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_inline(const std::function<void(int)>& fn) {
  // Nested dispatch only: the outer job's workers are still running and
  // still own their slot_seconds_ entries, so record no per-slot times here
  // — the nested work is timed as part of the enclosing slot's measurement.
  for (int slot = 0; slot < num_threads_; ++slot) fn(slot);
}

void ThreadPool::run_slots(const std::function<void(int)>& fn) {
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ == 1) {
    Timer t;
    fn(0);
    slot_seconds_[0] = t.seconds();
    return;
  }
  // Nested dispatch (a slot re-entering the pool) would wait on workers that
  // are waiting on it; degrade to inline serial execution — same slots, same
  // order, same results.
  if (active_.exchange(true, std::memory_order_acquire)) {
    run_inline(fn);
    return;
  }

  {
    MutexLock lock(mutex_);
    job_ = &fn;
    pending_ = num_threads_ - 1;
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
    ++generation_;
  }
  start_cv_.notify_all();

  {
    Timer t;
    try {
      fn(0);
    } catch (...) {
      errors_[0] = std::current_exception();
    }
    slot_seconds_[0] = t.seconds();
  }

  {
    MutexLock lock(mutex_);
    lock.wait(done_cv_,
              [this]() DI_REQUIRES(mutex_) { return pending_ == 0; });
    job_ = nullptr;
  }
  active_.store(false, std::memory_order_release);

  for (const auto& e : errors_)
    if (e) std::rethrow_exception(e);
}

void ThreadPool::worker_loop(int slot) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      lock.wait(start_cv_, [&]() DI_REQUIRES(mutex_) {
        return stop_ || generation_ != seen;
      });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    Timer t;
    try {
      (*job)(slot);
    } catch (...) {
      errors_[static_cast<std::size_t>(slot)] = std::current_exception();
    }
    slot_seconds_[static_cast<std::size_t>(slot)] = t.seconds();
    {
      MutexLock lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace dinfomap::util
