// Lazy-deletion max-priority worklist — the async engine's move queue
// (DESIGN.md §12), extracted from DistRank so the dcheck model checker can
// drive the real implementation in its push/requeue-vs-drain harness
// (DESIGN.md §16).
//
// Deterministic by construction: the heap orders by (higher priority,
// smaller index) and a raise re-pushes instead of re-heapifying, leaving a
// stale entry to be discarded at pop time against the per-index
// authoritative priority. The class is NOT thread-safe; concurrent callers
// must hold their own lock. The DI_SCHED_* markers make every mutation a
// tracked access under DINFOMAP_DCHECK, so an unguarded caller shows up as
// a data race in the checker; in a normal build they compile to nothing.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/sched_point.hpp"

namespace dinfomap::util {

class LazyPriorityWorklist {
 public:
  struct Counters {
    std::uint64_t pushed = 0;    ///< first-time activations
    std::uint64_t popped = 0;    ///< live entries handed out
    std::uint64_t requeued = 0;  ///< priority raises (lazy re-push)
    std::uint64_t stale = 0;     ///< lazy-deleted duplicates discarded
  };

  /// Empty the worklist and size it for indices [0, n); zeroes the counters.
  void reset(std::size_t n) {
    DI_SCHED_STORE(this, "LazyPriorityWorklist.reset");
    heap_.clear();
    queued_prio_.assign(n, kNotQueued);
    live_ = 0;
    counters_ = {};
  }

  /// Push `li` with priority `prio`, or raise its priority if already queued
  /// (lazy deletion: the old entry stays in the heap and is discarded at pop
  /// when its priority no longer matches). Lower priorities are ignored.
  void activate(std::uint32_t li, double prio) {
    DI_SCHED_STORE(this, "LazyPriorityWorklist.activate");
    double& q = queued_prio_[li];
    if (q == kNotQueued) {
      q = prio;
      heap_.push_back({prio, li});
      std::push_heap(heap_.begin(), heap_.end(), less);
      ++counters_.pushed;
      ++live_;
    } else if (prio > q) {
      q = prio;
      heap_.push_back({prio, li});
      std::push_heap(heap_.begin(), heap_.end(), less);
      ++counters_.requeued;
    }
  }

  /// Pop the highest-priority live entry into `li`; stale duplicates are
  /// discarded (and counted) along the way. False when drained.
  bool try_pop(std::uint32_t& li) {
    DI_SCHED_STORE(this, "LazyPriorityWorklist.try_pop");
    while (!heap_.empty()) {
      const Item top = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), less);
      heap_.pop_back();
      if (queued_prio_[top.li] != top.prio) {
        ++counters_.stale;  // lazy-deleted duplicate
        continue;
      }
      queued_prio_[top.li] = kNotQueued;
      ++counters_.popped;
      --live_;
      li = top.li;
      return true;
    }
    return false;
  }

  /// True when nothing (live or stale) is queued.
  [[nodiscard]] bool empty() const {
    DI_SCHED_LOAD(this, "LazyPriorityWorklist.empty");
    return heap_.empty();
  }
  /// Live (non-stale) queued entries.
  [[nodiscard]] std::uint64_t live() const {
    DI_SCHED_LOAD(this, "LazyPriorityWorklist.live");
    return live_;
  }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Zero the traffic counters (kept across epochs, reset per sample).
  void reset_counters() { counters_ = {}; }

 private:
  /// Priorities are non-negative (gains and flows), so any negative value
  /// marks "not queued".
  static constexpr double kNotQueued = -1.0;

  struct Item {
    double prio = 0;
    std::uint32_t li = 0;
  };
  /// Max-heap order with a deterministic tie-break: higher priority first,
  /// smaller index on equal priority.
  static bool less(const Item& a, const Item& b) {
    return a.prio < b.prio || (a.prio == b.prio && a.li > b.li);
  }

  std::vector<Item> heap_;
  std::vector<double> queued_prio_;  ///< per index; negative = not queued
  std::uint64_t live_ = 0;
  Counters counters_;
};

}  // namespace dinfomap::util
