file(REMOVE_RECURSE
  "CMakeFiles/test_tree_io.dir/test_tree_io.cpp.o"
  "CMakeFiles/test_tree_io.dir/test_tree_io.cpp.o.d"
  "test_tree_io"
  "test_tree_io.pdb"
  "test_tree_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
