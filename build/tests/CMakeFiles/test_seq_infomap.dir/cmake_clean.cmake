file(REMOVE_RECURSE
  "CMakeFiles/test_seq_infomap.dir/test_seq_infomap.cpp.o"
  "CMakeFiles/test_seq_infomap.dir/test_seq_infomap.cpp.o.d"
  "test_seq_infomap"
  "test_seq_infomap.pdb"
  "test_seq_infomap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_infomap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
