# Empty dependencies file for test_seq_infomap.
# This may be replaced when dependencies are built.
