file(REMOVE_RECURSE
  "CMakeFiles/test_relaxmap.dir/test_relaxmap.cpp.o"
  "CMakeFiles/test_relaxmap.dir/test_relaxmap.cpp.o.d"
  "test_relaxmap"
  "test_relaxmap.pdb"
  "test_relaxmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relaxmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
