# Empty dependencies file for test_relaxmap.
# This may be replaced when dependencies are built.
