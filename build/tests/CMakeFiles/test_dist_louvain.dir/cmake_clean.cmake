file(REMOVE_RECURSE
  "CMakeFiles/test_dist_louvain.dir/test_dist_louvain.cpp.o"
  "CMakeFiles/test_dist_louvain.dir/test_dist_louvain.cpp.o.d"
  "test_dist_louvain"
  "test_dist_louvain.pdb"
  "test_dist_louvain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_louvain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
