# Empty compiler generated dependencies file for test_dist_louvain.
# This may be replaced when dependencies are built.
