# Empty dependencies file for test_datasets_full.
# This may be replaced when dependencies are built.
