file(REMOVE_RECURSE
  "CMakeFiles/test_datasets_full.dir/test_datasets_full.cpp.o"
  "CMakeFiles/test_datasets_full.dir/test_datasets_full.cpp.o.d"
  "test_datasets_full"
  "test_datasets_full.pdb"
  "test_datasets_full[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datasets_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
