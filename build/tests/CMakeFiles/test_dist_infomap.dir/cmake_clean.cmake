file(REMOVE_RECURSE
  "CMakeFiles/test_dist_infomap.dir/test_dist_infomap.cpp.o"
  "CMakeFiles/test_dist_infomap.dir/test_dist_infomap.cpp.o.d"
  "test_dist_infomap"
  "test_dist_infomap.pdb"
  "test_dist_infomap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_infomap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
