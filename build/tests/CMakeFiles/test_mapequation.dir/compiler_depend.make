# Empty compiler generated dependencies file for test_mapequation.
# This may be replaced when dependencies are built.
