file(REMOVE_RECURSE
  "CMakeFiles/test_mapequation.dir/test_mapequation.cpp.o"
  "CMakeFiles/test_mapequation.dir/test_mapequation.cpp.o.d"
  "test_mapequation"
  "test_mapequation.pdb"
  "test_mapequation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapequation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
