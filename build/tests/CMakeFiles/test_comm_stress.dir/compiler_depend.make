# Empty compiler generated dependencies file for test_comm_stress.
# This may be replaced when dependencies are built.
