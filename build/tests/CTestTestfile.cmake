# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_comm_stress[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_quality[1]_include.cmake")
include("/root/repo/build/tests/test_mapequation[1]_include.cmake")
include("/root/repo/build/tests/test_seq_infomap[1]_include.cmake")
include("/root/repo/build/tests/test_coarsen[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_dist_infomap[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
include("/root/repo/build/tests/test_directed[1]_include.cmake")
include("/root/repo/build/tests/test_relaxmap[1]_include.cmake")
include("/root/repo/build/tests/test_tree_io[1]_include.cmake")
include("/root/repo/build/tests/test_dist_property[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_formats[1]_include.cmake")
include("/root/repo/build/tests/test_dist_louvain[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_datasets_full[1]_include.cmake")
