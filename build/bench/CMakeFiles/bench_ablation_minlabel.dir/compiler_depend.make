# Empty compiler generated dependencies file for bench_ablation_minlabel.
# This may be replaced when dependencies are built.
