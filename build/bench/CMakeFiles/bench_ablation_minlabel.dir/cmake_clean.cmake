file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_minlabel.dir/bench_ablation_minlabel.cpp.o"
  "CMakeFiles/bench_ablation_minlabel.dir/bench_ablation_minlabel.cpp.o.d"
  "bench_ablation_minlabel"
  "bench_ablation_minlabel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_minlabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
