file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_quality.dir/bench_table2_quality.cpp.o"
  "CMakeFiles/bench_table2_quality.dir/bench_table2_quality.cpp.o.d"
  "bench_table2_quality"
  "bench_table2_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
