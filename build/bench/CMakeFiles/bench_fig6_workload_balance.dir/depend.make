# Empty dependencies file for bench_fig6_workload_balance.
# This may be replaced when dependencies are built.
