file(REMOVE_RECURSE
  "CMakeFiles/bench_supp_hierarchy.dir/bench_supp_hierarchy.cpp.o"
  "CMakeFiles/bench_supp_hierarchy.dir/bench_supp_hierarchy.cpp.o.d"
  "bench_supp_hierarchy"
  "bench_supp_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supp_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
