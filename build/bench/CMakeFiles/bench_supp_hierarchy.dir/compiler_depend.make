# Empty compiler generated dependencies file for bench_supp_hierarchy.
# This may be replaced when dependencies are built.
