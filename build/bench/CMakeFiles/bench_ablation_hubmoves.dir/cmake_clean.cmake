file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hubmoves.dir/bench_ablation_hubmoves.cpp.o"
  "CMakeFiles/bench_ablation_hubmoves.dir/bench_ablation_hubmoves.cpp.o.d"
  "bench_ablation_hubmoves"
  "bench_ablation_hubmoves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hubmoves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
