# Empty compiler generated dependencies file for bench_ablation_hubmoves.
# This may be replaced when dependencies are built.
