# Empty compiler generated dependencies file for bench_fig4_mdl_convergence.
# This may be replaced when dependencies are built.
