file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dhigh.dir/bench_ablation_dhigh.cpp.o"
  "CMakeFiles/bench_ablation_dhigh.dir/bench_ablation_dhigh.cpp.o.d"
  "bench_ablation_dhigh"
  "bench_ablation_dhigh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dhigh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
