# Empty dependencies file for bench_ablation_dhigh.
# This may be replaced when dependencies are built.
