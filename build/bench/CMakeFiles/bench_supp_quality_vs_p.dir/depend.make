# Empty dependencies file for bench_supp_quality_vs_p.
# This may be replaced when dependencies are built.
