file(REMOVE_RECURSE
  "CMakeFiles/bench_supp_quality_vs_p.dir/bench_supp_quality_vs_p.cpp.o"
  "CMakeFiles/bench_supp_quality_vs_p.dir/bench_supp_quality_vs_p.cpp.o.d"
  "bench_supp_quality_vs_p"
  "bench_supp_quality_vs_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supp_quality_vs_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
