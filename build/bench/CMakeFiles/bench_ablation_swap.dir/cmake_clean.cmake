file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_swap.dir/bench_ablation_swap.cpp.o"
  "CMakeFiles/bench_ablation_swap.dir/bench_ablation_swap.cpp.o.d"
  "bench_ablation_swap"
  "bench_ablation_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
