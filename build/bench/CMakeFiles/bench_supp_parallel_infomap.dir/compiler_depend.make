# Empty compiler generated dependencies file for bench_supp_parallel_infomap.
# This may be replaced when dependencies are built.
