file(REMOVE_RECURSE
  "CMakeFiles/bench_supp_parallel_infomap.dir/bench_supp_parallel_infomap.cpp.o"
  "CMakeFiles/bench_supp_parallel_infomap.dir/bench_supp_parallel_infomap.cpp.o.d"
  "bench_supp_parallel_infomap"
  "bench_supp_parallel_infomap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supp_parallel_infomap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
