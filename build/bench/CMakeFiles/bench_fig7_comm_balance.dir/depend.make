# Empty dependencies file for bench_fig7_comm_balance.
# This may be replaced when dependencies are built.
