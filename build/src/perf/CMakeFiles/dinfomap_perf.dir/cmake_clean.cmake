file(REMOVE_RECURSE
  "CMakeFiles/dinfomap_perf.dir/cost_model.cpp.o"
  "CMakeFiles/dinfomap_perf.dir/cost_model.cpp.o.d"
  "libdinfomap_perf.a"
  "libdinfomap_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinfomap_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
