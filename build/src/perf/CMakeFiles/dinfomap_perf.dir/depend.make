# Empty dependencies file for dinfomap_perf.
# This may be replaced when dependencies are built.
