file(REMOVE_RECURSE
  "libdinfomap_perf.a"
)
