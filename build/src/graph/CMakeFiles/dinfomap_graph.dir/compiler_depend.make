# Empty compiler generated dependencies file for dinfomap_graph.
# This may be replaced when dependencies are built.
