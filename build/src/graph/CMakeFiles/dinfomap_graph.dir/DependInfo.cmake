
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/algorithms.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/algorithms.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/dicsr.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/dicsr.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/dicsr.cpp.o.d"
  "/root/repo/src/graph/edgelist_io.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/edgelist_io.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/edgelist_io.cpp.o.d"
  "/root/repo/src/graph/formats.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/formats.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/formats.cpp.o.d"
  "/root/repo/src/graph/gen/barabasi_albert.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/barabasi_albert.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/barabasi_albert.cpp.o.d"
  "/root/repo/src/graph/gen/configuration_model.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/configuration_model.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/configuration_model.cpp.o.d"
  "/root/repo/src/graph/gen/erdos_renyi.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/erdos_renyi.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/erdos_renyi.cpp.o.d"
  "/root/repo/src/graph/gen/lfr_lite.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/lfr_lite.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/lfr_lite.cpp.o.d"
  "/root/repo/src/graph/gen/ring_of_cliques.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/ring_of_cliques.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/ring_of_cliques.cpp.o.d"
  "/root/repo/src/graph/gen/rmat.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/rmat.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/rmat.cpp.o.d"
  "/root/repo/src/graph/gen/sbm.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/sbm.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/sbm.cpp.o.d"
  "/root/repo/src/graph/gen/watts_strogatz.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/watts_strogatz.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/gen/watts_strogatz.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/stats.cpp.o.d"
  "/root/repo/src/graph/transform.cpp" "src/graph/CMakeFiles/dinfomap_graph.dir/transform.cpp.o" "gcc" "src/graph/CMakeFiles/dinfomap_graph.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dinfomap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
