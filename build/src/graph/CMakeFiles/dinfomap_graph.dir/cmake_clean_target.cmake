file(REMOVE_RECURSE
  "libdinfomap_graph.a"
)
