file(REMOVE_RECURSE
  "CMakeFiles/dinfomap_util.dir/logging.cpp.o"
  "CMakeFiles/dinfomap_util.dir/logging.cpp.o.d"
  "CMakeFiles/dinfomap_util.dir/random.cpp.o"
  "CMakeFiles/dinfomap_util.dir/random.cpp.o.d"
  "CMakeFiles/dinfomap_util.dir/stats.cpp.o"
  "CMakeFiles/dinfomap_util.dir/stats.cpp.o.d"
  "libdinfomap_util.a"
  "libdinfomap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinfomap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
