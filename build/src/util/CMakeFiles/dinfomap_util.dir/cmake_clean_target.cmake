file(REMOVE_RECURSE
  "libdinfomap_util.a"
)
