# Empty dependencies file for dinfomap_util.
# This may be replaced when dependencies are built.
