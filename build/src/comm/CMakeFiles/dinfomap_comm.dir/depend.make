# Empty dependencies file for dinfomap_comm.
# This may be replaced when dependencies are built.
