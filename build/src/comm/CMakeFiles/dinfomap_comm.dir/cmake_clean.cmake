file(REMOVE_RECURSE
  "CMakeFiles/dinfomap_comm.dir/comm.cpp.o"
  "CMakeFiles/dinfomap_comm.dir/comm.cpp.o.d"
  "CMakeFiles/dinfomap_comm.dir/mailbox.cpp.o"
  "CMakeFiles/dinfomap_comm.dir/mailbox.cpp.o.d"
  "CMakeFiles/dinfomap_comm.dir/runtime.cpp.o"
  "CMakeFiles/dinfomap_comm.dir/runtime.cpp.o.d"
  "libdinfomap_comm.a"
  "libdinfomap_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinfomap_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
