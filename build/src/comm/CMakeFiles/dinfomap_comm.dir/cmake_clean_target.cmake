file(REMOVE_RECURSE
  "libdinfomap_comm.a"
)
