
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/clustering_io.cpp" "src/io/CMakeFiles/dinfomap_io.dir/clustering_io.cpp.o" "gcc" "src/io/CMakeFiles/dinfomap_io.dir/clustering_io.cpp.o.d"
  "/root/repo/src/io/datasets.cpp" "src/io/CMakeFiles/dinfomap_io.dir/datasets.cpp.o" "gcc" "src/io/CMakeFiles/dinfomap_io.dir/datasets.cpp.o.d"
  "/root/repo/src/io/tree_io.cpp" "src/io/CMakeFiles/dinfomap_io.dir/tree_io.cpp.o" "gcc" "src/io/CMakeFiles/dinfomap_io.dir/tree_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dinfomap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dinfomap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
