file(REMOVE_RECURSE
  "libdinfomap_io.a"
)
