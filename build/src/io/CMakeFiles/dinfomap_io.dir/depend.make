# Empty dependencies file for dinfomap_io.
# This may be replaced when dependencies are built.
