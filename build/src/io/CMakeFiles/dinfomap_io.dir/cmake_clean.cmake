file(REMOVE_RECURSE
  "CMakeFiles/dinfomap_io.dir/clustering_io.cpp.o"
  "CMakeFiles/dinfomap_io.dir/clustering_io.cpp.o.d"
  "CMakeFiles/dinfomap_io.dir/datasets.cpp.o"
  "CMakeFiles/dinfomap_io.dir/datasets.cpp.o.d"
  "CMakeFiles/dinfomap_io.dir/tree_io.cpp.o"
  "CMakeFiles/dinfomap_io.dir/tree_io.cpp.o.d"
  "libdinfomap_io.a"
  "libdinfomap_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinfomap_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
