# Empty compiler generated dependencies file for dinfomap_quality.
# This may be replaced when dependencies are built.
