file(REMOVE_RECURSE
  "CMakeFiles/dinfomap_quality.dir/community_stats.cpp.o"
  "CMakeFiles/dinfomap_quality.dir/community_stats.cpp.o.d"
  "CMakeFiles/dinfomap_quality.dir/contingency.cpp.o"
  "CMakeFiles/dinfomap_quality.dir/contingency.cpp.o.d"
  "CMakeFiles/dinfomap_quality.dir/metrics.cpp.o"
  "CMakeFiles/dinfomap_quality.dir/metrics.cpp.o.d"
  "libdinfomap_quality.a"
  "libdinfomap_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinfomap_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
