
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quality/community_stats.cpp" "src/quality/CMakeFiles/dinfomap_quality.dir/community_stats.cpp.o" "gcc" "src/quality/CMakeFiles/dinfomap_quality.dir/community_stats.cpp.o.d"
  "/root/repo/src/quality/contingency.cpp" "src/quality/CMakeFiles/dinfomap_quality.dir/contingency.cpp.o" "gcc" "src/quality/CMakeFiles/dinfomap_quality.dir/contingency.cpp.o.d"
  "/root/repo/src/quality/metrics.cpp" "src/quality/CMakeFiles/dinfomap_quality.dir/metrics.cpp.o" "gcc" "src/quality/CMakeFiles/dinfomap_quality.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dinfomap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dinfomap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
