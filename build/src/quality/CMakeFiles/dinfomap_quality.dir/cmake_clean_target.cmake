file(REMOVE_RECURSE
  "libdinfomap_quality.a"
)
