file(REMOVE_RECURSE
  "CMakeFiles/dinfomap_partition.dir/arc_partition.cpp.o"
  "CMakeFiles/dinfomap_partition.dir/arc_partition.cpp.o.d"
  "CMakeFiles/dinfomap_partition.dir/metrics.cpp.o"
  "CMakeFiles/dinfomap_partition.dir/metrics.cpp.o.d"
  "libdinfomap_partition.a"
  "libdinfomap_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinfomap_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
