# Empty dependencies file for dinfomap_partition.
# This may be replaced when dependencies are built.
