file(REMOVE_RECURSE
  "libdinfomap_partition.a"
)
