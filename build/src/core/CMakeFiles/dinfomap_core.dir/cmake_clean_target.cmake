file(REMOVE_RECURSE
  "libdinfomap_core.a"
)
