
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coarsen.cpp" "src/core/CMakeFiles/dinfomap_core.dir/coarsen.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/coarsen.cpp.o.d"
  "/root/repo/src/core/directed_infomap.cpp" "src/core/CMakeFiles/dinfomap_core.dir/directed_infomap.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/directed_infomap.cpp.o.d"
  "/root/repo/src/core/dist_infomap.cpp" "src/core/CMakeFiles/dinfomap_core.dir/dist_infomap.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/dist_infomap.cpp.o.d"
  "/root/repo/src/core/dist_louvain.cpp" "src/core/CMakeFiles/dinfomap_core.dir/dist_louvain.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/dist_louvain.cpp.o.d"
  "/root/repo/src/core/dist_setup.cpp" "src/core/CMakeFiles/dinfomap_core.dir/dist_setup.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/dist_setup.cpp.o.d"
  "/root/repo/src/core/flowgraph.cpp" "src/core/CMakeFiles/dinfomap_core.dir/flowgraph.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/flowgraph.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/dinfomap_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/labelflow.cpp" "src/core/CMakeFiles/dinfomap_core.dir/labelflow.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/labelflow.cpp.o.d"
  "/root/repo/src/core/louvain.cpp" "src/core/CMakeFiles/dinfomap_core.dir/louvain.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/louvain.cpp.o.d"
  "/root/repo/src/core/mapequation.cpp" "src/core/CMakeFiles/dinfomap_core.dir/mapequation.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/mapequation.cpp.o.d"
  "/root/repo/src/core/relaxmap.cpp" "src/core/CMakeFiles/dinfomap_core.dir/relaxmap.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/relaxmap.cpp.o.d"
  "/root/repo/src/core/seq_infomap.cpp" "src/core/CMakeFiles/dinfomap_core.dir/seq_infomap.cpp.o" "gcc" "src/core/CMakeFiles/dinfomap_core.dir/seq_infomap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dinfomap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/dinfomap_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dinfomap_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/dinfomap_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dinfomap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
