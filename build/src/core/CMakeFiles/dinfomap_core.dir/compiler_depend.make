# Empty compiler generated dependencies file for dinfomap_core.
# This may be replaced when dependencies are built.
