file(REMOVE_RECURSE
  "CMakeFiles/dinfomap_core.dir/coarsen.cpp.o"
  "CMakeFiles/dinfomap_core.dir/coarsen.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/directed_infomap.cpp.o"
  "CMakeFiles/dinfomap_core.dir/directed_infomap.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/dist_infomap.cpp.o"
  "CMakeFiles/dinfomap_core.dir/dist_infomap.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/dist_louvain.cpp.o"
  "CMakeFiles/dinfomap_core.dir/dist_louvain.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/dist_setup.cpp.o"
  "CMakeFiles/dinfomap_core.dir/dist_setup.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/flowgraph.cpp.o"
  "CMakeFiles/dinfomap_core.dir/flowgraph.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/hierarchy.cpp.o"
  "CMakeFiles/dinfomap_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/labelflow.cpp.o"
  "CMakeFiles/dinfomap_core.dir/labelflow.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/louvain.cpp.o"
  "CMakeFiles/dinfomap_core.dir/louvain.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/mapequation.cpp.o"
  "CMakeFiles/dinfomap_core.dir/mapequation.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/relaxmap.cpp.o"
  "CMakeFiles/dinfomap_core.dir/relaxmap.cpp.o.d"
  "CMakeFiles/dinfomap_core.dir/seq_infomap.cpp.o"
  "CMakeFiles/dinfomap_core.dir/seq_infomap.cpp.o.d"
  "libdinfomap_core.a"
  "libdinfomap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinfomap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
