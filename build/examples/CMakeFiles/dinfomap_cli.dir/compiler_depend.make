# Empty compiler generated dependencies file for dinfomap_cli.
# This may be replaced when dependencies are built.
