file(REMOVE_RECURSE
  "CMakeFiles/dinfomap_cli.dir/dinfomap_cli.cpp.o"
  "CMakeFiles/dinfomap_cli.dir/dinfomap_cli.cpp.o.d"
  "dinfomap_cli"
  "dinfomap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinfomap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
