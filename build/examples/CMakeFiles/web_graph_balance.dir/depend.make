# Empty dependencies file for web_graph_balance.
# This may be replaced when dependencies are built.
