file(REMOVE_RECURSE
  "CMakeFiles/web_graph_balance.dir/web_graph_balance.cpp.o"
  "CMakeFiles/web_graph_balance.dir/web_graph_balance.cpp.o.d"
  "web_graph_balance"
  "web_graph_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_graph_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
