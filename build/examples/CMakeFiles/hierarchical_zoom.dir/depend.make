# Empty dependencies file for hierarchical_zoom.
# This may be replaced when dependencies are built.
