
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hierarchical_zoom.cpp" "examples/CMakeFiles/hierarchical_zoom.dir/hierarchical_zoom.cpp.o" "gcc" "examples/CMakeFiles/hierarchical_zoom.dir/hierarchical_zoom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quality/CMakeFiles/dinfomap_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dinfomap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dinfomap_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/dinfomap_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/dinfomap_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dinfomap_io.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dinfomap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dinfomap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
