file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_zoom.dir/hierarchical_zoom.cpp.o"
  "CMakeFiles/hierarchical_zoom.dir/hierarchical_zoom.cpp.o.d"
  "hierarchical_zoom"
  "hierarchical_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
