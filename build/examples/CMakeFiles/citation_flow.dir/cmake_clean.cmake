file(REMOVE_RECURSE
  "CMakeFiles/citation_flow.dir/citation_flow.cpp.o"
  "CMakeFiles/citation_flow.dir/citation_flow.cpp.o.d"
  "citation_flow"
  "citation_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
