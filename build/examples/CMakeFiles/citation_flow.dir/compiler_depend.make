# Empty compiler generated dependencies file for citation_flow.
# This may be replaced when dependencies are built.
