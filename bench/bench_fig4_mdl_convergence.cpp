// Figure 4: MDL per outer iteration — sequential vs distributed — on the
// Amazon, DBLP, ND-Web, and YouTube stand-ins. The distributed curve must
// converge to an MDL close to the sequential one.
#include <cstdio>

#include "bench_common.hpp"
#include "core/seq_infomap.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Figure 4 — MDL convergence, sequential vs distributed (p=4)",
                "Zeng & Yu, ICPP'18, Fig. 4");

  for (const char* name : {"amazon", "dblp", "ndweb", "youtube"}) {
    const auto data = bench::load(name);
    const auto seq = core::sequential_infomap(data.csr);
    core::DistInfomapConfig cfg;
    cfg.num_ranks = 4;
    const auto dist = core::distributed_infomap(data.csr, cfg);

    std::printf("\n--- %s ---\n", data.spec.paper_name.c_str());
    std::printf("%-10s %-14s %-14s\n", "iteration", "sequential L", "distributed L");
    const std::size_t rows = std::max(seq.trace.size(), dist.trace.size());
    for (std::size_t i = 0; i < rows; ++i) {
      std::printf("%-10zu ", i + 1);
      if (i < seq.trace.size())
        std::printf("%-14.6f ", seq.trace[i].codelength_after);
      else
        std::printf("%-14s ", "-");
      if (i < dist.trace.size())
        std::printf("%-14.6f", dist.trace[i].codelength_after);
      else
        std::printf("%-14s", "-");
      std::printf("\n");
    }
    std::printf("final:     seq %.6f   dist %.6f   gap %+.2f%%\n",
                seq.codelength, dist.codelength,
                100.0 * (dist.codelength - seq.codelength) / seq.codelength);
    std::printf("distributed stage-1 per-round MDL:");
    for (double l : dist.stage1_round_codelengths) std::printf(" %.4f", l);
    std::printf("\n");
  }
  return 0;
}
