// Move-scheduling engine comparison (DESIGN.md §12): the synchronous full
// sweep, the synchronous active-set fast path, and the asynchronous
// priority-worklist engine on the standard small/medium test graphs. For each
// engine the table reports the move evaluations actually performed (ΔL
// candidate scans), the evaluations pruned by the active set, the stage-1
// rounds (epochs for the async engine, which reconciles every async_max_lag
// epochs), wall-clock, and the final MDL. The contracts being measured:
// active-set is bit-identical to full sweeps with fewer evaluations where
// convergence is localized, and async stays within 1% of the synchronous MDL
// while spending its evaluations in priority order instead of sweep order.
#include <cstdio>

#include "bench_common.hpp"

namespace {

std::uint64_t total_delta_evals(const dinfomap::core::DistInfomapResult& r) {
  std::uint64_t n = 0;
  for (const auto& per_rank : r.work)
    for (const auto& wc : per_rank) n += wc.delta_evals;
  return n;
}

std::uint64_t total_pruned_evals(const dinfomap::core::DistInfomapResult& r) {
  std::uint64_t n = 0;
  for (const auto& per_rank : r.work)
    for (const auto& wc : per_rank) n += wc.pruned_evals;
  return n;
}

}  // namespace

int main() {
  using namespace dinfomap;
  bench::banner("Async convergence — engine comparison",
                "DESIGN.md S12 (beyond the paper: async priority worklist)");
  bench::CsvSink csv("async_convergence",
                     {"dataset", "ranks", "engine", "move_evals", "pruned_evals",
                      "rounds", "wall_ms", "final_L", "vs_sync_pct", "wait_pct",
                      "critical_path_ms"});
  bench::JsonSink json("async");

  for (const char* name : {"amazon", "dblp", "ndweb", "youtube"}) {
    const auto data = bench::load(name);
    std::printf("\n--- %s (n=%u) ---\n", data.spec.paper_name.c_str(),
                data.csr.num_vertices());
    std::printf("%-3s %-16s %-12s %-12s %-7s %-10s %-10s %-9s\n", "p", "engine",
                "move_evals", "pruned", "rounds", "wall (ms)", "final_L",
                "vs_sync");
    for (int p : {4, 8}) {
      double sync_l = 0;
      for (const char* engine : {"sync-full", "sync-active-set", "async"}) {
        core::DistInfomapConfig cfg;
        cfg.num_ranks = p;
        cfg.obs.enabled = true;  // causal profile; results are unchanged
        if (engine[0] == 's' && engine[5] == 'a') cfg.active_set = true;
        if (engine[0] == 'a') cfg.async = true;
        const auto r = core::distributed_infomap(data.csr, cfg);
        if (engine[0] == 's' && engine[5] == 'f') sync_l = r.codelength;
        const std::uint64_t evals = total_delta_evals(r);
        const std::uint64_t pruned = total_pruned_evals(r);
        const double wall =
            1000.0 * (r.stage1_wall_seconds + r.stage2_wall_seconds);
        const double vs_sync =
            sync_l > 0 ? 100.0 * (r.codelength - sync_l) / sync_l : 0.0;
        // Wait share and critical path from the causal profile: the async
        // engine's pitch is precisely "less time blocked at barriers", so
        // this is the column that should drop from sync-full to async.
        double wait_pct = 0;
        double critical_ms = 0;
        if (r.report.has_profile) {
          double wait_us = 0, wall_us = 0;
          for (const auto& rr : r.report.profile.ranks) {
            wait_us += rr.wait_us;
            wall_us += rr.wall_us;
          }
          wait_pct = wall_us > 0 ? 100.0 * wait_us / wall_us : 0.0;
          critical_ms = r.report.profile.critical_path_us / 1000.0;
        }
        std::printf("%-3d %-16s %-12llu %-12llu %-7d %-10.1f %-10.5f %+8.2f%% "
                    "wait %4.1f%%\n",
                    p, engine, static_cast<unsigned long long>(evals),
                    static_cast<unsigned long long>(pruned), r.stage1_rounds,
                    wall, r.codelength, vs_sync, wait_pct);
        csv.row(name, p, engine, evals, pruned, r.stage1_rounds, wall,
                r.codelength, vs_sync, wait_pct, critical_ms);
        json.begin_row()
            .field("dataset", name)
            .field("ranks", p)
            .field("engine", engine)
            .field("move_evals", evals)
            .field("pruned_evals", pruned)
            .field("rounds", r.stage1_rounds)
            .field("wall_ms", wall)
            .field("final_L", r.codelength)
            .field("vs_sync_pct", vs_sync)
            .field("wait_pct", wait_pct)
            .field("critical_path_ms", critical_ms);
      }
    }
  }
  std::printf(
      "\nexpected shape: sync-active-set matches sync-full's final_L bitwise "
      "(vs_sync exactly +0.00%%) with pruned > 0 where convergence is "
      "localized; async lands within +-1%% of sync-full, usually below it, "
      "with rounds counting epochs (async_max_lag of them per "
      "reconciliation).\n");
  return 0;
}
