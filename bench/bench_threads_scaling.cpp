// Intra-rank thread scaling of the three parallelized hot loops (move
// search, hub flow scan, swap aggregation): wall seconds of each phase at
// 1/2/4/8 threads per rank, with the bit-identity of the results asserted
// against the single-threaded run. Host core count is recorded in every row:
// on a single-core container the threaded runs cannot go faster than serial
// (they time-slice one core), so the honest signal here is (a) identical
// results at every thread count and (b) bounded overhead; real speedups need
// a multi-core host, where the propose phase is embarrassingly parallel.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"

namespace {

double phase_wall_ms(const dinfomap::core::DistInfomapResult& r,
                     dinfomap::core::Phase ph) {
  const auto& per_rank = r.phase_seconds[static_cast<int>(ph)];
  // Slowest rank gates a BSP superstep.
  double worst = 0;
  for (double s : per_rank) worst = std::max(worst, s);
  return 1000.0 * worst;
}

}  // namespace

int main() {
  using namespace dinfomap;
  bench::banner("Thread scaling — deterministic intra-rank parallelism",
                "DESIGN.md S10 (beyond the paper: hybrid ranks x threads)");
  const int host_cores = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("host hardware_concurrency: %d\n", host_cores);
  bench::CsvSink csv("threads_scaling",
                     {"dataset", "ranks", "threads", "host_cores", "find_ms",
                      "hub_ms", "swap_ms", "wall_ms", "speedup_find",
                      "identical", "final_L"});
  bench::JsonSink json("threads_scaling");

  for (const char* name : {"uk2005", "webbase2001"}) {
    const auto data = bench::load(name);
    std::printf("\n--- %s ---\n", data.spec.paper_name.c_str());
    std::printf("%-3s %-3s %-10s %-9s %-9s %-9s %-13s %-10s\n", "p", "t",
                "find (ms)", "hub (ms)", "swap (ms)", "wall (ms)",
                "speedup_find", "identical");
    for (int p : {2, 4}) {
      core::DistInfomapConfig base;
      base.num_ranks = p;
      base.obs.enabled = true;  // flight recorder fills the run report
      double serial_find = 0;
      graph::Partition serial_assignment;
      double serial_l = 0;
      for (int t : {1, 2, 4, 8}) {
        auto cfg = base;
        cfg.threads_per_rank = t;
        const auto result = core::distributed_infomap(data.csr, cfg);
        const double find = phase_wall_ms(result, core::Phase::kFindBestModule);
        const double hub =
            phase_wall_ms(result, core::Phase::kBroadcastDelegates);
        const double swap =
            phase_wall_ms(result, core::Phase::kSwapBoundaryInfo);
        const double wall = 1000.0 * (result.stage1_wall_seconds +
                                      result.stage2_wall_seconds);
        bool identical = true;
        if (t == 1) {
          serial_find = find;
          serial_assignment = result.assignment;
          serial_l = result.codelength;
        } else {
          identical = result.assignment == serial_assignment &&
                      result.codelength == serial_l;
        }
        const double speedup = find > 0 ? serial_find / find : 1.0;
        std::printf("%-3d %-3d %-10.2f %-9.2f %-9.2f %-9.1f %-13.2f %-10s\n",
                    p, t, find, hub, swap, wall, speedup,
                    identical ? "yes" : "NO");
        csv.row(name, p, t, host_cores, find, hub, swap, wall, speedup,
                identical ? 1 : 0, result.codelength);
        json.begin_row()
            .field("dataset", name)
            .field("ranks", p)
            .field("threads", t)
            .field("host_cores", host_cores)
            .field("find_ms", find)
            .field("hub_ms", hub)
            .field("swap_ms", swap)
            .field("wall_ms", wall)
            .field("speedup_find", speedup)
            .field("identical", identical ? 1 : 0)
            .field("final_L", result.codelength)
            .report_field("run_report", result.report);
        if (!identical) {
          std::printf("BIT-IDENTITY VIOLATION at p=%d t=%d\n", p, t);
          return 1;
        }
      }
    }
  }
  std::printf(
      "\nexpected shape: identical=yes everywhere (the determinism contract); "
      "speedup_find approaches the thread count only when host_cores allows — "
      "on a 1-core host it stays near 1.0 and measures overhead instead.\n");
  return 0;
}
