// Figure 8: per-iteration time breakdown of stage 1 into the paper's four
// components (Find Best Module, Broadcast Delegates, Swap Boundary Info,
// Other) as the rank count grows.
//
// Ranks here are threads on one machine, so the breakdown is reported in
// *modeled* time (α-β model over exact per-rank work/traffic counters — see
// DESIGN.md S9); measured wall seconds are printed alongside for reference.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dinfomap;
  bench::banner(
      "Figure 8 — stage-1 time breakdown per iteration vs rank count",
      "Zeng & Yu, ICPP'18, Fig. 8");
  const perf::CostModel model;
  bench::CsvSink csv("fig8_time_breakdown",
                     {"dataset", "ranks", "rounds", "find_best_ms", "bcast_ms",
                      "swap_ms", "other_ms", "wait_pct", "straggler_phase"});
  bench::JsonSink json("fig8_time_breakdown");

  for (const char* name : {"uk2005", "webbase2001", "friendster", "uk2007"}) {
    const auto data = bench::load(name);
    std::printf("\n--- %s ---\n", data.spec.paper_name.c_str());
    std::printf("%-5s %-9s | %-12s %-12s %-12s %-12s (modeled ms/iter)\n", "p",
                "rounds", "FindBest", "BcastDeleg", "SwapBoundary", "Other");
    for (int p : {4, 8, 16}) {
      core::DistInfomapConfig cfg;
      cfg.num_ranks = p;
      cfg.obs.enabled = true;  // flight recorder fills the run report
      const auto result = core::distributed_infomap(data.csr, cfg);
      const obs::RunReport& rep = result.report;
      const double iters = std::max(1, rep.stage1_rounds);
      // Phase counters include stage 2; scale by the stage-1 share of total
      // work so the per-iteration stage-1 number stays honest.
      const double stage1_share =
          bench::modeled_stage_seconds(rep, 0, model) /
          std::max(1e-12, bench::modeled_stage_seconds(rep, 0, model) +
                              bench::modeled_stage_seconds(rep, 1, model));
      std::printf("%-5d %-9d | ", p, rep.stage1_rounds);
      double per_phase_ms[core::kNumPhases] = {};
      for (int ph = 0; ph < core::kNumPhases; ++ph) {
        const double phase_ms =
            1000.0 * bench::modeled_phase_seconds(rep, ph, model);
        per_phase_ms[ph] = phase_ms * stage1_share / iters;
        std::printf("%-12.3f ", per_phase_ms[ph]);
      }
      std::printf("\n");
      // Measured-side view from the causal profile digest: how much of the
      // wall the mean rank spent blocked, and where collective wait piles up.
      double wait_pct = 0;
      std::string straggler_phase = "-";
      if (rep.has_profile) {
        double wait = 0, wall = 0;
        for (const auto& rr : rep.profile.ranks) {
          wait += rr.wait_us;
          wall += rr.wall_us;
        }
        wait_pct = wall > 0 ? 100.0 * wait / wall : 0.0;
        if (!rep.profile.phases.empty())
          straggler_phase = rep.profile.phases.front().name;  // max wait_us
        std::printf("      profile: wait %.1f%%, critical path %.1f ms, top "
                    "wait phase %s\n",
                    wait_pct, rep.profile.critical_path_us / 1000.0,
                    straggler_phase.c_str());
      }
      csv.row(name, p, rep.stage1_rounds, per_phase_ms[0], per_phase_ms[1],
              per_phase_ms[2], per_phase_ms[3], wait_pct, straggler_phase);
      json.begin_row()
          .field("dataset", name)
          .field("ranks", p)
          .field("rounds", rep.stage1_rounds)
          .field("find_best_ms", per_phase_ms[0])
          .field("bcast_ms", per_phase_ms[1])
          .field("swap_ms", per_phase_ms[2])
          .field("other_ms", per_phase_ms[3])
          .field("wait_pct", wait_pct)
          .field("critical_path_ms", rep.profile.critical_path_us / 1000.0)
          .field("straggler_phase", straggler_phase)
          .report_field("run_report", rep);
    }
  }
  std::printf(
      "\nexpected shape: FindBest/BcastDelegates/Other fall with p; "
      "SwapBoundary stays roughly flat (ghost volume is p-invariant).\n");
  return 0;
}
