// Ablation A2: the minimum-label anti-bouncing strategy (§3.4). Without it,
// synchronous rounds can oscillate; the sweep reports rounds-to-converge and
// final MDL with the strategy on and off.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Ablation A2 — minimum-label anti-bouncing on/off (p=8)",
                "heuristic of §3.4 (vertex bouncing problem)");
  const int p = 8;

  std::printf("%-14s %-10s | %-14s %-10s | %-14s %-10s\n", "Dataset", "",
              "min-label ON", "", "min-label OFF", "");
  std::printf("%-14s %-10s | %-14s %-10s | %-14s %-10s\n", "", "",
              "s1 rounds", "final L", "s1 rounds", "final L");
  std::printf("%s\n", std::string(78, '-').c_str());

  for (const char* name : {"amazon", "dblp", "youtube", "uk2005"}) {
    const auto data = bench::load(name);
    core::DistInfomapConfig on;
    on.num_ranks = p;
    auto off = on;
    off.min_label = false;
    const auto r_on = core::distributed_infomap(data.csr, on);
    const auto r_off = core::distributed_infomap(data.csr, off);
    std::printf("%-14s %-10s | %-14d %-10.4f | %-14d %-10.4f\n",
                data.spec.paper_name.c_str(), "", r_on.stage1_rounds,
                r_on.codelength, r_off.stage1_rounds, r_off.codelength);
  }
  std::printf(
      "\nOFF hitting the per-level round cap (%d) indicates non-convergent "
      "bouncing.\n",
      core::DistInfomapConfig{}.max_rounds);
  return 0;
}
