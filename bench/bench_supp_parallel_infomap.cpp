// Supplementary: the three parallel-Infomap generations side by side — the
// shared-memory RelaxMap comparator (Bae 2013), the GossipMap-style
// label-flow comparator (Bae 2015), and the paper's distributed Infomap —
// quality and modeled time at matched parallelism. Reproduces the paper's
// related-work narrative quantitatively.
#include <cstdio>

#include "bench_common.hpp"
#include "core/dist_louvain.hpp"
#include "core/labelflow.hpp"
#include "core/relaxmap.hpp"
#include "core/seq_infomap.hpp"
#include "quality/metrics.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Supplementary — parallel Infomap generations (p = 8)",
                "related-work comparison of §2.1 (RelaxMap / GossipMap / ours)");
  const perf::CostModel model;
  const int p = 8;

  std::printf("%-12s | %-10s | %-22s | %-22s | %-22s | %-22s\n", "Dataset",
              "seq L", "RelaxMap  L / NMI(seq)", "label-flow L / NMI",
              "dist-Infomap L / NMI", "dist-Louvain L / NMI");
  std::printf("%s\n", std::string(128, '-').c_str());

  for (const char* name : {"amazon", "dblp", "youtube"}) {
    const auto data = bench::load(name);
    const auto seq = core::sequential_infomap(data.csr);
    const auto fg = core::make_flow_graph(data.csr);

    core::RelaxMapConfig rm_cfg;
    rm_cfg.num_threads = p;
    const auto rm = core::relaxmap(data.csr, rm_cfg);

    const auto lf = core::distributed_labelflow(data.csr, p);

    core::DistInfomapConfig di_cfg;
    di_cfg.num_ranks = p;
    const auto di = core::distributed_infomap(data.csr, di_cfg);

    // The modularity family optimizes a different objective; score its
    // clustering with the map equation for a common axis.
    const auto dl = core::distributed_louvain(data.csr, p);
    const double dl_codelength =
        core::codelength_of_partition(fg, dl.assignment);

    std::printf(
        "%-12s | %-10.4f | %8.4f / %-11.2f | %8.4f / %-11.2f | %8.4f / "
        "%-11.2f | %8.4f / %-11.2f\n",
        data.spec.paper_name.c_str(), seq.codelength, rm.codelength,
        quality::nmi(rm.assignment, seq.assignment), lf.codelength,
        quality::nmi(lf.assignment, seq.assignment), di.codelength,
        quality::nmi(di.assignment, seq.assignment), dl_codelength,
        quality::nmi(dl.assignment, seq.assignment));
  }
  std::printf(
      "\nexpected: RelaxMap holds sequential quality but is shared-memory "
      "only; label-flow scales but loses quality; distributed Infomap keeps "
      "quality at distributed scale (the paper's thesis).\n");
  return 0;
}
