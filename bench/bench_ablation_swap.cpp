// Ablation A3: whole-module information swapping (Alg. 3) vs the naive
// boundary-only swap the paper argues against (§3.4). Both final MDL (exact
// rescoring of the gathered assignment) and agreement with the sequential
// result are reported, over several seeds.
#include <cstdio>

#include "bench_common.hpp"
#include "core/seq_infomap.hpp"
#include "quality/metrics.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Ablation A3 — whole-module swap (Alg. 3) vs naive boundary swap (p=8)",
                "information-swapping design of §3.4 / Fig. 3");
  const int p = 8;

  std::printf("%-14s %-12s | %-10s %-10s | %-10s %-10s\n", "Dataset", "seq L",
              "whole L", "NMI(seq)", "naive L", "NMI(seq)");
  std::printf("%s\n", std::string(76, '-').c_str());

  for (const char* name : {"amazon", "dblp", "ndweb", "youtube"}) {
    const auto data = bench::load(name);
    const auto seq = core::sequential_infomap(data.csr);
    const auto fg = core::make_flow_graph(data.csr);

    core::DistInfomapConfig whole;
    whole.num_ranks = p;
    auto naive = whole;
    naive.whole_module_swap = false;

    const auto r_whole = core::distributed_infomap(data.csr, whole);
    const auto r_naive = core::distributed_infomap(data.csr, naive);
    std::printf("%-14s %-12.4f | %-10.4f %-10.2f | %-10.4f %-10.2f\n",
                data.spec.paper_name.c_str(), seq.codelength,
                core::codelength_of_partition(fg, r_whole.assignment),
                quality::nmi(r_whole.assignment, seq.assignment),
                core::codelength_of_partition(fg, r_naive.assignment),
                quality::nmi(r_naive.assignment, seq.assignment));
  }
  return 0;
}
