// Figure 6: per-processor workload (edge/arc count) under 1D vs delegate
// partitioning on the large stand-ins. Delegate partitioning must flatten the
// distribution (max ≈ mean); 1D leaves orders-of-magnitude spread.
#include <cstdio>

#include "bench_common.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Figure 6 — workload balance: 1D vs delegate partitioning (p=16)",
                "Zeng & Yu, ICPP'18, Fig. 6");
  const int p = 16;

  for (const char* name : {"uk2005", "webbase2001", "friendster", "uk2007"}) {
    const auto data = bench::load(name);
    const auto oned = partition::make_oned(data.csr, p);
    const auto del = partition::make_delegate(data.csr, p);

    const auto arcs_1d = partition::arcs_per_rank(oned);
    const auto arcs_dp = partition::arcs_per_rank(del);
    const auto s1 = util::summarize_counts(arcs_1d);
    const auto s2 = util::summarize_counts(arcs_dp);

    std::printf("\n--- %s (|E| = %s, d_high = %llu) ---\n",
                data.spec.paper_name.c_str(),
                util::with_commas(data.csr.num_edges()).c_str(),
                static_cast<unsigned long long>(del.degree_threshold));
    std::printf("%-6s %14s %14s\n", "rank", "1D arcs", "delegate arcs");
    for (int r = 0; r < p; ++r)
      std::printf("%-6d %14s %14s\n", r, util::with_commas(arcs_1d[r]).c_str(),
                  util::with_commas(arcs_dp[r]).c_str());
    std::printf("min/max/imb   1D: %s / %s / %.2fx    delegate: %s / %s / %.2fx\n",
                util::with_commas(static_cast<std::uint64_t>(s1.min)).c_str(),
                util::with_commas(static_cast<std::uint64_t>(s1.max)).c_str(),
                s1.imbalance,
                util::with_commas(static_cast<std::uint64_t>(s2.min)).c_str(),
                util::with_commas(static_cast<std::uint64_t>(s2.max)).c_str(),
                s2.imbalance);

    // Observed balance: the static arc counts above predict the workload; the
    // flight recorder's run report verifies it with the arcs each rank
    // actually scanned during a delegate-partitioned run.
    core::DistInfomapConfig cfg;
    cfg.num_ranks = p;
    cfg.obs.enabled = true;
    const auto rep = core::distributed_infomap(data.csr, del, cfg).report;
    std::vector<std::uint64_t> scanned(static_cast<std::size_t>(p), 0);
    for (int r = 0; r < p; ++r)
      scanned[static_cast<std::size_t>(r)] =
          rep.stage_work[0][static_cast<std::size_t>(r)].arcs_scanned +
          rep.stage_work[1][static_cast<std::size_t>(r)].arcs_scanned;
    const auto so = util::summarize_counts(scanned);
    std::printf("observed arcs scanned (run report): max %s, imb %.2fx\n",
                util::with_commas(static_cast<std::uint64_t>(so.max)).c_str(),
                so.imbalance);
  }
  return 0;
}
