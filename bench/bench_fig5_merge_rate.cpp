// Figure 5: vertex merging rate per outer iteration — sequential vs
// distributed. Rate_k = |V^{k+1}| / |V^k| (fraction of vertices surviving the
// merge); the paper highlights that stage 1 with delegates already merges
// ~50%+ of vertices in the first iteration.
#include <cstdio>

#include "bench_common.hpp"
#include "core/seq_infomap.hpp"

namespace {
void print_rates(const std::vector<dinfomap::core::OuterIterationInfo>& trace,
                 dinfomap::graph::VertexId n0, const char* label) {
  std::printf("%-12s", label);
  for (const auto& row : trace) {
    const double merged_fraction =
        1.0 - static_cast<double>(row.num_modules) /
                  static_cast<double>(row.level_vertices);
    std::printf(" %6.1f%%", 100.0 * merged_fraction);
  }
  // Cumulative reduction vs the original graph.
  if (!trace.empty()) {
    const double final_fraction =
        static_cast<double>(trace.back().num_modules) / static_cast<double>(n0);
    std::printf("   (final modules = %.2f%% of |V0|)", 100.0 * final_fraction);
  }
  std::printf("\n");
}
}  // namespace

int main() {
  using namespace dinfomap;
  bench::banner("Figure 5 — vertex merging rate per outer iteration",
                "Zeng & Yu, ICPP'18, Fig. 5");
  std::printf("per-iteration merged fraction = 1 - |modules|/|V^k|\n");

  for (const char* name : {"amazon", "dblp", "ndweb", "youtube"}) {
    const auto data = bench::load(name);
    const auto seq = core::sequential_infomap(data.csr);
    core::DistInfomapConfig cfg;
    cfg.num_ranks = 4;
    const auto dist = core::distributed_infomap(data.csr, cfg);

    std::printf("\n--- %s ---\n", data.spec.paper_name.c_str());
    print_rates(seq.trace, data.csr.num_vertices(), "sequential");
    print_rates(dist.trace, data.csr.num_vertices(), "distributed");
  }
  return 0;
}
