// Microbenchmarks (google-benchmark) of the hot kernels: plogp, ΔL
// evaluation, the sequential move pass, coarsening, and the comm collectives —
// plus before/after kernels for the ISSUE-1 hot-path data structures
// (SparseAccumulator vs unordered_map gather, FlatMap vs node-based module
// table, memoized vs plain plogp in evaluate_move).
//
// main() first hand-times the before/after kernels and writes the
// machine-readable perf-trajectory artifact bench_results/BENCH_hotpath.json
// (see bench_common.hpp JsonSink), then runs the registered google
// benchmarks. `--benchmark_filter=NONE` skips the latter for a quick
// artifact-only run.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>
#include <unordered_map>

#include "bench_common.hpp"
#include "comm/runtime.hpp"
#include "core/coarsen.hpp"
#include "core/flowgraph.hpp"
#include "core/mapequation.hpp"
#include "core/module_info.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/flat_map.hpp"
#include "util/random.hpp"
#include "util/sparse_accumulator.hpp"
#include "util/timer.hpp"

namespace {

using namespace dinfomap;

void BM_Plogp(benchmark::State& state) {
  double x = 1e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plogp(x));
    x += 1e-9;
  }
}
BENCHMARK(BM_Plogp);

void BM_EvaluateMove(benchmark::State& state) {
  core::MoveDelta d;
  d.p_u = 0.01;
  d.f_u = 0.008;
  d.f_to_old = 0.001;
  d.f_to_new = 0.004;
  d.old_stats = {0.2, 0.05, 40};
  d.new_stats = {0.3, 0.07, 55};
  d.q_total = 0.4;
  for (auto _ : state) benchmark::DoNotOptimize(core::evaluate_move(d));
}
BENCHMARK(BM_EvaluateMove);

void BM_EvaluateMoveMemo(benchmark::State& state) {
  core::MoveDelta d;
  d.p_u = 0.01;
  d.f_u = 0.008;
  d.f_to_old = 0.001;
  d.f_to_new = 0.004;
  d.old_stats = {0.2, 0.05, 40};
  d.new_stats = {0.3, 0.07, 55};
  d.q_total = 0.4;
  core::PlogpMemo memo;
  for (auto _ : state) benchmark::DoNotOptimize(core::evaluate_move(d, memo));
}
BENCHMARK(BM_EvaluateMoveMemo);

const core::FlowGraph& lfr_flow_graph() {
  static const core::FlowGraph fg = [] {
    const auto gg = graph::gen::lfr_lite({}, 7);
    return core::make_flow_graph(graph::build_csr(gg.edges, gg.num_vertices));
  }();
  return fg;
}

/// Module assignment exercising the gather kernels: ~20 vertices per module.
std::vector<graph::VertexId> gather_modules(const core::FlowGraph& fg) {
  std::vector<graph::VertexId> mods(fg.num_vertices());
  util::Xoshiro256 rng(7);
  for (graph::VertexId v = 0; v < fg.num_vertices(); ++v)
    mods[v] = static_cast<graph::VertexId>(rng.bounded(fg.num_vertices() / 20));
  return mods;
}

// --- before/after kernel A: per-vertex neighbor-flow gather -----------------
// The DistRank::best_move_for inner loop before this PR: two fresh
// unordered_maps per vertex per round.

double gather_unordered_fresh(const core::FlowGraph& fg,
                              const std::vector<graph::VertexId>& mods) {
  double checksum = 0;
  for (graph::VertexId u = 0; u < fg.num_vertices(); ++u) {
    std::unordered_map<graph::VertexId, double> flow_to;
    std::unordered_map<graph::VertexId, bool> boundary;
    for (const auto& nb : fg.csr.neighbors(u)) {
      flow_to[mods[nb.target]] += nb.weight;
      if ((nb.target & 3) == 0) boundary[mods[nb.target]] = true;
    }
    // dlint:allow(float-accum-order): anti-DCE checksum replicating the
    // pre-flat-accumulator kernel; its value is never compared bitwise.
    for (const auto& [m, f] : flow_to) checksum += f + (boundary.count(m) ? 1 : 0);
  }
  return checksum;
}

double gather_unordered_reused(const core::FlowGraph& fg,
                               const std::vector<graph::VertexId>& mods) {
  double checksum = 0;
  std::unordered_map<graph::VertexId, double> flow_to;
  std::unordered_map<graph::VertexId, bool> boundary;
  for (graph::VertexId u = 0; u < fg.num_vertices(); ++u) {
    flow_to.clear();
    boundary.clear();
    for (const auto& nb : fg.csr.neighbors(u)) {
      flow_to[mods[nb.target]] += nb.weight;
      if ((nb.target & 3) == 0) boundary[mods[nb.target]] = true;
    }
    // dlint:allow(float-accum-order): anti-DCE checksum replicating the
    // pre-flat-accumulator kernel; its value is never compared bitwise.
    for (const auto& [m, f] : flow_to) checksum += f + (boundary.count(m) ? 1 : 0);
  }
  return checksum;
}

double gather_accumulator(const core::FlowGraph& fg,
                          const std::vector<graph::VertexId>& mods,
                          util::SparseAccumulator<graph::VertexId,
                                                  std::pair<double, std::uint8_t>>& acc) {
  double checksum = 0;
  if (acc.capacity() < fg.num_vertices()) acc.reset(fg.num_vertices());
  for (graph::VertexId u = 0; u < fg.num_vertices(); ++u) {
    acc.clear();
    for (const auto& nb : fg.csr.neighbors(u)) {
      auto& e = acc[mods[nb.target]];
      e.first += nb.weight;
      if ((nb.target & 3) == 0) e.second = 1;
    }
    for (const graph::VertexId m : acc.keys()) {
      const auto& e = *acc.find(m);
      checksum += e.first + (e.second ? 1 : 0);
    }
  }
  return checksum;
}

void BM_GatherUnorderedFresh(benchmark::State& state) {
  const auto& fg = lfr_flow_graph();
  const auto mods = gather_modules(fg);
  for (auto _ : state)
    benchmark::DoNotOptimize(gather_unordered_fresh(fg, mods));
}
BENCHMARK(BM_GatherUnorderedFresh)->Unit(benchmark::kMicrosecond);

void BM_GatherAccumulator(benchmark::State& state) {
  const auto& fg = lfr_flow_graph();
  const auto mods = gather_modules(fg);
  util::SparseAccumulator<graph::VertexId, std::pair<double, std::uint8_t>> acc;
  for (auto _ : state)
    benchmark::DoNotOptimize(gather_accumulator(fg, mods, acc));
}
BENCHMARK(BM_GatherAccumulator)->Unit(benchmark::kMicrosecond);

// --- before/after kernel B: module-table probe ------------------------------
// The evaluate_move candidate lookup pattern: random finds + occasional
// updates against a table of live modules.

template <typename Table>
double module_table_probe(Table& table, const std::vector<std::uint64_t>& keys,
                          const std::vector<std::uint64_t>& probes) {
  table.clear();
  for (std::uint64_t k : keys)
    table.emplace(k, core::ModuleStats{1.0 / static_cast<double>(k + 1),
                                       0.5 / static_cast<double>(k + 1), 1});
  double checksum = 0;
  for (std::uint64_t q : probes) {
    auto it = table.find(q);
    if (it != table.end()) {
      checksum += it->second.sum_pr;
      it->second.exit_pr += 1e-9;
    }
  }
  return checksum;
}

std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>>
module_table_workload() {
  constexpr std::size_t kModules = 4096;
  constexpr std::size_t kProbes = 1 << 18;
  std::vector<std::uint64_t> keys(kModules);
  util::Xoshiro256 rng(11);
  for (auto& k : keys) k = rng.next() % (kModules * 8);
  std::vector<std::uint64_t> probes(kProbes);
  for (auto& q : probes) q = rng.next() % (kModules * 8);
  return {std::move(keys), std::move(probes)};
}

void BM_ModuleTableUnordered(benchmark::State& state) {
  const auto [keys, probes] = module_table_workload();
  std::unordered_map<std::uint64_t, core::ModuleStats> table;
  for (auto _ : state)
    benchmark::DoNotOptimize(module_table_probe(table, keys, probes));
}
BENCHMARK(BM_ModuleTableUnordered)->Unit(benchmark::kMicrosecond);

void BM_ModuleTableFlat(benchmark::State& state) {
  const auto [keys, probes] = module_table_workload();
  util::FlatMap<std::uint64_t, core::ModuleStats> table;
  for (auto _ : state)
    benchmark::DoNotOptimize(module_table_probe(table, keys, probes));
}
BENCHMARK(BM_ModuleTableFlat)->Unit(benchmark::kMicrosecond);

void BM_SequentialInfomapLfr1k(benchmark::State& state) {
  const auto gg = graph::gen::lfr_lite({}, 7);
  const auto g = graph::build_csr(gg.edges, gg.num_vertices);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::sequential_infomap(g));
}
BENCHMARK(BM_SequentialInfomapLfr1k)->Unit(benchmark::kMillisecond);

void BM_CoarsenLfr1k(benchmark::State& state) {
  const auto& fg = lfr_flow_graph();
  std::vector<graph::VertexId> mods(fg.num_vertices());
  for (graph::VertexId v = 0; v < fg.num_vertices(); ++v) mods[v] = v / 20;
  for (auto _ : state) benchmark::DoNotOptimize(core::coarsen(fg, mods));
}
BENCHMARK(BM_CoarsenLfr1k)->Unit(benchmark::kMicrosecond);

void BM_CodelengthOfPartition(benchmark::State& state) {
  const auto& fg = lfr_flow_graph();
  std::vector<graph::VertexId> mods(fg.num_vertices());
  for (graph::VertexId v = 0; v < fg.num_vertices(); ++v) mods[v] = v / 20;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::codelength_of_partition(fg, mods));
}
BENCHMARK(BM_CodelengthOfPartition)->Unit(benchmark::kMicrosecond);

void BM_AllreduceDouble(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(p, [](comm::Comm& comm) {
      for (int i = 0; i < 50; ++i)
        benchmark::DoNotOptimize(comm.allreduce(1.0, comm::ReduceOp::kSum));
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_AllreduceDouble)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_AlltoallvInts(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(p, [p](comm::Comm& comm) {
      std::vector<std::vector<int>> out(p, std::vector<int>(256, comm.rank()));
      for (int i = 0; i < 20; ++i)
        benchmark::DoNotOptimize(comm.alltoallv(out));
    });
  }
}
BENCHMARK(BM_AlltoallvInts)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SbmGenerate(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::gen::sbm(2000, 20, 0.05, 0.001, 3));
}
BENCHMARK(BM_SbmGenerate)->Unit(benchmark::kMillisecond);

void BM_BuildCsr(benchmark::State& state) {
  const auto gg = graph::gen::lfr_lite({}, 7);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::build_csr(gg.edges, gg.num_vertices));
}
BENCHMARK(BM_BuildCsr)->Unit(benchmark::kMicrosecond);

// --- BENCH_hotpath.json: hand-timed before/after comparison -----------------

/// Best-of-`reps` seconds of `fn()` (minimum filters scheduler noise).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    util::Timer t;
    benchmark::DoNotOptimize(fn());
    best = std::min(best, t.seconds());
  }
  return best;
}

void emit_hotpath_json() {
  const auto& fg = lfr_flow_graph();
  const auto mods = gather_modules(fg);
  constexpr int kReps = 15;

  bench::JsonSink json("hotpath");

  {
    util::SparseAccumulator<graph::VertexId, std::pair<double, std::uint8_t>> acc;
    const double fresh =
        best_seconds(kReps, [&] { return gather_unordered_fresh(fg, mods); });
    const double reused =
        best_seconds(kReps, [&] { return gather_unordered_reused(fg, mods); });
    const double flat =
        best_seconds(kReps, [&] { return gather_accumulator(fg, mods, acc); });
    json.begin_row()
        .field("kernel", "neighbor_flow_gather")
        .field("graph", "lfr_lite_default")
        .field("unordered_fresh_us", fresh * 1e6)
        .field("unordered_reused_us", reused * 1e6)
        .field("sparse_accumulator_us", flat * 1e6)
        .field("speedup_vs_fresh", fresh / flat)
        .field("speedup_vs_reused", reused / flat);
    std::printf("gather: fresh %.1fus reused %.1fus accumulator %.1fus "
                "(%.2fx vs fresh, %.2fx vs reused)\n",
                fresh * 1e6, reused * 1e6, flat * 1e6, fresh / flat,
                reused / flat);
  }

  {
    const auto [keys, probes] = module_table_workload();
    std::unordered_map<std::uint64_t, core::ModuleStats> umap;
    util::FlatMap<std::uint64_t, core::ModuleStats> fmap;
    const double node =
        best_seconds(kReps, [&] { return module_table_probe(umap, keys, probes); });
    const double flat =
        best_seconds(kReps, [&] { return module_table_probe(fmap, keys, probes); });
    json.begin_row()
        .field("kernel", "module_table_probe")
        .field("graph", "synthetic_4k_modules")
        .field("unordered_us", node * 1e6)
        .field("flat_map_us", flat * 1e6)
        .field("speedup", node / flat);
    std::printf("module table: unordered %.1fus flat %.1fus (%.2fx)\n",
                node * 1e6, flat * 1e6, node / flat);
  }

  {
    core::MoveDelta d;
    d.p_u = 0.01;
    d.f_u = 0.008;
    d.f_to_old = 0.001;
    d.f_to_new = 0.004;
    d.old_stats = {0.2, 0.05, 40};
    d.new_stats = {0.3, 0.07, 55};
    d.q_total = 0.4;
    constexpr int kEvals = 200000;
    const double plain = best_seconds(kReps, [&] {
      double s = 0;
      for (int i = 0; i < kEvals; ++i) s += core::evaluate_move(d).delta_codelength;
      return s;
    });
    core::PlogpMemo memo;
    const double memoized = best_seconds(kReps, [&] {
      double s = 0;
      for (int i = 0; i < kEvals; ++i)
        s += core::evaluate_move(d, memo).delta_codelength;
      return s;
    });
    json.begin_row()
        .field("kernel", "evaluate_move_repeated")
        .field("graph", "single_delta")
        .field("plain_us", plain * 1e6)
        .field("memo_us", memoized * 1e6)
        .field("speedup", plain / memoized);
    std::printf("evaluate_move x%d: plain %.1fus memo %.1fus (%.2fx)\n",
                kEvals, plain * 1e6, memoized * 1e6, plain / memoized);
  }

  // End-to-end FindBestModule check on the distributed path: one small LFR
  // run, wall-clock per phase (the modeled Fig. 8 numbers live in
  // BENCH_fig8_time_breakdown.json).
  {
    const auto gg = graph::gen::lfr_lite({}, 7);
    const auto g = graph::build_csr(gg.edges, gg.num_vertices);
    core::DistInfomapConfig cfg;
    cfg.num_ranks = 4;
    const auto findbest_wall = [&](bool memo) {
      core::DistInfomapConfig c = cfg;
      c.plogp_memo = memo;
      return best_seconds(3, [&] {
        const auto result = core::distributed_infomap(g, c);
        double find_best = 0;
        for (double s : result.phase_seconds[0]) find_best += s;
        return find_best;
      });
    };
    const double with_memo = findbest_wall(true);
    const double without_memo = findbest_wall(false);
    json.begin_row()
        .field("kernel", "dist_findbestmodule_wall")
        .field("graph", "lfr_lite_default")
        .field("ranks", 4)
        .field("findbest_wall_memo_s", with_memo)
        .field("findbest_wall_plain_s", without_memo);
    std::printf("dist FindBestModule wall: memo %.2fms plain %.2fms\n",
                with_memo * 1e3, without_memo * 1e3);
  }
  json.write();
  std::printf("wrote bench_results/BENCH_hotpath.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  emit_hotpath_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
