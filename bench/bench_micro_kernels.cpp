// Microbenchmarks (google-benchmark) of the hot kernels: plogp, ΔL
// evaluation, the sequential move pass, coarsening, and the comm collectives.
#include <benchmark/benchmark.h>

#include <numeric>

#include "comm/runtime.hpp"
#include "core/coarsen.hpp"
#include "core/flowgraph.hpp"
#include "core/mapequation.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace {

using namespace dinfomap;

void BM_Plogp(benchmark::State& state) {
  double x = 1e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plogp(x));
    x += 1e-9;
  }
}
BENCHMARK(BM_Plogp);

void BM_EvaluateMove(benchmark::State& state) {
  core::MoveDelta d;
  d.p_u = 0.01;
  d.f_u = 0.008;
  d.f_to_old = 0.001;
  d.f_to_new = 0.004;
  d.old_stats = {0.2, 0.05, 40};
  d.new_stats = {0.3, 0.07, 55};
  d.q_total = 0.4;
  for (auto _ : state) benchmark::DoNotOptimize(core::evaluate_move(d));
}
BENCHMARK(BM_EvaluateMove);

const core::FlowGraph& lfr_flow_graph() {
  static const core::FlowGraph fg = [] {
    const auto gg = graph::gen::lfr_lite({}, 7);
    return core::make_flow_graph(graph::build_csr(gg.edges, gg.num_vertices));
  }();
  return fg;
}

void BM_SequentialInfomapLfr1k(benchmark::State& state) {
  const auto gg = graph::gen::lfr_lite({}, 7);
  const auto g = graph::build_csr(gg.edges, gg.num_vertices);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::sequential_infomap(g));
}
BENCHMARK(BM_SequentialInfomapLfr1k)->Unit(benchmark::kMillisecond);

void BM_CoarsenLfr1k(benchmark::State& state) {
  const auto& fg = lfr_flow_graph();
  std::vector<graph::VertexId> mods(fg.num_vertices());
  for (graph::VertexId v = 0; v < fg.num_vertices(); ++v) mods[v] = v / 20;
  for (auto _ : state) benchmark::DoNotOptimize(core::coarsen(fg, mods));
}
BENCHMARK(BM_CoarsenLfr1k)->Unit(benchmark::kMicrosecond);

void BM_CodelengthOfPartition(benchmark::State& state) {
  const auto& fg = lfr_flow_graph();
  std::vector<graph::VertexId> mods(fg.num_vertices());
  for (graph::VertexId v = 0; v < fg.num_vertices(); ++v) mods[v] = v / 20;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::codelength_of_partition(fg, mods));
}
BENCHMARK(BM_CodelengthOfPartition)->Unit(benchmark::kMicrosecond);

void BM_AllreduceDouble(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(p, [](comm::Comm& comm) {
      for (int i = 0; i < 50; ++i)
        benchmark::DoNotOptimize(comm.allreduce(1.0, comm::ReduceOp::kSum));
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_AllreduceDouble)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_AlltoallvInts(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(p, [p](comm::Comm& comm) {
      std::vector<std::vector<int>> out(p, std::vector<int>(256, comm.rank()));
      for (int i = 0; i < 20; ++i)
        benchmark::DoNotOptimize(comm.alltoallv(out));
    });
  }
}
BENCHMARK(BM_AlltoallvInts)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SbmGenerate(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::gen::sbm(2000, 20, 0.05, 0.001, 3));
}
BENCHMARK(BM_SbmGenerate)->Unit(benchmark::kMillisecond);

void BM_BuildCsr(benchmark::State& state) {
  const auto gg = graph::gen::lfr_lite({}, 7);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::build_csr(gg.edges, gg.num_vertices));
}
BENCHMARK(BM_BuildCsr)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
