// Table 2: NMI / F-measure / Jaccard of the distributed result against the
// sequential result on the DBLP and Amazon stand-ins (the paper reports
// values around 0.8). Ground-truth agreement is printed as extra context.
#include <cstdio>

#include "bench_common.hpp"
#include "core/seq_infomap.hpp"
#include "quality/metrics.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Table 2 — quality of distributed vs sequential clustering (p=4)",
                "Zeng & Yu, ICPP'18, Table 2");

  std::printf("%-10s %-8s %-11s %-8s %-22s\n", "Dataset", "NMI", "F-measure",
              "JI", "(NMI vs ground truth)");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const char* name : {"dblp", "amazon"}) {
    const auto data = bench::load(name);
    const auto seq = core::sequential_infomap(data.csr);
    core::DistInfomapConfig cfg;
    cfg.num_ranks = 4;
    const auto dist = core::distributed_infomap(data.csr, cfg);

    const double nmi = quality::nmi(dist.assignment, seq.assignment);
    const double fm = quality::f_measure(dist.assignment, seq.assignment);
    const double ji = quality::jaccard_index(dist.assignment, seq.assignment);
    double truth_nmi = -1;
    if (data.ground_truth)
      truth_nmi = quality::nmi(dist.assignment, *data.ground_truth);
    std::printf("%-10s %-8.2f %-11.2f %-8.2f %.2f\n",
                data.spec.paper_name.c_str(), nmi, fm, ji, truth_nmi);
  }
  std::printf("\npaper reports: DBLP 0.79/0.80/0.78, Amazon 0.82/0.81/0.80\n");
  return 0;
}
