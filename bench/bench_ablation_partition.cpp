// Ablation A4: partitioner family comparison. Extends Figs. 6–7 with the two
// other strategies the literature uses — contiguous degree-balanced 1D (the
// workload model of Zeng & Yu [29,30]) and hashed 1D — showing that balancing
// arcs alone does not balance ghost traffic; only delegates do both.
#include <cstdio>

#include "bench_common.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Ablation A4 — partitioner families (p=16)",
                "extends Figs. 6–7: 1D vs balanced-1D vs hash vs delegate");
  const int p = 16;

  for (const char* name : {"uk2005", "uk2007"}) {
    const auto data = bench::load(name);
    std::printf("\n--- %s ---\n", data.spec.paper_name.c_str());
    std::printf("%-14s %12s %12s %9s %12s %12s\n", "strategy", "min arcs",
                "max arcs", "imb", "max ghosts", "ghost imb");
    const struct {
      const char* label;
      partition::ArcPartition part;
    } rows[] = {
        {"1D", partition::make_oned(data.csr, p)},
        {"1D-balanced", partition::make_oned_balanced(data.csr, p)},
        {"hash", partition::make_hash(data.csr, p)},
        {"delegate", partition::make_delegate(data.csr, p)},
    };
    for (const auto& row : rows) {
      const auto arcs = util::summarize_counts(partition::arcs_per_rank(row.part));
      const auto ghosts =
          util::summarize_counts(partition::ghosts_per_rank(row.part));
      std::printf("%-14s %12.0f %12.0f %8.2fx %12.0f %11.2fx\n", row.label,
                  arcs.min, arcs.max, arcs.imbalance, ghosts.max,
                  ghosts.imbalance);
    }
  }
  std::printf(
      "\nexpected: balanced-1D fixes arc counts but not ghost hotspots; only "
      "delegate partitioning flattens both (the paper's argument in §3.3).\n");
  return 0;
}
