// Table 3: speedup of the distributed Infomap over the previous
// state-of-the-art. GossipMap itself (GraphLab-based) is unavailable, so the
// comparator is our GossipMap-style label-flow baseline run on the same comm
// substrate and the same stand-ins; both sides are scored in modeled time
// over their exact work counters at the same rank count.
#include <cstdio>

#include "bench_common.hpp"
#include "core/labelflow.hpp"
#include "core/seq_infomap.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Table 3 — speedup over the GossipMap-style baseline (p=8)",
                "Zeng & Yu, ICPP'18, Table 3");
  const perf::CostModel model;
  const int p = 8;

  std::printf("%-14s %-16s %-16s %-9s %-12s %-12s\n", "Dataset",
              "baseline (ms)", "dinfomap (ms)", "speedup", "baseline L",
              "dinfomap L");
  std::printf("%s\n", std::string(84, '-').c_str());

  for (const char* name : {"ndweb", "livejournal", "webbase2001", "uk2007"}) {
    const auto data = bench::load(name);

    const auto baseline = core::distributed_labelflow(data.csr, p);
    const double t_base = 1000.0 * perf::bsp_seconds(baseline.work_per_rank, model);

    core::DistInfomapConfig cfg;
    cfg.num_ranks = p;
    const auto dist = core::distributed_infomap(data.csr, cfg);
    const double t_dist =
        1000.0 * (bench::modeled_stage_seconds(dist, 0, model) +
                  bench::modeled_stage_seconds(dist, 1, model));

    std::printf("%-14s %-16.2f %-16.2f %-9.2f %-12.4f %-12.4f\n",
                data.spec.paper_name.c_str(), t_base, t_dist, t_base / t_dist,
                baseline.codelength, dist.codelength);
  }
  std::printf(
      "\npaper reports 1.08x (ND-Web), 3.05x (LiveJournal), 3.18x "
      "(WebBase-2001), 6.02x (UK-2007) over Bae et al.'s best times — the "
      "speedup grows with graph size.\n");
  return 0;
}
