// Figure 10: relative parallel efficiency τ = p1·T(p1) / (p2·T(p2)), with the
// baseline p1 chosen per dataset (the smallest rank count that suits the data
// size, as in the paper). T is modeled time over exact work counters.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {
struct Series {
  const char* name;
  int base_p;
  std::vector<int> sweep;
};
}  // namespace

int main() {
  using namespace dinfomap;
  bench::banner("Figure 10 — relative parallel efficiency τ",
                "Zeng & Yu, ICPP'18, Fig. 10");
  const perf::CostModel model;
  bench::CsvSink csv("fig10_efficiency",
                     {"dataset", "ranks", "modeled_ms", "efficiency"});

  // Paper: baselines at 16 procs for small graphs, larger for big ones; the
  // sweep here is scaled to the stand-in sizes.
  const std::vector<Series> datasets = {
      {"amazon", 2, {2, 4, 8, 16}},      {"dblp", 2, {2, 4, 8, 16}},
      {"ndweb", 2, {2, 4, 8, 16}},       {"youtube", 4, {4, 8, 16, 32}},
      {"uk2005", 4, {4, 8, 16, 32}},     {"webbase2001", 4, {4, 8, 16, 32}},
      {"friendster", 4, {4, 8, 16, 32}}, {"uk2007", 4, {4, 8, 16, 32}},
  };

  for (const auto& series : datasets) {
    const auto data = bench::load(series.name);
    std::printf("\n--- %s (baseline p=%d) ---\n", data.spec.paper_name.c_str(),
                series.base_p);
    std::printf("%-5s %-14s %-12s\n", "p", "modeled (ms)", "efficiency");
    double base_time = 0;
    for (int p : series.sweep) {
      core::DistInfomapConfig cfg;
      cfg.num_ranks = p;
      const auto result = core::distributed_infomap(data.csr, cfg);
      const double t = bench::modeled_stage_seconds(result, 0, model) +
                       bench::modeled_stage_seconds(result, 1, model);
      if (p == series.base_p) base_time = t;
      const double tau =
          (static_cast<double>(series.base_p) * base_time) /
          (static_cast<double>(p) * t);
      std::printf("%-5d %-14.2f %-12.2f\n", p, 1000.0 * t, tau);
      csv.row(series.name, p, 1000.0 * t, tau);
    }
  }
  std::printf(
      "\npaper reports ≥65%% efficiency on small/medium graphs and ≥70%% on "
      "large ones over its sweeps.\n");
  return 0;
}
