// Shared helpers for the table/figure benches: dataset loading, modeled-time
// evaluation, fixed-width table printing, and CSV series output.
#pragma once

#include <filesystem>
#include <fstream>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/dist_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "io/datasets.hpp"
#include "perf/cost_model.hpp"

namespace dinfomap::bench {

struct LoadedDataset {
  io::DatasetSpec spec;
  graph::Csr csr;
  std::optional<graph::Partition> ground_truth;
};

inline LoadedDataset load(const std::string& name) {
  LoadedDataset out{io::dataset_spec(name), {}, {}};
  auto gen = io::load_dataset(name);
  out.csr = graph::build_csr(gen.edges, gen.num_vertices);
  out.ground_truth = std::move(gen.ground_truth);
  return out;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// Machine-readable mirror of a bench's table: writes
/// bench_results/<name>.csv next to the working directory, one header plus
/// one row() call per line. Benches keep stdout as the human channel.
class CsvSink {
 public:
  CsvSink(const std::string& name, const std::vector<std::string>& columns) {
    std::filesystem::create_directories("bench_results");
    out_.open("bench_results/" + name + ".csv");
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (i) out_ << ',';
      out_ << columns[i];
    }
    out_ << '\n';
  }

  template <typename... Fields>
  void row(const Fields&... fields) {
    std::ostringstream line;
    bool first = true;
    ((line << (first ? "" : ","), first = false, line << fields), ...);
    out_ << line.str() << '\n';
  }

 private:
  std::ofstream out_;
};

/// Machine-readable JSON mirror for tracking the perf trajectory across PRs:
/// writes bench_results/BENCH_<name>.json on destruction as
/// {"bench": <name>, "rows": [{...}, ...]}. Rows are flat key→value objects
/// built with field(); numbers stay numbers, everything else is quoted.
class JsonSink {
 public:
  explicit JsonSink(std::string name) : name_(std::move(name)) {}

  JsonSink& begin_row() {
    rows_.emplace_back();
    return *this;
  }
  JsonSink& field(const std::string& key, const std::string& value) {
    return raw_field(key, '"' + escape(value) + '"');
  }
  JsonSink& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonSink& field(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(12);
    os << value;
    return raw_field(key, os.str());
  }
  JsonSink& field(const std::string& key, std::int64_t value) {
    return raw_field(key, std::to_string(value));
  }
  JsonSink& field(const std::string& key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonSink& field(const std::string& key, std::uint64_t value) {
    return raw_field(key, std::to_string(value));
  }
  /// Embed an already-serialized JSON document verbatim as `key`'s value —
  /// how benches attach the structured obs::RunReport to their rows.
  JsonSink& json_field(const std::string& key, const std::string& raw_json) {
    return raw_field(key, raw_json);
  }
  JsonSink& report_field(const std::string& key, const obs::RunReport& rep) {
    return json_field(key, rep.to_json());
  }

  ~JsonSink() { write(); }

  void write() const {
    std::filesystem::create_directories("bench_results");
    std::ofstream out("bench_results/BENCH_" + name_ + ".json");
    out << "{\n  \"bench\": \"" << escape(name_) << "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "    {";
      const auto& row = rows_[i];
      for (std::size_t j = 0; j < row.size(); ++j) {
        if (j) out << ", ";
        out << '"' << escape(row[j].first) << "\": " << row[j].second;
      }
      out << (i + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
  }

 private:
  JsonSink& raw_field(const std::string& key, std::string json_value) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().emplace_back(key, std::move(json_value));
    return *this;
  }
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// Modeled BSP seconds of one phase of a distributed run: slowest rank gates.
inline double modeled_phase_seconds(const std::vector<perf::WorkCounters>& per_rank,
                                    const perf::CostModel& model = {}) {
  return perf::bsp_seconds(per_rank, model);
}

/// Modeled total seconds of a distributed Infomap run (all phases).
inline double modeled_total_seconds(const core::DistInfomapResult& result,
                                    const perf::CostModel& model = {}) {
  double total = 0;
  for (int ph = 0; ph < core::kNumPhases; ++ph)
    total += perf::bsp_seconds(result.work[ph], model);
  return total;
}

/// Modeled seconds of one stage (0 = with delegates, 1 = merged levels).
inline double modeled_stage_seconds(const core::DistInfomapResult& result,
                                    int stage,
                                    const perf::CostModel& model = {}) {
  return perf::bsp_seconds(result.stage_work[stage], model);
}

// Run-report-based overloads: benches that consume the structured report
// (rather than the raw result arrays) evaluate the same BSP model off it.
inline double modeled_phase_seconds(const obs::RunReport& report, int phase,
                                    const perf::CostModel& model = {}) {
  return perf::bsp_seconds(report.phases[static_cast<std::size_t>(phase)].work,
                           model);
}

inline double modeled_total_seconds(const obs::RunReport& report,
                                    const perf::CostModel& model = {}) {
  double total = 0;
  for (const auto& ph : report.phases) total += perf::bsp_seconds(ph.work, model);
  return total;
}

inline double modeled_stage_seconds(const obs::RunReport& report, int stage,
                                    const perf::CostModel& model = {}) {
  return perf::bsp_seconds(report.stage_work[static_cast<std::size_t>(stage)],
                           model);
}

}  // namespace dinfomap::bench
