// Shared helpers for the table/figure benches: dataset loading, modeled-time
// evaluation, fixed-width table printing, and CSV series output.
#pragma once

#include <filesystem>
#include <fstream>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/dist_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "io/datasets.hpp"
#include "perf/cost_model.hpp"

namespace dinfomap::bench {

struct LoadedDataset {
  io::DatasetSpec spec;
  graph::Csr csr;
  std::optional<graph::Partition> ground_truth;
};

inline LoadedDataset load(const std::string& name) {
  LoadedDataset out{io::dataset_spec(name), {}, {}};
  auto gen = io::load_dataset(name);
  out.csr = graph::build_csr(gen.edges, gen.num_vertices);
  out.ground_truth = std::move(gen.ground_truth);
  return out;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// Machine-readable mirror of a bench's table: writes
/// bench_results/<name>.csv next to the working directory, one header plus
/// one row() call per line. Benches keep stdout as the human channel.
class CsvSink {
 public:
  CsvSink(const std::string& name, const std::vector<std::string>& columns) {
    std::filesystem::create_directories("bench_results");
    out_.open("bench_results/" + name + ".csv");
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (i) out_ << ',';
      out_ << columns[i];
    }
    out_ << '\n';
  }

  template <typename... Fields>
  void row(const Fields&... fields) {
    std::ostringstream line;
    bool first = true;
    ((line << (first ? "" : ","), first = false, line << fields), ...);
    out_ << line.str() << '\n';
  }

 private:
  std::ofstream out_;
};

/// Modeled BSP seconds of one phase of a distributed run: slowest rank gates.
inline double modeled_phase_seconds(const std::vector<perf::WorkCounters>& per_rank,
                                    const perf::CostModel& model = {}) {
  return perf::bsp_seconds(per_rank, model);
}

/// Modeled total seconds of a distributed Infomap run (all phases).
inline double modeled_total_seconds(const core::DistInfomapResult& result,
                                    const perf::CostModel& model = {}) {
  double total = 0;
  for (int ph = 0; ph < core::kNumPhases; ++ph)
    total += perf::bsp_seconds(result.work[ph], model);
  return total;
}

/// Modeled seconds of one stage (0 = with delegates, 1 = merged levels).
inline double modeled_stage_seconds(const core::DistInfomapResult& result,
                                    int stage,
                                    const perf::CostModel& model = {}) {
  return perf::bsp_seconds(result.stage_work[stage], model);
}

}  // namespace dinfomap::bench
