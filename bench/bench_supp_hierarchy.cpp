// Supplementary: the multilevel map equation (original Infomap) against the
// paper's two-level formulation, on nested synthetic structure and on the
// Table-1 stand-ins. Shows when hierarchy pays (many modules with locality)
// and when it does not.
#include <cstdio>

#include "bench_common.hpp"
#include "core/hierarchy.hpp"
#include "util/random.hpp"

namespace {
dinfomap::graph::Csr nested(std::uint64_t seed, dinfomap::graph::VertexId groups,
                            dinfomap::graph::VertexId blocks,
                            dinfomap::graph::VertexId bs) {
  using namespace dinfomap;
  util::Xoshiro256 rng(seed);
  const graph::VertexId n = groups * blocks * bs;
  graph::EdgeList edges;
  auto block_of = [&](graph::VertexId v) { return v / bs; };
  auto group_of = [&](graph::VertexId v) { return v / (blocks * bs); };
  for (graph::VertexId u = 0; u < n; ++u)
    for (graph::VertexId v = u + 1; v < n; ++v) {
      double p = 0.002;
      if (block_of(u) == block_of(v)) p = 0.9;
      else if (group_of(u) == group_of(v)) p = 0.10;
      if (rng.uniform() < p) edges.push_back({u, v, 1.0});
    }
  return graph::build_csr(edges, n);
}
}  // namespace

int main() {
  using namespace dinfomap;
  bench::banner("Supplementary — two-level vs multilevel map equation",
                "extension: Rosvall & Bergstrom 2011 hierarchy on top of Eq. 3");

  std::printf("%-22s %-12s %-12s %-9s %-7s %-10s\n", "graph", "two-level L",
              "multilevel L", "gain", "depth", "leaf mods");
  std::printf("%s\n", std::string(76, '-').c_str());

  auto report = [&](const char* label, const graph::Csr& g) {
    const auto r = core::hierarchical_infomap(g);
    std::printf("%-22s %-12.4f %-12.4f %7.2f%% %-7d %-10d\n", label,
                r.two_level_codelength, r.codelength,
                100.0 * (r.two_level_codelength - r.codelength) /
                    r.two_level_codelength,
                r.hierarchy.depth(), r.hierarchy.num_leaf_modules());
  };

  report("nested 8x8x8", nested(5, 8, 8, 8));
  report("nested 10x6x10", nested(7, 10, 6, 10));
  for (const char* name : {"amazon", "dblp", "ndweb"}) {
    const auto data = bench::load(name);
    report(data.spec.paper_name.c_str(), data.csr);
  }
  std::printf(
      "\nexpected: strong gains and depth >= 2 on nested structure; little "
      "or no gain on the flat community stand-ins (hierarchy only pays when "
      "many modules have locality).\n");
  return 0;
}
