// Figure 7: per-processor communication (ghost-vertex count) under 1D vs
// delegate partitioning. Information swapping goes through boundary/ghost
// vertices, so this is the communication-cost proxy the paper plots.
#include <cstdio>

#include "bench_common.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Figure 7 — communication balance: ghost vertices per rank (p=16)",
                "Zeng & Yu, ICPP'18, Fig. 7");
  const int p = 16;

  for (const char* name : {"uk2005", "webbase2001", "friendster", "uk2007"}) {
    const auto data = bench::load(name);
    const auto ghosts_1d = partition::ghosts_per_rank(partition::make_oned(data.csr, p));
    const auto ghosts_dp =
        partition::ghosts_per_rank(partition::make_delegate(data.csr, p));
    const auto s1 = util::summarize_counts(ghosts_1d);
    const auto s2 = util::summarize_counts(ghosts_dp);

    std::printf("\n--- %s ---\n", data.spec.paper_name.c_str());
    std::printf("%-6s %14s %16s\n", "rank", "1D ghosts", "delegate ghosts");
    for (int r = 0; r < p; ++r)
      std::printf("%-6d %14s %16s\n", r,
                  util::with_commas(ghosts_1d[r]).c_str(),
                  util::with_commas(ghosts_dp[r]).c_str());
    std::printf("max/imb   1D: %s / %.2fx    delegate: %s / %.2fx\n",
                util::with_commas(static_cast<std::uint64_t>(s1.max)).c_str(),
                s1.imbalance,
                util::with_commas(static_cast<std::uint64_t>(s2.max)).c_str(),
                s2.imbalance);

    // Observed balance: ghost counts predict communication; the run report's
    // per-rank comm counters verify it with the bytes actually sent.
    core::DistInfomapConfig cfg;
    cfg.num_ranks = p;
    cfg.obs.enabled = true;
    const auto rep = core::distributed_infomap(data.csr, cfg).report;
    std::vector<std::uint64_t> sent(static_cast<std::size_t>(p), 0);
    for (int r = 0; r < p; ++r)
      sent[static_cast<std::size_t>(r)] =
          rep.comm[static_cast<std::size_t>(r)].total_bytes();
    const auto so = util::summarize_counts(sent);
    std::printf("observed bytes sent (run report): max %s, imb %.2fx\n",
                util::with_commas(static_cast<std::uint64_t>(so.max)).c_str(),
                so.imbalance);
  }
  return 0;
}
