// Micro-bench for the out-of-core graph substrate (DESIGN.md §15): codec
// encode/decode throughput, the weighted-gather kernel on the resident Csr
// vs the blocks backend, and the rank-resident memory comparison that is the
// point of the substrate.
//
// Two access patterns are measured at each cache budget:
//   streaming   — repeated full-graph scans. A budget below the graph size
//                 thrashes by construction (cyclic access defeats clock
//                 eviction), so this row shows the decode-bound worst case.
//   rank slice  — repeated scans of one rank's contiguous 1/8 slice, the
//                 pattern a worker in an 8-process deployment actually
//                 drives. The slice fits the 25% budget, so steady state is
//                 all cache hits.
//
// Acceptance gate (ISSUE 9): at a 25% cache budget the blocks backend's
// rank-resident graph memory must be ≤ 50% of the resident Csr's, with the
// rank-slice gather no more than 2× slower. Both land in
// bench_results/BENCH_blockgraph.json; `identical` asserts that every
// backend/budget combination gathered bit-identical sums.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/blockgraph/blockgraph.hpp"
#include "graph/blockgraph/writer.hpp"
#include "graph/gen/generators.hpp"
#include "graph/graph_view.hpp"
#include "util/timer.hpp"

namespace bgx = dinfomap::graph::blockgraph;
namespace dg = dinfomap::graph;
namespace gen = dinfomap::graph::gen;
using dinfomap::bench::JsonSink;
using dinfomap::util::Timer;

namespace {

constexpr int kGatherPasses = 5;
constexpr int kSliceRanks = 8;  ///< deployment modeled by the rank-slice rows

/// The gather kernel: the shape of every hot loop in the engines — walk each
/// vertex's adjacency in stored order, accumulate weight. Returns the sum so
/// backends can be checked for bit-identical accumulation.
double gather_resident(const dg::Csr& g, dg::VertexId lo, dg::VertexId hi) {
  double sum = 0;
  for (dg::VertexId u = lo; u < hi; ++u)
    for (const auto& nb : g.neighbors(u)) sum += nb.weight;
  return sum;
}

double gather_blocks(const bgx::BlockGraph& g, dg::VertexId lo,
                     dg::VertexId hi) {
  double sum = 0;
  auto cur = g.cursor();
  for (dg::VertexId u = lo; u < hi; ++u)
    for (const auto& nb : g.neighbors(u, cur)) sum += nb.weight;
  return sum;
}

/// Rank-resident memory of the resident Csr backend: offsets, adjacency,
/// and the per-vertex weighted-degree/self-weight caches.
std::uint64_t resident_graph_bytes(const dg::Csr& g) {
  return (static_cast<std::uint64_t>(g.num_vertices()) + 1) * 8 +
         static_cast<std::uint64_t>(g.num_arcs()) * sizeof(dg::Neighbor) +
         static_cast<std::uint64_t>(g.num_vertices()) * 16;
}

/// Rank-resident memory of the blocks backend: the vertex-proportional
/// sections read in place from the mapping (offsets, block ids, wdeg, self),
/// the block index, and the decode-cache budget. The encoded payload region
/// is file-backed and not counted — the kernel touches it only through the
/// cache, which is exactly what the budget bounds.
std::uint64_t blocks_graph_bytes(const bgx::BlockGraph& g,
                                 std::size_t cache_bytes) {
  const auto n = static_cast<std::uint64_t>(g.num_vertices());
  return (n + 1) * 8 + n * 4 + n * 8 + n * 8 + g.num_blocks() * 32 +
         cache_bytes;
}

struct GatherRow {
  double resident_ms = 0;
  double blocks_ms = 0;
  double speedup = 0;
  double hit_pct = 0;
  std::uint64_t evictions = 0;
  bool identical = false;
};

GatherRow run_gather(const dg::Csr& csr, const bgx::BlockGraph& blocks,
                     dg::VertexId lo, dg::VertexId hi) {
  GatherRow row;
  Timer t;
  double resident_sum = 0;
  for (int pass = 0; pass < kGatherPasses; ++pass)
    resident_sum = gather_resident(csr, lo, hi);
  row.resident_ms = t.seconds() * 1e3 / kGatherPasses;
  const auto before = blocks.stats();
  double blocks_sum = 0;
  t.restart();
  for (int pass = 0; pass < kGatherPasses; ++pass)
    blocks_sum = gather_blocks(blocks, lo, hi);
  row.blocks_ms = t.seconds() * 1e3 / kGatherPasses;
  const auto after = blocks.stats();
  const double faults = static_cast<double>((after.hits - before.hits) +
                                            (after.misses - before.misses));
  row.hit_pct = faults > 0
                    ? 100.0 * static_cast<double>(after.hits - before.hits) /
                          faults
                    : 0.0;
  row.evictions = after.evictions - before.evictions;
  row.speedup = row.blocks_ms > 0 ? row.resident_ms / row.blocks_ms : 0.0;
  row.identical = blocks_sum == resident_sum;
  return row;
}

}  // namespace

int main() {
  dinfomap::bench::banner(
      "blockgraph: codec throughput, gather kernel, memory vs cache budget",
      "ISSUE 9 acceptance (out-of-core substrate, DESIGN.md §15)");

  const auto gg = gen::erdos_renyi(20'000, 300'000, 42);
  const auto csr = dg::build_csr(gg.edges, gg.num_vertices);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("bench_blockgraph_" + std::to_string(::getpid()) + ".blockgraph"))
          .string();

  JsonSink json("blockgraph");

  // --- encode -------------------------------------------------------------
  bgx::WriteOptions wopts;
  wopts.block_payload_bytes = 16 * 1024;  // fine blocks: real budget sweep
  Timer t;
  const auto summary = bgx::write_block_file(path, csr, wopts);
  const double encode_s = t.seconds();
  const double arcs = static_cast<double>(summary.num_arcs);
  std::printf("encode: %.0f arcs in %.2f ms (%.1f Marcs/s), %.2f bytes/arc "
              "(resident CSR: 16)\n",
              arcs, encode_s * 1e3, arcs / encode_s / 1e6,
              static_cast<double>(summary.payload_bytes) / arcs);

  // --- cold decode (budget > graph: every block decoded exactly once) -----
  const std::uint64_t adjacency_bytes =
      summary.num_arcs * sizeof(dg::Neighbor);
  {
    bgx::BlockGraph::Options opts;
    opts.cache_bytes = 2 * adjacency_bytes;
    opts.cache_slots = 1;
    const auto g = bgx::BlockGraph::open(path, opts);
    t.restart();
    const double sum = gather_blocks(g, 0, g.num_vertices());
    const double decode_s = t.seconds();
    std::printf("decode: cold full pass %.2f ms (%.1f Marcs/s), %llu blocks, "
                "gather %s\n",
                decode_s * 1e3, arcs / decode_s / 1e6,
                static_cast<unsigned long long>(summary.num_blocks),
                sum == gather_resident(csr, 0, csr.num_vertices())
                    ? "identical"
                    : "DIVERGED");
    json.begin_row()
        .field("kernel", "codec_throughput")
        .field("graph", "er_20k_300k")
        .field("num_arcs", summary.num_arcs)
        .field("num_blocks", summary.num_blocks)
        .field("payload_bytes_per_arc",
               static_cast<double>(summary.payload_bytes) / arcs)
        .field("encode_ms", encode_s * 1e3)
        .field("cold_decode_ms", decode_s * 1e3);
  }

  // --- gather sweep --------------------------------------------------------
  const std::uint64_t resident_bytes = resident_graph_bytes(csr);
  const dg::VertexId n = csr.num_vertices();
  std::printf("\n%-10s %7s %12s %12s %8s %8s %6s %10s\n", "pattern",
              "cache%", "resident ms", "blocks ms", "ratio", "hit%", "mem%",
              "identical");
  bool accept_mem = false;
  bool accept_speed = false;
  double accept_mem_pct = 0;
  double accept_ratio = 0;
  for (const int budget_pct : {100, 50, 25}) {
    bgx::BlockGraph::Options opts;
    opts.cache_bytes =
        static_cast<std::size_t>(adjacency_bytes * budget_pct / 100);
    opts.cache_slots = 1;  // single-threaded kernel: one slot owns the budget
    const auto g = bgx::BlockGraph::open(path, opts);
    const std::uint64_t mem = blocks_graph_bytes(g, opts.cache_bytes);
    const double mem_pct =
        100.0 * static_cast<double>(mem) / static_cast<double>(resident_bytes);
    const struct {
      const char* name;
      dg::VertexId lo, hi;
    } patterns[] = {{"streaming", 0, n}, {"rank-slice", 0, n / kSliceRanks}};
    for (const auto& pat : patterns) {
      const GatherRow row = run_gather(csr, g, pat.lo, pat.hi);
      const double ratio = row.speedup > 0 ? 1.0 / row.speedup : 0.0;
      std::printf("%-10s %6d%% %12.3f %12.3f %7.2fx %7.1f%% %5.0f%% %10s\n",
                  pat.name, budget_pct, row.resident_ms, row.blocks_ms, ratio,
                  row.hit_pct, mem_pct, row.identical ? "yes" : "NO");
      json.begin_row()
          .field("kernel", std::string("weighted_gather_") +
                               (pat.lo == 0 && pat.hi == n ? "streaming"
                                                           : "rank_slice"))
          .field("graph", "er_20k_300k")
          .field("cache_budget_pct", budget_pct)
          .field("resident_gather_ms", row.resident_ms)
          .field("blocks_gather_ms", row.blocks_ms)
          .field("gather_speedup_vs_resident", row.speedup)
          .field("cache_hit_ratio_pct", row.hit_pct)
          .field("evictions", row.evictions)
          .field("memory_bytes_resident", resident_bytes)
          .field("memory_bytes_blocks", mem)
          .field("memory_vs_resident_pct", mem_pct)
          .field("identical",
                 static_cast<std::int64_t>(row.identical ? 1 : 0));
      if (budget_pct == 25 && pat.lo == 0 && pat.hi == n / kSliceRanks) {
        accept_mem = mem * 2 <= resident_bytes;
        accept_speed = row.blocks_ms <= 2.0 * row.resident_ms;
        accept_mem_pct = mem_pct;
        accept_ratio = ratio;
      }
    }
  }

  std::printf("\nacceptance @25%% budget (rank-slice): memory %.0f%% of "
              "resident (need ≤50%%) %s, gather %.2fx resident (need ≤2x) "
              "%s\n",
              accept_mem_pct, accept_mem ? "OK" : "FAIL", accept_ratio,
              accept_speed ? "OK" : "FAIL");

  std::filesystem::remove(path);
  return accept_mem && accept_speed ? 0 : 1;
}
