// Supplementary: distributed quality as parallelism grows. The paper's core
// accuracy claim is that the distributed result stays close to the
// sequential one; this sweep quantifies the gap across rank counts.
#include <cstdio>

#include "bench_common.hpp"
#include "core/seq_infomap.hpp"
#include "quality/metrics.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Supplementary — distributed quality vs rank count",
                "accuracy claim of §3.4 / Fig. 4 quantified across p");
  bench::CsvSink csv("supp_quality_vs_p",
                     {"dataset", "ranks", "dist_L", "seq_L", "gap_percent",
                      "nmi_vs_seq"});

  for (const char* name : {"amazon", "youtube", "uk2005"}) {
    const auto data = bench::load(name);
    const auto seq = core::sequential_infomap(data.csr);
    std::printf("\n--- %s (sequential L = %.4f) ---\n",
                data.spec.paper_name.c_str(), seq.codelength);
    std::printf("%-5s %-12s %-10s %-10s\n", "p", "dist L", "gap", "NMI(seq)");
    for (int p : {2, 4, 8, 16, 32}) {
      core::DistInfomapConfig cfg;
      cfg.num_ranks = p;
      const auto dist = core::distributed_infomap(data.csr, cfg);
      const double gap =
          100.0 * (dist.codelength - seq.codelength) / seq.codelength;
      const double nmi = quality::nmi(dist.assignment, seq.assignment);
      std::printf("%-5d %-12.4f %+8.2f%% %-10.2f\n", p, dist.codelength, gap,
                  nmi);
      csv.row(name, p, dist.codelength, seq.codelength, gap, nmi);
    }
  }
  std::printf(
      "\nexpected: the gap stays bounded (paper's Table 2 agreement is ~0.8 "
      "NMI) rather than growing without bound in p.\n");
  return 0;
}
