// Ablation A5 (extension): hub-move decision rule. The paper broadcasts each
// hub's per-rank *local* best move and applies the global argmin; the
// exact-hub-moves extension reduces the hub's full flow map at its owner and
// decides from exact global flows. Trade-off: one extra alltoallv per round
// vs better placements on hub-dominated graphs.
#include <cstdio>

#include "bench_common.hpp"
#include "core/seq_infomap.hpp"
#include "quality/metrics.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Ablation A5 — hub moves: local-proposal consensus vs exact flows (p=8)",
                "extension to Alg. 2 line 4 (see DESIGN.md)");
  const perf::CostModel model;
  const int p = 8;

  std::printf("%-14s %-10s | %-10s %-9s %-11s | %-10s %-9s %-11s\n", "Dataset",
              "seq L", "paper L", "NMI(seq)", "model ms", "exact L",
              "NMI(seq)", "model ms");
  std::printf("%s\n", std::string(100, '-').c_str());

  for (const char* name : {"ndweb", "uk2005", "webbase2001", "uk2007"}) {
    const auto data = bench::load(name);
    const auto seq = core::sequential_infomap(data.csr);

    core::DistInfomapConfig paper_cfg;
    paper_cfg.num_ranks = p;
    auto exact_cfg = paper_cfg;
    exact_cfg.exact_hub_moves = true;

    const auto paper = core::distributed_infomap(data.csr, paper_cfg);
    const auto exact = core::distributed_infomap(data.csr, exact_cfg);
    const double t_paper = 1000.0 * bench::modeled_total_seconds(paper, model);
    const double t_exact = 1000.0 * bench::modeled_total_seconds(exact, model);

    std::printf("%-14s %-10.4f | %-10.4f %-9.2f %-11.2f | %-10.4f %-9.2f %-11.2f\n",
                data.spec.paper_name.c_str(), seq.codelength, paper.codelength,
                quality::nmi(paper.assignment, seq.assignment), t_paper,
                exact.codelength,
                quality::nmi(exact.assignment, seq.assignment), t_exact);
  }
  return 0;
}
