// Figure 9: total clustering time vs rank count, split into stage 1 (with
// delegates) and stage 2 (merged-graph levels). Reported in modeled time
// (per-rank work counters through the α-β model; see DESIGN.md S9) with wall
// time for reference — threads on one core cannot show real multi-node
// scaling, but the counter-exact model reproduces the inverse-p shape.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Figure 9 — scalability: modeled runtime vs rank count",
                "Zeng & Yu, ICPP'18, Fig. 9");
  const perf::CostModel model;
  bench::CsvSink csv("fig9_scalability",
                     {"dataset", "ranks", "stage1_ms", "stage2_ms", "total_ms",
                      "wall_ms", "final_L"});
  bench::JsonSink json("fig9_scalability");

  for (const char* name : {"uk2005", "webbase2001", "friendster", "uk2007"}) {
    const auto data = bench::load(name);
    std::printf("\n--- %s ---\n", data.spec.paper_name.c_str());
    std::printf("%-5s %-14s %-14s %-14s %-12s %-9s\n", "p", "stage1 (ms)",
                "stage2 (ms)", "total (ms)", "wall (ms)", "final L");
    for (int p : {2, 4, 8, 16, 32}) {
      core::DistInfomapConfig cfg;
      cfg.num_ranks = p;
      cfg.obs.enabled = true;  // flight recorder fills the run report
      const auto result = core::distributed_infomap(data.csr, cfg);
      const obs::RunReport& rep = result.report;
      const double s1 = 1000.0 * bench::modeled_stage_seconds(rep, 0, model);
      const double s2 = 1000.0 * bench::modeled_stage_seconds(rep, 1, model);
      const double wall =
          1000.0 * (rep.stage1_wall_seconds + rep.stage2_wall_seconds);
      std::printf("%-5d %-14.2f %-14.2f %-14.2f %-12.1f %-9.4f\n", p, s1, s2,
                  s1 + s2, wall, rep.codelength);
      csv.row(name, p, s1, s2, s1 + s2, wall, rep.codelength);
      json.begin_row()
          .field("dataset", name)
          .field("ranks", p)
          .field("stage1_ms", s1)
          .field("stage2_ms", s2)
          .field("total_ms", s1 + s2)
          .field("wall_ms", wall)
          .field("final_L", rep.codelength)
          .report_field("run_report", rep);
    }
  }
  std::printf(
      "\nexpected shape: modeled total time nearly inversely proportional to "
      "p (Fig. 9); stage 1 dominates on hub-heavy graphs.\n");
  return 0;
}
