// Ablation A1: delegate threshold d_high. The paper fixes d_high = p; this
// sweep shows the trade-off the choice controls — too high (no delegates)
// degenerates to 1D imbalance, too low duplicates most of the graph and
// inflates the delegate consensus traffic.
#include <cstdio>

#include "bench_common.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Ablation A1 — delegate threshold d_high sweep (p=8)",
                "design choice behind §3.3 (paper: d_high = p)");
  const perf::CostModel model;
  const int p = 8;

  for (const char* name : {"ndweb", "uk2005"}) {
    const auto data = bench::load(name);
    const double mean_degree = 2.0 * static_cast<double>(data.csr.num_edges()) /
                               static_cast<double>(data.csr.num_vertices());
    std::printf("\n--- %s (mean degree %.1f) ---\n",
                data.spec.paper_name.c_str(), mean_degree);
    std::printf("%-12s %-10s %-10s %-12s %-14s %-9s\n", "d_high", "hubs",
                "arc imb", "ghost max", "modeled (ms)", "final L");

    const graph::EdgeIndex thresholds[] = {
        static_cast<graph::EdgeIndex>(p),
        static_cast<graph::EdgeIndex>(2 * mean_degree),
        static_cast<graph::EdgeIndex>(4 * mean_degree),
        static_cast<graph::EdgeIndex>(16 * mean_degree),
        1u << 30 /* effectively 1D */};
    for (const auto d_high : thresholds) {
      const auto part = partition::make_delegate(data.csr, p, d_high);
      std::uint64_t hubs = 0;
      for (auto f : part.is_delegate) hubs += f;
      const auto arcs = util::summarize_counts(partition::arcs_per_rank(part));
      const auto ghosts = util::summarize_counts(partition::ghosts_per_rank(part));

      core::DistInfomapConfig cfg;
      cfg.num_ranks = p;
      cfg.degree_threshold = d_high;
      const auto result = core::distributed_infomap(data.csr, part, cfg);
      const double t = 1000.0 * (bench::modeled_stage_seconds(result, 0, model) +
                                 bench::modeled_stage_seconds(result, 1, model));
      std::printf("%-12llu %-10llu %-10.2f %-12.0f %-14.2f %-9.4f\n",
                  static_cast<unsigned long long>(d_high),
                  static_cast<unsigned long long>(hubs), arcs.imbalance,
                  ghosts.max, t, result.codelength);
    }
  }
  return 0;
}
