// Table 1: dataset inventory. Prints each paper dataset next to its seeded
// synthetic stand-in, with the structural statistics the algorithm cares
// about (size, hub tail, planted ground truth).
#include <cstdio>

#include "bench_common.hpp"
#include "graph/stats.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dinfomap;
  bench::banner("Table 1 — Datasets (synthetic stand-ins)",
                "Zeng & Yu, ICPP'18, Table 1");

  std::printf("%-13s %-14s %-11s %-11s %-11s %-9s %-7s %-6s\n", "Name",
              "Paper |V|/|E|", "|V| here", "|E| here", "max deg", "mean", "hubs",
              "truth");
  std::printf("%s\n", std::string(88, '-').c_str());

  for (const auto& spec : io::dataset_registry()) {
    const auto data = bench::load(spec.name);
    // Hubs counted at the paper's stage-1 threshold for p = 16.
    const auto stats = graph::degree_stats(data.csr, 64);
    std::printf("%-13s %6s/%-7s %-11s %-11s %-11llu %-9.2f %-7u %-6s\n",
                spec.paper_name.c_str(), spec.paper_vertices.c_str(),
                spec.paper_edges.c_str(),
                util::with_commas(data.csr.num_vertices()).c_str(),
                util::with_commas(data.csr.num_edges()).c_str(),
                static_cast<unsigned long long>(stats.max_degree),
                stats.mean_degree, stats.hubs_above,
                data.ground_truth ? "yes" : "no");
  }
  std::printf(
      "\nhubs = vertices with degree > 64; stand-in scales are recorded in "
      "EXPERIMENTS.md.\n");
  return 0;
}
