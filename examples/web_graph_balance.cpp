// Web-crawl scenario: the hub problem. A scale-free web graph concentrates
// most arcs on a few pages; this example shows what that does to a 1D
// distribution and how delegate partitioning repairs it, then runs the
// distributed Infomap over the delegate partition.
#include <cstdio>

#include "core/dist_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "graph/stats.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dinfomap;

  std::printf("=== web-crawl hub balancing ===\n");
  const auto gg = graph::gen::rmat(14, 10, 0.57, 0.19, 0.19, /*seed=*/99);
  const auto g = graph::build_csr(gg.edges, gg.num_vertices);
  const auto deg = graph::degree_stats(g, 128);
  std::printf("crawl graph: %u pages, %llu links, max degree %llu, "
              "%u hubs hold %.0f%% of all links\n\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(deg.max_degree), deg.hubs_above,
              100.0 * deg.hub_arc_fraction);

  const int p = 8;
  const auto oned = partition::make_oned(g, p);
  const auto del = partition::make_delegate(g, p);
  const auto arcs_1d = util::summarize_counts(partition::arcs_per_rank(oned));
  const auto arcs_dp = util::summarize_counts(partition::arcs_per_rank(del));
  const auto ghosts_1d = util::summarize_counts(partition::ghosts_per_rank(oned));
  const auto ghosts_dp = util::summarize_counts(partition::ghosts_per_rank(del));

  std::printf("distribution over %d ranks:\n", p);
  std::printf("  %-22s %12s %12s %8s\n", "", "min", "max", "max/mean");
  std::printf("  %-22s %12.0f %12.0f %7.2fx\n", "1D arcs", arcs_1d.min,
              arcs_1d.max, arcs_1d.imbalance);
  std::printf("  %-22s %12.0f %12.0f %7.2fx\n", "delegate arcs", arcs_dp.min,
              arcs_dp.max, arcs_dp.imbalance);
  std::printf("  %-22s %12.0f %12.0f %7.2fx\n", "1D ghosts", ghosts_1d.min,
              ghosts_1d.max, ghosts_1d.imbalance);
  std::printf("  %-22s %12.0f %12.0f %7.2fx\n", "delegate ghosts",
              ghosts_dp.min, ghosts_dp.max, ghosts_dp.imbalance);

  core::DistInfomapConfig cfg;
  cfg.num_ranks = p;
  const auto result = core::distributed_infomap(g, cfg);
  std::printf("\ndistributed Infomap on the delegate partition: L = %.4f "
              "(%u modules, %d stage-1 rounds, %d stage-2 levels)\n",
              result.codelength, result.num_modules(), result.stage1_rounds,
              result.stage2_levels);
  return 0;
}
