// Quickstart: generate (or load) a graph, run both the sequential and the
// distributed Infomap, and print the communities found.
//
//   ./quickstart [edge_list.txt] [num_ranks]
//
// With no arguments a small planted-community benchmark graph is generated.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/dist_infomap.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/edgelist_io.hpp"
#include "graph/gen/generators.hpp"
#include "quality/metrics.hpp"

int main(int argc, char** argv) {
  using namespace dinfomap;

  graph::EdgeList edges;
  if (argc > 1) {
    std::printf("loading edge list from %s\n", argv[1]);
    edges = graph::read_edge_list(argv[1]);
  } else {
    std::printf("no input given — generating an LFR-style benchmark graph\n");
    graph::gen::LfrLiteParams params;
    params.n = 2000;
    params.mixing = 0.15;
    edges = graph::gen::lfr_lite(params, /*seed=*/7).edges;
  }
  const int num_ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  const auto g = graph::build_csr(edges);
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // Sequential reference (Algorithm 1).
  const auto seq = core::sequential_infomap(g);
  std::printf("\nsequential Infomap:  L = %.6f  (%u modules, singleton L = %.6f)\n",
              seq.codelength, seq.num_modules(), seq.singleton_codelength);

  // Distributed run (Algorithm 2) on `num_ranks` ranks.
  core::DistInfomapConfig cfg;
  cfg.num_ranks = num_ranks;
  const auto dist = core::distributed_infomap(g, cfg);
  std::printf("distributed (p=%d):  L = %.6f  (%u modules, %d stage-1 rounds)\n",
              num_ranks, dist.codelength, dist.num_modules(),
              dist.stage1_rounds);
  std::printf("agreement with sequential: NMI = %.3f\n",
              quality::nmi(dist.assignment, seq.assignment));

  // Show the five largest communities.
  std::map<graph::VertexId, std::uint64_t> sizes;
  for (auto m : dist.assignment) ++sizes[m];
  std::multimap<std::uint64_t, graph::VertexId, std::greater<>> by_size;
  for (const auto& [m, s] : sizes) by_size.emplace(s, m);
  std::printf("\nlargest communities (of %zu):\n", sizes.size());
  int shown = 0;
  for (const auto& [s, m] : by_size) {
    std::printf("  community %u: %llu vertices\n", m,
                static_cast<unsigned long long>(s));
    if (++shown == 5) break;
  }
  return 0;
}
