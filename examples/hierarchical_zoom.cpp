// Hierarchical zoom: nested community structure in an organization-style
// network (departments containing teams). The two-level algorithm must pick
// one scale; the multi-level map equation captures both, and its colon-path
// output lets you "zoom" from departments into teams.
#include <cstdio>
#include <map>

#include "core/hierarchy.hpp"
#include "graph/builder.hpp"
#include "util/random.hpp"

int main() {
  using namespace dinfomap;
  util::Xoshiro256 rng(11);

  // 8 departments × 8 teams × 8 people: team links dense, department links
  // common, company-wide links rare.
  const graph::VertexId depts = 8, teams = 8, size = 8;
  const graph::VertexId n = depts * teams * size;
  graph::EdgeList ties;
  auto team_of = [&](graph::VertexId v) { return v / size; };
  auto dept_of = [&](graph::VertexId v) { return v / (teams * size); };
  for (graph::VertexId u = 0; u < n; ++u) {
    for (graph::VertexId v = u + 1; v < n; ++v) {
      double p = 0.002;
      if (team_of(u) == team_of(v)) p = 0.9;
      else if (dept_of(u) == dept_of(v)) p = 0.10;
      if (rng.uniform() < p) ties.push_back({u, v, 1.0});
    }
  }
  const auto g = graph::build_csr(ties, n);
  std::printf("organization graph: %u people, %llu ties\n\n", n,
              static_cast<unsigned long long>(g.num_edges()));

  const auto result = core::hierarchical_infomap(g);
  std::printf("two-level  L = %.4f\n", result.two_level_codelength);
  std::printf("multilevel L = %.4f  (%.1f%% shorter, depth %d, %d leaf modules "
              "under %zu top modules)\n\n",
              result.codelength,
              100.0 * (result.two_level_codelength - result.codelength) /
                  result.two_level_codelength,
              result.hierarchy.depth(), result.hierarchy.num_leaf_modules(),
              result.hierarchy.nodes()[0].children.size());

  // Zoom: print the module path of one person per department.
  const auto paths = result.hierarchy.vertex_paths(n);
  std::printf("sample paths (department members share the leading index):\n");
  for (graph::VertexId d = 0; d < depts; ++d) {
    const graph::VertexId person = d * teams * size;
    std::printf("  person %3u (dept %u, team %2u): %s\n", person, d,
                team_of(person), paths[person].c_str());
  }
  return 0;
}
