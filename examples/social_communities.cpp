// Social-network scenario: detect communities in a synthetic friendship
// network with planted ground truth (the Amazon/DBLP-style workload of the
// paper's Table 2), compare three algorithms, and score them against the
// known communities.
#include <cstdio>

#include "core/dist_infomap.hpp"
#include "core/labelflow.hpp"
#include "core/louvain.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "quality/metrics.hpp"

int main() {
  using namespace dinfomap;

  std::printf("=== social network community detection ===\n");
  graph::gen::LfrLiteParams params;
  params.n = 5000;
  params.mixing = 0.25;
  params.max_degree = 150;
  const auto gg = graph::gen::lfr_lite(params, /*seed=*/2024);
  const auto g = graph::build_csr(gg.edges, gg.num_vertices);
  const auto& truth = *gg.ground_truth;
  std::printf("friendship graph: %u users, %llu ties, mixing 0.25\n\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));

  std::printf("%-24s %-8s %-8s %-8s %-10s\n", "algorithm", "NMI", "F1", "JI",
              "modules");
  std::printf("%s\n", std::string(60, '-').c_str());
  auto report = [&](const char* name, const graph::Partition& assignment) {
    graph::VertexId k = 0;
    for (auto m : assignment) k = std::max(k, m + 1);
    std::printf("%-24s %-8.3f %-8.3f %-8.3f %-10u\n", name,
                quality::nmi(assignment, truth),
                quality::f_measure(assignment, truth),
                quality::jaccard_index(assignment, truth), k);
  };

  const auto seq = core::sequential_infomap(g);
  report("sequential Infomap", seq.assignment);

  core::DistInfomapConfig cfg;
  cfg.num_ranks = 4;
  const auto dist = core::distributed_infomap(g, cfg);
  report("distributed Infomap p=4", dist.assignment);

  const auto lou = core::louvain(g);
  report("Louvain (modularity)", lou.assignment);

  const auto lf = core::distributed_labelflow(g, 4);
  report("label-flow baseline p=4", lf.assignment);

  std::printf("\nmap-equation codelengths: seq %.4f, dist %.4f, labelflow %.4f\n",
              seq.codelength, dist.codelength, lf.codelength);
  return 0;
}
