// Calibration utility for the α-β cost model (src/perf). Measures the
// actual per-operation costs of this machine's build — arc scan, ΔL
// evaluation, module update, message latency, byte bandwidth — and prints a
// CostModel initializer to paste into experiments that want modeled times in
// *this* machine's units instead of the Titan-era defaults.
#include <cstdio>

#include "comm/runtime.hpp"
#include "core/flowgraph.hpp"
#include "core/mapequation.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/timer.hpp"

int main() {
  using namespace dinfomap;
  std::printf("calibrating cost model on this machine...\n\n");

  // Arc scan + ΔL evaluation cost: time a move-search-shaped loop.
  const auto gg = graph::gen::lfr_lite({}, 3);
  const auto g = graph::build_csr(gg.edges, gg.num_vertices);
  const auto fg = core::make_flow_graph(g);

  double sec_per_arc = 0;
  {
    util::Timer t;
    double sink = 0;
    std::uint64_t arcs = 0;
    for (int rep = 0; rep < 50; ++rep) {
      for (graph::VertexId u = 0; u < fg.num_vertices(); ++u) {
        for (const auto& nb : fg.csr.neighbors(u)) {
          sink += nb.weight;
          ++arcs;
        }
      }
    }
    sec_per_arc = t.seconds() / static_cast<double>(arcs);
    if (sink < 0) std::printf("?");  // keep the loop alive
  }

  double sec_per_delta = 0;
  {
    core::MoveDelta d;
    d.p_u = 0.01;
    d.f_u = 0.008;
    d.f_to_old = 0.001;
    d.f_to_new = 0.004;
    d.old_stats = {0.2, 0.05, 40};
    d.new_stats = {0.3, 0.07, 55};
    d.q_total = 0.4;
    util::Timer t;
    double sink = 0;
    const int reps = 2'000'000;
    for (int i = 0; i < reps; ++i) {
      d.f_to_new += 1e-12;  // defeat constant folding
      sink += core::evaluate_move(d).delta_codelength;
    }
    sec_per_delta = t.seconds() / reps;
    if (sink < -1e30) std::printf("?");
  }

  // Message latency + bandwidth through the comm substrate.
  double alpha = 0, beta = 0;
  {
    const int pings = 2000;
    util::Timer t;
    comm::Runtime::run(2, [&](comm::Comm& comm) {
      for (int i = 0; i < pings; ++i) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 1, i);
          (void)comm.recv_value<int>(1, 2);
        } else {
          (void)comm.recv_value<int>(0, 1);
          comm.send_value<int>(0, 2, i);
        }
      }
    });
    alpha = t.seconds() / (2.0 * pings);
  }
  {
    const int rounds = 200;
    const std::vector<double> payload(1 << 16);  // 512 KiB
    util::Timer t;
    comm::Runtime::run(2, [&](comm::Comm& comm) {
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 1, payload);
        } else {
          (void)comm.recv<double>(0, 1);
        }
      }
      comm.barrier();
    });
    beta = t.seconds() / (rounds * payload.size() * sizeof(double));
  }

  std::printf("measured on this machine:\n");
  std::printf("  sec_per_arc           = %.3e\n", sec_per_arc);
  std::printf("  sec_per_delta         = %.3e\n", sec_per_delta);
  std::printf("  alpha (msg latency)   = %.3e\n", alpha);
  std::printf("  beta (per byte)       = %.3e\n", beta);
  std::printf("\npaste into your experiment:\n");
  std::printf("  perf::CostModel model;\n");
  std::printf("  model.sec_per_arc = %.3e;\n", sec_per_arc);
  std::printf("  model.sec_per_delta = %.3e;\n", sec_per_delta);
  std::printf("  model.sec_per_module_update = %.3e;\n", sec_per_delta / 2);
  std::printf("  model.alpha = %.3e;\n", alpha);
  std::printf("  model.beta = %.3e;\n", beta);
  std::printf(
      "\nnote: the thread-backed substrate's alpha/beta measure THIS "
      "machine's memory system, not an interconnect; the Titan-era defaults "
      "in perf/cost_model.hpp remain the paper-comparable setting.\n");
  return 0;
}
