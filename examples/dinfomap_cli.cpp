// dinfomap_cli — command-line front end to the library.
//
//   dinfomap_cli generate <family> <out.txt> [seed]
//       family: lfr | ba | rmat | sbm | ring | er
//   dinfomap_cli cluster <edges.txt> <out.clu>
//                 [--algo seq|dist|louvain|dist-louvain|lpa|relaxmap|hier]
//                 [--ranks N] [--seed S] [--tree out.tree]
//   dinfomap_cli eval <edges.txt> <a.clu> <b.clu>
//   dinfomap_cli inspect <edges.txt> <a.clu>
//   dinfomap_cli partition-stats <edges.txt> <ranks>
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/dist_infomap.hpp"
#include "core/dist_louvain.hpp"
#include "core/hierarchy.hpp"
#include "core/labelflow.hpp"
#include "core/louvain.hpp"
#include "core/relaxmap.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/edgelist_io.hpp"
#include "graph/gen/generators.hpp"
#include "graph/stats.hpp"
#include "io/clustering_io.hpp"
#include "obs/profile.hpp"
#include "io/tree_io.hpp"
#include "partition/metrics.hpp"
#include "quality/community_stats.hpp"
#include "quality/metrics.hpp"
#include "util/stats.hpp"

namespace {

using namespace dinfomap;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dinfomap_cli generate <lfr|ba|rmat|sbm|ring|er> <out.txt> [seed]\n"
               "  dinfomap_cli cluster <edges.txt> <out.clu> [--algo seq|dist|louvain|lpa|relaxmap]\n"
               "                [--ranks N] [--threads T] [--seed S] [--tree out.tree]\n"
               "                [--trace out.trace.json] [--report out.report.json]  (dist only)\n"
               "                [--profile out.profile.json] [--profile-summary]  (dist only)\n"
               "                [--faults drop=P,dup=P,reorder=P,corrupt=P[,stall=R][,seed=S]]\n"
               "                [--watchdog-ms N]  (dist only; e.g. --faults drop=0.01,dup=0.01)\n"
               "                [--active-set]  (dist only: exact pruning of unchanged vertices)\n"
               "                [--async [--async-max-lag K]]  (dist only: priority-worklist engine)\n"
               "  dinfomap_cli eval <edges.txt> <a.clu> <b.clu>\n"
               "  dinfomap_cli partition-stats <edges.txt> <ranks>\n");
  return 2;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string family = argv[2];
  const std::string out = argv[3];
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;

  graph::gen::GeneratedGraph g;
  if (family == "lfr") {
    graph::gen::LfrLiteParams p;
    p.n = 5000;
    g = graph::gen::lfr_lite(p, seed);
  } else if (family == "ba") {
    g = graph::gen::barabasi_albert(5000, 3, seed);
  } else if (family == "rmat") {
    g = graph::gen::rmat(13, 8, 0.57, 0.19, 0.19, seed);
  } else if (family == "sbm") {
    g = graph::gen::sbm(5000, 25, 0.05, 0.001, seed);
  } else if (family == "ring") {
    g = graph::gen::ring_of_cliques(100, 8, seed);
  } else if (family == "er") {
    g = graph::gen::erdos_renyi(5000, 25000, seed);
  } else {
    return usage();
  }
  graph::write_edge_list(out, g.edges);
  std::printf("wrote %zu edges (%u vertices) to %s\n", g.edges.size(),
              g.num_vertices, out.c_str());
  if (g.ground_truth) {
    io::write_clustering(out + ".truth", *g.ground_truth);
    std::printf("wrote planted communities to %s.truth\n", out.c_str());
  }
  return 0;
}

// Parse "drop=0.01,dup=0.01,reorder=0.005,corrupt=0.01,stall=2,seed=7" into a
// FaultPlan; returns false on an unknown key or malformed pair.
bool parse_fault_spec(const std::string& spec, comm::FaultPlan* plan) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const auto item = spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                                  : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const auto eq = item.find('=');
    if (eq == std::string::npos) return false;
    const auto key = item.substr(0, eq);
    const auto value = item.substr(eq + 1);
    if (value.empty()) return false;
    if (key == "drop") plan->drop = std::strtod(value.c_str(), nullptr);
    else if (key == "dup") plan->duplicate = std::strtod(value.c_str(), nullptr);
    else if (key == "reorder") plan->reorder = std::strtod(value.c_str(), nullptr);
    else if (key == "corrupt") plan->corrupt = std::strtod(value.c_str(), nullptr);
    else if (key == "stall") plan->stall_rank = std::atoi(value.c_str());
    else if (key == "seed") plan->seed = std::strtoull(value.c_str(), nullptr, 10);
    else return false;
  }
  return true;
}

// One-page causal-profile table: critical path, per-rank wall decomposition,
// and the phases where collective wait concentrates (--profile-summary).
void print_profile_summary(const obs::ProfileDigest& d) {
  std::printf("\n-- causal profile (%s) --\n", d.schema.c_str());
  std::printf("wall %.2f ms, critical path %.2f ms (%.0f%% of wall), "
              "%llu messages",
              d.wall_us / 1000.0, d.critical_path_us / 1000.0,
              d.wall_us > 0 ? 100.0 * d.critical_path_us / d.wall_us : 0.0,
              static_cast<unsigned long long>(d.messages));
  if (d.unmatched_sends + d.unmatched_recvs > 0)
    std::printf(" (%llu unmatched)",
                static_cast<unsigned long long>(d.unmatched_sends +
                                                d.unmatched_recvs));
  std::printf("\n%-5s %10s %8s %8s %8s %7s\n", "rank", "wall ms", "wait%",
              "comm%", "comp%", "coll ms");
  for (const auto& rp : d.ranks) {
    const double w = rp.wall_us > 0 ? rp.wall_us : 1.0;
    std::printf("%-5d %10.2f %7.1f%% %7.1f%% %7.1f%% %7.2f\n", rp.rank,
                rp.wall_us / 1000.0, 100.0 * rp.wait_us / w,
                100.0 * rp.comm_us / w, 100.0 * rp.compute_us / w,
                rp.collective_wait_us / 1000.0);
  }
  if (!d.phases.empty()) {
    std::printf("top straggler phases (by collective wait):\n");
    std::printf("%-18s %6s %10s %10s %9s %6s\n", "phase", "colls", "wait ms",
                "skew ms", "straggler", "share");
    const std::size_t top = std::min<std::size_t>(5, d.phases.size());
    for (std::size_t i = 0; i < top; ++i) {
      const auto& ph = d.phases[i];
      double caused = 0;
      int culprit = -1;
      for (std::size_t rr = 0; rr < ph.caused_wait_us.size(); ++rr) {
        if (ph.caused_wait_us[rr] > caused) {
          caused = ph.caused_wait_us[rr];
          culprit = static_cast<int>(rr);
        }
      }
      std::printf("%-18s %6llu %10.2f %10.2f %9d %5.0f%%\n", ph.name.c_str(),
                  static_cast<unsigned long long>(ph.instances),
                  ph.wait_us / 1000.0, ph.max_skew_us / 1000.0, culprit,
                  ph.wait_us > 0 ? 100.0 * caused / ph.wait_us : 0.0);
    }
  }
}

int cmd_cluster(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string in = argv[2];
  const std::string out = argv[3];
  std::string algo = "dist";
  std::string tree_out;
  std::string trace_out;
  std::string report_out;
  std::string profile_out;
  bool profile_summary = false;
  int ranks = 4;
  int threads = 1;
  std::uint64_t seed = 42;
  std::string fault_spec;
  unsigned watchdog_ms = 0;
  bool active_set = false;
  bool use_async = false;
  int async_max_lag = 4;
  // Boolean switches consume one token, valued flags consume two.
  for (int i = 4; i < argc;) {
    const char* flag = argv[i];
    if (!std::strcmp(flag, "--active-set")) {
      active_set = true;
      ++i;
      continue;
    }
    if (!std::strcmp(flag, "--async")) {
      use_async = true;
      ++i;
      continue;
    }
    if (!std::strcmp(flag, "--profile-summary")) {
      profile_summary = true;
      ++i;
      continue;
    }
    if (i + 1 >= argc) return usage();  // every remaining flag takes a value
    const char* value = argv[i + 1];
    i += 2;
    if (!std::strcmp(flag, "--algo")) algo = value;
    else if (!std::strcmp(flag, "--ranks")) ranks = std::atoi(value);
    else if (!std::strcmp(flag, "--threads")) threads = std::atoi(value);
    else if (!std::strcmp(flag, "--seed")) seed = std::strtoull(value, nullptr, 10);
    else if (!std::strcmp(flag, "--tree")) tree_out = value;
    else if (!std::strcmp(flag, "--trace")) trace_out = value;
    else if (!std::strcmp(flag, "--report")) report_out = value;
    else if (!std::strcmp(flag, "--profile")) profile_out = value;
    else if (!std::strcmp(flag, "--faults")) fault_spec = value;
    else if (!std::strcmp(flag, "--watchdog-ms")) watchdog_ms = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    else if (!std::strcmp(flag, "--async-max-lag")) async_max_lag = std::atoi(value);
    else return usage();
  }

  const auto g = graph::build_csr(graph::read_edge_list(in));
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  graph::Partition assignment;
  if (algo == "seq") {
    core::InfomapConfig cfg;
    cfg.seed = seed;
    cfg.num_threads = threads;
    const auto r = core::sequential_infomap(g, cfg);
    assignment = r.assignment;
    std::printf("sequential Infomap: L = %.6f, %u modules\n", r.codelength,
                r.num_modules());
    if (!tree_out.empty()) {
      io::write_tree(tree_out, r.level_assignments);
      std::printf("hierarchy written to %s\n", tree_out.c_str());
    }
  } else if (algo == "dist") {
    core::DistInfomapConfig cfg;
    cfg.num_ranks = ranks;
    cfg.threads_per_rank = threads;
    cfg.seed = seed;
    cfg.active_set = active_set;
    cfg.async = use_async;
    cfg.async_max_lag = async_max_lag;
    if (!fault_spec.empty()) {
      cfg.faults.seed = seed;  // default the fault stream to the run seed
      if (!parse_fault_spec(fault_spec, &cfg.faults)) return usage();
      // A fault plan without a watchdog can only hang on unrecoverable
      // schedules; arm a generous default.
      cfg.comm_watchdog_ms = watchdog_ms > 0 ? watchdog_ms : 10'000;
    } else if (watchdog_ms > 0) {
      cfg.comm_watchdog_ms = watchdog_ms;
    }
    if (!trace_out.empty() || !report_out.empty() || !profile_out.empty() ||
        profile_summary) {
      cfg.obs.enabled = true;  // flight recorder on; results are unchanged
      cfg.obs.trace_path = trace_out;
      cfg.obs.report_path = report_out;
      cfg.obs.profile_path = profile_out;
    }
    const auto r = core::distributed_infomap(g, cfg);
    assignment = r.assignment;
    std::printf("distributed Infomap (p=%d): L = %.6f, %u modules\n", ranks,
                r.codelength, r.num_modules());
    if (cfg.faults.any()) {
      comm::FaultCounters injected;
      for (const auto& f : r.report.faults_injected) injected += f;
      comm::CommCounters recovered;
      for (const auto& c : r.comm_counters) recovered += c;
      std::printf(
          "faults injected: %llu drops, %llu dups, %llu reorders, %llu "
          "corruptions; recovery: %llu retransmits, %llu dup frames dropped, "
          "%llu checksum failures\n",
          static_cast<unsigned long long>(injected.drops),
          static_cast<unsigned long long>(injected.duplicates),
          static_cast<unsigned long long>(injected.reorders),
          static_cast<unsigned long long>(injected.corruptions),
          static_cast<unsigned long long>(recovered.retransmits),
          static_cast<unsigned long long>(recovered.dup_frames_dropped),
          static_cast<unsigned long long>(recovered.checksum_failures));
    }
    if (profile_summary && r.report.has_profile)
      print_profile_summary(r.report.profile);
    if (!trace_out.empty())
      std::printf("trace written to %s (load at ui.perfetto.dev)\n",
                  trace_out.c_str());
    if (!report_out.empty())
      std::printf("run report written to %s\n", report_out.c_str());
    if (!profile_out.empty())
      std::printf("profile digest written to %s\n", profile_out.c_str());
  } else if (algo == "louvain") {
    core::LouvainConfig cfg;
    cfg.seed = seed;
    cfg.num_threads = threads;
    const auto r = core::louvain(g, cfg);
    assignment = r.assignment;
    std::printf("Louvain: Q = %.6f\n", r.modularity);
  } else if (algo == "lpa") {
    core::LabelFlowConfig cfg;
    cfg.seed = seed;
    const auto r = core::distributed_labelflow(g, ranks, cfg);
    assignment = r.assignment;
    std::printf("label-flow (p=%d): L = %.6f\n", ranks, r.codelength);
  } else if (algo == "relaxmap") {
    core::RelaxMapConfig cfg;
    cfg.num_threads = threads > 1 ? threads : ranks;
    cfg.seed = seed;
    const auto r = core::relaxmap(g, cfg);
    assignment = r.assignment;
    std::printf("RelaxMap (%d threads): L = %.6f\n", ranks, r.codelength);
  } else if (algo == "dist-louvain") {
    core::DistLouvainConfig cfg;
    cfg.num_ranks = ranks;
    cfg.seed = seed;
    const auto r = core::distributed_louvain(g, cfg);
    assignment = r.assignment;
    std::printf("distributed Louvain (p=%d): Q = %.6f\n", ranks, r.modularity);
  } else if (algo == "hier") {
    core::HierInfomapConfig cfg;
    cfg.two_level.seed = seed;
    const auto r = core::hierarchical_infomap(g, cfg);
    assignment = r.leaf_assignment;
    std::printf("hierarchical Infomap: L = %.6f (two-level %.6f, depth %d)\n",
                r.codelength, r.two_level_codelength, r.hierarchy.depth());
    if (!tree_out.empty()) {
      const auto paths = r.hierarchy.vertex_paths(g.num_vertices());
      std::ofstream tree_file(tree_out);
      tree_file << "# path \"vertex\"\n";
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
        tree_file << paths[v] << " \"" << v << "\"\n";
      std::printf("hierarchy written to %s\n", tree_out.c_str());
    }
  } else {
    return usage();
  }
  io::write_clustering(out, assignment);
  std::printf("clustering written to %s\n", out.c_str());
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto g = graph::build_csr(graph::read_edge_list(argv[2]));
  const auto a = io::read_clustering(argv[3], g.num_vertices());
  const auto b = io::read_clustering(argv[4], g.num_vertices());
  std::printf("NMI        = %.4f\n", quality::nmi(a, b));
  std::printf("F-measure  = %.4f\n", quality::f_measure(a, b));
  std::printf("Jaccard    = %.4f\n", quality::jaccard_index(a, b));
  std::printf("modularity = %.4f (a), %.4f (b)\n", quality::modularity(g, a),
              quality::modularity(g, b));
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto g = graph::build_csr(graph::read_edge_list(argv[2]));
  const auto clustering = io::read_clustering(argv[3], g.num_vertices());
  const auto s = quality::summarize_partition(g, clustering);
  std::printf("communities: %u (sizes %u..%u)\n", s.num_communities,
              s.smallest, s.largest);
  std::printf("coverage:    %.3f of edge weight is intra-community\n",
              s.coverage);
  std::printf("conductance: mean %.3f, worst %.3f\n", s.mean_conductance,
              s.max_conductance);
  std::printf("modularity:  %.4f\n", quality::modularity(g, clustering));
  // Largest five communities in detail.
  std::vector<std::size_t> order(s.communities.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return s.communities[a].size > s.communities[b].size;
  });
  std::printf("\n%-10s %-8s %-12s %-10s %-12s\n", "community", "size",
              "internal w", "cut w", "conductance");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i) {
    const auto& cs = s.communities[order[i]];
    std::printf("%-10zu %-8u %-12.1f %-10.1f %-12.3f\n", order[i], cs.size,
                cs.internal_weight, cs.cut_weight, cs.conductance);
  }
  return 0;
}

int cmd_partition_stats(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto g = graph::build_csr(graph::read_edge_list(argv[2]));
  const int p = std::atoi(argv[3]);
  std::printf("%-14s %12s %12s %9s %12s\n", "strategy", "min arcs", "max arcs",
              "imb", "max ghosts");
  const struct {
    const char* name;
    partition::ArcPartition part;
  } rows[] = {
      {"1D", partition::make_oned(g, p)},
      {"1D-balanced", partition::make_oned_balanced(g, p)},
      {"hash", partition::make_hash(g, p)},
      {"delegate", partition::make_delegate(g, p)},
  };
  for (const auto& row : rows) {
    const auto arcs = util::summarize_counts(partition::arcs_per_rank(row.part));
    const auto ghosts =
        util::summarize_counts(partition::ghosts_per_rank(row.part));
    std::printf("%-14s %12.0f %12.0f %8.2fx %12.0f\n", row.name, arcs.min,
                arcs.max, arcs.imbalance, ghosts.max);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "cluster") return cmd_cluster(argc, argv);
    if (cmd == "eval") return cmd_eval(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
    if (cmd == "partition-stats") return cmd_partition_stats(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
