// dinfomap_cli — command-line front end to the library.
//
//   dinfomap_cli generate <family> <out.txt> [seed]
//       family: lfr | ba | rmat | sbm | ring | er
//   dinfomap_cli cluster <edges.txt> <out.clu>
//                 [--algo seq|dist|louvain|dist-louvain|lpa|relaxmap|hier]
//                 [--ranks N] [--seed S] [--tree out.tree]
//   dinfomap_cli eval <edges.txt> <a.clu> <b.clu>
//   dinfomap_cli inspect <edges.txt> <a.clu>
//   dinfomap_cli partition-stats <edges.txt> <ranks>
#include <limits.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/process_group.hpp"
#include "comm/socket_transport.hpp"
#include "core/dist_infomap.hpp"
#include "core/dist_louvain.hpp"
#include "core/hierarchy.hpp"
#include "core/labelflow.hpp"
#include "core/louvain.hpp"
#include "core/relaxmap.hpp"
#include "core/seq_infomap.hpp"
#include "graph/blockgraph/blockgraph.hpp"
#include "graph/blockgraph/writer.hpp"
#include "graph/builder.hpp"
#include "graph/edgelist_io.hpp"
#include "graph/gen/generators.hpp"
#include "graph/stats.hpp"
#include "io/clustering_io.hpp"
#include "obs/profile.hpp"
#include "obs/trace_merge.hpp"
#include "io/tree_io.hpp"
#include "partition/metrics.hpp"
#include "quality/community_stats.hpp"
#include "quality/metrics.hpp"
#include "util/stats.hpp"

namespace {

using namespace dinfomap;

/// A rejected command-line token or flag combination; main() reports it and
/// exits 2 (distinct from runtime failures, which exit 1).
class CliParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Whole-token checked integer parse for `what` (a flag name, used in the
/// error): rejects empty tokens, trailing garbage, and out-of-range values.
long long parse_ll(const std::string& what, const std::string& text,
                   long long min_v, long long max_v) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0')
    throw CliParseError(what + ": expected an integer, got '" + text + "'");
  if (errno == ERANGE || v < min_v || v > max_v)
    throw CliParseError(what + ": value " + text + " out of range [" +
                        std::to_string(min_v) + ", " + std::to_string(max_v) +
                        "]");
  return v;
}

int parse_int(const std::string& what, const std::string& text, int min_v,
              int max_v) {
  return static_cast<int>(parse_ll(what, text, min_v, max_v));
}

std::uint64_t parse_u64(const std::string& what, const std::string& text) {
  // strtoull silently wraps an explicit minus sign; reject it up front.
  if (!text.empty() && text[0] == '-')
    throw CliParseError(what + ": expected a non-negative integer, got '" +
                        text + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0')
    throw CliParseError(what + ": expected a non-negative integer, got '" +
                        text + "'");
  if (errno == ERANGE)
    throw CliParseError(what + ": value " + text + " is too large");
  return v;
}

/// Checked parse of a fault-plan probability; the [0, 1] range itself is
/// enforced later by comm::validate_fault_plan, which sees the whole plan.
double parse_number(const std::string& what, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end == text.c_str() || *end != '\0')
    throw CliParseError(what + ": expected a number, got '" + text + "'");
  return v;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dinfomap_cli generate <lfr|ba|rmat|sbm|ring|er> <out.txt> [seed]\n"
               "  dinfomap_cli cluster <edges.txt> <out.clu> [--algo seq|dist|louvain|lpa|relaxmap]\n"
               "                [--ranks N] [--threads T] [--seed S] [--tree out.tree]\n"
               "                [--transport inproc|socket]  (dist only; socket = one worker\n"
               "                 process per rank over Unix-domain sockets)\n"
               "                [--trace out.trace.json] [--report out.report.json]  (dist only)\n"
               "                [--profile out.profile.json] [--profile-summary]  (dist, inproc only)\n"
               "                [--faults drop=P,dup=P,reorder=P,corrupt=P[,stall=R][,exit=R][,seed=S]]\n"
               "                [--watchdog-ms N]  (dist only; e.g. --faults drop=0.01,dup=0.01)\n"
               "                [--active-set]  (dist only: exact pruning of unchanged vertices)\n"
               "                [--async [--async-max-lag K]]  (dist only: priority-worklist engine)\n"
               "                [--graph-backend resident|blocks] [--block-cache-mb N]\n"
               "                 (dist/dist-louvain; blocks streams an mmap-ed .blockgraph file\n"
               "                  through a bounded decode cache — see tools/graphpack)\n"
               "  dinfomap_cli eval <edges.txt> <a.clu> <b.clu>\n"
               "  dinfomap_cli partition-stats <edges.txt> <ranks>\n");
  return 2;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string family = argv[2];
  const std::string out = argv[3];
  const std::uint64_t seed = argc > 4 ? parse_u64("seed", argv[4]) : 42;

  graph::gen::GeneratedGraph g;
  if (family == "lfr") {
    graph::gen::LfrLiteParams p;
    p.n = 5000;
    g = graph::gen::lfr_lite(p, seed);
  } else if (family == "ba") {
    g = graph::gen::barabasi_albert(5000, 3, seed);
  } else if (family == "rmat") {
    g = graph::gen::rmat(13, 8, 0.57, 0.19, 0.19, seed);
  } else if (family == "sbm") {
    g = graph::gen::sbm(5000, 25, 0.05, 0.001, seed);
  } else if (family == "ring") {
    g = graph::gen::ring_of_cliques(100, 8, seed);
  } else if (family == "er") {
    g = graph::gen::erdos_renyi(5000, 25000, seed);
  } else {
    return usage();
  }
  graph::write_edge_list(out, g.edges);
  std::printf("wrote %zu edges (%u vertices) to %s\n", g.edges.size(),
              g.num_vertices, out.c_str());
  if (g.ground_truth) {
    io::write_clustering(out + ".truth", *g.ground_truth);
    std::printf("wrote planted communities to %s.truth\n", out.c_str());
  }
  return 0;
}

// Parse "drop=0.01,dup=0.01,reorder=0.005,corrupt=0.01,stall=2,seed=7" into a
// FaultPlan. `exit=R` is stall=R plus stall_exits: the stalled worker dies
// instead of freezing (socket transport only — it models a crash). Throws
// CliParseError on an unknown key or malformed value; the assembled plan is
// range-checked afterwards by comm::validate_fault_plan.
void parse_fault_spec(const std::string& spec, comm::FaultPlan* plan) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const auto item = spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                                  : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      throw CliParseError("--faults: expected key=value, got '" + item + "'");
    const auto key = item.substr(0, eq);
    const auto value = item.substr(eq + 1);
    const std::string what = "--faults " + key;
    if (key == "drop") plan->drop = parse_number(what, value);
    else if (key == "dup") plan->duplicate = parse_number(what, value);
    else if (key == "reorder") plan->reorder = parse_number(what, value);
    else if (key == "corrupt") plan->corrupt = parse_number(what, value);
    else if (key == "stall") plan->stall_rank = parse_int(what, value, 0, INT_MAX);
    else if (key == "exit") {
      plan->stall_rank = parse_int(what, value, 0, INT_MAX);
      plan->stall_exits = true;
    } else if (key == "seed") plan->seed = parse_u64(what, value);
    else
      throw CliParseError("--faults: unknown key '" + key +
                          "' (want drop|dup|reorder|corrupt|stall|exit|seed)");
  }
}

// One-page causal-profile table: critical path, per-rank wall decomposition,
// and the phases where collective wait concentrates (--profile-summary).
void print_profile_summary(const obs::ProfileDigest& d) {
  std::printf("\n-- causal profile (%s) --\n", d.schema.c_str());
  std::printf("wall %.2f ms, critical path %.2f ms (%.0f%% of wall), "
              "%llu messages",
              d.wall_us / 1000.0, d.critical_path_us / 1000.0,
              d.wall_us > 0 ? 100.0 * d.critical_path_us / d.wall_us : 0.0,
              static_cast<unsigned long long>(d.messages));
  if (d.unmatched_sends + d.unmatched_recvs > 0)
    std::printf(" (%llu unmatched)",
                static_cast<unsigned long long>(d.unmatched_sends +
                                                d.unmatched_recvs));
  std::printf("\n%-5s %10s %8s %8s %8s %7s\n", "rank", "wall ms", "wait%",
              "comm%", "comp%", "coll ms");
  for (const auto& rp : d.ranks) {
    const double w = rp.wall_us > 0 ? rp.wall_us : 1.0;
    std::printf("%-5d %10.2f %7.1f%% %7.1f%% %7.1f%% %7.2f\n", rp.rank,
                rp.wall_us / 1000.0, 100.0 * rp.wait_us / w,
                100.0 * rp.comm_us / w, 100.0 * rp.compute_us / w,
                rp.collective_wait_us / 1000.0);
  }
  if (!d.phases.empty()) {
    std::printf("top straggler phases (by collective wait):\n");
    std::printf("%-18s %6s %10s %10s %9s %6s\n", "phase", "colls", "wait ms",
                "skew ms", "straggler", "share");
    const std::size_t top = std::min<std::size_t>(5, d.phases.size());
    for (std::size_t i = 0; i < top; ++i) {
      const auto& ph = d.phases[i];
      double caused = 0;
      int culprit = -1;
      for (std::size_t rr = 0; rr < ph.caused_wait_us.size(); ++rr) {
        if (ph.caused_wait_us[rr] > caused) {
          caused = ph.caused_wait_us[rr];
          culprit = static_cast<int>(rr);
        }
      }
      std::printf("%-18s %6llu %10.2f %10.2f %9d %5.0f%%\n", ph.name.c_str(),
                  static_cast<unsigned long long>(ph.instances),
                  ph.wait_us / 1000.0, ph.max_skew_us / 1000.0, culprit,
                  ph.wait_us > 0 ? 100.0 * caused / ph.wait_us : 0.0);
    }
  }
}

/// Result summary shared by the dist paths (in-process driver and socket
/// worker rank 0 — the cross-backend bit-identity check diffs these lines).
void print_dist_summary(const core::DistInfomapResult& r, int ranks,
                        bool faults_active) {
  std::printf("distributed Infomap (p=%d): L = %.6f, %u modules\n", ranks,
              r.codelength, r.num_modules());
  if (faults_active) {
    comm::FaultCounters injected;
    for (const auto& f : r.report.faults_injected) injected += f;
    comm::CommCounters recovered;
    for (const auto& c : r.comm_counters) recovered += c;
    std::printf(
        "faults injected: %llu drops, %llu dups, %llu reorders, %llu "
        "corruptions; recovery: %llu retransmits, %llu dup frames dropped, "
        "%llu checksum failures\n",
        static_cast<unsigned long long>(injected.drops),
        static_cast<unsigned long long>(injected.duplicates),
        static_cast<unsigned long long>(injected.reorders),
        static_cast<unsigned long long>(injected.corruptions),
        static_cast<unsigned long long>(recovered.retransmits),
        static_cast<unsigned long long>(recovered.dup_frames_dropped),
        static_cast<unsigned long long>(recovered.checksum_failures));
  }
}

/// Launcher side of --transport socket: fork one worker process per rank
/// (each a re-exec of this binary; ProcessGroup appends --rank-role), wait
/// for the job, print the crash-vs-hang diagnosis on failure, and merge the
/// per-worker traces onto the shared epoch.
int run_socket_launcher(int argc, char** argv, int ranks,
                        const std::string& trace_out, unsigned hang_grace_ms) {
  std::string dir = "/tmp/dinfomap_mesh_XXXXXX";
  if (mkdtemp(dir.data()) == nullptr)
    throw std::runtime_error("cannot create transport rendezvous directory");

  comm::ProcessGroup::Spec spec;
  spec.nranks = ranks;
  spec.dir = dir;
  if (hang_grace_ms > 0) spec.hang_grace_ms = hang_grace_ms;
  char exe[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  spec.exe = n > 0 ? std::string(exe, static_cast<std::size_t>(n))
                   : std::string(argv[0]);
  for (int i = 1; i < argc; ++i) spec.worker_args.push_back(argv[i]);
  spec.worker_args.push_back("--transport-dir");
  spec.worker_args.push_back(dir);
  if (!trace_out.empty()) {
    // All workers pin their trace epoch to this steady-clock reading, so the
    // merged per-process traces share one timeline.
    const auto epoch_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    spec.worker_args.push_back("--trace-epoch");
    spec.worker_args.push_back(std::to_string(epoch_ns));
  }
  const auto result = comm::ProcessGroup::launch(spec);

  if (!trace_out.empty()) {
    std::vector<std::string> inputs;
    for (int r = 0; r < ranks; ++r)
      inputs.push_back(dir + "/trace.rank" + std::to_string(r) + ".json");
    if (obs::merge_trace_files(inputs, trace_out))
      std::printf("merged %d worker traces into %s (load at ui.perfetto.dev)\n",
                  ranks, trace_out.c_str());
    for (const auto& path : inputs) ::unlink(path.c_str());
  }
  for (int r = 0; r < ranks; ++r) {
    ::unlink(comm::ProcessGroup::fault_file(dir, r).c_str());
    ::unlink(comm::SocketTransport::socket_path(dir, r).c_str());
  }
  ::rmdir(dir.c_str());

  if (!result.ok) {
    std::fprintf(stderr, "socket transport job failed: %s\n",
                 result.diagnosis.c_str());
    return 1;
  }
  std::printf("socket transport: %d worker processes exited cleanly\n", ranks);
  return 0;
}

/// Worker side of --transport socket (--rank-role R): open this rank's
/// endpoint, run the SPMD entry, and on a comm fault file the typed verdict
/// the launcher's diagnosis reads (stalled vs peer_exited vs transport).
int run_socket_worker(const graph::GraphView& g, core::DistInfomapConfig cfg,
                      int rank, const std::string& dir,
                      std::uint64_t trace_epoch_ns, bool want_trace,
                      const std::string& out) {
  if (want_trace) {
    cfg.obs.trace_path = dir + "/trace.rank" + std::to_string(rank) + ".json";
    cfg.obs.trace_epoch_steady_ns = trace_epoch_ns;
  }
  comm::TransportTuning tuning;
  tuning.faults = cfg.faults;
  tuning.watchdog_timeout_ms = cfg.comm_watchdog_ms;
  comm::SocketTransportOptions sopts;
  sopts.dir = dir;
  std::optional<comm::SocketTransport> transport;
  try {
    transport.emplace(rank, cfg.num_ranks, sopts, tuning);
    const auto r = core::distributed_infomap_rank(g, cfg, *transport);
    if (rank == 0) {
      print_dist_summary(r, cfg.num_ranks, cfg.faults.any());
      if (!cfg.obs.report_path.empty())
        std::printf("run report written to %s\n", cfg.obs.report_path.c_str());
      io::write_clustering(out, r.assignment);
      std::printf("clustering written to %s\n", out.c_str());
    }
    return 0;
  } catch (const comm::CommFault& f) {
    if (transport) transport->abandon_linger();
    const char* kind =
        f.kind() == comm::CommFault::Kind::kStalled      ? "stalled"
        : f.kind() == comm::CommFault::Kind::kPeerExited ? "peer_exited"
                                                         : "transport";
    std::ofstream verdict(comm::ProcessGroup::fault_file(dir, rank));
    verdict << kind << " " << f.rank() << "\n";
    std::fprintf(stderr, "rank %d: comm fault: %s\n", rank, f.what());
    return 1;
  } catch (const std::exception& e) {
    if (transport) transport->abandon_linger();
    std::ofstream verdict(comm::ProcessGroup::fault_file(dir, rank));
    verdict << "transport -1\n";
    std::fprintf(stderr, "rank %d: %s\n", rank, e.what());
    return 1;
  }
}

int cmd_cluster(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string in = argv[2];
  const std::string out = argv[3];
  std::string algo = "dist";
  std::string tree_out;
  std::string trace_out;
  std::string report_out;
  std::string profile_out;
  bool profile_summary = false;
  int ranks = 4;
  int threads = 1;
  std::uint64_t seed = 42;
  std::string fault_spec;
  unsigned watchdog_ms = 0;
  bool active_set = false;
  bool use_async = false;
  int async_max_lag = 4;
  std::string transport = "inproc";
  unsigned hang_grace_ms = 0;  ///< 0 = ProcessGroup's default
  std::string graph_backend = "resident";
  int block_cache_mb = 64;
  // Internal worker-role flags, appended by the socket launcher; never
  // passed by hand.
  std::string transport_dir;
  int rank_role = -1;
  std::uint64_t trace_epoch_ns = 0;
  // Boolean switches consume one token, valued flags consume two.
  for (int i = 4; i < argc;) {
    const char* flag = argv[i];
    if (!std::strcmp(flag, "--active-set")) {
      active_set = true;
      ++i;
      continue;
    }
    if (!std::strcmp(flag, "--async")) {
      use_async = true;
      ++i;
      continue;
    }
    if (!std::strcmp(flag, "--profile-summary")) {
      profile_summary = true;
      ++i;
      continue;
    }
    if (i + 1 >= argc) return usage();  // every remaining flag takes a value
    const char* value = argv[i + 1];
    i += 2;
    if (!std::strcmp(flag, "--algo")) algo = value;
    else if (!std::strcmp(flag, "--ranks")) ranks = parse_int(flag, value, 1, 1 << 16);
    else if (!std::strcmp(flag, "--threads")) threads = parse_int(flag, value, 1, 1 << 16);
    else if (!std::strcmp(flag, "--seed")) seed = parse_u64(flag, value);
    else if (!std::strcmp(flag, "--tree")) tree_out = value;
    else if (!std::strcmp(flag, "--trace")) trace_out = value;
    else if (!std::strcmp(flag, "--report")) report_out = value;
    else if (!std::strcmp(flag, "--profile")) profile_out = value;
    else if (!std::strcmp(flag, "--faults")) fault_spec = value;
    else if (!std::strcmp(flag, "--watchdog-ms")) watchdog_ms = static_cast<unsigned>(parse_ll(flag, value, 0, 86'400'000));
    else if (!std::strcmp(flag, "--async-max-lag")) async_max_lag = parse_int(flag, value, 0, 1 << 16);
    else if (!std::strcmp(flag, "--transport")) transport = value;
    else if (!std::strcmp(flag, "--graph-backend")) graph_backend = value;
    else if (!std::strcmp(flag, "--block-cache-mb")) block_cache_mb = parse_int(flag, value, 1, 1 << 20);
    else if (!std::strcmp(flag, "--hang-grace-ms")) hang_grace_ms = static_cast<unsigned>(parse_ll(flag, value, 1, 86'400'000));
    else if (!std::strcmp(flag, "--transport-dir")) transport_dir = value;
    else if (!std::strcmp(flag, "--rank-role")) rank_role = parse_int(flag, value, 0, 1 << 16);
    else if (!std::strcmp(flag, "--trace-epoch")) trace_epoch_ns = parse_u64(flag, value);
    else return usage();
  }

  if (transport != "inproc" && transport != "socket")
    throw CliParseError("--transport: expected 'inproc' or 'socket', got '" +
                        transport + "'");
  if (transport == "socket") {
    if (algo != "dist")
      throw CliParseError("--transport socket requires --algo dist");
    if (!profile_out.empty() || profile_summary)
      throw CliParseError(
          "--profile/--profile-summary need --transport inproc (the "
          "cross-rank digest requires one trace holding every rank)");
  }
  if (rank_role >= 0 &&
      (transport != "socket" || transport_dir.empty() || rank_role >= ranks))
    throw CliParseError(
        "--rank-role is internal (the socket launcher appends it, in [0, "
        "ranks), together with --transport-dir)");

  if (graph_backend != "resident" && graph_backend != "blocks")
    throw CliParseError(
        "--graph-backend: expected 'resident' or 'blocks', got '" +
        graph_backend + "'");
  const bool blocks_mode = graph_backend == "blocks";
  const bool input_is_blockgraph =
      in.size() > 11 &&
      in.compare(in.size() - 11, 11, ".blockgraph") == 0;
  if (blocks_mode && algo != "dist" && algo != "dist-louvain")
    throw CliParseError(
        "--graph-backend blocks requires --algo dist or dist-louvain");
  if (blocks_mode && transport == "socket" && !input_is_blockgraph)
    throw CliParseError(
        "--graph-backend blocks with --transport socket needs a pre-packed "
        ".blockgraph input (run tools/graphpack first; every worker process "
        "maps the same file)");
  if (input_is_blockgraph && !blocks_mode)
    throw CliParseError(
        "a .blockgraph input requires --graph-backend blocks");

  // Fault plans are validated at configuration time — a typo'd rate or rank
  // is rejected here with the offending field named, not discovered as a
  // plan that silently never fires.
  comm::FaultPlan faults;
  unsigned effective_watchdog_ms = watchdog_ms;
  if (!fault_spec.empty()) {
    faults.seed = seed;  // default the fault stream to the run seed
    parse_fault_spec(fault_spec, &faults);
    comm::validate_fault_plan(faults, ranks);
    if (faults.stall_exits && transport != "socket")
      throw CliParseError(
          "--faults exit=<rank> kills a real worker process; it needs "
          "--transport socket");
    // A fault plan without a watchdog can only hang on unrecoverable
    // schedules; arm a generous default.
    if (effective_watchdog_ms == 0) effective_watchdog_ms = 10'000;
  }

  // Socket launcher: fork the workers and get out of the way — the graph is
  // loaded by each worker, and worker rank 0 writes every output file.
  if (transport == "socket" && rank_role < 0)
    return run_socket_launcher(argc, argv, ranks, trace_out, hang_grace_ms);

  // Exactly one backend is populated; `gv` is the type-erased handle the
  // dist engines run on. Non-dist algorithms stay resident-only and bind
  // `*resident` directly (blocks_mode was rejected for them above).
  std::optional<graph::Csr> resident;
  std::optional<graph::blockgraph::BlockGraph> blocks;
  if (blocks_mode) {
    graph::blockgraph::BlockGraph::Options bopts;
    bopts.cache_bytes = static_cast<std::size_t>(block_cache_mb) << 20;
    std::string block_path = in;
    std::string packed_tmp;
    if (!input_is_blockgraph) {
      // Inproc convenience: auto-pack a temporary .blockgraph next to the
      // output. The file is unlinked right after open — the mmap keeps the
      // bytes alive for the run's lifetime.
      packed_tmp = out + ".blockgraph.tmp";
      (void)graph::blockgraph::write_block_file(
          packed_tmp, graph::build_csr(graph::read_edge_list(in)), {});
      block_path = packed_tmp;
    }
    blocks.emplace(graph::blockgraph::BlockGraph::open(block_path, bopts));
    if (!packed_tmp.empty()) ::unlink(packed_tmp.c_str());
  } else {
    resident.emplace(graph::build_csr(graph::read_edge_list(in)));
  }
  const graph::GraphView gv =
      blocks_mode ? graph::GraphView(*blocks) : graph::GraphView(*resident);
  if (rank_role <= 0)
    std::printf("graph: %u vertices, %llu edges\n", gv.num_vertices(),
                static_cast<unsigned long long>(gv.num_edges()));

  graph::Partition assignment;
  if (algo == "seq") {
    const graph::Csr& g = *resident;
    core::InfomapConfig cfg;
    cfg.seed = seed;
    cfg.num_threads = threads;
    const auto r = core::sequential_infomap(g, cfg);
    assignment = r.assignment;
    std::printf("sequential Infomap: L = %.6f, %u modules\n", r.codelength,
                r.num_modules());
    if (!tree_out.empty()) {
      io::write_tree(tree_out, r.level_assignments);
      std::printf("hierarchy written to %s\n", tree_out.c_str());
    }
  } else if (algo == "dist") {
    core::DistInfomapConfig cfg;
    cfg.num_ranks = ranks;
    cfg.threads_per_rank = threads;
    cfg.seed = seed;
    cfg.active_set = active_set;
    cfg.async = use_async;
    cfg.async_max_lag = async_max_lag;
    cfg.faults = faults;
    cfg.comm_watchdog_ms = effective_watchdog_ms;
    if (!trace_out.empty() || !report_out.empty() || !profile_out.empty() ||
        profile_summary) {
      cfg.obs.enabled = true;  // flight recorder on; results are unchanged
      cfg.obs.trace_path = trace_out;
      cfg.obs.report_path = report_out;
      cfg.obs.profile_path = profile_out;
    }
    if (rank_role >= 0) {
      // Socket-transport worker: the per-worker trace path and epoch are
      // substituted inside, and only rank 0 writes the shared outputs.
      cfg.obs.trace_path.clear();
      return run_socket_worker(gv, cfg, rank_role, transport_dir,
                               trace_epoch_ns, !trace_out.empty(), out);
    }
    const auto r = core::distributed_infomap(gv, cfg);
    assignment = r.assignment;
    print_dist_summary(r, ranks, cfg.faults.any());
    if (profile_summary && r.report.has_profile)
      print_profile_summary(r.report.profile);
    if (!trace_out.empty())
      std::printf("trace written to %s (load at ui.perfetto.dev)\n",
                  trace_out.c_str());
    if (!report_out.empty())
      std::printf("run report written to %s\n", report_out.c_str());
    if (!profile_out.empty())
      std::printf("profile digest written to %s\n", profile_out.c_str());
  } else if (algo == "louvain") {
    const graph::Csr& g = *resident;
    core::LouvainConfig cfg;
    cfg.seed = seed;
    cfg.num_threads = threads;
    const auto r = core::louvain(g, cfg);
    assignment = r.assignment;
    std::printf("Louvain: Q = %.6f\n", r.modularity);
  } else if (algo == "lpa") {
    const graph::Csr& g = *resident;
    core::LabelFlowConfig cfg;
    cfg.seed = seed;
    const auto r = core::distributed_labelflow(g, ranks, cfg);
    assignment = r.assignment;
    std::printf("label-flow (p=%d): L = %.6f\n", ranks, r.codelength);
  } else if (algo == "relaxmap") {
    const graph::Csr& g = *resident;
    core::RelaxMapConfig cfg;
    cfg.num_threads = threads > 1 ? threads : ranks;
    cfg.seed = seed;
    const auto r = core::relaxmap(g, cfg);
    assignment = r.assignment;
    std::printf("RelaxMap (%d threads): L = %.6f\n", ranks, r.codelength);
  } else if (algo == "dist-louvain") {
    core::DistLouvainConfig cfg;
    cfg.num_ranks = ranks;
    cfg.seed = seed;
    const auto r = core::distributed_louvain(gv, cfg);
    assignment = r.assignment;
    std::printf("distributed Louvain (p=%d): Q = %.6f\n", ranks, r.modularity);
  } else if (algo == "hier") {
    const graph::Csr& g = *resident;
    core::HierInfomapConfig cfg;
    cfg.two_level.seed = seed;
    const auto r = core::hierarchical_infomap(g, cfg);
    assignment = r.leaf_assignment;
    std::printf("hierarchical Infomap: L = %.6f (two-level %.6f, depth %d)\n",
                r.codelength, r.two_level_codelength, r.hierarchy.depth());
    if (!tree_out.empty()) {
      const auto paths = r.hierarchy.vertex_paths(g.num_vertices());
      std::ofstream tree_file(tree_out);
      tree_file << "# path \"vertex\"\n";
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
        tree_file << paths[v] << " \"" << v << "\"\n";
      std::printf("hierarchy written to %s\n", tree_out.c_str());
    }
  } else {
    return usage();
  }
  io::write_clustering(out, assignment);
  std::printf("clustering written to %s\n", out.c_str());
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto g = graph::build_csr(graph::read_edge_list(argv[2]));
  const auto a = io::read_clustering(argv[3], g.num_vertices());
  const auto b = io::read_clustering(argv[4], g.num_vertices());
  std::printf("NMI        = %.4f\n", quality::nmi(a, b));
  std::printf("F-measure  = %.4f\n", quality::f_measure(a, b));
  std::printf("Jaccard    = %.4f\n", quality::jaccard_index(a, b));
  std::printf("modularity = %.4f (a), %.4f (b)\n", quality::modularity(g, a),
              quality::modularity(g, b));
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto g = graph::build_csr(graph::read_edge_list(argv[2]));
  const auto clustering = io::read_clustering(argv[3], g.num_vertices());
  const auto s = quality::summarize_partition(g, clustering);
  std::printf("communities: %u (sizes %u..%u)\n", s.num_communities,
              s.smallest, s.largest);
  std::printf("coverage:    %.3f of edge weight is intra-community\n",
              s.coverage);
  std::printf("conductance: mean %.3f, worst %.3f\n", s.mean_conductance,
              s.max_conductance);
  std::printf("modularity:  %.4f\n", quality::modularity(g, clustering));
  // Largest five communities in detail.
  std::vector<std::size_t> order(s.communities.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return s.communities[a].size > s.communities[b].size;
  });
  std::printf("\n%-10s %-8s %-12s %-10s %-12s\n", "community", "size",
              "internal w", "cut w", "conductance");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i) {
    const auto& cs = s.communities[order[i]];
    std::printf("%-10zu %-8u %-12.1f %-10.1f %-12.3f\n", order[i], cs.size,
                cs.internal_weight, cs.cut_weight, cs.conductance);
  }
  return 0;
}

int cmd_partition_stats(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto g = graph::build_csr(graph::read_edge_list(argv[2]));
  const int p = parse_int("ranks", argv[3], 1, 1 << 16);
  std::printf("%-14s %12s %12s %9s %12s\n", "strategy", "min arcs", "max arcs",
              "imb", "max ghosts");
  const struct {
    const char* name;
    partition::ArcPartition part;
  } rows[] = {
      {"1D", partition::make_oned(g, p)},
      {"1D-balanced", partition::make_oned_balanced(g, p)},
      {"hash", partition::make_hash(g, p)},
      {"delegate", partition::make_delegate(g, p)},
  };
  for (const auto& row : rows) {
    const auto arcs = util::summarize_counts(partition::arcs_per_rank(row.part));
    const auto ghosts =
        util::summarize_counts(partition::ghosts_per_rank(row.part));
    std::printf("%-14s %12.0f %12.0f %8.2fx %12.0f\n", row.name, arcs.min,
                arcs.max, arcs.imbalance, ghosts.max);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "cluster") return cmd_cluster(argc, argv);
    if (cmd == "eval") return cmd_eval(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
    if (cmd == "partition-stats") return cmd_partition_stats(argc, argv);
  } catch (const CliParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const comm::FaultPlanError& e) {
    std::fprintf(stderr, "error: invalid fault plan: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
