// Directed-flow scenario: site sections in a web-traffic network.
// Users navigate mostly within a section of a site (directed links circulate
// inside it) and occasionally jump across sections. This example runs the
// directed Infomap extension (PageRank flows, §2.2 of the paper) on such a
// network, compares it with the undirected treatment, and shows what
// happens on a citation-style DAG, where flow *drains* instead of
// circulating — a classic pitfall of directed community detection.
#include <cstdio>

#include "core/directed_infomap.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/dicsr.hpp"
#include "quality/metrics.hpp"
#include "util/random.hpp"

namespace {
using namespace dinfomap;

/// `sections` groups of `size` pages; each page links to `intra` random pages
/// of its section (directed, circulating) and one page elsewhere.
graph::EdgeList traffic_graph(graph::VertexId sections, graph::VertexId size,
                              int intra, graph::Partition& truth,
                              util::Xoshiro256& rng) {
  const graph::VertexId n = sections * size;
  truth.resize(n);
  graph::EdgeList links;
  for (graph::VertexId v = 0; v < n; ++v) {
    const graph::VertexId s = v / size;
    truth[v] = s;
    for (int k = 0; k < intra; ++k) {
      const auto t = static_cast<graph::VertexId>(s * size + rng.bounded(size));
      if (t != v) links.push_back({v, t, 1.0});
    }
    const auto other = static_cast<graph::VertexId>(rng.bounded(n));
    if (other != v) links.push_back({v, other, 0.5});
  }
  return links;
}

/// Citation-style DAG: every paper cites only earlier papers of its field.
graph::EdgeList citation_dag(graph::VertexId fields, graph::VertexId size,
                             graph::Partition& truth, util::Xoshiro256& rng) {
  const graph::VertexId n = fields * size;
  truth.resize(n);
  graph::EdgeList cites;
  for (graph::VertexId v = 0; v < n; ++v) {
    const graph::VertexId f = v / size;
    truth[v] = f;
    const graph::VertexId pos = v % size;
    for (int k = 0; k < 6 && pos > 0; ++k)
      cites.push_back({v, static_cast<graph::VertexId>(
                              f * size + rng.bounded(pos)),
                       1.0});
  }
  return cites;
}
}  // namespace

int main() {
  using namespace dinfomap;
  util::Xoshiro256 rng(7);

  std::printf("=== web-traffic section detection (directed flows) ===\n");
  graph::Partition truth;
  const auto links = traffic_graph(6, 80, 10, truth, rng);
  const auto dig = graph::DiCsr::from_edges(links, 480);
  std::printf("traffic graph: %u pages, %llu links\n", dig.num_vertices(),
              static_cast<unsigned long long>(dig.num_arcs()));

  const auto directed = core::directed_infomap(dig);
  std::printf("directed Infomap:   L = %.4f, %u sections, NMI vs truth = %.3f\n",
              directed.codelength, directed.num_modules(),
              quality::nmi(directed.assignment, truth));

  const auto und = graph::build_csr(links, 480);
  const auto undirected = core::sequential_infomap(und);
  std::printf("undirected Infomap: L = %.4f, %u sections, NMI vs truth = %.3f\n",
              undirected.codelength, undirected.num_modules(),
              quality::nmi(undirected.assignment, truth));

  const auto pr = core::pagerank(dig);
  graph::VertexId top = 0;
  for (graph::VertexId v = 1; v < dig.num_vertices(); ++v)
    if (pr[v] > pr[top]) top = v;
  std::printf("most-visited page: #%u (section %u, visit rate %.4f)\n\n", top,
              truth[top], pr[top]);

  std::printf("=== contrast: citation DAG (flow drains, does not circulate) ===\n");
  graph::Partition dag_truth;
  const auto cites = citation_dag(6, 80, dag_truth, rng);
  const auto dag = graph::DiCsr::from_edges(cites, 480);
  const auto dag_directed = core::directed_infomap(dag);
  const auto dag_undirected =
      core::sequential_infomap(graph::build_csr(cites, 480));
  std::printf("directed Infomap:   %u modules, NMI vs fields = %.3f\n",
              dag_directed.num_modules(),
              quality::nmi(dag_directed.assignment, dag_truth));
  std::printf("undirected Infomap: %u modules, NMI vs fields = %.3f\n",
              dag_undirected.num_modules(),
              quality::nmi(dag_undirected.assignment, dag_truth));
  std::printf(
      "on a DAG the random walk piles onto early papers and directed modules\n"
      "fragment — symmetrize first when the network has no circulation.\n");
  return 0;
}
