// Convergence study: watch the MDL and the graph size shrink level by level
// for the sequential and the distributed algorithm side by side — the
// behaviour behind Figs. 4 and 5, on a graph of your choosing.
//
//   ./convergence_study [num_ranks] [mixing]
#include <cstdio>
#include <cstdlib>

#include "core/dist_infomap.hpp"
#include "core/seq_infomap.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

int main(int argc, char** argv) {
  using namespace dinfomap;
  const int p = argc > 1 ? std::atoi(argv[1]) : 4;
  const double mixing = argc > 2 ? std::atof(argv[2]) : 0.3;

  graph::gen::LfrLiteParams params;
  params.n = 4000;
  params.mixing = mixing;
  const auto gg = graph::gen::lfr_lite(params, /*seed=*/5);
  const auto g = graph::build_csr(gg.edges, gg.num_vertices);
  std::printf("LFR graph: n=%u, mixing=%.2f; distributed on %d ranks\n\n",
              g.num_vertices(), mixing, p);

  const auto seq = core::sequential_infomap(g);
  core::DistInfomapConfig cfg;
  cfg.num_ranks = p;
  const auto dist = core::distributed_infomap(g, cfg);

  std::printf("%-6s | %-12s %-10s %-8s | %-12s %-10s %-8s\n", "level",
              "seq L", "seq |V|", "passes", "dist L", "dist |V|", "rounds");
  std::printf("%s\n", std::string(78, '-').c_str());
  const std::size_t rows = std::max(seq.trace.size(), dist.trace.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%-6zu | ", i);
    if (i < seq.trace.size()) {
      const auto& row = seq.trace[i];
      std::printf("%-12.5f %-10u %-8d | ", row.codelength_after,
                  row.level_vertices, row.inner_passes);
    } else {
      std::printf("%-12s %-10s %-8s | ", "-", "-", "-");
    }
    if (i < dist.trace.size()) {
      const auto& row = dist.trace[i];
      std::printf("%-12.5f %-10u %-8d", row.codelength_after,
                  row.level_vertices, row.inner_passes);
    } else {
      std::printf("%-12s %-10s %-8s", "-", "-", "-");
    }
    std::printf("\n");
  }
  std::printf("\nfinal: sequential L = %.5f, distributed L = %.5f (gap %+.2f%%)\n",
              seq.codelength, dist.codelength,
              100.0 * (dist.codelength - seq.codelength) / seq.codelength);
  return 0;
}
