// graphpack — convert a graph into the out-of-core `dinfomap.blockgraph/1`
// format (DESIGN.md §15). The conversion is the one step that holds the
// graph resident; every downstream consumer streams blocks through the
// bounded decode cache.
//
//   graphpack <input> <out.blockgraph> [--block-kb N] [--verify]
//
//   input: text edge list ("u v [w]", '#' comments), a .bin binary edge
//          list, or gen:<lfr|ba|rmat|sbm|ring|er>[:seed] for a synthetic
//          graph (same families as dinfomap_cli generate).
//
// The summary line reports compression (encoded bytes/arc vs the resident
// CSR's 16 bytes/arc) and the process's peak RSS, so conversion memory is
// visible alongside the file it produced.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "graph/blockgraph/blockgraph.hpp"
#include "graph/blockgraph/writer.hpp"
#include "graph/builder.hpp"
#include "graph/edgelist_io.hpp"
#include "graph/gen/generators.hpp"

namespace {

using namespace dinfomap;

int usage() {
  std::fprintf(
      stderr,
      "usage: graphpack <edges.txt|edges.bin|gen:family[:seed]> "
      "<out.blockgraph> [--block-kb N] [--verify]\n"
      "  family: lfr | ba | rmat | sbm | ring | er\n"
      "  --block-kb N   target encoded payload per block (default 64)\n"
      "  --verify       re-open the file and checksum-decode every block\n");
  return 2;
}

/// Peak resident set size (kB) from /proc/self/status — the "how much memory
/// did the conversion itself need" number in the summary.
std::uint64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtoull(line.c_str() + 6, nullptr, 10);
  }
  return 0;
}

graph::EdgeList load_edges(const std::string& in) {
  if (in.rfind("gen:", 0) == 0) {
    std::string family = in.substr(4);
    std::uint64_t seed = 42;
    if (const auto colon = family.find(':'); colon != std::string::npos) {
      seed = std::strtoull(family.c_str() + colon + 1, nullptr, 10);
      family.resize(colon);
    }
    graph::gen::GeneratedGraph g;
    if (family == "lfr") {
      graph::gen::LfrLiteParams p;
      p.n = 5000;
      g = graph::gen::lfr_lite(p, seed);
    } else if (family == "ba") {
      g = graph::gen::barabasi_albert(5000, 3, seed);
    } else if (family == "rmat") {
      g = graph::gen::rmat(13, 8, 0.57, 0.19, 0.19, seed);
    } else if (family == "sbm") {
      g = graph::gen::sbm(5000, 25, 0.05, 0.001, seed);
    } else if (family == "ring") {
      g = graph::gen::ring_of_cliques(100, 8, seed);
    } else if (family == "er") {
      g = graph::gen::erdos_renyi(5000, 25000, seed);
    } else {
      throw std::runtime_error("unknown generator family: " + family);
    }
    return std::move(g.edges);
  }
  if (in.size() > 4 && in.compare(in.size() - 4, 4, ".bin") == 0)
    return graph::read_edge_list_binary(in);
  // Text path: line-streamed parse with one reused buffer — the edge vector
  // is the only O(|E|) allocation this makes.
  graph::EdgeList edges;
  (void)graph::for_each_edge(in, [&](const graph::Edge& e) {
    edges.push_back(e);
  });
  return edges;
}

int run(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string in = argv[1];
  const std::string out = argv[2];
  graph::blockgraph::WriteOptions opts;
  bool verify = false;
  for (int i = 3; i < argc;) {
    if (!std::strcmp(argv[i], "--verify")) {
      verify = true;
      ++i;
    } else if (!std::strcmp(argv[i], "--block-kb") && i + 1 < argc) {
      const long kb = std::strtol(argv[i + 1], nullptr, 10);
      if (kb < 1 || kb > 1 << 20) {
        std::fprintf(stderr, "error: --block-kb out of range [1, 1048576]\n");
        return 2;
      }
      opts.block_payload_bytes = static_cast<std::size_t>(kb) * 1024;
      i += 2;
    } else {
      return usage();
    }
  }

  graph::Csr csr;
  {
    graph::EdgeList edges = load_edges(in);
    csr = graph::build_csr(edges);
  }  // edge list freed before the write

  const auto s = graph::blockgraph::write_block_file(out, csr, opts);

  // Resident CSR footprint: offsets (n+1)·8 + adjacency |arcs|·16 +
  // per-vertex self/wdeg caches 2·n·8.
  const double resident_bytes =
      static_cast<double>(s.num_vertices + 1) * 8.0 +
      static_cast<double>(s.num_arcs) * 16.0 +
      static_cast<double>(s.num_vertices) * 16.0;
  const double arcs = s.num_arcs > 0 ? static_cast<double>(s.num_arcs) : 1.0;
  std::printf(
      "packed %llu vertices, %llu arcs into %llu blocks: %.2f bytes/arc "
      "encoded (resident CSR: 16), file %.1f MiB vs resident %.1f MiB "
      "(%.0f%%), peak RSS %.1f MiB\n",
      static_cast<unsigned long long>(s.num_vertices),
      static_cast<unsigned long long>(s.num_arcs),
      static_cast<unsigned long long>(s.num_blocks),
      static_cast<double>(s.payload_bytes) / arcs,
      static_cast<double>(s.file_bytes) / (1024.0 * 1024.0),
      resident_bytes / (1024.0 * 1024.0),
      100.0 * static_cast<double>(s.file_bytes) / resident_bytes,
      static_cast<double>(peak_rss_kb()) / 1024.0);

  if (verify) {
    auto bg = graph::blockgraph::BlockGraph::open(out);
    auto cur = bg.cursor();
    std::uint64_t checked_arcs = 0;
    for (graph::VertexId u = 0; u < bg.num_vertices(); ++u)
      checked_arcs += bg.neighbors(u, cur).size();  // throws on bad block
    if (checked_arcs != s.num_arcs) {
      std::fprintf(stderr, "verify FAILED: decoded %llu arcs, expected %llu\n",
                   static_cast<unsigned long long>(checked_arcs),
                   static_cast<unsigned long long>(s.num_arcs));
      return 1;
    }
    std::printf("verify: all %llu blocks decode and checksum clean\n",
                static_cast<unsigned long long>(s.num_blocks));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
