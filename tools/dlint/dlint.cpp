// dlint — determinism & concurrency lint for the dinfomap tree (DESIGN.md §11).
//
// A single-binary, token/regex-level checker for the nondeterminism and
// locking mistakes PRs 1–4 each had to hunt down by hand. No libclang: every
// rule works on comment- and string-stripped source text, so it runs in
// milliseconds over the whole tree and gates CI (ci/check.sh, `ctest -L lint`).
//
// Rules (each named, each suppressible per-line):
//   unordered-iter    range-for / iterator loop over std::unordered_{map,set}
//                     in order-sensitive dirs (src/core, src/comm,
//                     src/quality). Hash order is stable per binary but not
//                     across standard libraries; anything it feeds — FP
//                     reductions, message layouts, label assignment — silently
//                     breaks the bit-reproducibility contract. Fix with
//                     util::sorted_keys / util::sorted_elems, or justify.
//                     Note — shared-round-counter: the same hidden-coupling
//                     bug also hides in *shared counters*: keying a per-pair
//                     decision on a global round index (e.g. the old
//                     `round_index_ & 1` tiebreak in the min-label guard)
//                     silently couples the decision to how many rounds every
//                     OTHER vertex has run, which breaks as soon as an engine
//                     advances the counter differently (the async engine's
//                     epochs vs the sync engine's rounds). Prefer verdicts
//                     that are pure functions of the entities being compared
//                     (see DistRank::min_label_yields). No automated rule
//                     fires on this — counters are indistinguishable from
//                     legitimate state at token level — so it rides here as a
//                     review checklist item for order-sensitive dirs.
//   raw-rng           rand()/srand()/std::random_device/std::mt19937 outside
//                     src/util/random.* — all randomness must flow from the
//                     seeded util::Xoshiro256 / derive_seed plumbing.
//   wall-clock        time()/std::chrono::system_clock outside src/util/timer.hpp
//                     and src/obs — wall time in algorithm code is a hidden
//                     input; steady_clock via util::Timer is fine.
//   raw-mutex-lock    manual .lock()/.unlock() member calls — use a scoped
//                     guard (util::MutexLock, std::lock_guard); a throw
//                     between the pair leaks the lock.
//   float-accum-order `+=` inside a loop iterating an unordered container
//                     (any dir) — the classic hash-order FP reduction.
//
// Suppression: `// dlint:allow(<rule>): <why>` on the flagged line, or in a
// comment block immediately above it. The "why" is mandatory by convention
// (reviewed, not parsed).
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  bool json = false;
  bool list_rules = false;
  std::string root;
  std::vector<std::string> order_dirs = {"src/core", "src/comm", "src/quality"};
  std::vector<std::string> paths;
};

const char* kRuleCatalog[][2] = {
    {"unordered-iter",
     "hash-order iteration over std::unordered_{map,set} in order-sensitive "
     "dirs"},
    {"raw-rng", "raw RNG outside src/util/random.*"},
    {"wall-clock", "wall-clock time outside src/util/timer.hpp and src/obs"},
    {"raw-mutex-lock", "manual .lock()/.unlock() instead of a scoped guard"},
    {"float-accum-order", "`+=` accumulation inside an unordered-container loop"},
};

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool path_contains_dir(const std::string& path, const std::string& dir) {
  const std::string needle = dir.back() == '/' ? dir : dir + "/";
  if (path.find("/" + needle) != std::string::npos) return true;
  return path.rfind(needle, 0) == 0;  // relative path starting with the dir
}

/// Blank out comments, string literals, and char literals, preserving line
/// structure (every stripped char becomes a space). Rules then cannot fire on
/// text inside comments or strings; allow-markers are read from raw lines.
std::vector<std::string> strip_source(const std::vector<std::string>& lines) {
  std::vector<std::string> out(lines.size());
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& in = lines[li];
    std::string& res = out[li];
    res.assign(in.size(), ' ');
    for (std::size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      switch (state) {
        case State::kCode: {
          if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
            i = in.size();  // rest of line is a comment
          } else if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == 'R' && i + 1 < in.size() && in[i + 1] == '"' &&
                     (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                     in[i - 1])) &&
                                 in[i - 1] != '_'))) {
            const auto paren = in.find('(', i + 2);
            if (paren != std::string::npos) {
              raw_delim = ")" + in.substr(i + 2, paren - (i + 2)) + "\"";
              state = State::kRawString;
              res[i] = 'R';
              i = paren;
            } else {
              res[i] = c;  // malformed; treat as code
            }
          } else if (c == '"') {
            state = State::kString;
          } else if (c == '\'') {
            state = State::kChar;
          } else {
            res[i] = c;
          }
          break;
        }
        case State::kBlockComment:
          if (c == '*' && i + 1 < in.size() && in[i + 1] == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          }
          break;
        case State::kRawString: {
          const auto end = in.find(raw_delim, i);
          if (end != std::string::npos) {
            i = end + raw_delim.size() - 1;
            state = State::kCode;
          } else {
            i = in.size();
          }
          break;
        }
      }
    }
    // Line-based states that cannot span lines.
    if (state == State::kString || state == State::kChar) state = State::kCode;
  }
  return out;
}

bool is_blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c); });
}

/// Per-line allowed rules: a `dlint:allow(rule)` marker suppresses findings on
/// its own line; markers on pure-comment lines roll forward onto the next
/// line that carries code.
std::vector<std::vector<std::string>> collect_allows(
    const std::vector<std::string>& raw, const std::vector<std::string>& code) {
  static const std::regex allow_re(R"(dlint:allow\(([a-z-]+)\))");
  std::vector<std::vector<std::string>> allows(raw.size());
  std::vector<std::string> pending;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::vector<std::string> here;
    for (std::sregex_iterator it(raw[i].begin(), raw[i].end(), allow_re), end;
         it != end; ++it)
      here.push_back((*it)[1]);
    if (is_blank(code[i])) {
      // Comment-only (or empty) line: markers wait for the next code line.
      pending.insert(pending.end(), here.begin(), here.end());
    } else {
      allows[i] = std::move(pending);
      pending.clear();
      allows[i].insert(allows[i].end(), here.begin(), here.end());
    }
  }
  return allows;
}

bool allowed(const std::vector<std::vector<std::string>>& allows,
             std::size_t line_idx, const std::string& rule) {
  if (line_idx >= allows.size()) return false;
  const auto& v = allows[line_idx];
  return std::find(v.begin(), v.end(), rule) != v.end();
}

/// Names declared as std::unordered_{map,set,...} anywhere in the file.
/// Scope-insensitive on purpose: a false positive costs one allow-comment, a
/// false negative costs a nondeterminism bug.
std::vector<std::string> unordered_names(const std::vector<std::string>& code) {
  std::vector<std::string> names;
  // Join so declarations spanning lines still parse.
  std::string all;
  for (const auto& l : code) {
    all += l;
    all += '\n';
  }
  static const std::string kTag = "unordered_";
  for (std::size_t pos = all.find(kTag); pos != std::string::npos;
       pos = all.find(kTag, pos + kTag.size())) {
    std::size_t p = pos + kTag.size();
    // Accept map/set/multimap/multiset.
    const char* kinds[] = {"multimap", "multiset", "map", "set"};
    bool matched = false;
    for (const char* k : kinds) {
      const std::size_t n = std::string(k).size();
      if (all.compare(p, n, k) == 0) {
        p += n;
        matched = true;
        break;
      }
    }
    if (!matched) continue;
    while (p < all.size() && std::isspace(static_cast<unsigned char>(all[p])))
      ++p;
    if (p >= all.size() || all[p] != '<') continue;
    int depth = 0;
    while (p < all.size()) {
      if (all[p] == '<') ++depth;
      else if (all[p] == '>') {
        --depth;
        if (depth == 0) break;
      }
      ++p;
    }
    if (p >= all.size()) continue;
    ++p;  // past closing '>'
    while (p < all.size() &&
           (std::isspace(static_cast<unsigned char>(all[p])) || all[p] == '&' ||
            all[p] == '*'))
      ++p;
    std::size_t q = p;
    while (q < all.size() && (std::isalnum(static_cast<unsigned char>(all[q])) ||
                              all[q] == '_'))
      ++q;
    if (q > p) {
      std::string name = all.substr(p, q - p);
      if (name != "const" && name != "return" &&
          std::find(names.begin(), names.end(), name) == names.end())
        names.push_back(name);
    }
  }
  return names;
}

/// Final identifier component of a range-for's iterable expression, or ""
/// when the expression is a call / index / temporary we do not track.
std::string iterable_name(std::string expr) {
  while (!expr.empty() &&
         std::isspace(static_cast<unsigned char>(expr.back())))
    expr.pop_back();
  if (expr.empty()) return "";
  const char last = expr.back();
  if (last == ')' || last == ']' || last == '>') return "";  // call/index/temp
  std::size_t q = expr.size();
  while (q > 0 && (std::isalnum(static_cast<unsigned char>(expr[q - 1])) ||
                   expr[q - 1] == '_'))
    --q;
  return expr.substr(q);
}

/// [first, last] line range of the statement/block controlled by a `for`
/// whose header closes on `header_end`. Used by float-accum-order.
std::pair<std::size_t, std::size_t> loop_body_range(
    const std::vector<std::string>& code, std::size_t header_end,
    std::size_t close_pos) {
  int brace = 0;
  bool seen_brace = false;
  for (std::size_t li = header_end; li < code.size(); ++li) {
    const std::string& l = code[li];
    for (std::size_t i = li == header_end ? close_pos : 0; i < l.size(); ++i) {
      if (l[i] == ';' && !seen_brace && brace == 0 && i > close_pos)
        return {header_end, li};  // single-statement body
      if (l[i] == '{') {
        ++brace;
        seen_brace = true;
      } else if (l[i] == '}') {
        --brace;
        if (seen_brace && brace == 0) return {header_end, li};
      }
    }
    if (!seen_brace && li > header_end && !is_blank(l)) {
      // Single statement on the following line(s): run to its ';'.
      for (std::size_t lj = li; lj < code.size(); ++lj)
        if (code[lj].find(';') != std::string::npos) return {header_end, lj};
      return {header_end, li};
    }
  }
  return {header_end, code.size() - 1};
}

struct RangeFor {
  std::size_t header_line;  ///< line the `for (` starts on
  std::size_t close_line;   ///< line its `)` closes on
  std::size_t close_pos;    ///< column of that `)`
  std::string iterable;     ///< trailing identifier of the range expression
};

/// All range-fors (and their iterables) in the file; headers may span lines.
std::vector<RangeFor> find_range_fors(const std::vector<std::string>& code) {
  std::vector<RangeFor> out;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& l = code[li];
    for (std::size_t pos = 0; (pos = l.find("for", pos)) != std::string::npos;
         pos += 3) {
      const bool word_start =
          pos == 0 || (!std::isalnum(static_cast<unsigned char>(l[pos - 1])) &&
                       l[pos - 1] != '_');
      const std::size_t after = pos + 3;
      const bool word_end =
          after >= l.size() ||
          (!std::isalnum(static_cast<unsigned char>(l[after])) &&
           l[after] != '_');
      if (!word_start || !word_end) continue;
      std::size_t p = after;
      std::size_t pl = li;
      auto cur = [&]() -> const std::string& { return code[pl]; };
      auto advance = [&]() -> bool {
        ++p;
        while (pl < code.size() && p >= cur().size()) {
          ++pl;
          p = 0;
          if (pl - li > 4) return false;  // header spanning >5 lines: give up
        }
        return pl < code.size();
      };
      while (pl < code.size() && (p >= cur().size() ||
             std::isspace(static_cast<unsigned char>(cur()[p])))) {
        if (p < cur().size() &&
            !std::isspace(static_cast<unsigned char>(cur()[p])))
          break;
        if (!advance()) break;
      }
      if (pl >= code.size() || p >= cur().size() || cur()[p] != '(') continue;
      // Collect the parenthesized header.
      int depth = 0;
      std::string header;
      std::size_t close_line = pl, close_pos = p;
      bool closed = false;
      while (pl < code.size()) {
        const char c = cur()[p];
        if (c == '(') ++depth;
        if (c == ')') {
          --depth;
          if (depth == 0) {
            close_line = pl;
            close_pos = p;
            closed = true;
            break;
          }
        }
        header += c;
        if (!advance()) break;
      }
      if (!closed) continue;
      header += '\n';
      // Range-for: a top-level ':' not part of '::'.
      std::size_t colon = std::string::npos;
      int d2 = 0;
      for (std::size_t i = 1; i + 1 < header.size(); ++i) {
        const char c = header[i];
        if (c == '(' || c == '<' || c == '[') ++d2;
        if (c == ')' || c == '>' || c == ']') --d2;
        if (c == ':' && d2 == 0 && header[i - 1] != ':' &&
            header[i + 1] != ':') {
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      out.push_back({li, close_line, close_pos,
                     iterable_name(header.substr(colon + 1))});
    }
  }
  return out;
}

void scan_file(const std::string& display_path, const Options& opt,
               std::vector<Finding>& findings, std::size_t& io_errors) {
  std::ifstream in(display_path, std::ios::binary);
  if (!in) {
    std::cerr << "dlint: cannot read " << display_path << "\n";
    ++io_errors;
    return;
  }
  std::vector<std::string> raw;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    raw.push_back(line);
  }
  const std::vector<std::string> code = strip_source(raw);
  const auto allows = collect_allows(raw, code);
  const std::string npath = normalize(display_path);

  auto report = [&](std::size_t line_idx, const char* rule,
                    const std::string& message) {
    if (allowed(allows, line_idx, rule)) return;
    findings.push_back({display_path, line_idx + 1, rule, message});
  };

  // ---- raw-rng ----------------------------------------------------------
  if (npath.find("src/util/random.") == std::string::npos) {
    static const std::regex rng_re(
        R"(\b(rand|srand|rand_r|drand48)\s*\(|std::random_device|std::mt19937|std::minstd_rand|std::default_random_engine)");
    for (std::size_t i = 0; i < code.size(); ++i)
      if (std::regex_search(code[i], rng_re))
        report(i, "raw-rng",
               "raw RNG; all randomness must come from util::Xoshiro256 / "
               "util::derive_seed (src/util/random.*)");
  }

  // ---- wall-clock -------------------------------------------------------
  if (npath.find("src/util/timer.hpp") == std::string::npos &&
      npath.find("src/obs/") == std::string::npos) {
    static const std::regex clock_re(
        R"(\btime\s*\(|std::chrono::system_clock|\bgettimeofday\s*\(|\blocaltime\s*\(|\bgmtime\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i)
      if (std::regex_search(code[i], clock_re))
        report(i, "wall-clock",
               "wall-clock time is a hidden input; use util::Timer "
               "(steady_clock) or keep it in src/obs");
  }

  // ---- raw-mutex-lock ---------------------------------------------------
  {
    static const std::regex lock_re(R"((\.|->)\s*(lock|unlock)\s*\(\s*\))");
    for (std::size_t i = 0; i < code.size(); ++i)
      if (std::regex_search(code[i], lock_re))
        report(i, "raw-mutex-lock",
               "manual lock()/unlock(); use a scoped guard "
               "(util::MutexLock / std::lock_guard) — a throw between the "
               "pair leaks the lock");
  }

  // ---- unordered-iter & float-accum-order -------------------------------
  const std::vector<std::string> names = unordered_names(code);
  if (!names.empty()) {
    const bool order_sensitive =
        std::any_of(opt.order_dirs.begin(), opt.order_dirs.end(),
                    [&](const std::string& d) {
                      return path_contains_dir(npath, d);
                    });
    const auto tracked = [&](const std::string& n) {
      return std::find(names.begin(), names.end(), n) != names.end();
    };

    for (const RangeFor& rf : find_range_fors(code)) {
      if (rf.iterable.empty() || !tracked(rf.iterable)) continue;
      if (order_sensitive)
        report(rf.header_line, "unordered-iter",
               "hash-order iteration over unordered container '" +
                   rf.iterable +
                   "'; use util::sorted_keys/sorted_elems or justify with "
                   "dlint:allow(unordered-iter)");
      const auto [first, last] =
          loop_body_range(code, rf.close_line, rf.close_pos);
      for (std::size_t li = first; li <= last && li < code.size(); ++li) {
        const std::string& l = code[li];
        for (std::size_t p = 0; (p = l.find("+=", p)) != std::string::npos;
             p += 2) {
          // Skip ++ and compound tokens that merely contain "+=".
          if (p > 0 && (l[p - 1] == '+' || l[p - 1] == '<' || l[p - 1] == '>'))
            continue;
          report(li, "float-accum-order",
                 "accumulation inside a loop over unordered container '" +
                     rf.iterable +
                     "' runs in hash order; sort the keys first");
          break;
        }
      }
    }

    // Iterator-style loops: for (auto it = m.begin(); ...)
    if (order_sensitive) {
      for (std::size_t i = 0; i < code.size(); ++i) {
        const std::string& l = code[i];
        const auto fpos = l.find("for");
        if (fpos == std::string::npos) continue;
        static const std::regex it_re(R"((\w+)\s*\.\s*c?begin\s*\(\s*\))");
        std::smatch m;
        std::string tail = l.substr(fpos);
        if (std::regex_search(tail, m, it_re) && tracked(m[1]))
          report(i, "unordered-iter",
                 "hash-order iterator loop over unordered container '" +
                     std::string(m[1]) + "'");
      }
    }
  }
}

void collect_paths(const fs::path& p, std::vector<std::string>& files,
                   std::size_t& io_errors) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    std::vector<std::string> batch;
    for (auto it = fs::recursive_directory_iterator(
             p, fs::directory_options::skip_permission_denied, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
          ext == ".cxx")
        batch.push_back(it->path().string());
    }
    std::sort(batch.begin(), batch.end());  // deterministic scan order
    files.insert(files.end(), batch.begin(), batch.end());
  } else if (fs::exists(p, ec)) {
    files.push_back(p.string());
  } else {
    std::cerr << "dlint: no such path: " << p.string() << "\n";
    ++io_errors;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int usage() {
  std::cerr
      << "usage: dlint [--json] [--root DIR] [--order-dirs a,b,...] "
         "[--list-rules] <file|dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage();
      opt.root = argv[i];
    } else if (arg == "--order-dirs") {
      if (++i >= argc) return usage();
      opt.order_dirs.clear();
      std::stringstream ss(argv[i]);
      for (std::string d; std::getline(ss, d, ',');)
        if (!d.empty()) opt.order_dirs.push_back(normalize(d));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dlint: unknown flag " << arg << "\n";
      return usage();
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.list_rules) {
    for (const auto& r : kRuleCatalog)
      std::cout << r[0] << "\t" << r[1] << "\n";
    return 0;
  }
  if (opt.paths.empty()) return usage();

  std::vector<std::string> files;
  std::size_t io_errors = 0;
  for (const auto& p : opt.paths) {
    fs::path fp(p);
    if (!opt.root.empty() && fp.is_relative()) fp = fs::path(opt.root) / fp;
    collect_paths(fp, files, io_errors);
  }

  std::vector<Finding> findings;
  for (const auto& f : files) scan_file(f, opt, findings, io_errors);

  if (opt.json) {
    std::cout << "{\"version\":1,\"files_scanned\":" << files.size()
              << ",\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::cout << (i ? "," : "") << "{\"file\":\"" << json_escape(f.file)
                << "\",\"line\":" << f.line << ",\"rule\":\"" << f.rule
                << "\",\"message\":\"" << json_escape(f.message) << "\"}";
    }
    std::cout << "],\"count\":" << findings.size() << "}\n";
  } else {
    for (const Finding& f : findings)
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    std::cerr << "dlint: " << findings.size() << " finding(s), "
              << files.size() << " file(s) scanned\n";
  }
  if (io_errors > 0) return 2;
  return findings.empty() ? 0 : 1;
}
